//! Toolchain interoperability tour: export the cell library as Liberty,
//! write/read the design as structural Verilog, report the statistically
//! critical gates and the k worst paths, and finish with post-silicon
//! adaptive body bias — the parts of the stack a downstream EDA flow would
//! touch.
//!
//! ```text
//! cargo run --release --example toolchain_interop [benchmark]
//! ```

use statleak::mc::{AbbConfig, McConfig, MonteCarlo};
use statleak::netlist::{benchmarks, placement::Placement, verilog};
use statleak::opt::{sizing, statistical_for_yield};
use statleak::ssta::Ssta;
use statleak::sta::Sta;
use statleak::tech::{liberty, Design, FactorModel, Technology, VariationConfig};
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let benchmark = std::env::args().nth(1).unwrap_or_else(|| "c432".into());
    let circuit = Arc::new(benchmarks::by_name(&benchmark).ok_or("unknown benchmark")?);
    let placement = Placement::by_level(&circuit);
    let tech = Technology::ptm100();
    let fm = FactorModel::build(&circuit, &placement, &tech, &VariationConfig::ptm100())?;
    let base = Design::new(Arc::clone(&circuit), tech);

    // 1. Liberty view of the dual-Vth library.
    let lib = liberty::export(base.tech(), "statleak100");
    let cells = liberty::parse(&lib)?;
    println!(
        "Liberty export: {} characterized cells ({} bytes); e.g. {}",
        cells.len(),
        lib.len(),
        cells
            .iter()
            .find(|c| c.name.starts_with("NAND2_X1"))
            .map(|c| format!(
                "{}: {:.1} fF in-cap, {:.2} nW leak, {:.1} ps + {:.2} ps/fF",
                c.name, c.input_cap, c.leakage_nw, c.intrinsic_ps, c.slope_ps_per_ff
            ))
            .unwrap_or_default()
    );

    // 2. Optimize, then hand the netlist to "another tool" via Verilog.
    let dmin = sizing::min_delay_estimate(&base);
    let t_clk = 1.20 * dmin;
    let out = statistical_for_yield(&base, &fm, t_clk, 0.95)?;
    let v = verilog::write(out.design.circuit());
    let reparsed = verilog::parse(&v)?;
    println!(
        "Verilog round trip: {} bytes, {} gates in, {} gates out",
        v.len(),
        out.design.circuit().num_gates(),
        reparsed.num_gates()
    );

    // 3. Statistical criticality report: the gates most likely to sit on a
    // violating path at the target clock.
    let ssta = Ssta::analyze(&out.design, &fm);
    let crit = ssta.criticalities(&out.design, &fm, t_clk);
    let mut ranked: Vec<_> = out
        .design
        .circuit()
        .gates()
        .map(|g| (g, crit[g.index()]))
        .collect();
    ranked.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!("\ntop statistically critical gates at {t_clk:.1} ps:");
    for (g, c) in ranked.iter().take(5) {
        let node = out.design.circuit().node(*g);
        println!(
            "  {:8} {:5} size {:>4} vth {}  criticality {:.4}",
            node.name,
            node.kind.to_string(),
            out.design.size(*g),
            out.design.vth(*g),
            c
        );
    }

    // 4. The five worst nominal paths.
    let sta = Sta::analyze(&out.design);
    println!("\nworst nominal paths:");
    for p in sta.top_paths(&out.design, 5) {
        let names: Vec<&str> = p
            .nodes
            .iter()
            .map(|&u| out.design.circuit().name_of(u))
            .collect();
        println!("  {:8.1} ps  {}", p.delay, names.join(" -> "));
    }

    // 5. Post-silicon adaptive body bias at a stressed clock.
    let t_stress = ssta.clock_for_yield(0.85);
    let abb = MonteCarlo::new(McConfig {
        samples: 1000,
        ..Default::default()
    })
    .run_abb(&out.design, &fm, &AbbConfig::standard(t_stress));
    println!(
        "\nABB at {:.1} ps: yield {:.3} -> {:.3}, mean leakage {:.3} uW -> {:.3} uW",
        t_stress,
        abb.yield_without_abb(),
        abb.yield_with_abb(),
        abb.leakage_summary_unbiased().mean * out.design.tech().vdd * 1e6,
        abb.leakage_summary().mean * out.design.tech().vdd * 1e6,
    );
    Ok(())
}
