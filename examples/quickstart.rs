//! Quickstart: optimize the leakage of one benchmark at a timing-yield
//! requirement and compare the deterministic and statistical flows.
//!
//! ```text
//! cargo run --release --example quickstart [benchmark]
//! ```

use statleak::core::report::{fmt_pct, fmt_power, Table};
use statleak::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let benchmark = std::env::args().nth(1).unwrap_or_else(|| "c432".into());
    println!("statleak quickstart on {benchmark}: T = 1.20*Dmin, yield target 95%\n");

    let cfg = FlowConfig::builder(&benchmark).mc_samples(1000).build()?;
    let o = Engine::global().session(&cfg)?.run_comparison()?;

    println!(
        "minimum delay {:.1} ps, clock target {:.1} ps\n",
        o.dmin, o.t_clk
    );

    let mut t = Table::new(&[
        "design",
        "nominal leak",
        "mean leak",
        "p95 leak",
        "yield (SSTA)",
        "yield (MC)",
        "high-Vth gates",
        "width",
    ]);
    for (name, m) in [
        ("baseline (sized, all low-Vth)", &o.baseline),
        ("deterministic (guard-banded)", &o.deterministic),
        ("statistical (the paper)", &o.statistical),
    ] {
        t.row(&[
            name.to_string(),
            fmt_power(m.leakage_nominal),
            fmt_power(m.leakage_mean),
            fmt_power(m.leakage_p95),
            format!("{:.3}", m.timing_yield),
            m.mc_yield.map_or("-".into(), |y| format!("{y:.3}")),
            m.high_vth.to_string(),
            format!("{:.0}", m.width),
        ]);
    }
    print!("{}", t.render());

    println!(
        "\nstatistical optimization saves an extra {} of p95 leakage over the\n\
         deterministic flow at the same timing yield (guard band used: {:.1}%).",
        fmt_pct(o.stat_extra_saving),
        o.det_guard_band * 100.0
    );
    Ok(())
}
