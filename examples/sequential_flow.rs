//! Sequential-circuit flow: an ISCAS89-class design is cut at its
//! flip-flops, given placement-driven wire loads, optimized statistically,
//! and reported — the register-to-register story the combinational
//! benchmarks skip.
//!
//! ```text
//! cargo run --release --example sequential_flow [s27|s344|s526|s1196|s1423|s5378]
//! ```

use statleak::core::report::timing_report;
use statleak::netlist::{bench, benchmarks, placement::Placement};
use statleak::opt::{sizing, statistical_for_yield};
use statleak::sta::Sta;
use statleak::tech::{
    wire::{wire_caps_from_placement, WireModel},
    Design, FactorModel, Technology, VariationConfig,
};
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args().nth(1).unwrap_or_else(|| "s344".into());
    let (circuit, text) =
        benchmarks::sequential_by_name(&name).ok_or("unknown sequential benchmark")?;
    let (_, dffs) = bench::parse_with_dff_count(&name, &text)?;
    let stats = circuit.stats();
    println!(
        "{name}: {} PIs+FFs in, {} POs+FFs out, {} gates, {} DFFs, depth {}",
        stats.inputs, stats.outputs, stats.gates, dffs, stats.depth
    );

    let circuit = Arc::new(circuit);
    let placement = Placement::by_level(&circuit);
    let tech = Technology::ptm100();
    let fm = FactorModel::build(&circuit, &placement, &tech, &VariationConfig::ptm100())?;

    // Register-to-register paths see real wire loads.
    let mut base = Design::new(Arc::clone(&circuit), tech);
    let caps = wire_caps_from_placement(&circuit, &placement, &WireModel::ptm100());
    let total_wire: f64 = caps.iter().sum();
    base.set_wire_caps(caps);
    println!("installed {total_wire:.0} fF of placement-driven wire load");

    let dmin = sizing::min_delay_estimate(&base);
    let t_clk = 1.20 * dmin;
    println!("min register-to-register delay {dmin:.1} ps; clock target {t_clk:.1} ps");

    let out = statistical_for_yield(&base, &fm, t_clk, 0.95)?;
    println!(
        "optimized: p95 leakage {:.3} uW -> {:.3} uW, yield {:.4}, {} high-Vth gates",
        out.report.initial_objective * 1e6,
        out.report.final_objective * 1e6,
        out.report.final_yield,
        out.design.high_vth_count()
    );

    // The worst register-to-register path, sign-off style.
    let sta = Sta::analyze(&out.design);
    println!(
        "\nworst path:\n{}",
        timing_report(&out.design, &sta, t_clk, 1)
    );
    Ok(())
}
