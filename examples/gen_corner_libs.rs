//! Regenerates the checked-in golden corner libraries under `libs/`:
//! `statleak_mini.lib` (typical), `statleak_mini_ss.lib` (slow/low-leak),
//! and `statleak_mini_ff.lib` (fast/high-leak).
//!
//! ```text
//! cargo run --example gen_corner_libs
//! ```
//!
//! The corners are the builtin 100 nm models re-characterized at
//! perturbed process points: SS raises both thresholds by 30 mV and slows
//! the drive constant by 10%; FF does the opposite. The size grid is cut
//! to four points so the files stay small enough to diff by eye. Tests
//! (`tests/liberty_corners.rs`) load these files verbatim — rerun this
//! generator and re-commit whenever the export format or the models
//! change.

use statleak::tech::{liberty, Technology};

/// The technology points the three corner files are characterized at.
pub fn corner_techs() -> [(&'static str, Technology); 3] {
    let mini = |dvth: f64, k_scale: f64| {
        let mut t = Technology::ptm100();
        t.sizes = vec![1.0, 2.0, 4.0, 8.0];
        t.vth_low += dvth;
        t.vth_mid += dvth;
        t.vth_high += dvth;
        t.k_delay *= k_scale;
        t
    };
    [
        ("", mini(0.0, 1.0)),
        ("_ss", mini(0.03, 1.1)),
        ("_ff", mini(-0.03, 0.9)),
    ]
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("libs");
    std::fs::create_dir_all(&root)?;
    for (suffix, tech) in corner_techs() {
        let name = format!("statleak_mini{suffix}");
        let path = root.join(format!("{name}.lib"));
        std::fs::write(&path, liberty::export(&tech, &name))?;
        println!("wrote {}", path.display());
    }
    Ok(())
}
