//! Optimizing a user-supplied circuit: build a small datapath slice with
//! the netlist API (or load any ISCAS85 `.bench` file), then run the full
//! statistical flow and validate the result with Monte Carlo.
//!
//! ```text
//! cargo run --release --example custom_circuit [path/to/file.bench]
//! ```

use statleak::mc::{McConfig, MonteCarlo};
use statleak::netlist::placement::Placement;
use statleak::netlist::{bench, Circuit, CircuitBuilder, GateKind};
use statleak::opt::{sizing, statistical_for_yield};
use statleak::ssta::Ssta;
use statleak::tech::{Design, FactorModel, Technology, VariationConfig};
use std::sync::Arc;

/// A 4-bit ripple-carry adder built gate by gate — the kind of datapath
/// slice a user would hand the optimizer.
fn ripple_carry_adder(bits: usize) -> Result<Circuit, Box<dyn std::error::Error>> {
    let mut b = CircuitBuilder::new(format!("rca{bits}"));
    for i in 0..bits {
        b.add_input(format!("a{i}"))?;
        b.add_input(format!("b{i}"))?;
    }
    b.add_input("cin")?;
    let mut carry = "cin".to_string();
    for i in 0..bits {
        let (a, bb) = (format!("a{i}"), format!("b{i}"));
        b.add_gate(format!("p{i}"), GateKind::Xor, &[&a, &bb])?;
        b.add_gate(format!("g{i}"), GateKind::And, &[&a, &bb])?;
        b.add_gate(format!("s{i}"), GateKind::Xor, &[&format!("p{i}"), &carry])?;
        b.add_gate(format!("pc{i}"), GateKind::And, &[&format!("p{i}"), &carry])?;
        b.add_gate(
            format!("c{i}"),
            GateKind::Or,
            &[&format!("g{i}"), &format!("pc{i}")],
        )?;
        b.mark_output(format!("s{i}"))?;
        carry = format!("c{i}");
    }
    b.mark_output(carry)?;
    Ok(b.build()?)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let circuit = match std::env::args().nth(1) {
        Some(path) => {
            let text = std::fs::read_to_string(&path)?;
            let name = std::path::Path::new(&path)
                .file_stem()
                .and_then(|s| s.to_str())
                .unwrap_or("user")
                .to_string();
            bench::parse(&name, &text)?
        }
        None => ripple_carry_adder(4)?,
    };
    let stats = circuit.stats();
    println!(
        "circuit {}: {} inputs, {} outputs, {} gates, depth {}",
        circuit.name(),
        stats.inputs,
        stats.outputs,
        stats.gates,
        stats.depth
    );

    let circuit = Arc::new(circuit);
    let placement = Placement::by_level(&circuit);
    let tech = Technology::ptm100();
    let fm = FactorModel::build(&circuit, &placement, &tech, &VariationConfig::ptm100())?;
    let base = Design::new(Arc::clone(&circuit), tech);

    let dmin = sizing::min_delay_estimate(&base);
    let t_clk = 1.15 * dmin;
    println!("Dmin = {dmin:.1} ps, clock target = {t_clk:.1} ps, yield target 99%");

    let out = statistical_for_yield(&base, &fm, t_clk, 0.99)?;
    let r = &out.report;
    println!(
        "optimized: {} of {} gates high-Vth, p95 leakage {:.3} uW -> {:.3} uW, yield {:.4}",
        out.design.high_vth_count(),
        stats.gates,
        r.initial_objective * 1e6,
        r.final_objective * 1e6,
        r.final_yield
    );

    // Independent Monte-Carlo confirmation with the full nonlinear models.
    let mc = MonteCarlo::new(McConfig {
        samples: 3000,
        ..Default::default()
    })
    .run(&out.design, &fm);
    let ssta = Ssta::analyze(&out.design, &fm);
    println!(
        "MC check: yield {:.4} (SSTA {:.4}), p95 leakage {:.3} uW (analytic {:.3} uW)",
        mc.timing_yield(t_clk),
        ssta.timing_yield(t_clk),
        mc.leakage_percentile(0.95) * out.design.tech().vdd * 1e6,
        r.final_objective * 1e6,
    );
    println!(
        "delay-leakage correlation across chips: {:.2} (fast die leak more)",
        mc.delay_leakage_correlation()
    );
    Ok(())
}
