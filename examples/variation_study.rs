//! Variation study: how the statistical optimizer's advantage scales with
//! the process-variation magnitude, and which modeling ingredients matter
//! (the paper's motivation section in executable form).
//!
//! ```text
//! cargo run --release --example variation_study [benchmark]
//! ```

use statleak::core::report::{fmt_pct, Table};
use statleak::leakage::LeakageAnalysis;
use statleak::mc::{McConfig, MonteCarlo};
use statleak::netlist::placement::Placement;
use statleak::opt::sizing;
use statleak::prelude::*;
use statleak::tech::FactorModel;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let benchmark = std::env::args().nth(1).unwrap_or_else(|| "c499".into());
    let cfg = FlowConfig::builder(&benchmark).mc_samples(0).build()?;
    let session = Engine::global().session(&cfg)?;

    // --- Advantage vs sigma(L). ---
    println!("statistical advantage vs variation magnitude on {benchmark}\n");
    let sigmas = [0.025, 0.05, 0.0667, 0.10];
    let pts = session.sweep(&SweepSpec::SigmaL(sigmas.to_vec()))?;
    let mut t = Table::new(&["sigma_L/L", "det p95 (uW)", "stat p95 (uW)", "extra saving"]);
    for p in &pts {
        t.row(&[
            format!("{:.1}%", p.x * 100.0),
            format!("{:.2}", p.det_p95 * 1e6),
            format!("{:.2}", p.stat_p95 * 1e6),
            fmt_pct(p.extra_saving),
        ]);
    }
    print!("{}", t.render());

    // --- Ablations: what each modeling ingredient contributes. ---
    println!("\nmodeling ablations (sized baseline design):\n");
    let rows = session.ablation()?;
    let mut t = Table::new(&["variant", "delay sigma (ps)", "leak p95 (uW)", "leak cv"]);
    for r in rows {
        t.row(&[
            r.variant,
            format!("{:.2}", r.delay_sigma),
            format!("{:.2}", r.leak_p95 * 1e6),
            format!("{:.3}", r.leak_cv),
        ]);
    }
    print!("{}", t.render());

    // --- The fast-die-leak-more correlation, measured from Monte Carlo. ---
    let setup = session.setup();
    let mut design = setup.base.clone();
    sizing::size_for_yield(&mut design, &setup.fm, setup.t_clk, cfg.eta)?;
    let mc = MonteCarlo::new(McConfig {
        samples: 2000,
        ..Default::default()
    })
    .run(&design, &setup.fm);
    println!(
        "\ndelay-leakage correlation across sampled chips: {:.2}",
        mc.delay_leakage_correlation()
    );

    // --- And what ignoring spatial correlation would claim. ---
    let placement = Placement::by_level(&setup.circuit);
    let fm_nospatial = FactorModel::build(
        &setup.circuit,
        &placement,
        design.tech(),
        &cfg.variation.without_spatial_correlation(),
    )?;
    let full = LeakageAnalysis::analyze(&design, &setup.fm).total_power(&design);
    let nospatial = LeakageAnalysis::analyze(&design, &fm_nospatial).total_power(&design);
    println!(
        "p95 leakage with full correlation: {:.2} uW; assuming independence: {:.2} uW\n\
         (an independence assumption underestimates the leakage tail by {})",
        full.quantile(0.95) * 1e6,
        nospatial.quantile(0.95) * 1e6,
        fmt_pct(1.0 - nospatial.quantile(0.95) / full.quantile(0.95)),
    );
    Ok(())
}
