//! Yield exploration: how the three designs trade clock period against
//! timing yield, and what each yield requirement costs in leakage.
//!
//! ```text
//! cargo run --release --example yield_explorer [benchmark]
//! ```

use statleak::core::report::{fmt_power, Table};
use statleak::opt::{sizing, statistical_for_yield};
use statleak::prelude::*;
use statleak::ssta::Ssta;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let benchmark = std::env::args().nth(1).unwrap_or_else(|| "c880".into());
    let cfg = FlowConfig::builder(&benchmark).mc_samples(0).build()?;
    let session = Engine::global().session(&cfg)?;

    // --- Yield curves of the three designs. ---
    println!("yield vs clock for {benchmark} (T target = 1.20*Dmin, eta = 0.95)\n");
    let grid: Vec<f64> = (0..=12).map(|i| 1.00 + 0.05 * i as f64).collect();
    let rows = session.yield_curves(&grid)?;
    let mut t = Table::new(&["T/Dmin", "baseline", "deterministic", "statistical"]);
    for (k, yb, yd, ys) in rows {
        t.row(&[
            format!("{k:.2}"),
            format!("{yb:.4}"),
            format!("{yd:.4}"),
            format!("{ys:.4}"),
        ]);
    }
    print!("{}", t.render());

    // --- The price of yield: p95 leakage vs yield requirement. ---
    println!("\np95 leakage vs yield requirement (statistical flow):\n");
    let setup = session.setup();
    let mut t = Table::new(&["eta", "p95 leakage", "clock@eta (ps)", "high-Vth gates"]);
    for eta in [0.80, 0.90, 0.95, 0.99] {
        let out = match statistical_for_yield(&setup.base, &setup.fm, setup.t_clk, eta) {
            Ok(o) => o,
            Err(e) => {
                eprintln!("eta {eta}: {e} (skipped)");
                continue;
            }
        };
        let ssta = Ssta::analyze(&out.design, &setup.fm);
        t.row(&[
            format!("{eta:.2}"),
            fmt_power(out.report.final_objective),
            format!("{:.1}", ssta.clock_for_yield(eta)),
            out.design.high_vth_count().to_string(),
        ]);
    }
    print!("{}", t.render());

    // --- How much clock headroom sizing alone can buy. ---
    let dmin = sizing::min_delay_estimate(&setup.base);
    println!(
        "\nminimum nominal delay by sizing alone: {dmin:.1} ps (clock target was {:.1} ps)",
        setup.t_clk
    );
    Ok(())
}
