//! # statleak — statistical leakage-power optimization under process variation
//!
//! This is the facade crate of the `statleak` workspace, a from-scratch Rust
//! reproduction of *A. Srivastava, D. Sylvester, D. Blaauw, "Statistical
//! optimization of leakage power considering process variations using
//! dual-Vth and sizing," DAC 2004*.
//!
//! It re-exports every sub-crate under a stable module name so downstream
//! users need a single dependency:
//!
//! * [`stats`] — numerics (Φ, Clark's max, Wilkinson lognormal sums, Cholesky)
//! * [`netlist`] — gate-level combinational netlists, ISCAS85 `.bench` I/O,
//!   ISCAS85-class benchmark suite, die placement
//! * [`tech`] — 100 nm dual-Vth technology models and the process-variation
//!   specification with spatial correlation
//! * [`sta`] — deterministic static timing analysis
//! * [`ssta`] — first-order canonical statistical STA and timing yield
//! * [`leakage`] — statistical (lognormal) full-chip leakage analysis
//! * [`mc`] — Monte-Carlo validation engine
//! * [`opt`] — deterministic and statistical dual-Vth + sizing optimizers
//! * [`core`] — end-to-end flows, experiment configuration, joint
//!   timing+leakage yield, report tables
//!
//! Beyond the paper, the workspace ships extensions: triple-Vth ladders,
//! joint parametric yield (bivariate normal over the shared factor basis),
//! post-silicon adaptive body bias, importance-sampled tail yield,
//! slew-aware STA, k-longest-path reports, Liberty-subset and structural-
//! Verilog interchange, placement-driven wire loads, ISCAS89-style
//! sequential (DFF-cut) netlists, and a `statleak` CLI binary
//!
//! # Quickstart
//!
//! ```
//! use statleak::core::flows::{self, FlowConfig};
//!
//! // Build a small ISCAS85-class benchmark, size it, then compare the
//! // deterministic and statistical leakage optimizers at equal timing yield.
//! let cfg = FlowConfig::quick("c17");
//! let outcome = flows::run_comparison(&cfg)?;
//! assert!(outcome.statistical.leakage_p95 <= outcome.deterministic.leakage_p95 * 1.0001);
//! # Ok::<(), statleak::core::FlowError>(())
//! ```

#![forbid(unsafe_code)]

pub mod error;

pub use error::StatleakError;

pub use statleak_core as core;
pub use statleak_leakage as leakage;
pub use statleak_mc as mc;
pub use statleak_netlist as netlist;
pub use statleak_opt as opt;
pub use statleak_ssta as ssta;
pub use statleak_sta as sta;
pub use statleak_stats as stats;
pub use statleak_tech as tech;
