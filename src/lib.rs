//! # statleak — statistical leakage-power optimization under process variation
//!
//! This is the facade crate of the `statleak` workspace, a from-scratch Rust
//! reproduction of *A. Srivastava, D. Sylvester, D. Blaauw, "Statistical
//! optimization of leakage power considering process variations using
//! dual-Vth and sizing," DAC 2004*.
//!
//! It re-exports every sub-crate under a stable module name so downstream
//! users need a single dependency:
//!
//! * [`stats`] — numerics (Φ, Clark's max, Wilkinson lognormal sums, Cholesky)
//! * [`netlist`] — gate-level combinational netlists, ISCAS85 `.bench` I/O,
//!   ISCAS85-class benchmark suite, die placement
//! * [`tech`] — 100 nm dual-Vth technology models and the process-variation
//!   specification with spatial correlation
//! * [`sta`] — deterministic static timing analysis
//! * [`ssta`] — first-order canonical statistical STA and timing yield
//! * [`leakage`] — statistical (lognormal) full-chip leakage analysis
//! * [`mc`] — Monte-Carlo validation engine
//! * [`opt`] — deterministic and statistical dual-Vth + sizing optimizers
//! * [`core`] — end-to-end flows, experiment configuration, joint
//!   timing+leakage yield, report tables
//! * [`engine`] — stateful service layer: an LRU cache of prepared
//!   sessions with memoized results, and the NDJSON TCP serve mode
//!
//! Beyond the paper, the workspace ships extensions: triple-Vth ladders,
//! joint parametric yield (bivariate normal over the shared factor basis),
//! post-silicon adaptive body bias, importance-sampled tail yield,
//! slew-aware STA, k-longest-path reports, Liberty-subset and structural-
//! Verilog interchange, placement-driven wire loads, ISCAS89-style
//! sequential (DFF-cut) netlists, and a `statleak` CLI binary
//!
//! # Quickstart
//!
//! ```
//! use statleak::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Build a small ISCAS85-class benchmark, size it, then compare the
//! // deterministic and statistical leakage optimizers at equal timing yield.
//! let cfg = FlowConfig::builder("c17").mc_samples(200).build()?;
//! let session = Engine::global().session(&cfg)?;
//! let outcome = session.run_comparison()?;
//! assert!(outcome.statistical.leakage_p95 <= outcome.deterministic.leakage_p95 * 1.0001);
//!
//! // A second call on the same session is a memo hit — no recompute.
//! let again = session.run_comparison()?;
//! assert_eq!(outcome.statistical.leakage_p95, again.statistical.leakage_p95);
//! # Ok(())
//! # }
//! ```
//!
//! One-shot scripts that don't want a cache can keep calling the free
//! functions in [`core::flows`]; they share the same implementation.

#![forbid(unsafe_code)]

pub mod error;

pub use error::StatleakError;

/// The most commonly used types, importable in one line.
///
/// ```
/// use statleak::prelude::*;
/// ```
pub mod prelude {
    pub use crate::error::StatleakError;
    pub use statleak_core::flows::{
        ComparisonOutcome, ConfigError, DesignMetrics, DistKind, DistributionData, FlowConfig,
        FlowConfigBuilder, FlowError, SweepSpec,
    };
    pub use statleak_engine::{CacheStats, Engine, ServeConfig, Server, Session};
}

pub use statleak_core as core;
pub use statleak_engine as engine;
pub use statleak_leakage as leakage;
pub use statleak_mc as mc;
pub use statleak_netlist as netlist;
pub use statleak_obs as obs;
pub use statleak_opt as opt;
pub use statleak_ssta as ssta;
pub use statleak_sta as sta;
pub use statleak_stats as stats;
pub use statleak_tech as tech;
