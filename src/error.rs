//! The typed error hierarchy of the `statleak` front end.
//!
//! Every user-input-reachable failure — bad CLI usage, unreadable files,
//! netlist/library parse errors, correlation-model breakdowns, infeasible
//! optimization targets — is funnelled into [`StatleakError`], which maps
//! each class onto a **stable process exit code** so scripts and CI can
//! dispatch on the failure kind without scraping stderr:
//!
//! | code | class        | meaning                                        |
//! |------|--------------|------------------------------------------------|
//! | 0    | —            | success                                        |
//! | 1    | `internal`   | unexpected/internal error                      |
//! | 2    | `usage`      | bad command line (unknown command/flag, missing or invalid value, unknown benchmark) |
//! | 3    | `io`         | file could not be read or written              |
//! | 4    | `parse`      | netlist or Liberty input failed to parse, or the input format could not be inferred |
//! | 5    | `model`      | statistical model construction failed (correlation matrix not positive definite) |
//! | 6    | `infeasible` | the optimization target cannot be met          |
//! | 7    | `busy`       | a `statleak serve` daemon shed the request at its queue high-water mark |
//!
//! The mapping is part of the CLI contract (see the README) and must not
//! change between releases; new classes may be appended with new codes.

use statleak_core::{FlowError, LibraryErrorClass};
use statleak_netlist::bench::ParseBenchError;
use statleak_netlist::verilog::ParseVerilogError;
use statleak_opt::SizeError;
use statleak_stats::CholeskyError;
use statleak_tech::liberty::ParseLibertyError;
use std::fmt;

/// All failures the `statleak` CLI and facade surface to callers.
#[derive(Debug)]
#[non_exhaustive]
pub enum StatleakError {
    /// Bad command-line usage: unknown command or flag, a flag missing its
    /// value, an invalid value, or an unknown built-in benchmark name.
    Usage(String),
    /// A file could not be read or written.
    Io {
        /// The path involved.
        path: String,
        /// The underlying I/O error.
        source: std::io::Error,
    },
    /// The input file's format could not be inferred from its extension.
    UnknownFormat {
        /// The offending path.
        path: String,
    },
    /// A `.bench` netlist failed to parse.
    ParseBench(ParseBenchError),
    /// A structural-Verilog netlist failed to parse.
    ParseVerilog(ParseVerilogError),
    /// A Liberty-subset library failed to parse.
    Liberty(ParseLibertyError),
    /// The spatial-correlation matrix failed to factor.
    Correlation(CholeskyError),
    /// A sizing/optimization target cannot be met.
    Infeasible(SizeError),
    /// An experiment-flow error (wraps [`FlowError`] for facade users).
    Flow(FlowError),
    /// A `statleak serve` daemon rejected the request at its queue
    /// high-water mark; the caller should back off and retry.
    Busy(String),
    /// An error response received from a `statleak serve` daemon, carrying
    /// the protocol's machine-readable error class (see
    /// `statleak_engine::proto`). The class maps back onto the local exit
    /// codes so `statleak call` behaves like the one-shot commands.
    Remote {
        /// Protocol error class (`usage`, `infeasible`, `busy`, ...).
        class: String,
        /// Human-readable message from the server.
        message: String,
    },
}

impl StatleakError {
    /// The stable process exit code for this error class (see the module
    /// docs for the table).
    pub fn exit_code(&self) -> u8 {
        match self {
            StatleakError::Usage(_) => 2,
            StatleakError::Io { .. } => 3,
            StatleakError::UnknownFormat { .. } | StatleakError::ParseBench(_) => 4,
            StatleakError::ParseVerilog(_) | StatleakError::Liberty(_) => 4,
            StatleakError::Correlation(_) => 5,
            StatleakError::Infeasible(_) => 6,
            StatleakError::Flow(e) => match e {
                FlowError::UnknownBenchmark(_) | FlowError::Config(_) => 2,
                FlowError::Correlation(_) => 5,
                FlowError::Sizing(_) => 6,
                FlowError::Library { class, .. } => match class {
                    LibraryErrorClass::Io => 3,
                    LibraryErrorClass::Parse => 4,
                    LibraryErrorClass::UnknownCorner => 2,
                },
                // `FlowError` is non-exhaustive; unknown future variants
                // fall back to the internal-error code.
                _ => 1,
            },
            StatleakError::Busy(_) => 7,
            StatleakError::Remote { class, .. } => match class.as_str() {
                "usage" | "config" | "unknown-benchmark" | "library-corner" => 2,
                "io" | "library-io" => 3,
                "parse" | "library-parse" => 4,
                "model" | "correlation" => 5,
                "infeasible" => 6,
                "busy" => 7,
                _ => 1,
            },
        }
    }

    /// A stable machine-readable class name matching the exit-code table.
    pub fn class(&self) -> &'static str {
        match self.exit_code() {
            2 => "usage",
            3 => "io",
            4 => "parse",
            5 => "model",
            6 => "infeasible",
            7 => "busy",
            _ => "internal",
        }
    }
}

impl fmt::Display for StatleakError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StatleakError::Usage(msg) => write!(f, "{msg}"),
            StatleakError::Io { path, source } => write!(f, "cannot access `{path}`: {source}"),
            StatleakError::UnknownFormat { path } => write!(
                f,
                "`{path}` is neither a built-in benchmark nor a recognized \
                 netlist file (expected a .bench or .v extension)"
            ),
            StatleakError::ParseBench(e) => write!(f, "bench netlist: {e}"),
            StatleakError::ParseVerilog(e) => write!(f, "verilog netlist: {e}"),
            StatleakError::Liberty(e) => write!(f, "liberty library: {e}"),
            StatleakError::Correlation(e) => write!(f, "correlation model: {e}"),
            StatleakError::Infeasible(e) => write!(f, "{e}"),
            StatleakError::Flow(e) => write!(f, "{e}"),
            StatleakError::Busy(msg) => write!(f, "server busy: {msg}"),
            StatleakError::Remote { class, message } => {
                write!(f, "server error ({class}): {message}")
            }
        }
    }
}

impl std::error::Error for StatleakError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StatleakError::Io { source, .. } => Some(source),
            StatleakError::ParseBench(e) => Some(e),
            StatleakError::ParseVerilog(e) => Some(e),
            StatleakError::Liberty(e) => Some(e),
            StatleakError::Correlation(e) => Some(e),
            StatleakError::Infeasible(e) => Some(e),
            StatleakError::Flow(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ParseBenchError> for StatleakError {
    fn from(e: ParseBenchError) -> Self {
        StatleakError::ParseBench(e)
    }
}

impl From<ParseVerilogError> for StatleakError {
    fn from(e: ParseVerilogError) -> Self {
        StatleakError::ParseVerilog(e)
    }
}

impl From<ParseLibertyError> for StatleakError {
    fn from(e: ParseLibertyError) -> Self {
        StatleakError::Liberty(e)
    }
}

impl From<CholeskyError> for StatleakError {
    fn from(e: CholeskyError) -> Self {
        StatleakError::Correlation(e)
    }
}

impl From<SizeError> for StatleakError {
    fn from(e: SizeError) -> Self {
        StatleakError::Infeasible(e)
    }
}

impl From<FlowError> for StatleakError {
    fn from(e: FlowError) -> Self {
        StatleakError::Flow(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exit_codes_are_stable() {
        assert_eq!(StatleakError::Usage("x".into()).exit_code(), 2);
        assert_eq!(
            StatleakError::Io {
                path: "f".into(),
                source: std::io::Error::new(std::io::ErrorKind::NotFound, "gone"),
            }
            .exit_code(),
            3
        );
        assert_eq!(
            StatleakError::UnknownFormat { path: "f".into() }.exit_code(),
            4
        );
        assert_eq!(
            StatleakError::Infeasible(SizeError {
                achieved: 2.0,
                target: 1.0,
            })
            .exit_code(),
            6
        );
    }

    #[test]
    fn flow_errors_map_through() {
        let e = StatleakError::from(FlowError::UnknownBenchmark("c9999".into()));
        assert_eq!(e.exit_code(), 2);
        assert_eq!(e.class(), "usage");
        let e = StatleakError::from(FlowError::Sizing(SizeError {
            achieved: 2.0,
            target: 1.0,
        }));
        assert_eq!(e.exit_code(), 6);
        assert_eq!(e.class(), "infeasible");
        let e = StatleakError::from(FlowError::Config(statleak_core::ConfigError {
            field: "eta",
            message: "out of range".into(),
        }));
        assert_eq!(e.exit_code(), 2);
        assert_eq!(e.class(), "usage");
    }

    #[test]
    fn library_errors_map_onto_io_parse_usage() {
        let lib = |class: LibraryErrorClass| {
            StatleakError::from(FlowError::Library {
                class,
                message: "m".into(),
            })
        };
        assert_eq!(lib(LibraryErrorClass::Io).exit_code(), 3);
        assert_eq!(lib(LibraryErrorClass::Parse).exit_code(), 4);
        assert_eq!(lib(LibraryErrorClass::UnknownCorner).exit_code(), 2);
        assert_eq!(
            StatleakError::Remote {
                class: "library-parse".into(),
                message: "m".into(),
            }
            .exit_code(),
            4
        );
    }

    #[test]
    fn busy_gets_its_own_exit_code() {
        let e = StatleakError::Busy("queue full".into());
        assert_eq!(e.exit_code(), 7);
        assert_eq!(e.class(), "busy");
        assert!(e.to_string().contains("queue full"));
    }

    #[test]
    fn remote_classes_map_onto_local_exit_codes() {
        let remote = |class: &str| StatleakError::Remote {
            class: class.into(),
            message: "m".into(),
        };
        assert_eq!(remote("usage").exit_code(), 2);
        assert_eq!(remote("unknown-benchmark").exit_code(), 2);
        assert_eq!(remote("correlation").exit_code(), 5);
        assert_eq!(remote("infeasible").exit_code(), 6);
        assert_eq!(remote("busy").exit_code(), 7);
        assert_eq!(remote("deadline").exit_code(), 1);
    }

    #[test]
    fn display_names_the_offender() {
        let e = StatleakError::UnknownFormat {
            path: "design.txt".into(),
        };
        assert!(e.to_string().contains("design.txt"));
        assert!(e.to_string().contains(".bench"));
    }
}
