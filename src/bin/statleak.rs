//! `statleak` — command-line front end to the statistical leakage
//! optimizer.
//!
//! ```text
//! statleak benchmarks
//!     List the built-in ISCAS85-class benchmark suite.
//!
//! statleak analyze   --input FILE [--clock-ps N] [--report K]
//!                    [--mc-sampler S] [--mc-samples N] [--mc-seed N]
//!     Timing (STA/SSTA), leakage, and yield report for a netlist. With
//!     --mc-samples > 0 an empirical yield with a 95% confidence interval
//!     is printed; --mc-sampler picks the estimator (`plain`, `sobol`,
//!     layered with `+is` importance sampling and `+cv` control variates,
//!     e.g. `sobol+is`).
//!
//! statleak optimize  --input FILE [--slack-factor F] [--eta E]
//!                    [--triple-vth] [--out-verilog F] [--out-bench F]
//!                    [--mc-sampler S] [--mc-samples N] [--mc-seed N]
//!     Run the full statistical flow and write the optimized netlist.
//!
//! statleak export-lib [--out FILE]
//!     Write the dual-Vth cell library as Liberty-subset text.
//!
//! statleak serve [--addr A] [--workers N] [--queue-depth N]
//!                [--cache-capacity N] [--deadline-ms N]
//!                [--store-dir DIR] [--ring N1,N2,..] [--self-node N]
//!                [--ring-replicas N] [--access-log FILE]
//!                [--access-log-max-bytes N]
//!     Run the newline-delimited-JSON analysis daemon (see
//!     docs/SERVE_PROTOCOL.md). Drains gracefully on SIGTERM/SIGINT.
//!     `--store-dir` persists results so restarts come back warm;
//!     `--ring`/`--self-node` enable coordinator-free fleet sharding;
//!     `--access-log` streams one size-rotated NDJSON audit record per
//!     request (and per batch item) with its trace id and outcome.
//!
//! statleak call --addr A --json REQUEST [--trace] [--trace-id HEX]
//!     Send one request line to a running daemon and print the response.
//!     `--trace` originates a fresh 128-bit trace id (printed to stderr)
//!     and attaches it to the request; `--trace-id` joins an existing
//!     trace instead. The id then appears in the server's response,
//!     access log, spans, and histogram exemplars.
//!
//! statleak top --ring A1,A2,.. [--interval-ms N] [--once] [--json]
//!     Poll `metrics` from every fleet node and render a refreshing
//!     per-node + fleet-total table (throughput, queue-wait and service
//!     quantiles, cache/store hit rates). Counters add and histograms
//!     merge losslessly. `--once` polls a single round; `--json` (implies
//!     --once) prints the merged snapshot as JSON.
//!
//! statleak trace INPUT [--slack-factor F] [--eta E] [--mc-samples N]
//!                [--top K]
//!     Run the comparison flow with full spans enabled and print a
//!     self-time profile table (top-K spans by self time).
//! ```
//!
//! Global flags (any command): `--trace FILE` appends every span/event as
//! NDJSON to FILE; `--log-level error|warn|info|debug|trace` sets the
//! stderr log threshold. The `STATLEAK_TRACE` / `STATLEAK_LOG`
//! environment variables are the equivalent defaults. For `call`,
//! `--trace` is that command's boolean flag instead (see above); use
//! `STATLEAK_TRACE` to capture spans there.
//!
//! `--input` accepts `.bench` (ISCAS85/89; DFFs are cut) or structural
//! Verilog (`.v`/`.verilog`, any case), or the name of a built-in
//! benchmark (e.g. `c880`). Files with any other extension are rejected
//! rather than guessed at.
//!
//! Argument parsing is strict: unknown flags, flags missing their value,
//! and unparsable values are errors, not silently ignored defaults. Each
//! failure class exits with a stable code (see [`statleak::error`]):
//! 2 usage, 3 I/O, 4 parse, 5 model, 6 infeasible, 7 busy.

// The only unsafe in the workspace: the two-line POSIX `signal()` binding
// below (`install_shutdown_handler`), confined to this binary so every
// library crate keeps `#![forbid(unsafe_code)]`.

use statleak::core::LibrarySpec;
use statleak::engine::{Json, ServeConfig, Server};
use statleak::error::StatleakError;
use statleak::leakage::LeakageAnalysis;
use statleak::mc::{McConfig, MonteCarlo, SamplingScheme};
use statleak::netlist::{bench, benchmarks, placement::Placement, verilog, Circuit};
use statleak::obs;
use statleak::opt::{sizing, statistical_flow, StatisticalOptimizer};
use statleak::ssta::Ssta;
use statleak::sta::{SlewSta, Sta};
use statleak::tech::{liberty, Design, FactorModel, Technology, VariationConfig};
use std::collections::BTreeMap;
use std::process::ExitCode;
use std::str::FromStr;
use std::sync::Arc;

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let result = setup_observability(&mut args).and_then(|trace| run(&args, trace.as_deref()));
    // Spans buffered on this (or any worker) thread must reach the sinks
    // before exit, whatever the outcome.
    obs::flush();
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("statleak: {} error: {e}", e.class());
            ExitCode::from(e.exit_code())
        }
    }
}

/// Applies `STATLEAK_TRACE`/`STATLEAK_LOG`, then extracts (and removes)
/// the global `--trace FILE` / `--log-level LEVEL` flags, which may appear
/// anywhere on the command line. Returns the trace path, if any; for
/// every command except `trace` (which composes its own sinks) the NDJSON
/// sink is installed here.
fn setup_observability(args: &mut Vec<String>) -> Result<Option<String>, StatleakError> {
    let io_err = |path: &str| {
        let path = path.to_string();
        move |e: std::io::Error| StatleakError::Io { path, source: e }
    };
    obs::init_from_env().map_err(io_err("STATLEAK_TRACE"))?;
    // `call` owns `--trace` as its boolean "originate a trace id" flag;
    // everywhere else it is the global NDJSON span-trace file flag.
    let call_owns_trace = args.first().map(String::as_str) == Some("call");
    let mut trace: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].clone();
        if flag != "--trace" && flag != "--log-level" || (flag == "--trace" && call_owns_trace) {
            i += 1;
            continue;
        }
        let Some(value) = args.get(i + 1).cloned() else {
            return Err(StatleakError::Usage(format!(
                "flag `{flag}` requires a value"
            )));
        };
        args.drain(i..i + 2);
        if flag == "--trace" {
            if trace.replace(value).is_some() {
                return Err(StatleakError::Usage("duplicate flag `--trace`".into()));
            }
        } else {
            obs::set_log_level(value.parse().map_err(StatleakError::Usage)?);
        }
    }
    if let Some(path) = &trace {
        if args.first().map(String::as_str) != Some("trace") {
            obs::install(&[obs::SinkSpec::NdjsonFile(path.into())]).map_err(io_err(path))?;
        }
    }
    Ok(trace)
}

fn run(args: &[String], trace_file: Option<&str>) -> Result<(), StatleakError> {
    let Some(command) = args.first() else {
        print_usage();
        return Ok(());
    };
    if args.iter().any(|a| a == "--help" || a == "-h") {
        print_usage();
        return Ok(());
    }
    match command.as_str() {
        "benchmarks" => {
            parse_flags(&args[1..], &[], &[])?;
            cmd_benchmarks()
        }
        "analyze" => cmd_analyze(&args[1..]),
        "optimize" => cmd_optimize(&args[1..]),
        "export-lib" => cmd_export_lib(&args[1..]),
        "serve" => cmd_serve(&args[1..]),
        "call" => cmd_call(&args[1..]),
        "top" => cmd_top(&args[1..]),
        "trace" => cmd_trace(&args[1..], trace_file),
        "help" => {
            print_usage();
            Ok(())
        }
        other => Err(StatleakError::Usage(format!(
            "unknown command `{other}` (try --help)"
        ))),
    }
}

fn print_usage() {
    println!(
        "statleak <command>\n\
         \n\
         commands:\n\
         \x20 benchmarks                      list built-in circuits\n\
         \x20 analyze   --input FILE [--clock-ps N] [--report K]\n\
         \x20           [--mc-sampler S] [--mc-samples N] [--mc-seed N]\n\
         \x20           [--liberty FILE[,corner=NAME]]\n\
         \x20 optimize  --input FILE [--slack-factor F] [--eta E] [--triple-vth]\n\
         \x20           [--out-verilog F] [--out-bench F]\n\
         \x20           [--mc-sampler S] [--mc-samples N] [--mc-seed N]\n\
         \x20           [--liberty FILE[,corner=NAME]]\n\
         \x20 export-lib [--out FILE]\n\
         \x20 serve     [--addr A] [--workers N] [--queue-depth N]\n\
         \x20           [--cache-capacity N] [--deadline-ms N] [--store-dir DIR]\n\
         \x20           [--ring N1,N2,..] [--self-node N] [--ring-replicas N]\n\
         \x20           [--access-log FILE] [--access-log-max-bytes N]\n\
         \x20 call      --addr A --json REQUEST [--trace] [--trace-id HEX]\n\
         \x20 top       --ring A1,A2,.. [--interval-ms N] [--once] [--json]\n\
         \x20 trace     INPUT [--slack-factor F] [--eta E] [--mc-samples N] [--top K]\n\
         \n\
         global flags: --trace FILE (NDJSON span trace), --log-level LEVEL\n\
         --input accepts .bench, .v, or a built-in name like c880\n\
         --mc-sampler: plain | sobol, layered with +is / +cv (e.g. sobol+is)\n\
         serve speaks newline-delimited JSON (docs/SERVE_PROTOCOL.md)\n\
         exit codes: 0 ok, 2 usage, 3 io, 4 parse, 5 model, 6 infeasible, 7 busy"
    );
}

/// Strict flag parser: every argument must be a known flag; flags in
/// `value_flags` consume the following argument, flags in `bool_flags`
/// stand alone. Unknown flags, missing values, stray positionals, and
/// duplicates are usage errors — nothing is silently ignored.
fn parse_flags(
    args: &[String],
    value_flags: &[&str],
    bool_flags: &[&str],
) -> Result<BTreeMap<String, String>, StatleakError> {
    let mut out = BTreeMap::new();
    let mut i = 0;
    while i < args.len() {
        let a = args[i].as_str();
        if !a.starts_with("--") {
            return Err(StatleakError::Usage(format!(
                "unexpected argument `{a}` (see --help)"
            )));
        }
        let value = if bool_flags.contains(&a) {
            i += 1;
            String::new()
        } else if value_flags.contains(&a) {
            let Some(v) = args.get(i + 1) else {
                return Err(StatleakError::Usage(format!("flag `{a}` requires a value")));
            };
            i += 2;
            v.clone()
        } else {
            return Err(StatleakError::Usage(format!(
                "unknown flag `{a}` (see --help)"
            )));
        };
        if out.insert(a.to_string(), value).is_some() {
            return Err(StatleakError::Usage(format!("duplicate flag `{a}`")));
        }
    }
    Ok(out)
}

/// Parses an optional flag value, reporting the flag and text on failure.
fn get_parsed<T: FromStr>(
    flags: &BTreeMap<String, String>,
    key: &str,
) -> Result<Option<T>, StatleakError> {
    match flags.get(key) {
        None => Ok(None),
        Some(v) => v
            .parse()
            .map(Some)
            .map_err(|_| StatleakError::Usage(format!("invalid value `{v}` for `{key}`"))),
    }
}

fn require_positive(key: &str, x: f64) -> Result<f64, StatleakError> {
    if x.is_finite() && x > 0.0 {
        Ok(x)
    } else {
        Err(StatleakError::Usage(format!(
            "`{key}` must be a positive finite number, got {x}"
        )))
    }
}

fn load_circuit(flags: &BTreeMap<String, String>) -> Result<Circuit, StatleakError> {
    let input = flags
        .get("--input")
        .ok_or_else(|| StatleakError::Usage("missing --input".into()))?;
    if let Some(c) = benchmarks::by_name(input) {
        return Ok(c);
    }
    let path = std::path::Path::new(input);
    let ext = path
        .extension()
        .and_then(|s| s.to_str())
        .map(str::to_ascii_lowercase);
    let stem = path
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("design");
    let read = || {
        std::fs::read_to_string(input).map_err(|e| StatleakError::Io {
            path: input.clone(),
            source: e,
        })
    };
    match ext.as_deref() {
        Some("v") | Some("verilog") => Ok(verilog::parse(&read()?)?),
        Some("bench") => Ok(bench::parse(stem, &read()?)?),
        _ => Err(StatleakError::UnknownFormat {
            path: input.clone(),
        }),
    }
}

/// Parses the shared `--mc-sampler` / `--mc-samples` / `--mc-seed` flags.
/// Unknown sampler tokens are usage errors (exit 2), reported with the
/// parser's own diagnostic. `default_samples` differs per command
/// (`analyze` skips MC unless asked; `optimize` always confirms).
fn parse_mc_flags(
    flags: &BTreeMap<String, String>,
    default_samples: usize,
) -> Result<McConfig, StatleakError> {
    let scheme = match flags.get("--mc-sampler") {
        None => SamplingScheme::default(),
        Some(v) => v
            .parse::<SamplingScheme>()
            .map_err(|e| StatleakError::Usage(format!("`--mc-sampler`: {e}")))?,
    };
    let samples = get_parsed::<usize>(flags, "--mc-samples")?.unwrap_or(default_samples);
    let seed = get_parsed::<u64>(flags, "--mc-seed")?.unwrap_or(McConfig::default().seed);
    Ok(McConfig {
        samples,
        seed,
        ..Default::default()
    }
    .with_scheme(scheme))
}

/// Parses the optional `--liberty <file>[,corner=<name>]` flag into a
/// [`LibrarySpec`] (builtin models when the flag is absent).
fn parse_library_flag(flags: &BTreeMap<String, String>) -> Result<LibrarySpec, StatleakError> {
    match flags.get("--liberty") {
        None => Ok(LibrarySpec::Builtin),
        Some(spec) => {
            LibrarySpec::parse(spec).map_err(|e| StatleakError::Usage(format!("`--liberty` {e}")))
        }
    }
}

fn build_context(
    circuit: Circuit,
    library: &LibrarySpec,
) -> Result<(Design, FactorModel), StatleakError> {
    let circuit = Arc::new(circuit);
    let placement = Placement::by_level(&circuit);
    let tech = Technology::ptm100();
    let fm = FactorModel::build(&circuit, &placement, &tech, &VariationConfig::ptm100())?;
    let lib = library.build(&tech)?;
    Ok((Design::with_library(circuit, tech, lib), fm))
}

fn write_file(path: &str, text: String) -> Result<(), StatleakError> {
    std::fs::write(path, text).map_err(|e| StatleakError::Io {
        path: path.to_string(),
        source: e,
    })
}

fn cmd_benchmarks() -> Result<(), StatleakError> {
    println!(
        "{:<8} {:>7} {:>8} {:>6} {:>6}  function",
        "name", "inputs", "outputs", "gates", "depth"
    );
    for s in &benchmarks::SUITE {
        println!(
            "{:<8} {:>7} {:>8} {:>6} {:>6}  {}",
            s.name, s.inputs, s.outputs, s.gates, s.depth, s.function
        );
    }
    Ok(())
}

fn cmd_analyze(args: &[String]) -> Result<(), StatleakError> {
    let flags = parse_flags(
        args,
        &[
            "--input",
            "--clock-ps",
            "--report",
            "--mc-sampler",
            "--mc-samples",
            "--mc-seed",
            "--liberty",
        ],
        &[],
    )?;
    // Validate every value before the (expensive) analysis starts.
    let clock_override = match get_parsed::<f64>(&flags, "--clock-ps")? {
        Some(v) => Some(require_positive("--clock-ps", v)?),
        None => None,
    };
    let report_k = get_parsed::<usize>(&flags, "--report")?;
    // MC confirmation is opt-in for analyze: 0 samples unless asked.
    let mc_config = parse_mc_flags(&flags, 0)?;
    let library = parse_library_flag(&flags)?;
    let (design, fm) = build_context(load_circuit(&flags)?, &library)?;
    let stats = design.circuit().stats();
    println!(
        "{}: {} inputs, {} outputs, {} gates, depth {}",
        design.circuit().name(),
        stats.inputs,
        stats.outputs,
        stats.gates,
        stats.depth
    );
    let sta = Sta::analyze(&design);
    let slew = SlewSta::analyze(&design);
    let ssta = Ssta::analyze(&design, &fm);
    let power = LeakageAnalysis::analyze(&design, &fm).total_power(&design);
    println!(
        "nominal delay      : {:.1} ps (slew-aware {:.1} ps)",
        sta.circuit_delay(),
        slew.circuit_delay()
    );
    println!(
        "statistical delay  : {:.1} ps mean, {:.1} ps sigma",
        ssta.circuit_delay().mean,
        ssta.circuit_delay().std()
    );
    println!(
        "leakage power      : {:.3} uW mean, {:.3} uW p95",
        power.mean() * 1e6,
        power.quantile(0.95) * 1e6
    );
    let t_clk = clock_override.unwrap_or_else(|| ssta.clock_for_yield(0.95));
    println!(
        "yield @ {:.1} ps    : {:.4} (SSTA)",
        t_clk,
        ssta.timing_yield(t_clk)
    );
    if mc_config.samples > 0 {
        let scheme = mc_config.scheme();
        let est = MonteCarlo::new(mc_config).timing_yield_estimate(&design, &fm, t_clk);
        println!(
            "MC yield ({scheme})  : {:.4}  95% CI [{:.4}, {:.4}]  ({} samples, ESS {:.0})",
            est.yield_value, est.ci.lo, est.ci.hi, est.evaluations, est.ess
        );
    }
    if let Some(k) = report_k {
        println!();
        print!(
            "{}",
            statleak::core::report::timing_report(&design, &sta, t_clk, k.max(1))
        );
    }
    Ok(())
}

fn cmd_optimize(args: &[String]) -> Result<(), StatleakError> {
    let flags = parse_flags(
        args,
        &[
            "--input",
            "--slack-factor",
            "--eta",
            "--out-verilog",
            "--out-bench",
            "--mc-sampler",
            "--mc-samples",
            "--mc-seed",
            "--liberty",
        ],
        &["--triple-vth"],
    )?;
    let mc_config = parse_mc_flags(&flags, 1000)?;
    // Validate every value before the (expensive) flow starts.
    let slack = match get_parsed::<f64>(&flags, "--slack-factor")? {
        Some(v) if v.is_finite() && v >= 1.0 => v,
        Some(v) => {
            return Err(StatleakError::Usage(format!(
                "`--slack-factor` must be >= 1.0 (a multiple of Dmin), got {v}"
            )))
        }
        None => 1.20,
    };
    let eta = match get_parsed::<f64>(&flags, "--eta")? {
        Some(v) if v > 0.0 && v < 1.0 => v,
        Some(v) => {
            return Err(StatleakError::Usage(format!(
                "`--eta` must be a yield in (0, 1), got {v}"
            )))
        }
        None => 0.95,
    };
    let library = parse_library_flag(&flags)?;
    let (base, fm) = build_context(load_circuit(&flags)?, &library)?;

    eprintln!("estimating minimum delay...");
    let dmin = sizing::min_delay_estimate(&base);
    let t_clk = dmin * slack;
    eprintln!("Dmin = {dmin:.1} ps, clock target = {t_clk:.1} ps, yield target = {eta}");

    let mut proto = StatisticalOptimizer::new(t_clk).with_yield_target(eta);
    if flags.contains_key("--triple-vth") {
        proto = proto.with_triple_vth();
    }
    let out = statistical_flow(&base, &fm, &proto)?;
    let r = &out.report;
    println!(
        "optimized: p95 leakage {:.3} uW -> {:.3} uW ({:.1}% saved), yield {:.4}",
        r.initial_objective * 1e6,
        r.final_objective * 1e6,
        (1.0 - r.final_objective / r.initial_objective) * 100.0,
        r.final_yield
    );
    println!(
        "gates: {} high-Vth of {}, total width {:.0}",
        out.design.high_vth_count(),
        out.design.circuit().num_gates(),
        out.design.total_width()
    );

    // Monte-Carlo confirmation (skipped with --mc-samples 0).
    if mc_config.samples > 0 {
        let scheme = mc_config.scheme();
        let engine = MonteCarlo::new(mc_config);
        let est = engine.timing_yield_estimate(&out.design, &fm, t_clk);
        // The leakage percentile always comes from an unshifted
        // population run, whatever the yield estimator.
        let population = if scheme.variance_reduction.importance_sampling {
            MonteCarlo::new(McConfig {
                variance_reduction: statleak::mc::VarianceReduction {
                    importance_sampling: false,
                    ..engine.config().variance_reduction
                },
                ..engine.config().clone()
            })
            .run(&out.design, &fm)
        } else {
            engine.run(&out.design, &fm)
        };
        println!(
            "MC check ({scheme}): yield {:.4} 95% CI [{:.4}, {:.4}], p95 leakage {:.3} uW",
            est.yield_value,
            est.ci.lo,
            est.ci.hi,
            population.leakage_percentile(0.95) * out.design.tech().vdd * 1e6
        );
    }

    if let Some(path) = flags.get("--out-verilog") {
        write_file(path, verilog::write(out.design.circuit()))?;
        eprintln!("wrote {path}");
    }
    if let Some(path) = flags.get("--out-bench") {
        write_file(path, bench::write(out.design.circuit()))?;
        eprintln!("wrote {path}");
    }
    Ok(())
}

fn cmd_export_lib(args: &[String]) -> Result<(), StatleakError> {
    let flags = parse_flags(args, &["--out"], &[])?;
    let text = liberty::export(&Technology::ptm100(), "statleak100");
    match flags.get("--out") {
        Some(path) => {
            write_file(path, text)?;
            eprintln!("wrote {path}");
        }
        None => print!("{text}"),
    }
    Ok(())
}

/// Set by the SIGTERM/SIGINT handler; `serve` drains and exits when it
/// flips.
static SHUTDOWN: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);

extern "C" fn on_shutdown_signal(_signum: i32) {
    // Only async-signal-safe work here: set the flag, nothing else.
    SHUTDOWN.store(true, std::sync::atomic::Ordering::SeqCst);
}

fn install_shutdown_handler() {
    // POSIX `signal(2)`; avoids pulling in a libc crate for two constants.
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGINT, on_shutdown_signal);
        signal(SIGTERM, on_shutdown_signal);
    }
}

fn cmd_serve(args: &[String]) -> Result<(), StatleakError> {
    let flags = parse_flags(
        args,
        &[
            "--addr",
            "--workers",
            "--queue-depth",
            "--cache-capacity",
            "--deadline-ms",
            "--store-dir",
            "--ring",
            "--self-node",
            "--ring-replicas",
            "--access-log",
            "--access-log-max-bytes",
        ],
        &[],
    )?;
    let mut config = ServeConfig::default();
    if let Some(addr) = flags.get("--addr") {
        config.addr = addr.clone();
    }
    if let Some(v) = get_parsed::<usize>(&flags, "--workers")? {
        config.workers = v;
    }
    if let Some(v) = get_parsed::<usize>(&flags, "--queue-depth")? {
        if v == 0 {
            return Err(StatleakError::Usage(
                "`--queue-depth` must be at least 1".into(),
            ));
        }
        config.queue_depth = v;
    }
    if let Some(v) = get_parsed::<usize>(&flags, "--cache-capacity")? {
        if v == 0 {
            return Err(StatleakError::Usage(
                "`--cache-capacity` must be at least 1".into(),
            ));
        }
        config.cache_capacity = v;
    }
    if let Some(v) = get_parsed::<u64>(&flags, "--deadline-ms")? {
        config.default_deadline_ms = Some(v);
    }
    if let Some(dir) = flags.get("--store-dir") {
        config.store_dir = Some(dir.clone());
    }
    if let Some(ring) = flags.get("--ring") {
        // Comma-separated node names; the names are opaque to the ring,
        // but by convention are the fleet's `host:port` addresses.
        config.ring = ring
            .split(',')
            .map(str::trim)
            .filter(|n| !n.is_empty())
            .map(str::to_string)
            .collect();
        if config.ring.is_empty() {
            return Err(StatleakError::Usage(
                "`--ring` needs at least one node name".into(),
            ));
        }
    }
    if let Some(node) = flags.get("--self-node") {
        if config.ring.is_empty() {
            return Err(StatleakError::Usage(
                "`--self-node` requires `--ring`".into(),
            ));
        }
        config.self_node = Some(node.clone());
    }
    if let Some(v) = get_parsed::<usize>(&flags, "--ring-replicas")? {
        if v == 0 {
            return Err(StatleakError::Usage(
                "`--ring-replicas` must be at least 1".into(),
            ));
        }
        config.ring_replicas = v;
    }
    if let Some(path) = flags.get("--access-log") {
        config.access_log = Some(path.clone());
    }
    if let Some(v) = get_parsed::<u64>(&flags, "--access-log-max-bytes")? {
        if !flags.contains_key("--access-log") {
            return Err(StatleakError::Usage(
                "`--access-log-max-bytes` requires `--access-log`".into(),
            ));
        }
        if v == 0 {
            return Err(StatleakError::Usage(
                "`--access-log-max-bytes` must be at least 1".into(),
            ));
        }
        config.access_log_max_bytes = v;
    }

    install_shutdown_handler();
    let server = Server::bind(&config, &SHUTDOWN).map_err(|e| StatleakError::Io {
        path: config.addr.clone(),
        source: e,
    })?;
    // Scripts (and the integration tests) read this line to learn the
    // resolved port when binding to :0.
    println!("serving on {}", server.local_addr());
    let report = server.run().map_err(|e| StatleakError::Io {
        path: config.addr.clone(),
        source: e,
    })?;
    eprintln!(
        "drained: {} served, {} errors, {} busy-rejected, {} past deadline, \
         {} malformed, {} wrong-shard, {} connections",
        report.served,
        report.request_errors,
        report.busy_rejected,
        report.deadline_expired,
        report.protocol_errors,
        report.wrong_shard,
        report.connections
    );
    Ok(())
}

fn cmd_call(args: &[String]) -> Result<(), StatleakError> {
    use std::io::{BufRead, BufReader, Write};

    let flags = parse_flags(args, &["--addr", "--json", "--trace-id"], &["--trace"])?;
    let addr = flags
        .get("--addr")
        .ok_or_else(|| StatleakError::Usage("missing --addr".into()))?;
    let request = flags
        .get("--json")
        .ok_or_else(|| StatleakError::Usage("missing --json".into()))?;
    if request.contains('\n') {
        return Err(StatleakError::Usage(
            "`--json` must be a single line (the protocol is one request per line)".into(),
        ));
    }
    // Originate (or join) a trace: attach the id to the request so the
    // server's spans, access log, and exemplars all carry it, and print
    // it to stderr so the caller can grep for it fleet-wide.
    let trace_id = match flags.get("--trace-id") {
        Some(hex) => Some(obs::TraceId::parse(hex).ok_or_else(|| {
            StatleakError::Usage(format!(
                "`--trace-id` must be 1-32 nonzero hex digits, got `{hex}`"
            ))
        })?),
        None if flags.contains_key("--trace") => Some(obs::TraceId::generate()),
        None => None,
    };
    let request = match trace_id {
        None => request.clone(),
        Some(id) => {
            let parsed = Json::parse(request)
                .map_err(|e| StatleakError::Usage(format!("`--json` is not valid JSON: {e}")))?;
            let Json::Obj(mut pairs) = parsed else {
                return Err(StatleakError::Usage(
                    "`--json` must be a JSON object to attach a trace".into(),
                ));
            };
            if pairs.iter().any(|(k, _)| k == "trace") {
                return Err(StatleakError::Usage(
                    "request already has a `trace` field; drop --trace/--trace-id".into(),
                ));
            }
            pairs.push((
                "trace".to_string(),
                Json::obj(vec![("trace_id", Json::str(id.to_hex()))]),
            ));
            eprintln!("trace {}", id.to_hex());
            Json::Obj(pairs).to_string()
        }
    };
    let request = &request;
    let io_err = |e: std::io::Error| StatleakError::Io {
        path: addr.clone(),
        source: e,
    };
    let mut stream = std::net::TcpStream::connect(addr).map_err(io_err)?;
    stream
        .write_all(format!("{request}\n").as_bytes())
        .and_then(|()| stream.flush())
        .map_err(io_err)?;
    let mut response = String::new();
    BufReader::new(stream)
        .read_line(&mut response)
        .map_err(io_err)?;
    let response = response.trim();
    if response.is_empty() {
        return Err(StatleakError::Remote {
            class: "internal".into(),
            message: "server closed the connection without responding".into(),
        });
    }
    println!("{response}");
    // Mirror the server's verdict in the exit code so scripts can dispatch
    // on `statleak call` exactly like on the one-shot commands.
    let parsed = Json::parse(response).map_err(|e| StatleakError::Remote {
        class: "internal".into(),
        message: format!("unparsable response: {e}"),
    })?;
    if parsed.get("ok").and_then(Json::as_bool) == Some(true) {
        return Ok(());
    }
    let error = parsed.get("error");
    let field = |k: &str| {
        error
            .and_then(|e| e.get(k))
            .and_then(Json::as_str)
            .unwrap_or("internal")
            .to_string()
    };
    Err(StatleakError::Remote {
        class: field("class"),
        message: field("message"),
    })
}

/// One node's decoded `metrics` response (or the error polling it).
struct NodePoll {
    node: String,
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, obs::HistogramSnapshot>,
    error: Option<String>,
}

impl NodePoll {
    fn failed(node: &str, error: String) -> NodePoll {
        NodePoll {
            node: node.to_string(),
            counters: BTreeMap::new(),
            gauges: BTreeMap::new(),
            histograms: BTreeMap::new(),
            error: Some(error),
        }
    }

    fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }
}

/// Sends one `metrics` request to `addr` and decodes the snapshot.
fn poll_node(addr: &str) -> NodePoll {
    use std::io::{BufRead, BufReader, Write};
    let attempt = || -> Result<NodePoll, String> {
        let mut stream = std::net::TcpStream::connect(addr).map_err(|e| e.to_string())?;
        stream
            .set_read_timeout(Some(std::time::Duration::from_secs(10)))
            .map_err(|e| e.to_string())?;
        stream
            .write_all(b"{\"op\":\"metrics\"}\n")
            .and_then(|()| stream.flush())
            .map_err(|e| e.to_string())?;
        let mut line = String::new();
        BufReader::new(stream)
            .read_line(&mut line)
            .map_err(|e| e.to_string())?;
        let parsed = Json::parse(line.trim()).map_err(|e| format!("unparsable response: {e}"))?;
        if parsed.get("ok").and_then(Json::as_bool) != Some(true) {
            return Err(format!("metrics request failed: {}", line.trim()));
        }
        let data = parsed.get("data").ok_or("response has no data")?;
        let entries = |section: &str| -> Vec<(String, Json)> {
            match data.get(section) {
                Some(Json::Obj(pairs)) => pairs.clone(),
                _ => Vec::new(),
            }
        };
        let mut poll = NodePoll::failed(addr, String::new());
        poll.error = None;
        for (name, v) in entries("counters") {
            poll.counters.insert(name, v.as_f64().unwrap_or(0.0) as u64);
        }
        for (name, v) in entries("gauges") {
            poll.gauges.insert(name, v.as_f64().unwrap_or(0.0));
        }
        for (name, v) in entries("histograms") {
            let h = statleak::engine::proto::parse_histogram_json(&name, &v)?;
            poll.histograms.insert(name, h);
        }
        Ok(poll)
    };
    attempt().unwrap_or_else(|e| NodePoll::failed(addr, e))
}

/// Adds every node's counters/gauges and merges its histograms into one
/// fleet-total poll. Counter addition and histogram merging are lossless,
/// so the fleet totals equal what a single node would have reported had
/// it served every request.
fn merge_polls(nodes: &[NodePoll]) -> NodePoll {
    let mut fleet = NodePoll::failed("fleet", String::new());
    fleet.error = None;
    for poll in nodes.iter().filter(|p| p.error.is_none()) {
        for (name, v) in &poll.counters {
            *fleet.counters.entry(name.clone()).or_insert(0) += v;
        }
        for (name, v) in &poll.gauges {
            *fleet.gauges.entry(name.clone()).or_insert(0.0) += v;
        }
        for (name, h) in &poll.histograms {
            fleet
                .histograms
                .entry(name.clone())
                .or_insert_with(|| obs::HistogramSnapshot::empty(name.clone()))
                .merge(h);
        }
    }
    fleet
}

fn poll_json(poll: &NodePoll) -> Json {
    let hist = |h: &obs::HistogramSnapshot| {
        Json::obj(vec![
            ("count", Json::Num(h.count as f64)),
            ("sum", Json::Num(h.sum as f64)),
            ("mean", Json::Num(h.mean)),
            ("p50", Json::Num(h.p50)),
            ("p95", Json::Num(h.p95)),
            ("p99", Json::Num(h.p99)),
        ])
    };
    let mut pairs = vec![("node", Json::str(poll.node.clone()))];
    if let Some(e) = &poll.error {
        pairs.push(("error", Json::str(e.clone())));
        return Json::obj(pairs);
    }
    pairs.push((
        "counters",
        Json::Obj(
            poll.counters
                .iter()
                .map(|(k, &v)| (k.clone(), Json::Num(v as f64)))
                .collect(),
        ),
    ));
    pairs.push((
        "gauges",
        Json::Obj(
            poll.gauges
                .iter()
                .map(|(k, &v)| (k.clone(), Json::Num(v)))
                .collect(),
        ),
    ));
    pairs.push((
        "histograms",
        Json::Obj(
            poll.histograms
                .iter()
                .map(|(k, h)| (k.clone(), hist(h)))
                .collect(),
        ),
    ));
    Json::obj(pairs)
}

/// One rendered table row; `rate` is requests/s since the previous poll
/// (None in `--once` mode, where there is no previous poll).
fn render_row(poll: &NodePoll, rate: Option<f64>) -> String {
    if let Some(e) = &poll.error {
        return format!("{:<22} DOWN: {e}", poll.node);
    }
    let ratio = |hit: u64, miss: u64| {
        let total = hit + miss;
        if total == 0 {
            "   -".to_string()
        } else {
            format!("{:3.0}%", 100.0 * hit as f64 / total as f64)
        }
    };
    let quantiles = |name: &str| match poll.histograms.get(name) {
        Some(h) if h.count > 0 => format!("{:>7.2}/{:<7.2}", h.p50 / 1e6, h.p99 / 1e6),
        _ => format!("{:>7}/{:<7}", "-", "-"),
    };
    let rate = match rate {
        Some(r) => format!("{r:7.1}"),
        None => format!("{:>7}", "-"),
    };
    format!(
        "{:<22} {:>8} {rate} {} {} {:>15} {:>15}",
        poll.node,
        poll.counter("serve_requests_total"),
        ratio(
            poll.counter("engine_cache_hits_total"),
            poll.counter("engine_cache_misses_total"),
        ),
        ratio(
            poll.counter("store_hits_total"),
            poll.counter("store_misses_total"),
        ),
        quantiles("serve_queue_wait_ns"),
        quantiles("serve_service_ns"),
    )
}

fn cmd_top(args: &[String]) -> Result<(), StatleakError> {
    use std::io::Write;

    let flags = parse_flags(args, &["--ring", "--interval-ms"], &["--once", "--json"])?;
    let ring = flags
        .get("--ring")
        .ok_or_else(|| StatleakError::Usage("missing --ring (comma-separated addresses)".into()))?;
    let nodes: Vec<String> = ring
        .split(',')
        .map(str::trim)
        .filter(|n| !n.is_empty())
        .map(str::to_string)
        .collect();
    if nodes.is_empty() {
        return Err(StatleakError::Usage(
            "`--ring` needs at least one address".into(),
        ));
    }
    let interval = std::time::Duration::from_millis(
        get_parsed::<u64>(&flags, "--interval-ms")?
            .unwrap_or(2000)
            .max(100),
    );
    let json = flags.contains_key("--json");
    let once = flags.contains_key("--once") || json;

    let mut previous: Option<Vec<NodePoll>> = None;
    loop {
        let polls: Vec<NodePoll> = nodes.iter().map(|n| poll_node(n)).collect();
        let fleet = merge_polls(&polls);
        if json {
            let out = Json::obj(vec![
                ("nodes", Json::Arr(polls.iter().map(poll_json).collect())),
                ("fleet", poll_json(&fleet)),
            ]);
            println!("{out}");
        } else {
            let mut screen = String::new();
            if !once {
                // ANSI clear + home: redraw in place each interval.
                screen.push_str("\x1b[2J\x1b[H");
            }
            screen.push_str(&format!(
                "statleak fleet: {} node(s), {} up\n{:<22} {:>8} {:>7} {:>4} {:>5} {:>15} {:>15}\n",
                nodes.len(),
                polls.iter().filter(|p| p.error.is_none()).count(),
                "node",
                "reqs",
                "req/s",
                "hit%",
                "store",
                "queue p50/p99ms",
                "serve p50/p99ms",
            ));
            for (i, poll) in polls.iter().enumerate() {
                let rate = previous.as_ref().and_then(|prev| {
                    let before = prev.get(i)?;
                    (before.error.is_none() && poll.error.is_none()).then(|| {
                        poll.counter("serve_requests_total")
                            .saturating_sub(before.counter("serve_requests_total"))
                            as f64
                            / interval.as_secs_f64()
                    })
                });
                screen.push_str(&render_row(poll, rate));
                screen.push('\n');
            }
            let fleet_rate = previous.as_ref().map(|prev| {
                let before: u64 = prev.iter().map(|p| p.counter("serve_requests_total")).sum();
                fleet
                    .counters
                    .get("serve_requests_total")
                    .copied()
                    .unwrap_or(0)
                    .saturating_sub(before) as f64
                    / interval.as_secs_f64()
            });
            screen.push_str(&render_row(&fleet, fleet_rate));
            screen.push('\n');
            print!("{screen}");
            std::io::stdout().flush().ok();
        }
        if once {
            // Every node down is an I/O failure, not a quiet empty table.
            if polls.iter().all(|p| p.error.is_some()) {
                return Err(StatleakError::Io {
                    path: ring.clone(),
                    source: std::io::Error::new(
                        std::io::ErrorKind::ConnectionRefused,
                        "no fleet node answered the metrics poll",
                    ),
                });
            }
            return Ok(());
        }
        previous = Some(polls);
        std::thread::sleep(interval);
    }
}

fn cmd_trace(args: &[String], trace_file: Option<&str>) -> Result<(), StatleakError> {
    use statleak::core::flows::{self, FlowConfig, Setup};

    let Some(input) = args.first().filter(|a| !a.starts_with("--")) else {
        return Err(StatleakError::Usage(
            "trace requires a netlist: statleak trace <input> [--slack-factor F] \
             [--eta E] [--mc-samples N] [--top K]"
                .into(),
        ));
    };
    let flags = parse_flags(
        &args[1..],
        &["--slack-factor", "--eta", "--mc-samples", "--top"],
        &[],
    )?;
    let slack = match get_parsed::<f64>(&flags, "--slack-factor")? {
        Some(v) if v.is_finite() && v >= 1.0 => v,
        Some(v) => {
            return Err(StatleakError::Usage(format!(
                "`--slack-factor` must be >= 1.0 (a multiple of Dmin), got {v}"
            )))
        }
        None => 1.20,
    };
    let eta = match get_parsed::<f64>(&flags, "--eta")? {
        Some(v) if v > 0.0 && v < 1.0 => v,
        Some(v) => {
            return Err(StatleakError::Usage(format!(
                "`--eta` must be a yield in (0, 1), got {v}"
            )))
        }
        None => 0.95,
    };
    let mc_samples = get_parsed::<usize>(&flags, "--mc-samples")?.unwrap_or(0);
    let top = get_parsed::<usize>(&flags, "--top")?.unwrap_or(15).max(1);

    // In-memory sink for the profile table, plus the NDJSON file when the
    // global --trace flag (or STATLEAK_TRACE) named one.
    let mut sinks = vec![obs::SinkSpec::InMemory];
    if let Some(path) = trace_file {
        sinks.push(obs::SinkSpec::NdjsonFile(path.into()));
    }
    obs::install(&sinks).map_err(|e| StatleakError::Io {
        path: trace_file.unwrap_or("<in-memory trace>").to_string(),
        source: e,
    })?;

    let mut input_flags = BTreeMap::new();
    input_flags.insert("--input".to_string(), input.clone());
    let circuit = load_circuit(&input_flags)?;
    let name = circuit.name().to_string();

    // Build the Setup by hand (so on-disk netlists work, not just built-in
    // benchmark names) and run the full comparison single-threaded: the
    // rayon shim runs 1-thread parallel calls inline, which keeps every
    // span on one thread with exact parent links for self-time accounting.
    eprintln!("tracing comparison flow on {name}...");
    let outcome = rayon::ThreadPoolBuilder::new()
        .num_threads(1)
        .build()
        .expect("thread pool")
        .install(|| -> Result<_, StatleakError> {
            let circuit = Arc::new(circuit);
            let placement = Placement::by_level(&circuit);
            let tech = Technology::ptm100();
            let fm = FactorModel::build(&circuit, &placement, &tech, &VariationConfig::ptm100())?;
            let base = Design::new(Arc::clone(&circuit), tech);
            let dmin = sizing::min_delay_estimate(&base);
            let setup = Setup {
                circuit,
                fm,
                base,
                dmin,
                t_clk: dmin * slack,
            };
            let cfg = FlowConfig::builder(&name)
                .slack_factor(slack)
                .eta(eta)
                .mc_samples(mc_samples)
                .build()
                .map_err(|e| StatleakError::Usage(e.to_string()))?;
            Ok(flows::run_comparison_on(&setup, &cfg)?)
        })?;

    let records = obs::take_memory();
    let rows = obs::self_time(&records);
    let span_count = rows.iter().map(|r| r.calls).sum::<u64>();
    let self_sum: f64 = rows.iter().map(|r| r.self_us).sum();

    println!(
        "{name}: t_clk {:.1} ps, det p95 {:.3} uW, stat p95 {:.3} uW \
         ({:.1}% extra saving)",
        outcome.t_clk,
        outcome.deterministic.leakage_p95 * 1e6,
        outcome.statistical.leakage_p95 * 1e6,
        outcome.stat_extra_saving * 100.0
    );
    println!(
        "\n{span_count} spans recorded; top {} by self time:",
        top.min(rows.len())
    );
    println!(
        "{:<26} {:>8} {:>12} {:>12} {:>6}",
        "span", "calls", "total ms", "self ms", "self%"
    );
    for r in rows.iter().take(top) {
        println!(
            "{:<26} {:>8} {:>12.2} {:>12.2} {:>5.1}%",
            r.name,
            r.calls,
            r.total_us / 1e3,
            r.self_us / 1e3,
            if self_sum > 0.0 {
                100.0 * r.self_us / self_sum
            } else {
                0.0
            }
        );
    }
    if let Some(path) = trace_file {
        eprintln!("wrote {} trace records to {path}", records.len());
    }
    Ok(())
}
