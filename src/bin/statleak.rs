//! `statleak` — command-line front end to the statistical leakage
//! optimizer.
//!
//! ```text
//! statleak benchmarks
//!     List the built-in ISCAS85-class benchmark suite.
//!
//! statleak analyze   --input FILE [--clock-ps N]
//!     Timing (STA/SSTA), leakage, and yield report for a netlist.
//!
//! statleak optimize  --input FILE [--slack-factor F] [--eta E]
//!                    [--triple-vth] [--out-verilog F] [--out-bench F]
//!     Run the full statistical flow and write the optimized netlist.
//!
//! statleak export-lib [--out FILE]
//!     Write the dual-Vth cell library as Liberty-subset text.
//! ```
//!
//! `--input` accepts `.bench` (ISCAS85/89; DFFs are cut) or structural
//! Verilog (`.v`), or the name of a built-in benchmark (e.g. `c880`).

use statleak::leakage::LeakageAnalysis;
use statleak::mc::{McConfig, MonteCarlo};
use statleak::netlist::{bench, benchmarks, placement::Placement, verilog, Circuit};
use statleak::opt::{sizing, statistical_flow, StatisticalOptimizer};
use statleak::ssta::Ssta;
use statleak::sta::{SlewSta, Sta};
use statleak::tech::{liberty, Design, FactorModel, Technology, VariationConfig};
use std::process::ExitCode;
use std::sync::Arc;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("statleak: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let Some(command) = args.first() else {
        print_usage();
        return Ok(());
    };
    match command.as_str() {
        "benchmarks" => cmd_benchmarks(),
        "analyze" => cmd_analyze(&args[1..]),
        "optimize" => cmd_optimize(&args[1..]),
        "export-lib" => cmd_export_lib(&args[1..]),
        "--help" | "-h" | "help" => {
            print_usage();
            Ok(())
        }
        other => Err(format!("unknown command `{other}` (try --help)").into()),
    }
}

fn print_usage() {
    println!(
        "statleak <command>\n\
         \n\
         commands:\n\
         \x20 benchmarks                      list built-in circuits\n\
         \x20 analyze   --input FILE [--clock-ps N] [--report K]\n\
         \x20 optimize  --input FILE [--slack-factor F] [--eta E] [--triple-vth]\n\
         \x20           [--out-verilog F] [--out-bench F]\n\
         \x20 export-lib [--out FILE]\n\
         \n\
         --input accepts .bench, .v, or a built-in name like c880"
    );
}

fn flag_value<'a>(args: &'a [String], key: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn flag_present(args: &[String], key: &str) -> bool {
    args.iter().any(|a| a == key)
}

fn load_circuit(args: &[String]) -> Result<Circuit, Box<dyn std::error::Error>> {
    let input = flag_value(args, "--input").ok_or("missing --input")?;
    if let Some(c) = benchmarks::by_name(input) {
        return Ok(c);
    }
    let text = std::fs::read_to_string(input).map_err(|e| format!("cannot read `{input}`: {e}"))?;
    let stem = std::path::Path::new(input)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("design");
    if input.ends_with(".v") {
        Ok(verilog::parse(&text)?)
    } else {
        Ok(bench::parse(stem, &text)?)
    }
}

fn build_context(circuit: Circuit) -> Result<(Design, FactorModel), Box<dyn std::error::Error>> {
    let circuit = Arc::new(circuit);
    let placement = Placement::by_level(&circuit);
    let tech = Technology::ptm100();
    let fm = FactorModel::build(&circuit, &placement, &tech, &VariationConfig::ptm100())?;
    Ok((Design::new(circuit, tech), fm))
}

fn cmd_benchmarks() -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "{:<8} {:>7} {:>8} {:>6} {:>6}  function",
        "name", "inputs", "outputs", "gates", "depth"
    );
    for s in &benchmarks::SUITE {
        println!(
            "{:<8} {:>7} {:>8} {:>6} {:>6}  {}",
            s.name, s.inputs, s.outputs, s.gates, s.depth, s.function
        );
    }
    Ok(())
}

fn cmd_analyze(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let (design, fm) = build_context(load_circuit(args)?)?;
    let stats = design.circuit().stats();
    println!(
        "{}: {} inputs, {} outputs, {} gates, depth {}",
        design.circuit().name(),
        stats.inputs,
        stats.outputs,
        stats.gates,
        stats.depth
    );
    let sta = Sta::analyze(&design);
    let slew = SlewSta::analyze(&design);
    let ssta = Ssta::analyze(&design, &fm);
    let power = LeakageAnalysis::analyze(&design, &fm).total_power(&design);
    println!(
        "nominal delay      : {:.1} ps (slew-aware {:.1} ps)",
        sta.circuit_delay(),
        slew.circuit_delay()
    );
    println!(
        "statistical delay  : {:.1} ps mean, {:.1} ps sigma",
        ssta.circuit_delay().mean,
        ssta.circuit_delay().std()
    );
    println!(
        "leakage power      : {:.3} uW mean, {:.3} uW p95",
        power.mean() * 1e6,
        power.quantile(0.95) * 1e6
    );
    let t_clk = match flag_value(args, "--clock-ps") {
        Some(v) => v.parse::<f64>().map_err(|_| "bad --clock-ps")?,
        None => ssta.clock_for_yield(0.95),
    };
    println!(
        "yield @ {:.1} ps    : {:.4} (SSTA)",
        t_clk,
        ssta.timing_yield(t_clk)
    );
    if let Some(k) = flag_value(args, "--report") {
        let k: usize = k.parse().map_err(|_| "bad --report")?;
        println!();
        print!(
            "{}",
            statleak::core::report::timing_report(&design, &sta, t_clk, k.max(1))
        );
    }
    Ok(())
}

fn cmd_optimize(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let (base, fm) = build_context(load_circuit(args)?)?;
    let slack: f64 = flag_value(args, "--slack-factor")
        .map(|v| v.parse())
        .transpose()
        .map_err(|_| "bad --slack-factor")?
        .unwrap_or(1.20);
    let eta: f64 = flag_value(args, "--eta")
        .map(|v| v.parse())
        .transpose()
        .map_err(|_| "bad --eta")?
        .unwrap_or(0.95);

    eprintln!("estimating minimum delay...");
    let dmin = sizing::min_delay_estimate(&base);
    let t_clk = dmin * slack;
    eprintln!("Dmin = {dmin:.1} ps, clock target = {t_clk:.1} ps, yield target = {eta}");

    let mut proto = StatisticalOptimizer::new(t_clk).with_yield_target(eta);
    if flag_present(args, "--triple-vth") {
        proto = proto.with_triple_vth();
    }
    let out = statistical_flow(&base, &fm, &proto)?;
    let r = &out.report;
    println!(
        "optimized: p95 leakage {:.3} uW -> {:.3} uW ({:.1}% saved), yield {:.4}",
        r.initial_objective * 1e6,
        r.final_objective * 1e6,
        (1.0 - r.final_objective / r.initial_objective) * 100.0,
        r.final_yield
    );
    println!(
        "gates: {} high-Vth of {}, total width {:.0}",
        out.design.high_vth_count(),
        out.design.circuit().num_gates(),
        out.design.total_width()
    );

    // Monte-Carlo confirmation.
    let mc = MonteCarlo::new(McConfig {
        samples: 1000,
        ..Default::default()
    })
    .run(&out.design, &fm);
    println!(
        "MC check: yield {:.4}, p95 leakage {:.3} uW",
        mc.timing_yield(t_clk),
        mc.leakage_percentile(0.95) * out.design.tech().vdd * 1e6
    );

    if let Some(path) = flag_value(args, "--out-verilog") {
        std::fs::write(path, verilog::write(out.design.circuit()))?;
        eprintln!("wrote {path}");
    }
    if let Some(path) = flag_value(args, "--out-bench") {
        std::fs::write(path, bench::write(out.design.circuit()))?;
        eprintln!("wrote {path}");
    }
    Ok(())
}

fn cmd_export_lib(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let text = liberty::export(&Technology::ptm100(), "statleak100");
    match flag_value(args, "--out") {
        Some(path) => {
            std::fs::write(path, text)?;
            eprintln!("wrote {path}");
        }
        None => print!("{text}"),
    }
    Ok(())
}
