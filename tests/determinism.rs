//! Reproducibility: every experiment in the repo must be bit-identical
//! run-to-run — benchmark generation, factor models, Monte Carlo, and the
//! optimizers are all seeded and deterministic.

use statleak::core::flows::{run_comparison_on, FlowConfig};
use statleak::mc::{McConfig, MonteCarlo};
use statleak::netlist::{benchmarks, placement::Placement};
use statleak::opt::{sizing, statistical_for_yield};
use statleak::tech::{Design, FactorModel, Technology, VariationConfig};
use std::sync::Arc;

#[test]
fn benchmark_suite_is_stable() {
    let a = benchmarks::suite();
    let b = benchmarks::suite();
    assert_eq!(a, b);
}

#[test]
fn factor_model_is_stable() {
    let circuit = Arc::new(benchmarks::by_name("c880").unwrap());
    let placement = Placement::by_level(&circuit);
    let tech = Technology::ptm100();
    let cfg = VariationConfig::ptm100();
    let a = FactorModel::build(&circuit, &placement, &tech, &cfg).unwrap();
    let b = FactorModel::build(&circuit, &placement, &tech, &cfg).unwrap();
    assert_eq!(a, b);
}

#[test]
fn monte_carlo_is_stable_across_runs_and_threads() {
    let circuit = Arc::new(benchmarks::by_name("c432").unwrap());
    let placement = Placement::by_level(&circuit);
    let tech = Technology::ptm100();
    let fm = FactorModel::build(&circuit, &placement, &tech, &VariationConfig::ptm100()).unwrap();
    let design = Design::new(circuit, tech);
    let run = |threads| {
        MonteCarlo::new(McConfig {
            samples: 256,
            seed: 7,
            threads,
            ..Default::default()
        })
        .run(&design, &fm)
    };
    assert_eq!(run(1), run(1));
    assert_eq!(run(1), run(3));
}

#[test]
fn optimizer_is_stable() {
    let circuit = Arc::new(benchmarks::by_name("c499").unwrap());
    let placement = Placement::by_level(&circuit);
    let tech = Technology::ptm100();
    let fm = FactorModel::build(&circuit, &placement, &tech, &VariationConfig::ptm100()).unwrap();
    let base = Design::new(circuit, tech);
    let dmin = sizing::min_delay_estimate(&base);
    let a = statistical_for_yield(&base, &fm, dmin * 1.2, 0.95).unwrap();
    let b = statistical_for_yield(&base, &fm, dmin * 1.2, 0.95).unwrap();
    assert_eq!(a.design, b.design);
    assert_eq!(a.report.final_objective, b.report.final_objective);
}

#[test]
fn comparison_flow_is_stable() {
    let cfg = FlowConfig::builder("c17").mc_samples(100).build().unwrap();
    let setup = statleak::core::flows::prepare(&cfg).unwrap();
    let a = run_comparison_on(&setup, &cfg).unwrap();
    let b = run_comparison_on(&setup, &cfg).unwrap();
    // Runtime differs; every numeric result must match.
    assert_eq!(a.statistical.leakage_p95, b.statistical.leakage_p95);
    assert_eq!(a.deterministic.leakage_p95, b.deterministic.leakage_p95);
    assert_eq!(a.baseline.leakage_p95, b.baseline.leakage_p95);
    assert_eq!(a.statistical.mc_yield, b.statistical.mc_yield);
}

#[test]
fn analysis_stack_is_thread_count_invariant_on_generated_10k() {
    // Level-partitioned parallel propagation must be byte-identical at any
    // thread count, including on generated circuits far larger than the
    // ISCAS suite (the 10k-gate circuit crosses the parallel-level
    // threshold many times). Covers the full analysis stack the
    // comparison flow is built from: canonical SSTA, deterministic STA,
    // statistical leakage, and the derived yield numbers.
    use statleak::leakage::LeakageAnalysis;
    use statleak::ssta::Ssta;
    use statleak::sta::Sta;

    let circuit = Arc::new(benchmarks::by_name("gen10k").expect("generated spec"));
    let placement = Placement::by_level(&circuit);
    let tech = Technology::ptm100();
    let fm = FactorModel::build(&circuit, &placement, &tech, &VariationConfig::ptm100()).unwrap();
    let design = Design::new(circuit, tech);

    let run = |threads: usize| {
        rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("thread pool")
            .install(|| {
                let ssta = Ssta::analyze(&design, &fm);
                let sta = Sta::analyze(&design);
                let leak = LeakageAnalysis::analyze(&design, &fm);
                let t_clk = ssta.circuit_delay().quantile(0.5) * 1.05;
                let yield_at = ssta.timing_yield(t_clk);
                (ssta, sta, leak, yield_at)
            })
    };

    let (ssta1, sta1, leak1, yield1) = run(1);
    for threads in [4, 8] {
        let (ssta_t, sta_t, leak_t, yield_t) = run(threads);
        assert_eq!(ssta1, ssta_t, "SSTA state at {threads} threads");
        assert_eq!(sta1, sta_t, "STA state at {threads} threads");
        assert_eq!(leak1, leak_t, "leakage state at {threads} threads");
        assert_eq!(yield1.to_bits(), yield_t.to_bits(), "yield at {threads}");
    }
}

#[test]
fn engine_session_matches_one_shot_flow() {
    // The cached service layer must not change a single bit of the result.
    let cfg = FlowConfig::builder("c17").mc_samples(100).build().unwrap();
    let setup = statleak::core::flows::prepare(&cfg).unwrap();
    let one_shot = run_comparison_on(&setup, &cfg).unwrap();
    let session = statleak::engine::Engine::global().session(&cfg).unwrap();
    let cached = session.run_comparison().unwrap();
    assert_eq!(
        one_shot.statistical.leakage_p95,
        cached.statistical.leakage_p95
    );
    assert_eq!(one_shot.statistical.mc_yield, cached.statistical.mc_yield);
    assert_eq!(one_shot.baseline.leakage_p95, cached.baseline.leakage_p95);
}
