//! Fleet-level observability tests: trace-context propagation across a
//! wrong-shard redirect, the request audit log, histogram exemplars and
//! span streams joined by one trace id, and `statleak top` aggregation.

use statleak::engine::ring::DEFAULT_REPLICAS;
use statleak::engine::{proto, session_key, Json, Ring};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

struct Daemon {
    child: Child,
    addr: String,
}

impl Daemon {
    /// Spawns `statleak serve` on an ephemeral port with extra flags and
    /// environment, reading the resolved address from stdout.
    fn spawn(extra: &[&str], env: &[(&str, &str)]) -> Daemon {
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_statleak"));
        cmd.arg("serve")
            .args(["--addr", "127.0.0.1:0"])
            .args(extra)
            .stdout(Stdio::piped())
            .stderr(Stdio::piped());
        for (k, v) in env {
            cmd.env(k, v);
        }
        let mut child = cmd.spawn().expect("daemon starts");
        let stdout = child.stdout.take().expect("stdout piped");
        let mut line = String::new();
        BufReader::new(stdout)
            .read_line(&mut line)
            .expect("daemon announces its address");
        let addr = line
            .trim()
            .strip_prefix("serving on ")
            .unwrap_or_else(|| panic!("unexpected announcement: {line:?}"))
            .to_string();
        Daemon { child, addr }
    }

    fn request(&self, line: &str) -> String {
        let mut stream = TcpStream::connect(&self.addr).expect("connect");
        stream
            .write_all(format!("{line}\n").as_bytes())
            .expect("send");
        let mut response = String::new();
        BufReader::new(stream)
            .read_line(&mut response)
            .expect("receive");
        response.trim().to_string()
    }

    fn sigterm_and_wait(mut self) {
        let delivered = Command::new("kill")
            .args(["-TERM", &self.child.id().to_string()])
            .status()
            .expect("kill runs");
        assert!(delivered.success(), "SIGTERM delivered");
        let start = Instant::now();
        loop {
            if let Some(status) = self.child.try_wait().expect("wait") {
                assert!(status.success(), "clean drain, got {status:?}");
                return;
            }
            assert!(
                start.elapsed() < Duration::from_secs(120),
                "daemon did not drain"
            );
            std::thread::sleep(Duration::from_millis(50));
        }
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "statleak-fleet-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir
}

/// Runs `statleak call`, returning (exit code, stdout, stderr).
fn call(args: &[&str]) -> (i32, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_statleak"))
        .arg("call")
        .args(args)
        .output()
        .expect("call runs");
    (
        out.status.code().unwrap_or(-1),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

/// Extracts the `trace HEX` line `statleak call --trace` prints.
fn trace_id_from_stderr(stderr: &str) -> String {
    let hex = stderr
        .lines()
        .find_map(|l| l.strip_prefix("trace "))
        .unwrap_or_else(|| panic!("no trace line in stderr: {stderr}"))
        .trim()
        .to_string();
    assert_eq!(hex.len(), 32, "trace ids are 32 hex digits: {hex}");
    hex
}

/// Polls until `path` contains `needle` (audit logs are flushed per write,
/// but the write races the response).
fn wait_for_log(path: &Path, needle: &str) -> String {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let text = std::fs::read_to_string(path).unwrap_or_default();
        if text.contains(needle) {
            return text;
        }
        assert!(
            Instant::now() < deadline,
            "log {path:?} never contained {needle}; have:\n{text}"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
}

#[test]
fn one_trace_id_spans_a_wrong_shard_redirect_across_two_nodes() {
    let dir = tmp_dir("redirect");
    let log_a = dir.join("a.log");
    let log_b = dir.join("b.log");
    let a = Daemon::spawn(
        &[
            "--workers",
            "1",
            "--ring",
            "na,nb",
            "--self-node",
            "na",
            "--access-log",
            log_a.to_str().unwrap(),
        ],
        &[],
    );
    let b = Daemon::spawn(
        &[
            "--workers",
            "1",
            "--ring",
            "na,nb",
            "--self-node",
            "nb",
            "--access-log",
            log_b.to_str().unwrap(),
        ],
        &[],
    );

    // Resolve the c17 session's owner on the same logical ring the
    // daemons use, so the test can aim the first request at the WRONG
    // node deliberately.
    let line = r#"{"id":"x","op":"comparison","benchmark":"c17","mc_samples":0}"#;
    let request = proto::parse_request(line).expect("parse");
    let cfg = proto::op_config(&request.op).expect("analysis op").clone();
    let key = session_key(&cfg).expect("session key");
    let ring = Ring::new(&["na".to_string(), "nb".to_string()], DEFAULT_REPLICAS).expect("ring");
    let owner_is_a = ring.shard_of(key) == "na";
    let (owner, other, owner_log, other_log) = if owner_is_a {
        (&a, &b, &log_a, &log_b)
    } else {
        (&b, &a, &log_b, &log_a)
    };

    // Originate a trace at the client, aimed at the non-owner: the node
    // rejects it wrong-shard, naming the owner, and logs the trace id.
    let (code, stdout, stderr) = call(&["--addr", &other.addr, "--json", line, "--trace"]);
    let hex = trace_id_from_stderr(&stderr);
    assert_ne!(code, 0, "wrong-shard is an error: {stdout}");
    assert!(stdout.contains(r#""class":"wrong-shard""#), "{stdout}");
    assert!(stdout.contains(r#""trace_id""#), "{stdout}");

    // Follow the redirect, joining the SAME trace.
    let (code, stdout, _) = call(&["--addr", &owner.addr, "--json", line, "--trace-id", &hex]);
    assert_eq!(code, 0, "{stdout}");
    assert!(stdout.contains(r#""ok":true"#), "{stdout}");
    assert!(
        stdout.contains(&format!(r#""trace_id":"{hex}""#)),
        "{stdout}"
    );

    // One trace id on both sides of the redirect: the rejecting node's
    // audit log has a wrong-shard record, the owner's a cold serve.
    let rejected = wait_for_log(other_log, &hex);
    let rejected_line = rejected
        .lines()
        .find(|l| l.contains(&hex))
        .expect("redirect audited");
    assert!(
        rejected_line.contains(r#""outcome":"wrong-shard""#),
        "{rejected_line}"
    );
    let served = wait_for_log(owner_log, &hex);
    let served_line = served
        .lines()
        .find(|l| l.contains(&hex))
        .expect("serve audited");
    assert!(served_line.contains(r#""outcome":"cold""#), "{served_line}");
    assert!(served_line.contains(r#""service_ns""#), "{served_line}");

    a.sigterm_and_wait();
    b.sigterm_and_wait();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn a_traced_call_joins_audit_log_exemplars_and_spans_across_batch_fanout() {
    let dir = tmp_dir("joined");
    let access = dir.join("access.log");
    let spans = dir.join("spans.ndjson");
    let daemon = Daemon::spawn(
        &["--workers", "2", "--access-log", access.to_str().unwrap()],
        &[("STATLEAK_TRACE", spans.to_str().unwrap())],
    );

    // One traced batch: the client-originated id must fan out with it.
    let batch = r#"{"id":"b","op":"batch","benchmark":"c17","mc_samples":0,"items":[{"op":"comparison"},{"op":"distribution","bins":8}]}"#;
    let (code, stdout, stderr) = call(&["--addr", &daemon.addr, "--json", batch, "--trace"]);
    assert_eq!(code, 0, "{stdout}\n{stderr}");
    let hex = trace_id_from_stderr(&stderr);
    assert!(
        stdout.contains(&format!(r#""trace_id":"{hex}""#)),
        "response echoes the trace id: {stdout}"
    );

    // Audit log: the batch envelope plus one record per fanned-out item,
    // all under the one trace id.
    let log = wait_for_log(&access, &hex);
    let traced: Vec<&str> = log.lines().filter(|l| l.contains(&hex)).collect();
    assert_eq!(traced.len(), 3, "envelope + 2 items:\n{log}");
    assert!(
        traced.iter().any(|l| l.contains(r#""op":"batch""#)),
        "{log}"
    );
    assert_eq!(
        traced
            .iter()
            .filter(|l| l.contains(r#""batch_index""#))
            .count(),
        2,
        "{log}"
    );

    // Histogram exemplars: the metrics op surfaces at least one exemplar
    // carrying this trace id (the ring holds the most recent traced
    // observations, and nothing else traced has run).
    let metrics = daemon.request(r#"{"id":"m","op":"metrics"}"#);
    assert!(metrics.contains(r#""exemplars""#), "{metrics}");
    assert!(
        metrics.contains(&format!(r#""trace_id":"{hex}""#)),
        "exemplar joins the trace: {metrics}"
    );
    // The Prometheus exposition carries them as comment lines.
    let text = daemon.request(r#"{"id":"t","op":"metrics_text"}"#);
    assert!(text.contains("# EXEMPLAR"), "{text}");
    assert!(text.contains(&hex), "{text}");

    // Span stream: drain the daemon (flushes every span buffer), then the
    // NDJSON trace must show the request span AND the fanned-out item
    // spans under the same trace id.
    daemon.sigterm_and_wait();
    let stream = std::fs::read_to_string(&spans).expect("span stream");
    let traced: Vec<&str> = stream.lines().filter(|l| l.contains(&hex)).collect();
    assert!(
        traced
            .iter()
            .any(|l| l.contains(r#""name":"serve.process""#)),
        "request span traced:\n{stream}"
    );
    assert!(
        traced
            .iter()
            .filter(|l| l.contains(r#""name":"serve.batch_item""#))
            .count()
            >= 2,
        "batch fan-out spans traced:\n{stream}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn top_once_json_reports_fleet_totals_equal_to_per_node_sums() {
    let a = Daemon::spawn(&["--workers", "1"], &[]);
    let b = Daemon::spawn(&["--workers", "1"], &[]);

    // Uneven load so the totals are distinguishable: two analysis
    // requests on node a, one on node b.
    for _ in 0..2 {
        let r = a.request(r#"{"id":1,"op":"comparison","benchmark":"c17","mc_samples":0}"#);
        assert!(r.contains(r#""ok":true"#), "{r}");
    }
    let r = b.request(r#"{"id":1,"op":"comparison","benchmark":"c17","mc_samples":0}"#);
    assert!(r.contains(r#""ok":true"#), "{r}");

    let ring = format!("{},{}", a.addr, b.addr);
    let out = Command::new(env!("CARGO_BIN_EXE_statleak"))
        .args(["top", "--ring", &ring, "--once", "--json"])
        .output()
        .expect("top runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    let report = Json::parse(stdout.trim()).expect("top emits JSON");

    let nodes = report
        .get("nodes")
        .and_then(Json::as_arr)
        .expect("nodes array");
    assert_eq!(nodes.len(), 2, "{stdout}");
    let fleet = report.get("fleet").expect("fleet section");

    // Merged totals equal the sum of the per-node metrics, for counters
    // and for merged histogram counts and sums alike.
    for metric in ["serve_requests_total", "serve_served_total"] {
        let per_node: f64 = nodes
            .iter()
            .map(|n| {
                n.get("counters")
                    .and_then(|c| c.get(metric))
                    .and_then(Json::as_f64)
                    .unwrap_or_else(|| panic!("node missing {metric}: {stdout}"))
            })
            .sum();
        let total = fleet
            .get("counters")
            .and_then(|c| c.get(metric))
            .and_then(Json::as_f64)
            .unwrap_or_else(|| panic!("fleet missing {metric}: {stdout}"));
        assert_eq!(total, per_node, "{metric}: {stdout}");
        assert!(total > 0.0, "{metric} must have counted: {stdout}");
    }
    for field in ["count", "sum"] {
        let per_node: f64 = nodes
            .iter()
            .map(|n| {
                n.get("histograms")
                    .and_then(|h| h.get("serve_service_ns"))
                    .and_then(|h| h.get(field))
                    .and_then(Json::as_f64)
                    .unwrap_or_else(|| panic!("node histogram missing {field}: {stdout}"))
            })
            .sum();
        let total = fleet
            .get("histograms")
            .and_then(|h| h.get("serve_service_ns"))
            .and_then(|h| h.get(field))
            .and_then(Json::as_f64)
            .unwrap_or_else(|| panic!("fleet histogram missing {field}: {stdout}"));
        assert_eq!(total, per_node, "histogram {field}: {stdout}");
    }

    // The cache-occupancy gauge is live on both nodes and sums.
    let occupancy = fleet
        .get("gauges")
        .and_then(|g| g.get("engine_cache_sessions"))
        .and_then(Json::as_f64)
        .unwrap_or_else(|| panic!("fleet missing engine_cache_sessions: {stdout}"));
    assert_eq!(occupancy, 2.0, "one session resident per node: {stdout}");

    // Human-readable mode renders the per-node and fleet rows.
    let table = Command::new(env!("CARGO_BIN_EXE_statleak"))
        .args(["top", "--ring", &ring, "--once"])
        .output()
        .expect("top runs");
    assert!(table.status.success());
    let text = String::from_utf8_lossy(&table.stdout);
    assert!(text.contains("fleet"), "{text}");
    assert!(text.contains(&a.addr), "{text}");

    // Every node down is a hard I/O error, not an empty success.
    let dead = Command::new(env!("CARGO_BIN_EXE_statleak"))
        .args(["top", "--ring", "127.0.0.1:1", "--once", "--json"])
        .output()
        .expect("top runs");
    assert_eq!(dead.status.code(), Some(3), "io exit code");

    a.sigterm_and_wait();
    b.sigterm_and_wait();
}
