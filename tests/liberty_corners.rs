//! Golden-file tests of the Liberty front-end: the checked-in SS/TT/FF
//! mini-libraries under `libs/` (regenerate with
//! `cargo run --example gen_corner_libs`) must load through the typed
//! parser, order delay/leakage monotonically across corners, drive the
//! experiment flows and the CLI end-to-end, and isolate engine sessions
//! by library content.

use statleak::core::flows::{FlowConfig, LibrarySpec};
use statleak::engine::{session_key, Engine};
use statleak::netlist::benchmarks;
use statleak::sta::Sta;
use statleak::tech::{Design, LibertyLibrary, Technology};
use std::path::{Path, PathBuf};
use std::process::Command;
use std::sync::Arc;

fn lib_path(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("libs")
        .join(name)
}

fn base_lib() -> PathBuf {
    lib_path("statleak_mini.lib")
}

/// A c432 design evaluating through the golden library at a corner
/// (`None` = the base/typical file).
fn corner_design(corner: Option<&str>) -> Design {
    let tech = Technology::ptm100();
    let lib = LibertyLibrary::load(&base_lib(), corner, tech.clone())
        .expect("golden corner library loads");
    let circuit = Arc::new(benchmarks::by_name("c432").expect("known benchmark"));
    Design::with_library(circuit, tech, Arc::new(lib))
}

#[test]
fn golden_libraries_expose_the_reduced_size_grid() {
    for corner in [None, Some("ss"), Some("ff")] {
        let d = corner_design(corner);
        assert_eq!(d.library().sizes(), &[1.0, 2.0, 4.0, 8.0]);
        assert!(
            d.library().id().starts_with("liberty:statleak_mini:"),
            "{}",
            d.library().id()
        );
    }
}

#[test]
fn corner_selection_orders_delay_and_leakage_monotonically() {
    let tt = corner_design(None);
    let ss = corner_design(Some("ss"));
    let ff = corner_design(Some("ff"));

    let delay = |d: &Design| Sta::analyze(d).circuit_delay();
    let (d_ss, d_tt, d_ff) = (delay(&ss), delay(&tt), delay(&ff));
    assert!(
        d_ss > d_tt && d_tt > d_ff,
        "corner delays must order ss > tt > ff, got {d_ss} / {d_tt} / {d_ff}"
    );

    let leak = |d: &Design| d.total_leakage_power_nominal();
    let (p_ss, p_tt, p_ff) = (leak(&ss), leak(&tt), leak(&ff));
    assert!(
        p_ss < p_tt && p_tt < p_ff,
        "corner leakage must order ss < tt < ff, got {p_ss} / {p_tt} / {p_ff}"
    );
}

#[test]
fn typical_corner_tracks_the_builtin_models() {
    // The TT file was characterized from the builtin closed forms, so the
    // library-evaluated design must agree closely (NLDM interpolation is
    // exact for the linear-in-load delay model) while SS must not.
    let circuit = Arc::new(benchmarks::by_name("c432").expect("known benchmark"));
    let builtin = Design::new(Arc::clone(&circuit), Technology::ptm100());
    let tt = corner_design(None);
    let ss = corner_design(Some("ss"));

    let d_builtin = Sta::analyze(&builtin).circuit_delay();
    let d_tt = Sta::analyze(&tt).circuit_delay();
    let d_ss = Sta::analyze(&ss).circuit_delay();
    assert!(
        ((d_tt - d_builtin) / d_builtin).abs() < 1e-6,
        "TT library should reproduce the builtin delay: {d_tt} vs {d_builtin}"
    );
    assert!(
        (d_ss - d_builtin) / d_builtin > 0.05,
        "SS library must differ from builtin: {d_ss} vs {d_builtin}"
    );
}

#[test]
fn unknown_corner_is_rejected_with_the_available_set() {
    let err = LibertyLibrary::load(&base_lib(), Some("fff"), Technology::ptm100())
        .expect_err("bogus corner");
    let msg = err.to_string();
    assert!(msg.contains("fff"), "{msg}");
    assert!(msg.contains("ss") && msg.contains("ff"), "{msg}");
}

#[test]
fn liberty_library_drives_the_experiment_flows() {
    let cfg = |library: LibrarySpec| {
        FlowConfig::builder("c17")
            .mc_samples(0)
            .library(library)
            .build()
            .expect("valid config")
    };
    let run = |cfg: &FlowConfig| {
        Engine::global()
            .session(cfg)
            .expect("session opens")
            .run_comparison()
            .expect("comparison runs")
    };
    let builtin = run(&cfg(LibrarySpec::Builtin));
    let spec = LibrarySpec::Liberty {
        path: base_lib(),
        corner: Some("ss".into()),
    };
    let ss = run(&cfg(spec));
    // Same circuit and optimizer, different cell numbers: the statistical
    // optimum must move (SS cells leak less at the same assignment).
    assert!(
        ss.statistical.leakage_mean < builtin.statistical.leakage_mean,
        "ss {} vs builtin {}",
        ss.statistical.leakage_mean,
        builtin.statistical.leakage_mean
    );
}

#[test]
fn session_keys_isolate_library_content() {
    let cfg = |library: LibrarySpec| {
        FlowConfig::builder("c17")
            .mc_samples(0)
            .library(library)
            .build()
            .expect("valid config")
    };
    let liberty = |corner: Option<&str>| {
        cfg(LibrarySpec::Liberty {
            path: base_lib(),
            corner: corner.map(str::to_string),
        })
    };
    let k_builtin = session_key(&cfg(LibrarySpec::Builtin)).unwrap();
    let k_tt = session_key(&liberty(None)).unwrap();
    let k_ss = session_key(&liberty(Some("ss"))).unwrap();
    let k_ff = session_key(&liberty(Some("ff"))).unwrap();
    assert_ne!(
        k_builtin, k_tt,
        "builtin and liberty sessions must not alias"
    );
    assert_ne!(k_tt, k_ss);
    assert_ne!(k_ss, k_ff);

    // Editing the file on disk must change the key even though the path
    // and corner spelling are unchanged.
    let dir = std::env::temp_dir().join(format!("statleak_libkey_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let copy = dir.join("statleak_mini.lib");
    std::fs::copy(base_lib(), &copy).unwrap();
    let spec = LibrarySpec::Liberty {
        path: copy.clone(),
        corner: None,
    };
    let before = session_key(&cfg(spec.clone())).unwrap();
    let mut text = std::fs::read_to_string(&copy).unwrap();
    text = text.replace(
        "cell_leakage_power : 118.544099;",
        "cell_leakage_power : 99.0;",
    );
    std::fs::write(&copy, text).unwrap();
    let after = session_key(&cfg(spec)).unwrap();
    assert_ne!(
        before, after,
        "changed library content must re-key the session"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

fn statleak(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_statleak"))
        .args(args)
        .output()
        .expect("binary runs")
}

#[test]
fn cli_analyze_accepts_liberty_and_corners() {
    let base = base_lib();
    let base = base.to_str().unwrap();
    let tt = statleak(&["analyze", "--input", "c17", "--liberty", base]);
    assert!(
        tt.status.success(),
        "{}",
        String::from_utf8_lossy(&tt.stderr)
    );
    let text = String::from_utf8_lossy(&tt.stdout);
    assert!(text.contains("leakage power"), "{text}");

    let ss = statleak(&[
        "analyze",
        "--input",
        "c17",
        "--liberty",
        &format!("{base},corner=ss"),
    ]);
    assert!(
        ss.status.success(),
        "{}",
        String::from_utf8_lossy(&ss.stderr)
    );
    assert_ne!(
        String::from_utf8_lossy(&ss.stdout),
        text,
        "corner selection must change the reported numbers"
    );
}

#[test]
fn cli_optimize_runs_through_a_liberty_library() {
    let base = base_lib();
    let out = statleak(&[
        "optimize",
        "--input",
        "c17",
        "--mc-samples",
        "8",
        "--liberty",
        base.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("optimized:"));
}

#[test]
fn cli_maps_liberty_failures_onto_stable_exit_codes() {
    // Unknown corner: usage (2).
    let out = statleak(&[
        "analyze",
        "--input",
        "c17",
        "--liberty",
        &format!("{},corner=nope", base_lib().display()),
    ]);
    assert_eq!(
        out.status.code(),
        Some(2),
        "unknown corner is a usage error"
    );

    // Unreadable file: io (3).
    let out = statleak(&["analyze", "--input", "c17", "--liberty", "/no/such.lib"]);
    assert_eq!(out.status.code(), Some(3), "missing file is an io error");

    // Malformed library: parse (4), with the position in the diagnostic.
    let dir = std::env::temp_dir().join(format!("statleak_badlib_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let bad = dir.join("bad.lib");
    std::fs::write(&bad, "library (broken) {\n  cell (X) {\n").unwrap();
    let out = statleak(&[
        "analyze",
        "--input",
        "c17",
        "--liberty",
        bad.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(4), "parse failure maps to exit 4");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("line 2"),
        "diagnostic carries the position: {err}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
