//! Cross-crate integration: the complete pipeline from netlist to
//! optimized design, with every analysis engine cross-checked against the
//! others.

use statleak::leakage::LeakageAnalysis;
use statleak::mc::{McConfig, MonteCarlo};
use statleak::netlist::{benchmarks, placement::Placement};
use statleak::opt::{deterministic_for_yield, sizing, statistical_for_yield};
use statleak::ssta::Ssta;
use statleak::sta::Sta;
use statleak::tech::{Design, FactorModel, Technology, VariationConfig};
use std::sync::Arc;

fn setup(name: &str) -> (Design, FactorModel) {
    let circuit = Arc::new(benchmarks::by_name(name).expect("known benchmark"));
    let placement = Placement::by_level(&circuit);
    let tech = Technology::ptm100();
    let fm =
        FactorModel::build(&circuit, &placement, &tech, &VariationConfig::ptm100()).expect("fm");
    (Design::new(circuit, tech), fm)
}

#[test]
fn full_pipeline_c432() {
    let (base, fm) = setup("c432");
    let dmin = sizing::min_delay_estimate(&base);
    let t_clk = 1.20 * dmin;
    let eta = 0.95;

    // Both flows complete and meet the yield requirement.
    let det = deterministic_for_yield(&base, &fm, t_clk, eta, 6).expect("det flow");
    assert!(det.achieved_yield >= eta);
    let stat = statistical_for_yield(&base, &fm, t_clk, eta).expect("stat flow");
    assert!(stat.report.final_yield >= eta - 1e-9);

    // Statistical wins at equal yield (the paper's claim).
    let p95 = |d: &Design| {
        LeakageAnalysis::analyze(d, &fm)
            .total_power(d)
            .quantile(0.95)
    };
    assert!(
        p95(&stat.design) < p95(&det.design),
        "stat {} vs det {}",
        p95(&stat.design),
        p95(&det.design)
    );

    // Monte Carlo confirms the analytical yield within sampling noise.
    let mc = MonteCarlo::new(McConfig {
        samples: 2000,
        ..Default::default()
    })
    .run(&stat.design, &fm);
    let analytic = Ssta::analyze(&stat.design, &fm).timing_yield(t_clk);
    assert!(
        (mc.timing_yield(t_clk) - analytic).abs() < 0.05,
        "MC {} vs SSTA {}",
        mc.timing_yield(t_clk),
        analytic
    );
}

#[test]
fn analyses_are_mutually_consistent() {
    let (mut design, fm) = setup("c880");
    let dmin = sizing::min_delay_estimate(&design);
    sizing::size_for_delay(&mut design, dmin * 1.3).expect("relaxed target");

    // SSTA mean >= deterministic STA delay (max of Gaussians).
    let sta = Sta::analyze(&design);
    let ssta = Ssta::analyze(&design, &fm);
    assert!(ssta.circuit_delay().mean >= sta.circuit_delay() - 1e-9);
    assert!(ssta.circuit_delay().mean <= sta.circuit_delay() * 1.2);

    // Leakage analysis mean equals nominal scaled by the lognormal factor.
    let leak = LeakageAnalysis::analyze(&design, &fm);
    let nominal: f64 = design
        .circuit()
        .gates()
        .map(|g| design.gate_leakage_nominal(g))
        .sum();
    let ratio = leak.mean_total_current() / nominal;
    assert!(ratio > 1.0 && ratio < 1.5, "lognormal factor {ratio}");

    // Monte Carlo agrees with both.
    let mc = MonteCarlo::new(McConfig {
        samples: 2000,
        ..Default::default()
    })
    .run(&design, &fm);
    let md = mc.delay_summary();
    assert!((md.mean - ssta.circuit_delay().mean).abs() / md.mean < 0.03);
    let ml = mc.leakage_summary();
    assert!((ml.mean - leak.mean_total_current()).abs() / ml.mean < 0.05);
}

#[test]
fn bench_io_round_trips_through_facade() {
    let c = benchmarks::by_name("c499").expect("known");
    let text = statleak::netlist::bench::write(&c);
    let c2 = statleak::netlist::bench::parse("c499", &text).expect("own output");
    assert_eq!(c.stats(), c2.stats());
}

#[test]
fn flows_api_runs_quick_config() {
    use statleak::prelude::*;
    let cfg = FlowConfig::builder("c17")
        .mc_samples(200)
        .build()
        .expect("valid config");
    let o = Engine::global()
        .session(&cfg)
        .and_then(|s| s.run_comparison())
        .expect("quick flow");
    assert!(o.statistical.leakage_p95 <= o.baseline.leakage_p95);
    assert!(o.statistical.timing_yield >= 0.95 - 1e-9);
}

#[test]
fn legacy_constructors_still_work() {
    use statleak::core::flows::FlowConfig;
    // The deprecated constructors must keep forwarding until removal.
    #[allow(deprecated)]
    let quick = FlowConfig::quick("c17");
    let built = FlowConfig::builder("c17")
        .mc_samples(200)
        .build()
        .expect("valid config");
    assert_eq!(quick, built);
}

#[test]
fn optimized_designs_keep_logic_function() {
    // Vth swaps and sizing must never change the boolean function.
    let (base, fm) = setup("c432");
    let dmin = sizing::min_delay_estimate(&base);
    let stat = statistical_for_yield(&base, &fm, dmin * 1.25, 0.9).expect("flow");
    let inputs: Vec<bool> = (0..base.circuit().num_inputs())
        .map(|i| i % 3 == 0)
        .collect();
    let v1 = base.circuit().simulate(&inputs);
    let v2 = stat.design.circuit().simulate(&inputs);
    assert_eq!(v1, v2);
}
