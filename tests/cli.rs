//! End-to-end tests of the `statleak` command-line binary.

use std::process::Command;

fn statleak(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_statleak"))
        .args(args)
        .output()
        .expect("binary runs")
}

#[test]
fn no_args_prints_usage() {
    let out = statleak(&[]);
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("statleak <command>"));
}

#[test]
fn benchmarks_lists_suite() {
    let out = statleak(&["benchmarks"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("c17"));
    assert!(text.contains("c7552"));
}

#[test]
fn analyze_builtin_benchmark() {
    let out = statleak(&["analyze", "--input", "c17"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("nominal delay"));
    assert!(text.contains("leakage power"));
    assert!(text.contains("yield"));
}

#[test]
fn optimize_writes_netlists() {
    let dir = std::env::temp_dir().join("statleak_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let v_path = dir.join("out.v");
    let b_path = dir.join("out.bench");
    let out = statleak(&[
        "optimize",
        "--input",
        "c17",
        "--slack-factor",
        "1.3",
        "--out-verilog",
        v_path.to_str().unwrap(),
        "--out-bench",
        b_path.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    // Both outputs parse back to the same structure.
    let v = std::fs::read_to_string(&v_path).unwrap();
    let b = std::fs::read_to_string(&b_path).unwrap();
    let cv = statleak::netlist::verilog::parse(&v).unwrap();
    let cb = statleak::netlist::bench::parse("c17", &b).unwrap();
    assert_eq!(cv.stats(), cb.stats());
    assert_eq!(cv.num_gates(), 6);
}

#[test]
fn analyze_accepts_bench_file() {
    let dir = std::env::temp_dir().join("statleak_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("tiny.bench");
    std::fs::write(&path, "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = NAND(a, b)\n").unwrap();
    let out = statleak(&["analyze", "--input", path.to_str().unwrap()]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("1 gates"));
}

#[test]
fn export_lib_emits_liberty() {
    let out = statleak(&["export-lib"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.starts_with("library (statleak100)"));
    assert!(text.contains("cell (INV_X1_LVT)"));
}

#[test]
fn unknown_command_fails_with_message() {
    let out = statleak(&["frobnicate"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));
}

#[test]
fn missing_input_reports_error() {
    let out = statleak(&["analyze"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--input"));
}

#[test]
fn unknown_flag_is_rejected_with_usage_exit_code() {
    // The `--clok-ps` typo case: a misspelled flag must fail loudly, not be
    // silently ignored.
    let out = statleak(&["analyze", "--input", "c17", "--clok-ps", "800"]);
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--clok-ps"), "{err}");
    assert!(err.contains("usage error"), "{err}");
}

#[test]
fn flag_missing_value_is_rejected() {
    let out = statleak(&["analyze", "--input"]);
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("requires a value"), "{err}");
}

#[test]
fn duplicate_flag_is_rejected() {
    let out = statleak(&["analyze", "--input", "c17", "--input", "c432"]);
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--input"), "{err}");
}

#[test]
fn invalid_flag_value_fails_before_analysis() {
    let out = statleak(&["analyze", "--input", "c17", "--clock-ps", "fast"]);
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("invalid value"), "{err}");
    // Fail-fast: the bad value must be rejected before any analysis output.
    assert!(!String::from_utf8_lossy(&out.stdout).contains("nominal delay"));
}

#[test]
fn missing_file_exits_with_io_code() {
    let out = statleak(&["analyze", "--input", "/nonexistent/nope.bench"]);
    assert_eq!(out.status.code(), Some(3));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("io error"), "{err}");
    assert!(err.contains("nope.bench"), "{err}");
}

#[test]
fn unknown_extension_exits_with_parse_code() {
    let dir = std::env::temp_dir().join("statleak_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("netlist.xyz");
    std::fs::write(&path, "not a netlist").unwrap();
    let out = statleak(&["analyze", "--input", path.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(4));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("neither a built-in benchmark"), "{err}");
}

#[test]
fn extension_dispatch_is_case_insensitive() {
    let dir = std::env::temp_dir().join("statleak_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("upper.BENCH");
    std::fs::write(&path, "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = NAND(a, b)\n").unwrap();
    let out = statleak(&["analyze", "--input", path.to_str().unwrap()]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn malformed_bench_file_exits_with_parse_code() {
    let dir = std::env::temp_dir().join("statleak_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("broken.bench");
    std::fs::write(&path, "INPUT(a)\ny = FROB(a)\n").unwrap();
    let out = statleak(&["analyze", "--input", path.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(4));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("parse error"), "{err}");
}

#[test]
fn out_of_range_option_is_a_usage_error() {
    let out = statleak(&["optimize", "--input", "c17", "--eta", "1.5"]);
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--eta"), "{err}");
}

#[test]
fn help_flag_succeeds_anywhere() {
    let out = statleak(&["analyze", "--help"]);
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("statleak <command>"));
}
