//! Cross-crate property tests on randomly generated circuits: invariants
//! that must hold for *any* design the workspace can express.

use proptest::prelude::*;
use statleak::leakage::LeakageAnalysis;
use statleak::netlist::generate::{generate, GenSpec};
use statleak::netlist::placement::Placement;
use statleak::ssta::Ssta;
use statleak::sta::Sta;
use statleak::tech::{Design, FactorModel, Technology, VariationConfig, VthClass};
use std::sync::Arc;

fn random_design(seed: u64, gates: usize, depth: usize) -> (Design, FactorModel) {
    let mut spec = GenSpec::new(format!("xprop{seed}_{gates}"), 6, 3, gates, depth);
    spec.seed = seed;
    let circuit = Arc::new(generate(&spec));
    let placement = Placement::by_level(&circuit);
    let tech = Technology::ptm100();
    let fm =
        FactorModel::build(&circuit, &placement, &tech, &VariationConfig::ptm100()).expect("fm");
    (Design::new(circuit, tech), fm)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The statistical mean circuit delay upper-bounds the deterministic
    /// delay on any design state.
    #[test]
    fn ssta_mean_bounds_sta(
        seed in 0u64..500,
        hvt_mask in any::<u64>(),
    ) {
        let (mut design, fm) = random_design(seed, 35, 7);
        let gates: Vec<_> = design.circuit().gates().collect();
        for (i, &g) in gates.iter().enumerate() {
            if (hvt_mask >> (i % 64)) & 1 == 1 {
                design.set_vth(g, VthClass::High);
            }
        }
        let det = Sta::analyze(&design).circuit_delay();
        let stat = Ssta::analyze(&design, &fm).circuit_delay().mean;
        prop_assert!(stat >= det - 1e-9, "SSTA mean {stat} < STA {det}");
    }

    /// Chip-level leakage coefficient of variation is always below the
    /// single-gate CV (summation averages the independent parts).
    #[test]
    fn chip_cv_below_gate_cv(seed in 0u64..500) {
        let (design, fm) = random_design(seed, 40, 6);
        let leak = LeakageAnalysis::analyze(&design, &fm);
        let total = leak.total_current();
        let g = design.circuit().gates().next().unwrap();
        let gate = statleak::leakage::gate_leakage(&design, &fm, g).to_lognormal();
        let chip_cv = total.std() / total.mean();
        let gate_cv = gate.std() / gate.mean();
        prop_assert!(chip_cv <= gate_cv + 1e-12);
    }

    /// Swapping any single gate to high Vth: total leakage drops, circuit
    /// delay does not decrease.
    #[test]
    fn single_vth_swap_tradeoff(seed in 0u64..500, gi in 0usize..40) {
        let (mut design, fm) = random_design(seed, 40, 6);
        let d0 = Sta::analyze(&design).circuit_delay();
        let l0 = LeakageAnalysis::analyze(&design, &fm).mean_total_current();
        let gates: Vec<_> = design.circuit().gates().collect();
        design.set_vth(gates[gi % gates.len()], VthClass::High);
        let d1 = Sta::analyze(&design).circuit_delay();
        let l1 = LeakageAnalysis::analyze(&design, &fm).mean_total_current();
        prop_assert!(l1 < l0);
        prop_assert!(d1 >= d0 - 1e-9);
    }

    /// Upsizing any single gate never increases its own delay-through by
    /// more than loading effects allow: the circuit delay change is
    /// bounded and the total width increases by exactly the step.
    #[test]
    fn single_upsize_accounting(seed in 0u64..500, gi in 0usize..40) {
        let (mut design, fm) = random_design(seed, 40, 6);
        let _ = &fm;
        let w0 = design.total_width();
        let gates: Vec<_> = design.circuit().gates().collect();
        let g = gates[gi % gates.len()];
        let old = design.size(g);
        if let Some(up) = design.tech().size_up(old) {
            design.set_size(g, up);
            prop_assert!((design.total_width() - (w0 + up - old)).abs() < 1e-9);
        }
    }

    /// Yield from SSTA matches the Gaussian of the circuit-delay canonical.
    #[test]
    fn yield_matches_canonical_gaussian(seed in 0u64..500, k in 0.8..1.4f64) {
        let (design, fm) = random_design(seed, 30, 6);
        let ssta = Ssta::analyze(&design, &fm);
        let cd = ssta.circuit_delay();
        let t = k * cd.mean;
        let expect = cd.to_normal().cdf(t);
        prop_assert!((ssta.timing_yield(t) - expect).abs() < 1e-12);
    }
}
