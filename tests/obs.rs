//! Observability invariants: instrumentation must never perturb results.
//!
//! The whole stack is traced (spans in ssta/sta/opt/mc/flows, counters and
//! histograms everywhere), so the load-bearing guarantee is that a run with
//! any sink installed — including none — produces byte-for-byte the same
//! analysis outcome. These tests exercise every [`obs::SinkSpec`] variant
//! against the same flow, plus the `statleak trace` CLI surface.

use statleak::core::flows::{self, FlowConfig};
use statleak::engine::json::Json;
use statleak::obs;
use std::process::Command;

fn outcome_under(sinks: &[obs::SinkSpec]) -> flows::ComparisonOutcome {
    obs::install(sinks).expect("sink install");
    let cfg = FlowConfig::builder("c17")
        .mc_samples(0)
        .build()
        .expect("valid config");
    let setup = flows::prepare(&cfg).expect("builtin benchmark");
    let mut outcome = flows::run_comparison_on(&setup, &cfg).expect("flow runs");
    obs::flush();
    // Wall-clock fields are nondeterministic by nature; zero them so the
    // comparison checks only the analysis results.
    outcome.baseline.runtime_s = 0.0;
    outcome.deterministic.runtime_s = 0.0;
    outcome.statistical.runtime_s = 0.0;
    outcome
}

/// One test (not four) so the process-global sink is never contended.
#[test]
fn results_are_identical_across_every_sink() {
    let trace_path =
        std::env::temp_dir().join(format!("statleak-obs-{}.ndjson", std::process::id()));

    let disabled = outcome_under(&[obs::SinkSpec::Disabled]);
    let stderr_pretty = outcome_under(&[obs::SinkSpec::StderrPretty]);
    let ndjson = outcome_under(&[obs::SinkSpec::NdjsonFile(trace_path.clone())]);
    let in_memory = outcome_under(&[obs::SinkSpec::InMemory]);
    let records = obs::take_memory();

    assert_eq!(disabled, stderr_pretty, "stderr sink perturbed the flow");
    assert_eq!(disabled, ndjson, "ndjson sink perturbed the flow");
    assert_eq!(disabled, in_memory, "in-memory sink perturbed the flow");

    // The instrumented sinks actually observed the run.
    assert!(!records.is_empty(), "in-memory sink captured no records");
    let text = std::fs::read_to_string(&trace_path).expect("trace file written");
    std::fs::remove_file(&trace_path).ok();
    assert!(!text.is_empty(), "ndjson trace is empty");
    for line in text.lines() {
        let parsed = Json::parse(line).unwrap_or_else(|e| panic!("bad NDJSON {line:?}: {e}"));
        match parsed {
            Json::Obj(fields) => assert!(
                fields.iter().any(|(k, _)| k == "t"),
                "record missing discriminant: {line}"
            ),
            other => panic!("NDJSON line is not an object: {other:?}"),
        }
    }

    // Spans named after the flow phases made it into the trace.
    assert!(text.contains(r#""name":"ssta.propagate""#), "{text}");
    assert!(text.contains(r#""name":"flow.statistical""#), "{text}");
}

#[test]
fn trace_subcommand_profiles_the_hot_path() {
    let trace_path =
        std::env::temp_dir().join(format!("statleak-cli-{}.ndjson", std::process::id()));
    let out = Command::new(env!("CARGO_BIN_EXE_statleak"))
        .args([
            "--trace",
            trace_path.to_str().unwrap(),
            "trace",
            "c432",
            "--top",
            "5",
        ])
        .output()
        .expect("trace runs");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);

    // Self-time table with the advertised columns.
    assert!(stdout.contains("self ms"), "{stdout}");
    assert!(stdout.contains("spans recorded"), "{stdout}");

    // The top self-time entry is one of the real hot paths: the margin
    // sweep's repeated sizing or the optimizer passes that dominate it.
    let top = stdout
        .lines()
        .skip_while(|l| !l.starts_with("span"))
        .nth(1)
        .expect("at least one profile row")
        .split_whitespace()
        .next()
        .expect("row has a span name")
        .to_string();
    let hot = [
        "sizing.for_yield",
        "sizing.for_delay",
        "opt.vth_pass",
        "opt.downsize_pass",
        "ssta.propagate",
    ];
    assert!(
        hot.contains(&top.as_str()),
        "unexpected top span {top}:\n{stdout}"
    );

    // Every NDJSON record parses; span records carry timing fields.
    let text = std::fs::read_to_string(&trace_path).expect("trace written");
    std::fs::remove_file(&trace_path).ok();
    let mut spans = 0;
    for line in text.lines() {
        let parsed = Json::parse(line).unwrap_or_else(|e| panic!("bad NDJSON {line:?}: {e}"));
        if line.contains(r#""t":"span""#) {
            spans += 1;
            let Json::Obj(fields) = parsed else {
                panic!("span record not an object")
            };
            for key in ["name", "id", "parent", "thread", "start_us", "dur_us"] {
                assert!(
                    fields.iter().any(|(k, _)| k == key),
                    "missing {key}: {line}"
                );
            }
        }
    }
    assert!(spans > 0, "no span records in the trace");
}

#[test]
fn bad_log_level_is_a_usage_error() {
    let out = Command::new(env!("CARGO_BIN_EXE_statleak"))
        .args(["--log-level", "verbose", "list"])
        .output()
        .expect("runs");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("log level"), "{stderr}");
}
