//! End-to-end tests of `statleak serve`: a real daemon process, real TCP
//! clients, busy backpressure, and a graceful SIGTERM drain.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

struct Daemon {
    child: Child,
    addr: String,
}

impl Daemon {
    /// Spawns `statleak serve` on an ephemeral port and reads the resolved
    /// address from its first stdout line.
    fn spawn(extra: &[&str]) -> Daemon {
        let mut child = Command::new(env!("CARGO_BIN_EXE_statleak"))
            .arg("serve")
            .args(["--addr", "127.0.0.1:0"])
            .args(extra)
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .expect("daemon starts");
        let stdout = child.stdout.take().expect("stdout piped");
        let mut line = String::new();
        BufReader::new(stdout)
            .read_line(&mut line)
            .expect("daemon announces its address");
        let addr = line
            .trim()
            .strip_prefix("serving on ")
            .unwrap_or_else(|| panic!("unexpected announcement: {line:?}"))
            .to_string();
        Daemon { child, addr }
    }

    fn request(&self, line: &str) -> String {
        request_at(&self.addr, line)
    }

    /// Polls the inline `stats` op until `predicate` holds on the raw
    /// response (control ops stay responsive while workers are busy).
    fn wait_for_stats(&self, predicate: impl Fn(&str) -> bool, what: &str) {
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            let stats = self.request(r#"{"id":"poll","op":"stats"}"#);
            if predicate(&stats) {
                return;
            }
            assert!(
                Instant::now() < deadline,
                "timed out waiting for {what}; last stats: {stats}"
            );
            std::thread::sleep(Duration::from_millis(50));
        }
    }

    fn sigterm(&self) {
        let delivered = Command::new("kill")
            .args(["-TERM", &self.child.id().to_string()])
            .status()
            .expect("kill runs");
        assert!(delivered.success(), "SIGTERM delivered");
    }

    /// Hard-kills the daemon (SIGKILL — no drain, no atexit, nothing),
    /// simulating a crash or OOM kill.
    fn sigkill(mut self) {
        self.child.kill().expect("SIGKILL delivered");
        self.child.wait().expect("killed child reaped");
    }

    /// Waits for the daemon to exit, asserting a clean (exit 0) drain.
    fn assert_clean_exit(mut self) {
        let start = Instant::now();
        let deadline = Duration::from_secs(120);
        loop {
            if let Some(status) = self.child.try_wait().expect("wait") {
                assert!(
                    status.success(),
                    "daemon drains and exits 0, got {status:?}"
                );
                return;
            }
            assert!(
                start.elapsed() < deadline,
                "daemon did not exit within {deadline:?}"
            );
            std::thread::sleep(Duration::from_millis(50));
        }
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn request_at(addr: &str, line: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .write_all(format!("{line}\n").as_bytes())
        .expect("send");
    let mut response = String::new();
    BufReader::new(stream)
        .read_line(&mut response)
        .expect("receive");
    response.trim().to_string()
}

/// Like `request_at`, but tolerates the daemon dying mid-request (the
/// connection may reset when the process is SIGKILLed under it).
fn request_ignoring_failure(addr: &str, line: &str) {
    if let Ok(mut stream) = TcpStream::connect(addr) {
        let _ = stream.write_all(format!("{line}\n").as_bytes());
        let mut response = String::new();
        let _ = BufReader::new(stream).read_line(&mut response);
    }
}

#[test]
fn serve_answers_requests_and_reports_cache_stats() {
    let daemon = Daemon::spawn(&["--workers", "2"]);

    let pong = daemon.request(r#"{"id":"p1","op":"ping"}"#);
    assert_eq!(
        pong,
        r#"{"id":"p1","ok":true,"op":"ping","data":{"pong":true}}"#
    );

    let first = daemon.request(r#"{"id":1,"op":"comparison","benchmark":"c17","mc_samples":0}"#);
    assert!(first.contains(r#""ok":true"#), "{first}");
    let second = daemon.request(r#"{"id":1,"op":"comparison","benchmark":"c17","mc_samples":0}"#);
    assert_eq!(first, second, "warm repeat must be byte-identical");

    let stats = daemon.request(r#"{"id":2,"op":"stats"}"#);
    assert!(stats.contains(r#""hits":1"#), "{stats}");
    assert!(stats.contains(r#""misses":1"#), "{stats}");
    assert!(stats.contains(r#""served":2"#), "{stats}");

    // Typed protocol errors with stable classes.
    let unknown = daemon.request(r#"{"id":3,"op":"comparison","benchmark":"c9999"}"#);
    assert!(
        unknown.contains(r#""class":"unknown-benchmark""#),
        "{unknown}"
    );
    let malformed = daemon.request("{not json");
    assert!(malformed.contains(r#""class":"usage""#), "{malformed}");

    daemon.sigterm();
    daemon.assert_clean_exit();
}

#[test]
fn serve_sheds_load_with_busy_and_drains_in_flight_work_on_sigterm() {
    // One worker, queue depth one: with the worker occupied and the queue
    // full, the next request must be rejected as busy instead of waiting
    // unboundedly.
    let daemon = Daemon::spawn(&["--workers", "1", "--queue-depth", "1"]);
    let addr = daemon.addr.clone();

    // Occupy the worker with a slow request (large Monte Carlo run:
    // ~10 s in a debug build) and wait until it has been dequeued.
    let slow = r#"{"id":"slow","op":"mc_validation","benchmark":"c880","mc_samples":20000}"#;
    let occupant = {
        let addr = addr.clone();
        let slow = slow.to_string();
        std::thread::spawn(move || request_at(&addr, &slow))
    };
    daemon.wait_for_stats(
        |s| s.contains(r#""connections":"#) && s.contains(r#""queued":0"#),
        "slow request to arrive",
    );
    std::thread::sleep(Duration::from_millis(500)); // worker dequeue latency

    // Fill the single queue slot behind it and wait until it is visible.
    let queued = {
        let addr = addr.clone();
        std::thread::spawn(move || {
            request_at(
                &addr,
                r#"{"id":"queued","op":"comparison","benchmark":"c17","mc_samples":0}"#,
            )
        })
    };
    daemon.wait_for_stats(|s| s.contains(r#""queued":1"#), "queue to fill");

    // The high-water mark is hit: one more analysis request is shed.
    let busy =
        daemon.request(r#"{"id":"extra","op":"comparison","benchmark":"c17","mc_samples":0}"#);
    assert!(busy.contains(r#""class":"busy""#), "{busy}");
    assert!(busy.contains(r#""id":"extra""#), "{busy}");
    // Control ops still answer inline while the pool is saturated.
    assert!(daemon
        .request(r#"{"id":"p2","op":"ping"}"#)
        .contains(r#""pong":true"#));

    // SIGTERM now: both the in-flight and the queued request must still
    // complete with full responses before the process exits 0.
    daemon.sigterm();
    let slow_response = occupant.join().expect("slow client");
    assert!(slow_response.contains(r#""ok":true"#), "{slow_response}");
    assert!(slow_response.contains(r#""id":"slow""#), "{slow_response}");
    let queued_response = queued.join().expect("queued client");
    assert!(
        queued_response.contains(r#""ok":true"#),
        "{queued_response}"
    );
    daemon.assert_clean_exit();
}

#[test]
fn library_field_keys_distinct_sessions() {
    let daemon = Daemon::spawn(&["--workers", "1"]);
    let lib = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("libs")
        .join("statleak_mini.lib");
    let lib = lib.to_str().expect("utf-8 path");

    let builtin = daemon.request(r#"{"id":1,"op":"comparison","benchmark":"c17","mc_samples":0}"#);
    assert!(builtin.contains(r#""ok":true"#), "{builtin}");
    let ss = daemon.request(&format!(
        r#"{{"id":1,"op":"comparison","benchmark":"c17","mc_samples":0,"library":"{lib},corner=ss"}}"#
    ));
    assert!(ss.contains(r#""ok":true"#), "{ss}");
    assert_ne!(
        builtin, ss,
        "library must change the session, not hit its cache"
    );
    let ff = daemon.request(&format!(
        r#"{{"id":1,"op":"comparison","benchmark":"c17","mc_samples":0,"library":"{lib},corner=ff"}}"#
    ));
    assert_ne!(ss, ff, "corners must not alias one session");

    // Explicit "builtin" spells the default and must hit the warm entry.
    let warm = daemon.request(
        r#"{"id":1,"op":"comparison","benchmark":"c17","mc_samples":0,"library":"builtin"}"#,
    );
    assert_eq!(builtin, warm, "explicit builtin is the default library");
    let stats = daemon.request(r#"{"id":2,"op":"stats"}"#);
    assert!(stats.contains(r#""misses":3"#), "{stats}");
    assert!(stats.contains(r#""hits":1"#), "{stats}");

    // Liberty failures surface the typed error classes.
    let bad = daemon.request(&format!(
        r#"{{"id":3,"op":"comparison","benchmark":"c17","mc_samples":0,"library":"{lib},corner=nope"}}"#
    ));
    assert!(bad.contains(r#""class":"library-corner""#), "{bad}");
    let gone = daemon.request(
        r#"{"id":4,"op":"comparison","benchmark":"c17","mc_samples":0,"library":"/no/such.lib"}"#,
    );
    assert!(gone.contains(r#""class":"library-io""#), "{gone}");

    daemon.sigterm();
    daemon.assert_clean_exit();
}

#[test]
fn call_round_trips_and_maps_exit_codes() {
    let daemon = Daemon::spawn(&["--workers", "1"]);

    let ok = Command::new(env!("CARGO_BIN_EXE_statleak"))
        .args([
            "call",
            "--addr",
            &daemon.addr,
            "--json",
            r#"{"id":9,"op":"comparison","benchmark":"c17","mc_samples":0}"#,
        ])
        .output()
        .expect("call runs");
    assert!(
        ok.status.success(),
        "{}",
        String::from_utf8_lossy(&ok.stderr)
    );
    let body = String::from_utf8_lossy(&ok.stdout);
    assert!(body.contains(r#""stat_extra_saving""#), "{body}");

    // An unknown benchmark maps onto the local usage exit code (2).
    let bad = Command::new(env!("CARGO_BIN_EXE_statleak"))
        .args([
            "call",
            "--addr",
            &daemon.addr,
            "--json",
            r#"{"id":10,"op":"comparison","benchmark":"c9999"}"#,
        ])
        .output()
        .expect("call runs");
    assert_eq!(bad.status.code(), Some(2));

    daemon.sigterm();
    daemon.assert_clean_exit();
}

#[test]
fn kill_dash_nine_restart_against_same_store_comes_back_warm() {
    let store_dir = std::env::temp_dir().join(format!(
        "statleak-serve-kill9-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&store_dir);
    let store_flag = store_dir.to_string_lossy().into_owned();

    // First daemon: compute one result cold; it must land in the store.
    let line = r#"{"id":"w","op":"comparison","benchmark":"c17","mc_samples":0}"#;
    let first = Daemon::spawn(&["--workers", "2", "--store-dir", &store_flag]);
    let cold = first.request(line);
    assert!(cold.contains(r#""ok":true"#), "{cold}");
    assert!(
        !cold.contains(r#""source":"store""#),
        "first answer is computed, not loaded: {cold}"
    );
    first.wait_for_stats(|s| s.contains(r#""stores":1"#), "result to be persisted");

    // Put the daemon under load and SIGKILL it mid-flight: no drain, no
    // graceful close. The store must survive on the strength of its
    // atomic write discipline alone.
    let addr = first.addr.clone();
    let in_flight = std::thread::spawn(move || {
        request_ignoring_failure(
            &addr,
            r#"{"id":"doomed","op":"mc_validation","benchmark":"c880","mc_samples":20000}"#,
        );
    });
    std::thread::sleep(Duration::from_millis(300));
    first.sigkill();
    in_flight
        .join()
        .expect("in-flight client survives the kill");

    // Restarted daemon on the same directory: the very first repeat is a
    // store hit — answered from disk with no session rebuild.
    let second = Daemon::spawn(&["--workers", "2", "--store-dir", &store_flag]);
    let warm = second.request(line);
    assert!(warm.contains(r#""ok":true"#), "{warm}");
    assert!(
        warm.contains(r#""source":"store""#),
        "first repeated request after restart must be served from the store: {warm}"
    );
    let stats = second.request(r#"{"id":"s","op":"stats"}"#);
    // Store counters: one disk hit, nothing re-persisted.
    assert!(stats.contains(r#""hits":1"#), "{stats}");
    assert!(stats.contains(r#""stores":0"#), "{stats}");
    // Engine counters: no session was built or even looked up.
    assert!(stats.contains(r#""hits":0"#), "{stats}");
    assert!(stats.contains(r#""misses":0"#), "{stats}");

    second.sigterm();
    second.assert_clean_exit();
    let _ = std::fs::remove_dir_all(&store_dir);
}

#[test]
fn batch_requests_fan_out_over_one_session_end_to_end() {
    let daemon = Daemon::spawn(&["--workers", "2"]);

    let batch = daemon.request(
        r#"{"id":"b","op":"batch","benchmark":"c17","mc_samples":0,"items":[{"op":"comparison"},{"op":"distribution","bins":10},{"op":"sweep","axis":"slack_factor","values":[1.2,1.4]},{"op":"mc_validation"}]}"#,
    );
    assert!(batch.contains(r#""ok":true"#), "{batch}");
    assert!(batch.contains(r#""count":4"#), "{batch}");
    assert!(batch.contains(r#""item_errors":0"#), "{batch}");
    // Every item carries its own payload in order.
    assert!(batch.contains(r#""stat_extra_saving""#), "{batch}");
    assert!(batch.contains(r#""bins""#), "{batch}");

    let stats = daemon.request(r#"{"id":"s","op":"stats"}"#);
    assert!(stats.contains(r#""batch":1"#), "{stats}");
    // Four items, one config: the session was prepared exactly once.
    assert!(stats.contains(r#""misses":1"#), "{stats}");

    // Routing metadata is available without a server-side ring.
    let routed = daemon.request(
        r#"{"id":"r","op":"route","benchmark":"c17","mc_samples":0,"ring":["n1:7878","n2:7878","n3:7878"]}"#,
    );
    assert!(routed.contains(r#""ok":true"#), "{routed}");
    assert!(routed.contains(r#""shard":"n"#), "{routed}");
    assert!(routed.contains(r#""session_key""#), "{routed}");

    daemon.sigterm();
    daemon.assert_clean_exit();
}

/// Unescapes the `text` field of a `metrics_text` response and returns the
/// value of the named Prometheus sample, panicking when absent.
fn prom_value(response: &str, sample: &str) -> f64 {
    let start = response
        .find(r#""text":""#)
        .unwrap_or_else(|| panic!("no text field in {response}"))
        + r#""text":""#.len();
    let body = &response[start..];
    let end = body.find('"').expect("text field terminates");
    let text = body[..end].replace("\\n", "\n");
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix(sample) {
            if let Some(v) = rest.split_whitespace().next_back() {
                return v.parse().unwrap_or_else(|_| panic!("bad sample: {line}"));
            }
        }
    }
    panic!("sample {sample} not found in:\n{text}");
}

#[test]
fn metrics_ops_expose_prometheus_text_with_monotone_counters() {
    let daemon = Daemon::spawn(&["--workers", "1"]);

    // One analysis request so the served counter is non-zero.
    let first = daemon.request(r#"{"id":1,"op":"comparison","benchmark":"c17","mc_samples":0}"#);
    assert!(first.contains(r#""ok":true"#), "{first}");

    // JSON metrics op exposes the counter map inline.
    let json = daemon.request(r#"{"id":2,"op":"metrics"}"#);
    assert!(json.contains(r#""counters""#), "{json}");
    assert!(json.contains(r#""serve_served_total":1"#), "{json}");

    // Prometheus exposition: typed, prefixed, parseable samples.
    let text1 = daemon.request(r#"{"id":3,"op":"metrics_text"}"#);
    assert!(
        text1.contains(r#""content_type":"text/plain; version=0.0.4""#),
        "{text1}"
    );
    assert!(
        text1.contains(r"# TYPE statleak_serve_served_total counter"),
        "{text1}"
    );
    assert!(
        text1.contains(r"# TYPE statleak_serve_queue_wait_ns histogram"),
        "{text1}"
    );
    let served1 = prom_value(&text1, "statleak_serve_served_total");
    let requests1 = prom_value(&text1, "statleak_serve_requests_total");
    assert_eq!(served1, 1.0, "{text1}");

    // A second analysis request: counters must be monotone non-decreasing,
    // and the ones it touches strictly increase.
    let second = daemon.request(r#"{"id":4,"op":"comparison","benchmark":"c17","mc_samples":0}"#);
    assert!(second.contains(r#""ok":true"#), "{second}");
    let text2 = daemon.request(r#"{"id":5,"op":"metrics_text"}"#);
    let served2 = prom_value(&text2, "statleak_serve_served_total");
    let requests2 = prom_value(&text2, "statleak_serve_requests_total");
    assert_eq!(served2, 2.0, "{text2}");
    assert!(requests2 > requests1, "{requests1} -> {requests2}");

    // The stats op reports per-op request counts and the queue high-water
    // mark alongside the existing cache/server sections.
    let stats = daemon.request(r#"{"id":6,"op":"stats"}"#);
    assert!(stats.contains(r#""ops""#), "{stats}");
    assert!(stats.contains(r#""comparison":2"#), "{stats}");
    assert!(stats.contains(r#""metrics_text":2"#), "{stats}");
    assert!(stats.contains(r#""max_queued":"#), "{stats}");

    daemon.sigterm();
    daemon.assert_clean_exit();
}
