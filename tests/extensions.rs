//! Integration coverage of the extension features through the facade:
//! every post-paper capability exercised end-to-end on one design.

use statleak::core::joint::JointYield;
use statleak::core::report::timing_report;
use statleak::leakage::LeakageAnalysis;
use statleak::mc::{AbbConfig, McConfig, MonteCarlo};
use statleak::netlist::{benchmarks, placement::Placement, verilog};
use statleak::opt::{size_lagrangian, sizing, statistical_flow, LrConfig, StatisticalOptimizer};
use statleak::ssta::Ssta;
use statleak::sta::{SlewSta, Sta};
use statleak::tech::{
    liberty,
    wire::{wire_caps_from_placement, WireModel},
    Design, FactorModel, Technology, VariationConfig, VthClass,
};
use std::sync::Arc;

fn setup(name: &str) -> (Design, FactorModel, Placement) {
    let circuit = Arc::new(benchmarks::by_name(name).expect("known"));
    let placement = Placement::by_level(&circuit);
    let tech = Technology::ptm100();
    let fm =
        FactorModel::build(&circuit, &placement, &tech, &VariationConfig::ptm100()).expect("fm");
    (Design::new(circuit, tech), fm, placement)
}

#[test]
fn triple_vth_flow_through_facade() {
    let (base, fm, _) = setup("c432");
    let dmin = sizing::min_delay_estimate(&base);
    let out = statistical_flow(
        &base,
        &fm,
        &StatisticalOptimizer::new(dmin * 1.15)
            .with_yield_target(0.95)
            .with_triple_vth(),
    )
    .expect("flow");
    let gates = out.design.circuit().num_gates();
    let counted = out.design.vth_count(VthClass::Low)
        + out.design.vth_count(VthClass::Mid)
        + out.design.vth_count(VthClass::High);
    assert_eq!(counted, gates);
    assert!(out.report.final_yield >= 0.95 - 1e-9);
}

#[test]
fn joint_yield_and_abb_compose() {
    let (mut d, fm, _) = setup("c499");
    let dmin = sizing::min_delay_estimate(&d);
    sizing::size_for_yield(&mut d, &fm, dmin * 1.2, 0.95).expect("sizable");
    let j = JointYield::analyze(&d, &fm);
    let ssta = Ssta::analyze(&d, &fm);
    let t = ssta.clock_for_yield(0.90);
    let leak = LeakageAnalysis::analyze(&d, &fm).total_current();
    let joint = j.joint_yield(t, leak.quantile(0.95));
    assert!(joint > 0.8 && joint < 0.95);

    let abb = MonteCarlo::new(McConfig {
        samples: 400,
        ..Default::default()
    })
    .run_abb(&d, &fm, &AbbConfig::standard(t));
    assert!(abb.yield_with_abb() >= abb.yield_without_abb());
}

#[test]
fn wire_loads_flow_through_all_analyses() {
    let (mut d, fm, placement) = setup("c880");
    let blind_delay = Sta::analyze(&d).circuit_delay();
    let caps = wire_caps_from_placement(d.circuit(), &placement, &WireModel::ptm100());
    d.set_wire_caps(caps);
    // Deterministic, slew-aware, and statistical analyses all see the load.
    let loaded = Sta::analyze(&d).circuit_delay();
    assert!(loaded > blind_delay * 1.5);
    assert!(SlewSta::analyze(&d).circuit_delay() > loaded);
    assert!(Ssta::analyze(&d, &fm).circuit_delay().mean > blind_delay * 1.5);
}

#[test]
fn lr_sizer_feeds_statistical_optimizer() {
    let (mut d, fm, _) = setup("c432");
    let dmin = sizing::min_delay_estimate(&d);
    let t = dmin * 1.2;
    size_lagrangian(&mut d, &LrConfig::new(t)).expect("LR sizes");
    // LR output is a legal starting point for the statistical optimizer.
    let r = StatisticalOptimizer::new(t)
        .with_yield_target(0.5)
        .optimize(&mut d, &fm);
    assert!(r.final_objective <= r.initial_objective);
}

#[test]
fn interchange_formats_agree() {
    let (d, _, _) = setup("c499");
    // Liberty describes the same cells the timing engine uses.
    let cells = liberty::parse(&liberty::export(d.tech(), "x")).expect("liberty");
    // Most of the netlist's (kind, fanin) bindings exist in the library
    // (degenerate bindings like a deduplicated single-input NAND are
    // outside the characterized set).
    let gates: Vec<_> = d.circuit().gates().collect();
    let covered = gates
        .iter()
        .filter(|&&g| {
            let node = d.circuit().node(g);
            cells
                .iter()
                .any(|c| c.kind == node.kind && c.fanin == node.fanin.len())
        })
        .count();
    assert!(
        covered * 10 >= gates.len() * 8,
        "library covers {covered}/{} gates",
        gates.len()
    );
    // Verilog round trip preserves the timing result exactly.
    let c2 = verilog::parse(&verilog::write(d.circuit())).expect("verilog");
    let d2 = Design::new(Arc::new(c2), d.tech().clone());
    assert!((Sta::analyze(&d2).circuit_delay() - Sta::analyze(&d).circuit_delay()).abs() < 1e-9);
}

#[test]
fn sequential_benchmark_full_stack() {
    let (circuit, _) = benchmarks::sequential_by_name("s526").expect("known");
    let circuit = Arc::new(circuit);
    let placement = Placement::by_level(&circuit);
    let tech = Technology::ptm100();
    let fm =
        FactorModel::build(&circuit, &placement, &tech, &VariationConfig::ptm100()).expect("fm");
    let design = Design::new(circuit, tech);
    let sta = Sta::analyze(&design);
    let report = timing_report(&design, &sta, sta.circuit_delay() * 1.1, 2);
    assert!(report.contains("Path 2"));
    // Importance sampling resolves a 3-sigma tail on the FF-cut core.
    let ssta = Ssta::analyze(&design, &fm);
    let t = ssta.clock_for_yield(0.9986);
    let (est, _) = MonteCarlo::new(McConfig {
        samples: 1500,
        ..Default::default()
    })
    .tail_miss_probability(&design, &fm, t, 2.0);
    assert!(est > 0.0 && est < 0.02, "tail estimate {est}");
}
