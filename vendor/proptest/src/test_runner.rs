//! Config and deterministic RNG for the vendored proptest shim.

/// Per-test configuration. Only `cases` is honoured by the shim.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` generated inputs.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Matches upstream's default case count.
        Self { cases: 256 }
    }
}

/// Deterministic PRNG driving strategy sampling (xoshiro256++).
///
/// Seeded from the test's module path + name so every run of a given test
/// sees the same case sequence — failures reproduce without regression
/// files.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl TestRng {
    /// RNG for a named test (FNV-1a hash of the name as the seed).
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for byte in name.bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self::seed_from_u64(h)
    }

    /// RNG from an explicit 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        Self {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, n)` without modulo bias.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(n as u128);
            if (m as u64) >= n.wrapping_neg() % n {
                return (m >> 64) as u64;
            }
        }
    }
}
