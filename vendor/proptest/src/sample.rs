//! `prop::sample` — uniform selection from a fixed set.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy that picks uniformly from a list of values.
#[derive(Debug, Clone)]
pub struct Select<T: Clone>(Vec<T>);

impl<T: Clone> Strategy for Select<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        self.0[rng.below(self.0.len() as u64) as usize].clone()
    }
}

/// Uniform choice from `options` (must be non-empty).
pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
    assert!(!options.is_empty(), "select() needs at least one option");
    Select(options)
}
