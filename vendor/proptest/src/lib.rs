//! Offline API-compatible subset of the `proptest` crate.
//!
//! This workspace builds without crates.io access, so the slice of the
//! `proptest` 1.x API the repo uses is vendored here and wired in through
//! `[patch.crates-io]`. Differences from upstream, all deliberate:
//!
//! * **No shrinking.** A failing case panics with the generated inputs
//!   printed; the RNG is seeded deterministically from the test's module
//!   path + name, so failures reproduce run-to-run.
//! * **`prop_assume!` skips the case** instead of resampling; assumptions
//!   in this workspace reject rarely, so case counts stay meaningful.
//! * `.proptest-regressions` files are ignored.
//!
//! Supported surface: `proptest!` (with optional
//! `#![proptest_config(...)]`), `prop_assert!`, `prop_assert_eq!`,
//! `prop_assert_ne!`, `prop_assume!`, range strategies, tuple strategies,
//! `any::<T>()`, `Just`, `prop::collection::vec`, `prop::sample::select`,
//! `.prop_map`, `.prop_flat_map`.

pub mod strategy;
pub mod test_runner;

/// Strategy modules namespaced as `prop::...` (mirrors upstream).
pub mod collection;
pub mod sample;

/// Arbitrary-value strategies (`any::<T>()`).
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for "any value of `T`" — uniform over the type's range.
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(core::marker::PhantomData<T>);

    /// Returns the [`Any`] strategy for `T`.
    pub fn any<T>() -> Any<T>
    where
        Any<T>: Strategy,
    {
        Any(core::marker::PhantomData)
    }

    macro_rules! any_impl {
        ($($t:ty => $sample:expr),* $(,)?) => {$(
            impl Strategy for Any<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let f: fn(&mut TestRng) -> $t = $sample;
                    f(rng)
                }
            }
        )*};
    }

    any_impl! {
        bool => |rng| rng.next_u64() & 1 == 1,
        u8 => |rng| rng.next_u64() as u8,
        u16 => |rng| rng.next_u64() as u16,
        u32 => |rng| (rng.next_u64() >> 32) as u32,
        u64 => |rng| rng.next_u64(),
        usize => |rng| rng.next_u64() as usize,
        i8 => |rng| rng.next_u64() as i8,
        i16 => |rng| rng.next_u64() as i16,
        i32 => |rng| (rng.next_u64() >> 32) as i32,
        i64 => |rng| rng.next_u64() as i64,
        isize => |rng| rng.next_u64() as isize,
        f64 => |rng| rng.unit_f64(),
        f32 => |rng| rng.unit_f64() as f32,
    }
}

/// The conventional glob-import surface: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// Namespace alias so `prop::collection::vec` / `prop::sample::select`
    /// resolve after a prelude glob import.
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*)
    };
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*)
    };
}

/// Skips the current case when the assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Ok(());
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Ok(());
        }
    };
}

/// Declares property tests. Mirrors the upstream grammar for the subset
/// used in this workspace:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///     #[test]
///     fn prop(x in 0.0..1.0f64, n in 1usize..8) { prop_assert!(x < n as f64); }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            cfg = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

/// Internal expansion of [`proptest!`]: one plain `#[test]` fn per
/// property, looping over generated cases.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (cfg = ($cfg:expr); $(
        $(#[$attr:meta])*
        fn $name:ident( $($arg:pat in $strat:expr),* $(,)? ) $body:block
    )*) => {$(
        $(#[$attr])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::for_test(concat!(
                module_path!(),
                "::",
                stringify!($name)
            ));
            for case in 0..config.cases {
                $(
                    let $arg = $crate::strategy::Strategy::sample(&$strat, &mut rng);
                )*
                let outcome: ::core::result::Result<(), ()> = (|| {
                    $body
                    #[allow(unreachable_code)]
                    ::core::result::Result::Ok(())
                })();
                // `Err` is unused by the shim macros (prop_assume early-
                // returns Ok; prop_assert panics), but keep the plumbing so
                // bodies can also `?` a Result if they want.
                if outcome.is_err() {
                    panic!("property {} failed on case {case}", stringify!($name));
                }
            }
        }
    )*};
}
