//! The [`Strategy`] trait and the strategy implementations the workspace
//! uses: numeric ranges, tuples, `Just`, string char-class patterns, and
//! the `prop_map` / `prop_flat_map` combinators.

use crate::test_runner::TestRng;

/// A generator of values for property tests.
///
/// Unlike upstream there is no value tree / shrinking: `sample` directly
/// yields a value.
pub trait Strategy {
    /// Type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Builds a dependent strategy from each generated value.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, T, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;
    fn sample(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// --- numeric ranges ------------------------------------------------------

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty f64 range strategy");
        let v = self.start + (self.end - self.start) * rng.unit_f64();
        if v >= self.end {
            f64::from_bits(self.end.to_bits() - 1)
        } else {
            v
        }
    }
}

impl Strategy for core::ops::RangeInclusive<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        let (a, b) = (*self.start(), *self.end());
        assert!(a <= b, "empty f64 range strategy");
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
        a + (b - a) * u
    }
}

impl Strategy for core::ops::Range<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty f32 range strategy");
        let v = self.start + (self.end - self.start) * rng.unit_f64() as f32;
        if v >= self.end {
            f32::from_bits(self.end.to_bits() - 1)
        } else {
            v
        }
    }
}

macro_rules! int_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty integer range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (a, b) = (*self.start(), *self.end());
                assert!(a <= b, "empty integer range strategy");
                let span = (b as i128 - a as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                a.wrapping_add(rng.below(span + 1) as $t)
            }
        }
    )*};
}

int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// --- tuples --------------------------------------------------------------

macro_rules! tuple_strategies {
    ($(($($s:ident.$idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

// --- string patterns -----------------------------------------------------

/// `&str` acts as a string strategy, as in upstream, for the regex subset
/// the workspace uses: a sequence of atoms (a `[...]` character class or a
/// literal character) each with an optional `{n}` / `{m,n}` repetition.
impl Strategy for &str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        let atoms = parse_pattern(self);
        let mut out = String::new();
        for atom in &atoms {
            let n = if atom.min == atom.max {
                atom.min
            } else {
                atom.min + rng.below((atom.max - atom.min + 1) as u64) as usize
            };
            for _ in 0..n {
                let i = rng.below(atom.chars.len() as u64) as usize;
                out.push(atom.chars[i]);
            }
        }
        out
    }
}

struct Atom {
    chars: Vec<char>,
    min: usize,
    max: usize,
}

fn parse_pattern(pattern: &str) -> Vec<Atom> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut atoms = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let set = if chars[i] == '[' {
            let mut set = Vec::new();
            i += 1;
            while i < chars.len() && chars[i] != ']' {
                let c = if chars[i] == '\\' {
                    i += 1;
                    chars[i]
                } else {
                    chars[i]
                };
                // `a-z` range (a trailing `-` is a literal dash).
                if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                    let hi = chars[i + 2];
                    assert!(c <= hi, "inverted range in pattern {pattern:?}");
                    for v in c as u32..=hi as u32 {
                        set.push(char::from_u32(v).expect("valid char range"));
                    }
                    i += 3;
                } else {
                    set.push(c);
                    i += 1;
                }
            }
            assert!(i < chars.len(), "unterminated class in pattern {pattern:?}");
            i += 1; // consume ']'
            set
        } else {
            let c = if chars[i] == '\\' {
                i += 1;
                chars[i]
            } else {
                chars[i]
            };
            i += 1;
            vec![c]
        };
        let (min, max) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .expect("unterminated repetition")
                + i;
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse().expect("repetition lower bound"),
                    hi.trim().parse().expect("repetition upper bound"),
                ),
                None => {
                    let n = body.trim().parse().expect("repetition count");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        assert!(!set.is_empty(), "empty character class in {pattern:?}");
        assert!(min <= max, "inverted repetition in {pattern:?}");
        atoms.push(Atom {
            chars: set,
            min,
            max,
        });
    }
    atoms
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn string_pattern_respects_class_and_length() {
        let mut rng = TestRng::seed_from_u64(3);
        let strat = "[a-c0-2,\" .%-]{0,20}";
        for _ in 0..500 {
            let s = strat.sample(&mut rng);
            assert!(s.chars().count() <= 20);
            for c in s.chars() {
                assert!(
                    matches!(c, 'a'..='c' | '0'..='2' | ',' | '"' | ' ' | '.' | '%' | '-'),
                    "unexpected char {c:?}"
                );
            }
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::seed_from_u64(5);
        for _ in 0..5000 {
            let a = (2usize..40).sample(&mut rng);
            assert!((2..40).contains(&a));
            let b = (1usize..=20).sample(&mut rng);
            assert!((1..=20).contains(&b));
            let x = (0.0..1.0f64).sample(&mut rng);
            assert!((0.0..1.0).contains(&x));
            let y = (0.0..=1.0f64).sample(&mut rng);
            assert!((0.0..=1.0).contains(&y));
        }
    }

    #[test]
    fn combinators_compose() {
        let mut rng = TestRng::seed_from_u64(7);
        let strat = (2usize..10, 0u64..100)
            .prop_flat_map(|(n, seed)| (1usize..=n).prop_map(move |k| (n, k, seed)));
        for _ in 0..1000 {
            let (n, k, seed) = strat.sample(&mut rng);
            assert!((2..10).contains(&n));
            assert!(1 <= k && k <= n);
            assert!(seed < 100);
        }
    }
}
