//! `prop::collection` — the `vec` strategy.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Accepted size arguments for [`vec`]: an exact length, `lo..hi`, or
/// `lo..=hi`.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max_inclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self {
            min: n,
            max_inclusive: n,
        }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec size range");
        Self {
            min: r.start,
            max_inclusive: r.end - 1,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty vec size range");
        Self {
            min: *r.start(),
            max_inclusive: *r.end(),
        }
    }
}

/// Strategy yielding `Vec`s of values from an element strategy.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = self.size.max_inclusive - self.size.min + 1;
        let len = self.size.min + rng.below(span as u64) as usize;
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

/// `Vec` strategy with `size` elements drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_lengths_span_requested_range() {
        let mut rng = TestRng::seed_from_u64(1);
        let strat = vec(0.0..1.0f64, 1..8);
        let mut seen = [false; 8];
        for _ in 0..500 {
            let v = strat.sample(&mut rng);
            assert!((1..8).contains(&v.len()));
            seen[v.len()] = true;
        }
        assert!(seen[1..8].iter().all(|&b| b));

        let exact = vec(0u64..10, 9);
        assert_eq!(exact.sample(&mut rng).len(), 9);
    }
}
