//! Offline API-compatible subset of the `rand` crate.
//!
//! This workspace builds in environments with no crates.io access, so the
//! handful of `rand` 0.8 APIs the repo actually uses are vendored here and
//! wired in through `[patch.crates-io]`:
//!
//! * [`rngs::StdRng`] — a seedable, deterministic PRNG (xoshiro256++
//!   seeded through SplitMix64 rather than upstream's ChaCha12; sequences
//!   therefore differ from upstream `rand`, but every consumer in this
//!   workspace only relies on *determinism and statistical quality*, not on
//!   exact upstream streams);
//! * [`SeedableRng`] with `seed_from_u64` / `from_seed`;
//! * [`Rng`] with `gen`, `gen_range`, `gen_bool`, `fill` over the types the
//!   workspace samples (`f64`, `f32`, `u32`, `u64`, `usize`, `i32`, `i64`,
//!   `bool`).
//!
//! Keep this shim boring: no thread-local RNGs, no distributions module.

/// Low-level source of randomness: everything is derived from `next_u64`.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A value that can be sampled uniformly from an `RngCore` ("Standard"
/// distribution in upstream terms).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for i32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as i32
    }
}

impl Standard for i64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// A range that can be sampled from (`gen_range` argument).
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty f64 range");
        let u: f64 = Standard::sample(rng);
        let v = self.start + (self.end - self.start) * u;
        // Guard against round-up to the excluded endpoint.
        if v >= self.end {
            f64::from_bits(self.end.to_bits() - 1)
        } else {
            v
        }
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (a, b) = (*self.start(), *self.end());
        assert!(a <= b, "empty f64 range");
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
        a + (b - a) * u
    }
}

impl SampleRange<f32> for core::ops::Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "empty f32 range");
        let u: f32 = Standard::sample(rng);
        let v = self.start + (self.end - self.start) * u;
        if v >= self.end {
            f32::from_bits(self.end.to_bits() - 1)
        } else {
            v
        }
    }
}

/// Uniform integer below `n` without modulo bias (Lemire's multiply-shift
/// with rejection).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    loop {
        let x = rng.next_u64();
        let m = (x as u128).wrapping_mul(n as u128);
        let low = m as u64;
        if low >= n.wrapping_neg() % n {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! int_range_impls {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty integer range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (a, b) = (*self.start(), *self.end());
                assert!(a <= b, "empty integer range");
                let span = (b as i128 - a as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                a.wrapping_add(uniform_below(rng, span + 1) as $t)
            }
        }
    )*};
}

int_range_impls!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// User-facing sampling helpers, auto-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value from the standard (uniform) distribution of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from a range.
    fn gen_range<T, Rge: SampleRange<T>>(&mut self, range: Rge) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        let u: f64 = Standard::sample(self);
        u < p
    }

    /// Fills the slice with uniform values.
    fn fill<T: Standard>(&mut self, dest: &mut [T]) {
        for slot in dest {
            *slot = T::sample(self);
        }
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A deterministic RNG constructible from a seed.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed;

    /// Builds the generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Named RNG types (mirrors `rand::rngs`).
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The standard deterministic RNG: xoshiro256++ (Blackman/Vigna).
    ///
    /// Upstream `rand` uses ChaCha12 here; the exact stream differs but the
    /// contract the workspace relies on — determinism for equal seeds and
    /// good equidistribution — holds.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            if s == [0; 4] {
                // The all-zero state is a fixed point of xoshiro.
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            Self { s }
        }

        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            Self {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.gen::<u64>(), b.gen::<u64>());
    }

    #[test]
    fn unit_uniform_in_range_and_unbiased() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut sum = 0.0;
        let n = 100_000;
        for _ in 0..n {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-2.5..7.5f64);
            assert!((-2.5..7.5).contains(&y));
            let z = rng.gen_range(0..=10);
            assert!((0..=10).contains(&z));
        }
    }

    #[test]
    fn int_ranges_cover_all_values() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(13);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.25).abs() < 0.01, "rate {rate}");
    }
}
