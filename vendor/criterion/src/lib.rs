//! Offline API-compatible subset of the `criterion` crate.
//!
//! The workspace builds without crates.io access, so the criterion API the
//! bench targets use is vendored here and wired in via `[patch.crates-io]`.
//! Behavioural subset:
//!
//! * each benchmark runs a short warm-up, then `sample_size` timed samples
//!   and reports min / median / mean wall time to stdout;
//! * no plots, no HTML report, no statistical regression analysis, no
//!   `target/criterion` baselines;
//! * `cargo bench` / `cargo test --benches` both work: under test harness
//!   conventions the binaries accept and ignore the common criterion CLI
//!   flags (`--bench`, filters).

use std::time::{Duration, Instant};

/// How `iter_batched` amortises setup cost. The shim times per-iteration
/// either way; the variants only exist for API compatibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Passed to the closure given to `bench_function`; drives timing loops.
pub struct Bencher {
    samples: usize,
    /// Collected per-sample mean durations, in seconds.
    results: Vec<f64>,
}

impl Bencher {
    fn new(samples: usize) -> Self {
        Self {
            samples,
            results: Vec::with_capacity(samples),
        }
    }

    /// Times `routine`, running it enough times per sample to get a stable
    /// per-iteration estimate.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: also used to pick an iteration count targeting ~5 ms per
        // sample so fast routines are not drowned in timer noise.
        let warm_start = Instant::now();
        std::hint::black_box(routine());
        let once = warm_start.elapsed().max(Duration::from_nanos(1));
        let per_sample =
            ((Duration::from_millis(5).as_nanos() / once.as_nanos()).max(1) as usize).min(100_000);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..per_sample {
                std::hint::black_box(routine());
            }
            self.results
                .push(start.elapsed().as_secs_f64() / per_sample as f64);
        }
    }

    /// Times `routine` on fresh inputs from `setup`; setup time is excluded.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            self.results.push(start.elapsed().as_secs_f64());
        }
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one benchmark and prints its timing summary.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<String>, mut f: F) {
        let id = id.into();
        let full = format!("{}/{}", self.name, id);
        if !self.criterion.matches_filter(&full) {
            return;
        }
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher);
        report(&full, &bencher.results);
    }

    /// Ends the group (report-flush point upstream; a no-op here).
    pub fn finish(self) {}
}

fn report(name: &str, samples: &[f64]) {
    if samples.is_empty() {
        println!("{name:<48} (no samples)");
        return;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    let min = sorted[0];
    let median = sorted[sorted.len() / 2];
    let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
    println!(
        "{name:<48} min {:>12}  median {:>12}  mean {:>12}",
        fmt_time(min),
        fmt_time(median),
        fmt_time(mean)
    );
}

fn fmt_time(seconds: f64) -> String {
    if seconds < 1e-6 {
        format!("{:.2} ns", seconds * 1e9)
    } else if seconds < 1e-3 {
        format!("{:.2} µs", seconds * 1e6)
    } else if seconds < 1.0 {
        format!("{:.2} ms", seconds * 1e3)
    } else {
        format!("{seconds:.3} s")
    }
}

/// Entry point handed to `criterion_group!` functions.
pub struct Criterion {
    filter: Option<String>,
    listing_only: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench` passes `--bench`; `cargo test --benches` passes
        // `--test` plus harness flags. Accept both, honour a positional
        // filter, and treat `--list` as list-without-running.
        let mut filter = None;
        let mut listing_only = false;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--bench" | "--test" | "--nocapture" | "--quiet" | "-q" | "--exact"
                | "--ignored" | "--include-ignored" => {}
                "--list" => listing_only = true,
                s if s.starts_with("--") => {}
                s => filter = Some(s.to_string()),
            }
        }
        Self {
            filter,
            listing_only,
        }
    }
}

impl Criterion {
    fn matches_filter(&self, name: &str) -> bool {
        if self.listing_only {
            println!("{name}: benchmark");
            return false;
        }
        match &self.filter {
            Some(f) => name.contains(f.as_str()),
            None => true,
        }
    }

    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 20,
            criterion: self,
        }
    }

    /// Runs a standalone benchmark outside a group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<String>, mut f: F) {
        let full = id.into();
        if !self.matches_filter(&full) {
            return;
        }
        let mut bencher = Bencher::new(20);
        f(&mut bencher);
        report(&full, &bencher.results);
    }
}

/// Re-export so `criterion::black_box` keeps working.
pub use std::hint::black_box;

/// Bundles bench functions into one group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
