//! Offline API-compatible subset of the `rayon` crate.
//!
//! The workspace builds without crates.io access, so the rayon surface it
//! uses is vendored here and wired in via `[patch.crates-io]`. This is not
//! a work-stealing scheduler: a parallel iterator materialises its items,
//! chunks the index space evenly across `std::thread::scope` threads, and
//! reassembles results **in input order** — which is exactly the contract
//! the workspace leans on for determinism (`collect` order never depends
//! on thread count or scheduling).
//!
//! Supported: `par_iter` (on slices/Vec refs), `into_par_iter` (on `Vec`
//! and `Range<usize>`), `map`, `collect`, `sum`, `for_each`, and
//! `ThreadPoolBuilder` / `ThreadPool::install` (which bounds the thread
//! count inside the closure via a scoped thread-local override).

use std::cell::Cell;

pub mod prelude {
    pub use crate::iter::{IntoParallelIterator, IntoParallelRefIterator, ParallelIterator};
}

pub use crate::iter::{IntoParallelIterator, IntoParallelRefIterator, ParallelIterator};

thread_local! {
    /// Max threads override installed by `ThreadPool::install`; 0 = unset.
    static POOL_THREADS: Cell<usize> = const { Cell::new(0) };
}

/// Number of worker threads a parallel call may use right now.
pub fn current_num_threads() -> usize {
    let installed = POOL_THREADS.with(Cell::get);
    if installed > 0 {
        return installed;
    }
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

/// Error type for [`ThreadPoolBuilder::build`]. The shim cannot fail to
/// build, so this is uninhabited in practice but keeps signatures aligned.
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

impl ThreadPoolBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    /// Caps the pool at `n` threads (0 = use all available cores).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: self.num_threads,
        })
    }
}

/// A bounded pool. The shim spawns scoped threads per call rather than
/// keeping workers alive; `install` just bounds how many a call may spawn.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Runs `op` with this pool's thread bound active on the current
    /// thread (parallel iterators inside `op` see it).
    pub fn install<R, F: FnOnce() -> R>(&self, op: F) -> R {
        let prev = POOL_THREADS.with(|c| c.replace(self.num_threads));
        struct Restore(usize);
        impl Drop for Restore {
            fn drop(&mut self) {
                POOL_THREADS.with(|c| c.set(self.0));
            }
        }
        let _restore = Restore(prev);
        op()
    }

    pub fn current_num_threads(&self) -> usize {
        if self.num_threads > 0 {
            self.num_threads
        } else {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        }
    }
}

pub mod iter {
    use super::current_num_threads;

    /// Conversion into a parallel iterator, by value.
    pub trait IntoParallelIterator {
        type Item: Send;
        type Iter: ParallelIterator<Item = Self::Item>;
        fn into_par_iter(self) -> Self::Iter;
    }

    /// Conversion into a parallel iterator over references.
    pub trait IntoParallelRefIterator<'a> {
        type Item: Send + 'a;
        type Iter: ParallelIterator<Item = Self::Item>;
        fn par_iter(&'a self) -> Self::Iter;
    }

    impl<'a, T: Sync + 'a, C: 'a> IntoParallelRefIterator<'a> for C
    where
        &'a C: IntoParallelIterator<Item = &'a T>,
    {
        type Item = &'a T;
        type Iter = <&'a C as IntoParallelIterator>::Iter;
        fn par_iter(&'a self) -> Self::Iter {
            self.into_par_iter()
        }
    }

    /// The parallel iterator operations the workspace uses.
    ///
    /// Implementations are *lazy over a materialised item list*: `map`
    /// composes closures; the terminal operation (`collect`, `sum`,
    /// `for_each`) runs the fused pipeline across scoped threads and
    /// reassembles outputs in input order.
    pub trait ParallelIterator: Sized {
        type Item: Send;

        /// Runs the pipeline, returning all outputs in input order.
        fn run(self) -> Vec<Self::Item>;

        fn map<O: Send, F>(self, f: F) -> Map<Self, F>
        where
            F: Fn(Self::Item) -> O + Sync + Send,
        {
            Map { base: self, f }
        }

        fn for_each<F>(self, f: F)
        where
            F: Fn(Self::Item) + Sync + Send,
        {
            self.run().into_iter().for_each(f);
        }

        fn collect<C: FromParallel<Self::Item>>(self) -> C {
            C::from_ordered(self.run())
        }

        fn sum<S>(self) -> S
        where
            S: std::iter::Sum<Self::Item>,
        {
            self.run().into_iter().sum()
        }

        fn reduce<ID, OP>(self, identity: ID, op: OP) -> Self::Item
        where
            ID: Fn() -> Self::Item + Sync + Send,
            OP: Fn(Self::Item, Self::Item) -> Self::Item + Sync + Send,
        {
            // Sequential left fold over the ordered outputs: deterministic
            // for any `op`, associative or not.
            self.run().into_iter().fold(identity(), op)
        }
    }

    /// Collection types buildable from ordered parallel output.
    pub trait FromParallel<T> {
        fn from_ordered(items: Vec<T>) -> Self;
    }

    impl<T> FromParallel<T> for Vec<T> {
        fn from_ordered(items: Vec<T>) -> Self {
            items
        }
    }

    impl<T, E> FromParallel<Result<T, E>> for Result<Vec<T>, E> {
        fn from_ordered(items: Vec<Result<T, E>>) -> Self {
            items.into_iter().collect()
        }
    }

    impl<T> FromParallel<Option<T>> for Option<Vec<T>> {
        fn from_ordered(items: Vec<Option<T>>) -> Self {
            items.into_iter().collect()
        }
    }

    /// Executes `f` over `items`, fanning chunks out across scoped
    /// threads; output order matches input order regardless of thread
    /// count.
    fn execute<I, O, F>(items: Vec<I>, f: &F) -> Vec<O>
    where
        I: Send,
        O: Send,
        F: Fn(I) -> O + Sync,
    {
        let n = items.len();
        let threads = current_num_threads().clamp(1, n.max(1));
        if threads <= 1 || n <= 1 {
            return items.into_iter().map(f).collect();
        }
        let chunk = n.div_ceil(threads);
        let mut chunks: Vec<Vec<I>> = Vec::with_capacity(threads);
        {
            let mut iter = items.into_iter();
            loop {
                let c: Vec<I> = iter.by_ref().take(chunk).collect();
                if c.is_empty() {
                    break;
                }
                chunks.push(c);
            }
        }
        let mut out: Vec<Vec<O>> = Vec::with_capacity(chunks.len());
        std::thread::scope(|scope| {
            let handles: Vec<_> = chunks
                .into_iter()
                .map(|c| scope.spawn(move || c.into_iter().map(f).collect::<Vec<O>>()))
                .collect();
            for h in handles {
                out.push(h.join().expect("parallel worker panicked"));
            }
        });
        out.into_iter().flatten().collect()
    }

    /// Source iterator over an owned item list.
    pub struct VecIter<T: Send> {
        items: Vec<T>,
    }

    impl<T: Send> ParallelIterator for VecIter<T> {
        type Item = T;
        fn run(self) -> Vec<T> {
            self.items
        }
    }

    /// `map` adaptor; the terminal op fuses it into the worker closure.
    pub struct Map<B, F> {
        base: B,
        f: F,
    }

    impl<B, O, F> ParallelIterator for Map<B, F>
    where
        B: ParallelIterator,
        O: Send,
        F: Fn(B::Item) -> O + Sync + Send,
    {
        type Item = O;
        fn run(self) -> Vec<O> {
            execute(self.base.run(), &self.f)
        }
    }

    impl<T: Send> IntoParallelIterator for Vec<T> {
        type Item = T;
        type Iter = VecIter<T>;
        fn into_par_iter(self) -> VecIter<T> {
            VecIter { items: self }
        }
    }

    impl<'a, T: Sync> IntoParallelIterator for &'a Vec<T> {
        type Item = &'a T;
        type Iter = VecIter<&'a T>;
        fn into_par_iter(self) -> VecIter<&'a T> {
            VecIter {
                items: self.iter().collect(),
            }
        }
    }

    impl<'a, T: Sync> IntoParallelIterator for &'a [T] {
        type Item = &'a T;
        type Iter = VecIter<&'a T>;
        fn into_par_iter(self) -> VecIter<&'a T> {
            VecIter {
                items: self.iter().collect(),
            }
        }
    }

    macro_rules! range_into_par_iter {
        ($($t:ty),*) => {$(
            impl IntoParallelIterator for std::ops::Range<$t> {
                type Item = $t;
                type Iter = VecIter<$t>;
                fn into_par_iter(self) -> VecIter<$t> {
                    VecIter { items: self.collect() }
                }
            }
        )*};
    }

    range_into_par_iter!(usize, u32, u64, i32, i64);
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::ThreadPoolBuilder;

    #[test]
    fn collect_preserves_input_order() {
        let out: Vec<usize> = (0..1000usize).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(out, (0..1000).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn identical_across_thread_counts() {
        let run = |threads| {
            ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap()
                .install(|| {
                    (0..257usize)
                        .into_par_iter()
                        .map(|i| (i as f64).sqrt())
                        .collect::<Vec<f64>>()
                })
        };
        assert_eq!(run(1), run(4));
        assert_eq!(run(1), run(13));
    }

    #[test]
    fn par_iter_over_slice_refs() {
        let data = vec![1.0f64, 2.0, 3.0];
        let s: f64 = data.par_iter().map(|x| x * x).sum();
        assert_eq!(s, 14.0);
    }

    #[test]
    fn result_collect_short_circuits_to_err() {
        let r: Result<Vec<usize>, String> = (0..10usize)
            .into_par_iter()
            .map(|i| {
                if i == 7 {
                    Err("seven".to_string())
                } else {
                    Ok(i)
                }
            })
            .collect();
        assert_eq!(r, Err("seven".to_string()));
    }

    #[test]
    fn install_bounds_are_scoped() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let outside = super::current_num_threads();
        pool.install(|| assert_eq!(super::current_num_threads(), 2));
        assert_eq!(super::current_num_threads(), outside);
    }
}
