//! Property-based tests for canonical SSTA.

use proptest::prelude::*;
use statleak_netlist::generate::{generate, GenSpec};
use statleak_netlist::placement::Placement;
use statleak_ssta::{Canonical, Ssta};
use statleak_tech::{Design, FactorModel, Technology, VariationConfig, VthClass};
use std::sync::Arc;

fn canonical() -> impl Strategy<Value = Canonical> {
    (
        -10.0..10.0f64,
        prop::collection::vec(-1.0..1.0f64, 3),
        0.0..1.0f64,
    )
        .prop_map(|(mean, shared, local)| Canonical::new(mean, shared, local))
}

proptest! {
    #[test]
    fn add_commutes(a in canonical(), b in canonical()) {
        let ab = a.add(&b);
        let ba = b.add(&a);
        prop_assert!((ab.mean - ba.mean).abs() < 1e-12);
        prop_assert!((ab.variance - ba.variance).abs() < 1e-12);
    }

    #[test]
    fn add_variance_includes_covariance(a in canonical(), b in canonical()) {
        let c = a.add(&b);
        let expect = a.variance + b.variance + 2.0 * a.covariance(&b);
        prop_assert!((c.variance - expect).abs() < 1e-9);
    }

    #[test]
    fn max_upper_bounds_means(a in canonical(), b in canonical()) {
        let m = a.stat_max(&b);
        prop_assert!(m.mean >= a.mean.max(b.mean) - 1e-9);
        prop_assert!(m.variance >= -1e-12);
        prop_assert!(m.local >= 0.0);
    }

    #[test]
    fn max_commutes_in_moments(a in canonical(), b in canonical()) {
        let ab = a.stat_max(&b);
        let ba = b.stat_max(&a);
        prop_assert!((ab.mean - ba.mean).abs() < 1e-9);
        prop_assert!((ab.variance - ba.variance).abs() < 1e-6 + 1e-6 * ab.variance);
    }

    #[test]
    fn covariance_symmetric(a in canonical(), b in canonical()) {
        prop_assert!((a.covariance(&b) - b.covariance(&a)).abs() < 1e-12);
    }
}

// Random small circuits: incremental SSTA must match a fresh analysis
// after arbitrary Vth/size mutations, and undo must restore state exactly.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn incremental_equals_full_after_random_moves(
        seed in 0u64..500,
        moves in prop::collection::vec((0usize..30, 0usize..4), 1..8),
    ) {
        let mut spec = GenSpec::new(format!("ssta_prop{seed}"), 6, 3, 30, 6);
        spec.seed = seed;
        let circuit = Arc::new(generate(&spec));
        let placement = Placement::by_level(&circuit);
        let tech = Technology::ptm100();
        let fm = FactorModel::build(&circuit, &placement, &tech, &VariationConfig::ptm100())
            .expect("factors");
        let mut design = Design::new(circuit, tech);
        let mut ssta = Ssta::analyze(&design, &fm);
        let gates: Vec<_> = design.circuit().gates().collect();

        for (gi, action) in moves {
            let g = gates[gi % gates.len()];
            let mut seeds = vec![g];
            match action {
                0 => design.set_vth(g, VthClass::High),
                1 => design.set_vth(g, VthClass::Low),
                2 => {
                    if let Some(up) = design.tech().size_up(design.size(g)) {
                        design.set_size(g, up);
                    }
                    seeds.extend(design.circuit().node(g).fanin.iter().copied());
                }
                _ => {
                    if let Some(down) = design.tech().size_down(design.size(g)) {
                        design.set_size(g, down);
                    }
                    seeds.extend(design.circuit().node(g).fanin.iter().copied());
                }
            }
            ssta.recompute_cone(&design, &fm, &seeds);
        }

        let full = Ssta::analyze(&design, &fm);
        let a = ssta.circuit_delay();
        let b = full.circuit_delay();
        prop_assert!((a.mean - b.mean).abs() < 1e-9, "mean {} vs {}", a.mean, b.mean);
        prop_assert!((a.variance - b.variance).abs() < 1e-9);
    }

    #[test]
    fn undo_chain_restores_exactly_after_random_moves(
        seed in 0u64..500,
        moves in prop::collection::vec((0usize..30, 0usize..4), 1..8),
    ) {
        // Apply a random move sequence with incremental recomputes, then
        // unwind the undo stack: the timing state must come back bit-exact
        // (assert_eq!, no tolerance) — the contract the greedy optimizers
        // rely on when they reject a move.
        let mut spec = GenSpec::new(format!("ssta_undo{seed}"), 6, 3, 30, 6);
        spec.seed = seed;
        let circuit = Arc::new(generate(&spec));
        let placement = Placement::by_level(&circuit);
        let tech = Technology::ptm100();
        let fm = FactorModel::build(&circuit, &placement, &tech, &VariationConfig::ptm100())
            .expect("factors");
        let mut design = Design::new(circuit, tech);
        let mut ssta = Ssta::analyze(&design, &fm);
        let snapshot = ssta.clone();

        let gates: Vec<_> = design.circuit().gates().collect();
        let mut undos = Vec::new();
        for (gi, action) in moves {
            let g = gates[gi % gates.len()];
            let mut seeds = vec![g];
            match action {
                0 => design.set_vth(g, VthClass::High),
                1 => design.set_vth(g, VthClass::Low),
                2 => {
                    if let Some(up) = design.tech().size_up(design.size(g)) {
                        design.set_size(g, up);
                    }
                    seeds.extend(design.circuit().node(g).fanin.iter().copied());
                }
                _ => {
                    if let Some(down) = design.tech().size_down(design.size(g)) {
                        design.set_size(g, down);
                    }
                    seeds.extend(design.circuit().node(g).fanin.iter().copied());
                }
            }
            undos.push(ssta.recompute_cone(&design, &fm, &seeds));
        }
        for undo in undos.into_iter().rev() {
            ssta.undo(undo);
        }
        prop_assert!(ssta == snapshot, "undo chain must restore the exact state");
    }

    #[test]
    fn yield_bounded_and_monotone(seed in 0u64..200) {
        let mut spec = GenSpec::new(format!("ssta_y{seed}"), 5, 2, 25, 5);
        spec.seed = seed;
        let circuit = Arc::new(generate(&spec));
        let placement = Placement::by_level(&circuit);
        let tech = Technology::ptm100();
        let fm = FactorModel::build(&circuit, &placement, &tech, &VariationConfig::ptm100())
            .expect("factors");
        let design = Design::new(circuit, tech);
        let ssta = Ssta::analyze(&design, &fm);
        let mu = ssta.circuit_delay().mean;
        let mut prev = 0.0;
        for k in [0.5, 0.8, 1.0, 1.2, 2.0] {
            let y = ssta.timing_yield(k * mu);
            prop_assert!((0.0..=1.0).contains(&y));
            prop_assert!(y >= prev - 1e-12);
            prev = y;
        }
    }
}
