//! First-order canonical statistical static timing analysis (SSTA).
//!
//! Every timing quantity is kept in *canonical first-order form*
//! (Visweswariah/Chang-Sapatnekar style):
//!
//! ```text
//! A = mean + Σ_k a_k · Z_k + a_r · R
//! ```
//!
//! where the `Z_k` are the shared process factors from
//! [`statleak_tech::FactorModel`] (die-to-die + spatially correlated
//! channel-length factors) and `R` is an aggregated node-local independent
//! term. Addition is exact; `max` uses Clark's two-moment approximation
//! with tightness-probability blending of the sensitivity vectors.
//!
//! The circuit-level result is the canonical circuit delay, from which the
//! *timing yield* `P(D ≤ T_clk) = Φ((T_clk − μ)/σ)` falls out directly —
//! the constraint the paper's statistical optimizer enforces in place of
//! the deterministic slack test.
//!
//! # Example
//!
//! ```
//! use statleak_netlist::{benchmarks, placement::Placement};
//! use statleak_tech::{Design, FactorModel, Technology, VariationConfig};
//! use statleak_ssta::Ssta;
//! use std::sync::Arc;
//!
//! let circuit = Arc::new(benchmarks::by_name("c432").expect("known"));
//! let placement = Placement::by_level(&circuit);
//! let tech = Technology::ptm100();
//! let fm = FactorModel::build(&circuit, &placement, &tech, &VariationConfig::ptm100())?;
//! let design = Design::new(circuit, tech);
//! let ssta = Ssta::analyze(&design, &fm);
//! let d = ssta.circuit_delay();
//! // Yield at the mean is ~50%, at mean + 3σ it is ~99.9%.
//! assert!((ssta.timing_yield(d.mean) - 0.5).abs() < 0.05);
//! assert!(ssta.timing_yield(d.mean + 3.0 * d.variance.sqrt()) > 0.99);
//! # Ok::<(), statleak_stats::CholeskyError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod canonical;
#[cfg(any(test, feature = "dense-ref"))]
pub mod dense_ref;

pub use canonical::Canonical;

use rayon::prelude::*;
use statleak_netlist::{Circuit, ConeScratch, NodeId};
use statleak_obs as obs;
use statleak_stats::phi;
use statleak_tech::{Design, FactorModel};

/// Minimum number of gates in a level block before propagation of that
/// level fans out across threads; below this the spawn/collect overhead of
/// the ordered-collect shim outweighs the win.
const PAR_LEVEL_MIN_GATES: usize = 256;

/// Builds the canonical delay of one gate from the factor model.
pub fn gate_delay_canonical(design: &Design, fm: &FactorModel, id: NodeId) -> Canonical {
    let mut out = Canonical::constant(0.0, fm.num_shared());
    gate_delay_canonical_into(design, fm, id, &mut out);
    out
}

/// Writes the canonical delay of one gate into `out`, reusing its shared
/// allocation. Bit-identical to [`gate_delay_canonical`].
pub fn gate_delay_canonical_into(
    design: &Design,
    fm: &FactorModel,
    id: NodeId,
    out: &mut Canonical,
) {
    let circuit = design.circuit();
    debug_assert!(circuit.kind(id).is_gate(), "inputs have no delay");
    let (d, dd_dl, dd_dvth) = design.library().delay_sensitivities(
        circuit.kind(id),
        circuit.fanin(id).len(),
        design.size(id),
        design.vth(id),
        design.load_cap(id),
    );
    let (idx, val) = fm.l_shared_row(id);
    out.mean = d;
    // Scaling the factor row's nonzeros reproduces the dense
    // `map(|a| dd_dl * a)` bit for bit: the skipped entries are exact
    // zeros, whose scaled value (±0.0) is semantically zero everywhere
    // downstream.
    out.shared.assign_scaled(fm.num_shared(), idx, val, dd_dl);
    out.local = ((dd_dl * fm.l_local(id)).powi(2) + (dd_dvth * fm.vth_local(id)).powi(2)).sqrt();
    out.variance = out.shared.norm2() + out.local * out.local;
}

/// Statistical arrival-time state for one design.
///
/// Besides the timing state proper (`arrival`, `circuit_delay`), the
/// struct owns reusable scratch buffers so per-move incremental updates
/// touch only the affected cone and perform no full-circuit allocation.
/// Equality ([`PartialEq`]) compares only the timing state — scratch
/// contents are incidental.
#[derive(Debug, Clone)]
pub struct Ssta {
    arrival: Vec<Canonical>,
    circuit_delay: Canonical,
    scratch: ConeScratch,
    work: Canonical,
    delay_work: Canonical,
}

impl PartialEq for Ssta {
    fn eq(&self, other: &Self) -> bool {
        self.arrival == other.arrival && self.circuit_delay == other.circuit_delay
    }
}

/// Undo log for [`Ssta::recompute_cone`].
#[derive(Debug, Clone)]
pub struct SstaUndo {
    changed: Vec<(u32, Canonical)>,
    old_circuit_delay: Canonical,
}

impl Ssta {
    /// Runs a full statistical timing analysis.
    ///
    /// Propagation is *level-partitioned*: the topological order is grouped
    /// into level blocks (every gate's fanins sit at strictly lower
    /// levels), and each block wide enough to amortize the spawn cost is
    /// propagated in parallel via the ordered-collect rayon shim. Per-gate
    /// arrivals are pure functions of lower-level arrivals and the fold
    /// order within each gate and over the outputs is unchanged, so the
    /// result is bit-identical to the sequential topo-order walk for every
    /// thread count.
    pub fn analyze(design: &Design, fm: &FactorModel) -> Self {
        let _span = obs::span!("ssta.propagate");
        obs::counter!("ssta_full_analyze_total").inc();
        let circuit = design.circuit();
        let ns = fm.num_shared();
        let zero = Canonical::constant(0.0, ns);
        let mut arrival = vec![zero; circuit.num_nodes()];
        let threads = rayon::current_num_threads();
        let mut work = Canonical::constant(0.0, ns);
        let mut delay = Canonical::constant(0.0, ns);
        for lvl in 1..=circuit.depth() {
            let ids = circuit.level_nodes(lvl);
            if ids.is_empty() {
                continue;
            }
            let parallel = threads > 1 && ids.len() >= PAR_LEVEL_MIN_GATES;
            let t0 = obs::enabled().then(std::time::Instant::now);
            if parallel {
                let computed: Vec<Canonical> = ids
                    .into_par_iter()
                    .map(|&id| Self::gate_arrival(design, fm, &arrival, id))
                    .collect();
                for (&id, c) in ids.iter().zip(computed) {
                    arrival[id.index()] = c;
                }
            } else {
                for &id in ids {
                    debug_assert!(circuit.kind(id).is_gate(), "levels ≥ 1 hold only gates");
                    Self::gate_arrival_into(design, fm, &arrival, id, &mut work, &mut delay);
                    arrival[id.index()].clone_from_canonical(&work);
                }
            }
            if let Some(t0) = t0 {
                obs::histogram!("ssta_level_gates").record(ids.len() as u64);
                obs::histogram!("ssta_level_us").record(t0.elapsed().as_micros() as u64);
                if parallel {
                    obs::counter!("ssta_parallel_levels_total").inc();
                } else {
                    obs::counter!("ssta_sequential_levels_total").inc();
                }
            }
        }
        let circuit_delay = Self::max_output_arrival(circuit, &arrival, ns);
        Self {
            arrival,
            circuit_delay,
            scratch: ConeScratch::new(),
            work,
            delay_work: delay,
        }
    }

    fn gate_arrival(
        design: &Design,
        fm: &FactorModel,
        arrival: &[Canonical],
        id: NodeId,
    ) -> Canonical {
        let mut out = Canonical::constant(0.0, fm.num_shared());
        let mut delay = Canonical::constant(0.0, fm.num_shared());
        Self::gate_arrival_into(design, fm, arrival, id, &mut out, &mut delay);
        out
    }

    /// Computes a gate's canonical arrival into `out` using only in-place
    /// canonical ops; `delay` is a second scratch for the gate's own delay.
    /// The fold order (fanin list order, accumulator first) matches the
    /// historical allocating implementation, so results are bit-identical.
    fn gate_arrival_into(
        design: &Design,
        fm: &FactorModel,
        arrival: &[Canonical],
        id: NodeId,
        out: &mut Canonical,
        delay: &mut Canonical,
    ) {
        let mut fanin = design.circuit().fanin(id).iter();
        let first = fanin.next().expect("gates have fanin");
        out.clone_from_canonical(&arrival[first.index()]);
        for &f in fanin {
            out.stat_max_into(&arrival[f.index()]);
        }
        gate_delay_canonical_into(design, fm, id, delay);
        out.add_assign(delay);
    }

    fn max_output_arrival(
        circuit: &Circuit,
        arrival: &[Canonical],
        num_shared: usize,
    ) -> Canonical {
        let mut worst = Canonical::constant(0.0, num_shared);
        for &o in circuit.outputs() {
            worst = worst.stat_max(&arrival[o.index()]);
        }
        worst
    }

    /// The canonical arrival time of a node.
    #[inline]
    pub fn arrival(&self, id: NodeId) -> &Canonical {
        &self.arrival[id.index()]
    }

    /// The canonical circuit delay (statistical max over outputs).
    #[inline]
    pub fn circuit_delay(&self) -> &Canonical {
        &self.circuit_delay
    }

    /// Timing yield at a clock period: `P(D ≤ t_clk)`.
    pub fn timing_yield(&self, t_clk: f64) -> f64 {
        let d = &self.circuit_delay;
        let sigma = d.variance.sqrt();
        if sigma == 0.0 {
            return if d.mean <= t_clk { 1.0 } else { 0.0 };
        }
        phi((t_clk - d.mean) / sigma)
    }

    /// The clock period achieving a target yield: `μ + Φ⁻¹(η)·σ`.
    ///
    /// # Panics
    ///
    /// Panics if `eta` is not strictly inside `(0, 1)`.
    pub fn clock_for_yield(&self, eta: f64) -> f64 {
        let d = &self.circuit_delay;
        d.mean + statleak_stats::phi_inv(eta) * d.variance.sqrt()
    }

    /// Recomputes canonical arrivals in the union of fanout cones of
    /// `seeds`, returning an undo log (same seed contract as the
    /// deterministic `Sta::recompute_cone`: include every node whose own
    /// delay may have changed).
    ///
    /// Incremental: the owned [`ConeScratch`] collects only cone nodes
    /// (epoch-stamped visited marks, sorted by topological rank), so cost
    /// scales with the cone, not the circuit. The output fold is skipped
    /// entirely when no primary output's arrival changed — in that case
    /// the stat-max over outputs would reproduce the cached value bit for
    /// bit, since it reads nothing else.
    pub fn recompute_cone(
        &mut self,
        design: &Design,
        fm: &FactorModel,
        seeds: &[NodeId],
    ) -> SstaUndo {
        let circuit = design.circuit();
        circuit.collect_fanout_cone(seeds, &mut self.scratch);
        let mut undo = SstaUndo {
            changed: Vec::new(),
            old_circuit_delay: self.circuit_delay.clone(),
        };
        let mut output_changed = false;
        for &id in self.scratch.cone() {
            if !circuit.kind(id).is_gate() {
                continue;
            }
            Self::gate_arrival_into(
                design,
                fm,
                &self.arrival,
                id,
                &mut self.work,
                &mut self.delay_work,
            );
            if self.work != self.arrival[id.index()] {
                output_changed |= circuit.is_output(id);
                undo.changed.push((
                    id.0,
                    std::mem::replace(&mut self.arrival[id.index()], self.work.clone()),
                ));
            }
        }
        if output_changed {
            self.circuit_delay = Self::max_output_arrival(circuit, &self.arrival, fm.num_shared());
        }
        // The per-move hot path stays metric-free unless tracing is on:
        // cone stats are diagnostics, not service counters.
        if obs::enabled() {
            obs::counter!("ssta_cone_recomputes_total").inc();
            obs::histogram!("ssta_cone_nodes").record(self.scratch.cone().len() as u64);
            if output_changed {
                obs::counter!("ssta_cone_output_folds_total").inc();
            }
        }
        undo
    }

    /// Rolls back a [`Ssta::recompute_cone`] update.
    pub fn undo(&mut self, undo: SstaUndo) {
        for (raw, old) in undo.changed.into_iter().rev() {
            self.arrival[raw as usize] = old;
        }
        self.circuit_delay = undo.old_circuit_delay;
    }

    /// Samples the yield curve `P(D ≤ t)` at the given clock periods.
    pub fn yield_curve(&self, t_values: &[f64]) -> Vec<(f64, f64)> {
        t_values
            .iter()
            .map(|&t| (t, self.timing_yield(t)))
            .collect()
    }

    /// An approximate statistical slack for each node against a clock
    /// period: deterministic backward pass over *mean* delays, minus `k`
    /// sigma of the node's arrival. Used only to order optimizer
    /// candidates (feasibility is always re-checked with the full yield).
    pub fn mean_slack(&self, design: &Design, t_clk: f64, k_sigma: f64) -> Vec<f64> {
        let circuit = design.circuit();
        let n = circuit.num_nodes();
        let mut required = vec![f64::INFINITY; n];
        for &o in circuit.outputs() {
            required[o.index()] = t_clk;
        }
        for id in circuit.reverse_topo() {
            if circuit.kind(id).is_gate() {
                let req_at_input = required[id.index()] - self.mean_gate_delay(design, id);
                for &f in circuit.fanin(id) {
                    if req_at_input < required[f.index()] {
                        required[f.index()] = req_at_input;
                    }
                }
            }
        }
        (0..n)
            .map(|i| {
                let a = &self.arrival[i];
                required[i] - (a.mean + k_sigma * a.variance.sqrt())
            })
            .collect()
    }

    fn mean_gate_delay(&self, design: &Design, id: NodeId) -> f64 {
        design.gate_delay_nominal(id)
    }

    /// Computes the canonical *path-through* delay of every node: the
    /// distribution of the longest input→output path constrained to pass
    /// through that node, `P_u = A_u + R_u`, where `R_u` is the downstream
    /// (node-to-output) canonical computed by a backward statistical-max
    /// pass. The `A`/`R` correlation through shared factors is handled by
    /// the canonical addition; reconvergent local correlation is ignored
    /// (the standard block-based approximation).
    pub fn path_through(&self, design: &Design, fm: &FactorModel) -> Vec<Canonical> {
        let circuit = design.circuit();
        let n = circuit.num_nodes();
        let zero = Canonical::constant(0.0, fm.num_shared());
        let mut downstream: Vec<Option<Canonical>> = vec![None; n];
        for &o in circuit.outputs() {
            downstream[o.index()] = Some(zero.clone());
        }
        let order: Vec<NodeId> = circuit.reverse_topo().collect();
        for &u in &order {
            // R_u = max over fanouts v of (d_v + R_v), blended with an
            // existing output contribution if u is itself an output.
            let mut best = downstream[u.index()].clone();
            for &v in circuit.fanout(u) {
                let Some(rv) = &downstream[v.index()] else {
                    continue;
                };
                let through_v = gate_delay_canonical(design, fm, v).add(rv);
                best = Some(match best {
                    None => through_v,
                    Some(b) => b.stat_max(&through_v),
                });
            }
            downstream[u.index()] = best;
        }
        (0..n)
            .map(|i| {
                let a = &self.arrival[i];
                match &downstream[i] {
                    Some(r) => a.add(r),
                    // Node reaches no output: its path-through is just its
                    // own arrival (never critical).
                    None => a.clone(),
                }
            })
            .collect()
    }

    /// Gate criticalities at a clock period: `P(P_u > t_clk)` per node —
    /// the probability the node sits on a timing-violating path. The most
    /// critical node's value approximates `1 − yield(t_clk)`.
    ///
    /// ```
    /// # use statleak_netlist::{benchmarks, placement::Placement};
    /// # use statleak_tech::{Design, FactorModel, Technology, VariationConfig};
    /// # use statleak_ssta::Ssta;
    /// # use std::sync::Arc;
    /// # let circuit = Arc::new(benchmarks::c17());
    /// # let placement = Placement::by_level(&circuit);
    /// # let tech = Technology::ptm100();
    /// # let fm = FactorModel::build(&circuit, &placement, &tech, &VariationConfig::ptm100())?;
    /// # let design = Design::new(circuit, tech);
    /// let ssta = Ssta::analyze(&design, &fm);
    /// let crit = ssta.criticalities(&design, &fm, ssta.circuit_delay().mean);
    /// assert!(crit.iter().all(|&c| (0.0..=1.0).contains(&c)));
    /// # Ok::<(), statleak_stats::CholeskyError>(())
    /// ```
    pub fn criticalities(&self, design: &Design, fm: &FactorModel, t_clk: f64) -> Vec<f64> {
        self.path_through(design, fm)
            .iter()
            .map(|p| {
                let s = p.std();
                if s == 0.0 {
                    if p.mean > t_clk {
                        1.0
                    } else {
                        0.0
                    }
                } else {
                    1.0 - phi((t_clk - p.mean) / s)
                }
            })
            .collect()
    }

    /// Traces the mean-critical path: the latest-mean-arrival chain from
    /// the worst output back to a primary input, input first. Used by the
    /// statistical sizer to pick upsizing candidates.
    pub fn mean_critical_path(&self, design: &Design) -> Vec<NodeId> {
        let circuit = design.circuit();
        let mut cur = *circuit
            .outputs()
            .iter()
            .max_by(|a, b| {
                self.arrival[a.index()]
                    .mean
                    .total_cmp(&self.arrival[b.index()].mean)
            })
            .expect("circuits have outputs");
        let mut path = vec![cur];
        while circuit.kind(cur).is_gate() {
            let prev = circuit
                .fanin(cur)
                .iter()
                .copied()
                .max_by(|a, b| {
                    self.arrival[a.index()]
                        .mean
                        .total_cmp(&self.arrival[b.index()].mean)
                })
                .expect("gates have fanin");
            path.push(prev);
            cur = prev;
        }
        path.reverse();
        path
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use statleak_netlist::{benchmarks, placement::Placement};
    use statleak_sta_like::*;
    use statleak_tech::{Technology, VariationConfig, VthClass};
    use std::sync::Arc;

    /// Local helpers shared by the tests.
    mod statleak_sta_like {
        use super::*;

        pub fn setup(name: &str) -> (Design, FactorModel) {
            let circuit = Arc::new(benchmarks::by_name(name).unwrap());
            let placement = Placement::by_level(&circuit);
            let tech = Technology::ptm100();
            let fm = FactorModel::build(&circuit, &placement, &tech, &VariationConfig::ptm100())
                .unwrap();
            (Design::new(circuit, tech), fm)
        }
    }

    #[test]
    fn mean_tracks_deterministic_sta_loosely() {
        // Statistical mean of max ≥ deterministic max; within ~15%.
        let (d, fm) = setup("c432");
        let ssta = Ssta::analyze(&d, &fm);
        let sta = statleak_sta::Sta::analyze(&d);
        let mu = ssta.circuit_delay().mean;
        let det = sta.circuit_delay();
        assert!(mu >= det - 1e-9, "mean {mu} < det {det}");
        assert!(mu < det * 1.15, "mean {mu} too far above det {det}");
    }

    #[test]
    fn yield_monotone_in_clock() {
        let (d, fm) = setup("c880");
        let ssta = Ssta::analyze(&d, &fm);
        let mu = ssta.circuit_delay().mean;
        let ys: Vec<f64> = ssta
            .yield_curve(&[0.9 * mu, mu, 1.05 * mu, 1.2 * mu])
            .iter()
            .map(|&(_, y)| y)
            .collect();
        assert!(ys.windows(2).all(|w| w[0] <= w[1]));
        assert!(ys[0] < 0.5 && ys[3] > 0.9);
    }

    #[test]
    fn clock_for_yield_inverts_yield() {
        let (d, fm) = setup("c499");
        let ssta = Ssta::analyze(&d, &fm);
        for &eta in &[0.5, 0.9, 0.99] {
            let t = ssta.clock_for_yield(eta);
            assert!((ssta.timing_yield(t) - eta).abs() < 1e-6, "eta {eta}");
        }
    }

    #[test]
    fn sigma_reasonable_fraction_of_mean() {
        // With a 6.67% L sigma, circuit delay sigma/mean lands in 2-8%.
        let (d, fm) = setup("c1355");
        let ssta = Ssta::analyze(&d, &fm);
        let cd = ssta.circuit_delay();
        let cv = cd.variance.sqrt() / cd.mean;
        assert!(cv > 0.02 && cv < 0.10, "cv = {cv}");
    }

    #[test]
    fn high_vth_shifts_mean_up() {
        let (mut d, fm) = setup("c432");
        let before = Ssta::analyze(&d, &fm).circuit_delay().mean;
        let gates: Vec<_> = d.circuit().gates().collect();
        for g in gates {
            d.set_vth(g, VthClass::High);
        }
        let after = Ssta::analyze(&d, &fm).circuit_delay().mean;
        assert!(after > before * 1.10);
    }

    #[test]
    fn incremental_matches_full() {
        let (mut d, fm) = setup("c432");
        let mut ssta = Ssta::analyze(&d, &fm);
        let g = d.circuit().gates().nth(33).unwrap();
        d.set_vth(g, VthClass::High);
        ssta.recompute_cone(&d, &fm, &[g]);
        let full = Ssta::analyze(&d, &fm);
        let a = ssta.circuit_delay();
        let b = full.circuit_delay();
        assert!((a.mean - b.mean).abs() < 1e-9);
        assert!((a.variance - b.variance).abs() < 1e-9);
    }

    #[test]
    fn undo_restores_exactly() {
        let (mut d, fm) = setup("c499");
        let mut ssta = Ssta::analyze(&d, &fm);
        let snapshot = ssta.clone();
        let g = d.circuit().gates().nth(7).unwrap();
        d.set_size(g, 3.0);
        let mut seeds = vec![g];
        seeds.extend(d.circuit().fanin(g).iter().copied());
        let undo = ssta.recompute_cone(&d, &fm, &seeds);
        ssta.undo(undo);
        assert_eq!(ssta, snapshot);
    }

    #[test]
    fn mean_slack_negative_on_critical_nodes_at_tight_clock() {
        let (d, fm) = setup("c880");
        let ssta = Ssta::analyze(&d, &fm);
        let t = ssta.circuit_delay().mean * 0.9;
        let slacks = ssta.mean_slack(&d, t, 0.0);
        assert!(slacks.iter().copied().fold(f64::INFINITY, f64::min) < 0.0);
    }

    #[test]
    fn correlated_variance_exceeds_independent() {
        // Killing spatial correlation reduces circuit-delay variance
        // (averaging effect over independent terms).
        let circuit = Arc::new(benchmarks::by_name("c880").unwrap());
        let placement = Placement::by_level(&circuit);
        let tech = Technology::ptm100();
        let cfg = VariationConfig::ptm100();
        let fm_corr = FactorModel::build(&circuit, &placement, &tech, &cfg).unwrap();
        let fm_ind = FactorModel::build(
            &circuit,
            &placement,
            &tech,
            &cfg.without_spatial_correlation(),
        )
        .unwrap();
        let d = Design::new(circuit, tech);
        let v_corr = Ssta::analyze(&d, &fm_corr).circuit_delay().variance;
        let v_ind = Ssta::analyze(&d, &fm_ind).circuit_delay().variance;
        assert!(v_corr > v_ind, "corr {v_corr} vs ind {v_ind}");
    }
}

#[cfg(test)]
mod criticality_tests {
    use super::*;
    use statleak_netlist::{benchmarks, placement::Placement};
    use statleak_tech::{Technology, VariationConfig};
    use std::sync::Arc;

    fn setup(name: &str) -> (Design, FactorModel) {
        let circuit = Arc::new(benchmarks::by_name(name).unwrap());
        let placement = Placement::by_level(&circuit);
        let tech = Technology::ptm100();
        let fm =
            FactorModel::build(&circuit, &placement, &tech, &VariationConfig::ptm100()).unwrap();
        (Design::new(circuit, tech), fm)
    }

    #[test]
    fn path_through_bounds_circuit_delay() {
        // No node's path-through mean can exceed the circuit-delay mean by
        // more than the max-approximation slack; the best node should be
        // close to it.
        let (d, fm) = setup("c432");
        let ssta = Ssta::analyze(&d, &fm);
        let pts = ssta.path_through(&d, &fm);
        let cd = ssta.circuit_delay().mean;
        let best = pts.iter().map(|p| p.mean).fold(0.0, f64::max);
        assert!(
            best <= cd * 1.02,
            "best path-through {best} vs circuit {cd}"
        );
        assert!(
            best >= cd * 0.98,
            "best path-through {best} vs circuit {cd}"
        );
    }

    #[test]
    fn critical_path_nodes_are_most_critical() {
        let (d, fm) = setup("c880");
        let ssta = Ssta::analyze(&d, &fm);
        let t = ssta.circuit_delay().mean; // ~50% yield point
        let crit = ssta.criticalities(&d, &fm, t);
        let path = ssta.mean_critical_path(&d);
        let max_crit = crit.iter().copied().fold(0.0, f64::max);
        for &u in &path {
            assert!(
                crit[u.index()] > 0.5 * max_crit,
                "critical-path node {u} criticality {} vs max {max_crit}",
                crit[u.index()]
            );
        }
    }

    #[test]
    fn criticality_approximates_one_minus_yield() {
        let (d, fm) = setup("c499");
        let ssta = Ssta::analyze(&d, &fm);
        for k in [1.0, 1.05, 1.1] {
            let t = k * ssta.circuit_delay().mean;
            let crit = ssta.criticalities(&d, &fm, t);
            let max_crit = crit.iter().copied().fold(0.0, f64::max);
            let miss = 1.0 - ssta.timing_yield(t);
            assert!(
                (max_crit - miss).abs() < 0.10 + 0.3 * miss,
                "k={k}: max criticality {max_crit} vs miss rate {miss}"
            );
        }
    }

    #[test]
    fn criticality_monotone_in_clock() {
        let (d, fm) = setup("c432");
        let ssta = Ssta::analyze(&d, &fm);
        let mu = ssta.circuit_delay().mean;
        let tight = ssta.criticalities(&d, &fm, 0.95 * mu);
        let loose = ssta.criticalities(&d, &fm, 1.10 * mu);
        for (t, l) in tight.iter().zip(&loose) {
            assert!(l <= t, "looser clock cannot raise criticality");
        }
    }
}
