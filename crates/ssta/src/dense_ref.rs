//! The historical **dense** canonical-form implementation, kept verbatim as
//! a reference.
//!
//! [`crate::Canonical`] stores shared sensitivities sparsely and must stay
//! *bit-identical* to this dense code path. This module preserves the dense
//! ops exactly as they were before the sparse rewrite so that:
//!
//! * the proptest equivalence suite can check every op (`add`, `max`,
//!   covariance, quantile) bit-for-bit against the reference over random
//!   sparsity patterns, and
//! * the perf harness can measure the sparse speedup against the true
//!   pre-optimization baseline ([`analyze`] reproduces the historical
//!   single-threaded dense full analysis, allocation pattern included).
//!
//! Compiled only for tests and under the `dense-ref` feature — production
//! code must not depend on it.

use statleak_netlist::NodeId;
use statleak_stats::{clark_max, phi_inv};
use statleak_tech::{Design, FactorModel};

/// Dense canonical form `X = mean + Σ_k shared[k]·Z_k + local·R`; the
/// pre-sparse representation with a full-width sensitivity vector.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseCanonical {
    /// Mean value.
    pub mean: f64,
    /// Sensitivities to the shared factors, full width.
    pub shared: Vec<f64>,
    /// Aggregated independent (node-local) sigma, ≥ 0.
    pub local: f64,
    /// Total variance (cached: `Σ shared² + local²`).
    pub variance: f64,
}

impl DenseCanonical {
    /// Creates a dense canonical form from its parts.
    pub fn new(mean: f64, shared: Vec<f64>, local: f64) -> Self {
        assert!(local >= 0.0, "local sigma must be non-negative");
        let variance = shared.iter().map(|a| a * a).sum::<f64>() + local * local;
        Self {
            mean,
            shared,
            local,
            variance,
        }
    }

    /// A deterministic constant in a factor space of the given width.
    pub fn constant(value: f64, num_shared: usize) -> Self {
        Self {
            mean: value,
            shared: vec![0.0; num_shared],
            local: 0.0,
            variance: 0.0,
        }
    }

    /// Standard deviation.
    pub fn std(&self) -> f64 {
        self.variance.sqrt()
    }

    /// The `p`-quantile: `mean + Φ⁻¹(p)·σ` over the dense moments.
    pub fn quantile(&self, p: f64) -> f64 {
        self.mean + phi_inv(p) * self.std()
    }

    /// Covariance over the full dense factor vectors.
    pub fn covariance(&self, other: &DenseCanonical) -> f64 {
        debug_assert_eq!(self.shared.len(), other.shared.len());
        self.shared
            .iter()
            .zip(&other.shared)
            .map(|(a, b)| a * b)
            .sum()
    }

    /// Exact sum, walking the full dense vectors.
    pub fn add(&self, other: &DenseCanonical) -> DenseCanonical {
        debug_assert_eq!(self.shared.len(), other.shared.len());
        let shared: Vec<f64> = self
            .shared
            .iter()
            .zip(&other.shared)
            .map(|(a, b)| a + b)
            .collect();
        let local = (self.local * self.local + other.local * other.local).sqrt();
        DenseCanonical::new(self.mean + other.mean, shared, local)
    }

    /// In-place dense sum.
    pub fn add_assign(&mut self, other: &DenseCanonical) {
        debug_assert_eq!(self.shared.len(), other.shared.len());
        for (a, b) in self.shared.iter_mut().zip(&other.shared) {
            *a += *b;
        }
        let local = (self.local * self.local + other.local * other.local).sqrt();
        self.mean += other.mean;
        self.local = local;
        self.variance = self.shared.iter().map(|a| a * a).sum::<f64>() + local * local;
    }

    /// Clark statistical maximum with tightness blending, dense.
    pub fn stat_max(&self, other: &DenseCanonical) -> DenseCanonical {
        debug_assert_eq!(self.shared.len(), other.shared.len());
        let cov = self.covariance(other);
        let r = clark_max(self.mean, self.variance, other.mean, other.variance, cov);
        let t = r.tightness;
        let shared: Vec<f64> = self
            .shared
            .iter()
            .zip(&other.shared)
            .map(|(a, b)| t * a + (1.0 - t) * b)
            .collect();
        let shared_var: f64 = shared.iter().map(|a| a * a).sum();
        let local = (r.variance - shared_var).max(0.0).sqrt();
        DenseCanonical {
            mean: r.mean,
            shared,
            local,
            variance: (shared_var + local * local).max(r.variance),
        }
    }

    /// In-place dense statistical maximum (single fused pass, as the
    /// historical `stat_max_into`).
    pub fn stat_max_into(&mut self, other: &DenseCanonical) {
        debug_assert_eq!(self.shared.len(), other.shared.len());
        let cov = self.covariance(other);
        let r = clark_max(self.mean, self.variance, other.mean, other.variance, cov);
        let t = r.tightness;
        let mut shared_var = 0.0;
        for (a, b) in self.shared.iter_mut().zip(&other.shared) {
            let s = t * *a + (1.0 - t) * *b;
            *a = s;
            shared_var += s * s;
        }
        let local = (r.variance - shared_var).max(0.0).sqrt();
        self.mean = r.mean;
        self.local = local;
        self.variance = (shared_var + local * local).max(r.variance);
    }

    /// Copies `other` into `self`, reusing the shared allocation.
    pub fn clone_from_canonical(&mut self, other: &DenseCanonical) {
        self.mean = other.mean;
        self.shared.clear();
        self.shared.extend_from_slice(&other.shared);
        self.local = other.local;
        self.variance = other.variance;
    }
}

/// Result of a dense-reference full analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseAnalysis {
    /// Per-node canonical arrival times, dense.
    pub arrival: Vec<DenseCanonical>,
    /// Statistical max over the primary outputs.
    pub circuit_delay: DenseCanonical,
}

/// Dense canonical delay of one gate (historical `gate_delay_canonical`).
pub fn gate_delay_dense(design: &Design, fm: &FactorModel, id: NodeId) -> DenseCanonical {
    let circuit = design.circuit();
    debug_assert!(circuit.kind(id).is_gate(), "inputs have no delay");
    let (d, dd_dl, dd_dvth) = design.library().delay_sensitivities(
        circuit.kind(id),
        circuit.fanin(id).len(),
        design.size(id),
        design.vth(id),
        design.load_cap(id),
    );
    let row = fm.l_shared_dense(id);
    let shared: Vec<f64> = row.iter().map(|a| dd_dl * a).collect();
    let local = ((dd_dl * fm.l_local(id)).powi(2) + (dd_dvth * fm.vth_local(id)).powi(2)).sqrt();
    let variance = shared.iter().map(|a| a * a).sum::<f64>() + local * local;
    DenseCanonical {
        mean: d,
        shared,
        local,
        variance,
    }
}

/// Full single-threaded dense analysis, reproducing the historical
/// `Ssta::analyze` propagation (same topo iteration, same fold orders, same
/// per-gate allocation pattern) over full-width factor vectors.
pub fn analyze(design: &Design, fm: &FactorModel) -> DenseAnalysis {
    let circuit = design.circuit();
    let zero = DenseCanonical::constant(0.0, fm.num_shared());
    let mut arrival = vec![zero; circuit.num_nodes()];
    for &id in circuit.topo_order() {
        if !circuit.kind(id).is_gate() {
            continue;
        }
        let mut fanin = circuit.fanin(id).iter();
        let first = fanin.next().expect("gates have fanin");
        let mut out = DenseCanonical::constant(0.0, fm.num_shared());
        out.clone_from_canonical(&arrival[first.index()]);
        for &f in fanin {
            out.stat_max_into(&arrival[f.index()]);
        }
        let delay = gate_delay_dense(design, fm, id);
        out.add_assign(&delay);
        arrival[id.index()] = out;
    }
    let mut worst = DenseCanonical::constant(0.0, fm.num_shared());
    for &o in circuit.outputs() {
        worst = worst.stat_max(&arrival[o.index()]);
    }
    DenseAnalysis {
        arrival,
        circuit_delay: worst,
    }
}

// Sparse-vs-dense equivalence suite. Lives here (unit tests) rather than
// under `tests/` because the reference is only compiled for the crate's
// own test builds. Every comparison is `==` on f64 — bit-exact for all
// nonzero values; only the invisible sign of a stored zero may differ
// between the two representations.
#[cfg(test)]
mod equivalence {
    use super::DenseCanonical;
    use crate::Canonical;
    use proptest::prelude::*;

    const DIM: usize = 9;

    /// Dense factor vectors where each slot is zero with probability 3/5,
    /// so the sparse side exercises disjoint, overlapping, and empty
    /// patterns.
    fn shared_vec() -> impl Strategy<Value = Vec<f64>> {
        prop::collection::vec((0u8..5, -2.0..2.0f64), DIM).prop_map(|slots| {
            slots
                .into_iter()
                .map(|(sel, x)| if sel < 3 { 0.0 } else { x })
                .collect()
        })
    }

    fn pair() -> impl Strategy<Value = (Canonical, DenseCanonical)> {
        (-100.0..100.0f64, shared_vec(), 0.0..3.0f64).prop_map(|(mean, shared, local)| {
            (
                Canonical::new(mean, shared.clone(), local),
                DenseCanonical::new(mean, shared, local),
            )
        })
    }

    /// Sparse and dense agree on every observable component.
    fn assert_same(s: &Canonical, d: &DenseCanonical) {
        assert_eq!(s.mean, d.mean, "mean");
        assert_eq!(s.local, d.local, "local");
        assert_eq!(s.variance, d.variance, "variance");
        assert_eq!(s.shared_dense(), d.shared, "shared vector");
    }

    proptest! {
        #[test]
        fn construction_is_equivalent((s, d) in pair()) {
            assert_same(&s, &d);
        }

        #[test]
        fn add_is_bit_identical((sa, da) in pair(), (sb, db) in pair()) {
            assert_same(&sa.add(&sb), &da.add(&db));
            let (mut sa, mut da) = (sa, da);
            sa.add_assign(&sb);
            da.add_assign(&db);
            assert_same(&sa, &da);
        }

        #[test]
        fn stat_max_is_bit_identical((sa, da) in pair(), (sb, db) in pair()) {
            assert_same(&sa.stat_max(&sb), &da.stat_max(&db));
            let (mut sa, mut da) = (sa, da);
            sa.stat_max_into(&sb);
            da.stat_max_into(&db);
            assert_same(&sa, &da);
        }

        #[test]
        fn covariance_and_quantile_match((sa, da) in pair(), (sb, db) in pair()) {
            prop_assert_eq!(sa.covariance(&sb), da.covariance(&db));
            prop_assert_eq!(sa.quantile(0.95), da.quantile(0.95));
            prop_assert_eq!(sb.quantile(0.05), db.quantile(0.05));
        }

        #[test]
        fn propagation_style_fold_matches(ops in prop::collection::vec((pair(), any::<bool>()), 1..12)) {
            // Interleave max and add the way arrival propagation does.
            let mut s = Canonical::constant(0.0, DIM);
            let mut d = DenseCanonical::constant(0.0, DIM);
            for ((so, do_), is_max) in &ops {
                if *is_max {
                    s.stat_max_into(so);
                    d.stat_max_into(do_);
                } else {
                    s.add_assign(so);
                    d.add_assign(do_);
                }
                assert_same(&s, &d);
            }
        }
    }
}
