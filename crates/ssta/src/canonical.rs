//! Canonical first-order random timing quantities.

use statleak_stats::{clark_max, phi_inv, Normal, SparseVec};

/// A canonical first-order Gaussian form
/// `X = mean + Σ_k shared[k]·Z_k + local·R` over independent standard
/// normals: the shared process factors `Z_k` and an aggregated
/// node-private term `R`.
///
/// The shared sensitivities are held sparsely: with a quadtree spatial
/// model each gate touches only O(log n) of the factors, and a `max`/`add`
/// over two forms touches only the union of their patterns. All operations
/// are bit-identical to the historical dense implementation (kept in
/// [`crate::dense_ref`] for the equivalence tests and perf baselines); see
/// the [`SparseVec`] module docs for the argument.
#[derive(Debug, Clone, PartialEq)]
pub struct Canonical {
    /// Mean value.
    pub mean: f64,
    /// Sensitivities to the shared factors (sparse over the factor space).
    pub shared: SparseVec,
    /// Aggregated independent (node-local) sigma, ≥ 0.
    pub local: f64,
    /// Total variance (cached: `Σ shared² + local²`).
    pub variance: f64,
}

impl Canonical {
    /// Creates a canonical form from its parts (dense sensitivities;
    /// exact zeros are not stored).
    ///
    /// # Panics
    ///
    /// Panics if `local` is negative.
    pub fn new(mean: f64, shared: Vec<f64>, local: f64) -> Self {
        assert!(local >= 0.0, "local sigma must be non-negative");
        let variance = shared.iter().map(|a| a * a).sum::<f64>() + local * local;
        Self {
            mean,
            shared: SparseVec::from_dense(&shared),
            local,
            variance,
        }
    }

    /// Creates a canonical form directly from a sparse sensitivity vector.
    ///
    /// # Panics
    ///
    /// Panics if `local` is negative.
    pub fn from_sparse(mean: f64, shared: SparseVec, local: f64) -> Self {
        assert!(local >= 0.0, "local sigma must be non-negative");
        let variance = shared.norm2() + local * local;
        Self {
            mean,
            shared,
            local,
            variance,
        }
    }

    /// A deterministic constant in a factor space of the given width.
    pub fn constant(value: f64, num_shared: usize) -> Self {
        Self {
            mean: value,
            shared: SparseVec::zeros(num_shared),
            local: 0.0,
            variance: 0.0,
        }
    }

    /// Width of the shared-factor space this form lives in.
    #[inline]
    pub fn num_shared(&self) -> usize {
        self.shared.dim()
    }

    /// The shared sensitivities as a dense vector (allocates; for tests,
    /// reporting, and Monte-Carlo style dense dot products).
    pub fn shared_dense(&self) -> Vec<f64> {
        self.shared.to_dense()
    }

    /// Standard deviation.
    #[inline]
    pub fn std(&self) -> f64 {
        self.variance.sqrt()
    }

    /// The `p`-quantile of the Gaussian: `mean + Φ⁻¹(p)·σ`.
    pub fn quantile(&self, p: f64) -> f64 {
        self.mean + phi_inv(p) * self.std()
    }

    /// Covariance with another canonical form in the same factor space
    /// (local terms are independent across forms, so only shared factors
    /// contribute).
    ///
    /// # Panics
    ///
    /// Panics (debug) if the factor spaces differ in width.
    pub fn covariance(&self, other: &Canonical) -> f64 {
        self.shared.dot(&other.shared)
    }

    /// Exact sum of two canonical forms (`local` terms add in quadrature —
    /// they are independent by construction).
    pub fn add(&self, other: &Canonical) -> Canonical {
        let mut out = self.clone();
        out.add_assign(other);
        out
    }

    /// In-place sum: `self = self + other`, touching only the union of the
    /// two sparsity patterns. Bit-identical to [`Canonical::add`] — every
    /// intermediate is computed with the same expressions in the same order
    /// — so callers may mix the two freely without perturbing results.
    pub fn add_assign(&mut self, other: &Canonical) {
        self.shared.merge_assign(&other.shared, |a, b| a + b);
        let local = (self.local * self.local + other.local * other.local).sqrt();
        self.mean += other.mean;
        self.local = local;
        self.variance = self.shared.norm2() + local * local;
    }

    /// Statistical maximum via Clark's approximation, re-canonicalized by
    /// tightness-probability blending of the shared sensitivities; the
    /// local term absorbs whatever variance the blend does not explain.
    pub fn stat_max(&self, other: &Canonical) -> Canonical {
        let mut out = self.clone();
        out.stat_max_into(other);
        out
    }

    /// In-place statistical maximum: `self = max(self, other)` without
    /// allocating, touching only the union of the two sparsity patterns.
    /// Bit-identical to [`Canonical::stat_max`] and to the dense reference:
    /// the blend evaluates the dense expression `t·a + (1−t)·b` with a
    /// literal `0.0` for the side a pattern is missing, and `Σ sᵢ²` is the
    /// same ascending-index left fold either way.
    pub fn stat_max_into(&mut self, other: &Canonical) {
        let cov = self.shared.dot(&other.shared);
        let r = clark_max(self.mean, self.variance, other.mean, other.variance, cov);
        let t = r.tightness;
        self.shared
            .merge_assign(&other.shared, |a, b| t * a + (1.0 - t) * b);
        let shared_var = self.shared.norm2();
        let local = (r.variance - shared_var).max(0.0).sqrt();
        self.mean = r.mean;
        self.local = local;
        self.variance = (shared_var + local * local).max(r.variance);
    }

    /// Resets the form to a deterministic constant, keeping the shared
    /// vector's allocation (all sensitivities dropped, width preserved).
    pub fn set_constant(&mut self, value: f64) {
        self.mean = value;
        self.shared.clear();
        self.local = 0.0;
        self.variance = 0.0;
    }

    /// Copies `other` into `self`, reusing `self`'s shared allocation.
    pub fn clone_from_canonical(&mut self, other: &Canonical) {
        self.mean = other.mean;
        self.shared.assign(&other.shared);
        self.local = other.local;
        self.variance = other.variance;
    }

    /// Collapses the canonical form to a plain Gaussian.
    pub fn to_normal(&self) -> Normal {
        Normal::new(self.mean, self.std())
    }
}

impl std::fmt::Display for Canonical {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Canon(mean={:.4}, sigma={:.4})", self.mean, self.std())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn canon(mean: f64, shared: &[f64], local: f64) -> Canonical {
        Canonical::new(mean, shared.to_vec(), local)
    }

    #[test]
    fn add_is_exact() {
        let a = canon(1.0, &[0.1, 0.2], 0.3);
        let b = canon(2.0, &[0.3, -0.1], 0.4);
        let c = a.add(&b);
        assert!((c.mean - 3.0).abs() < 1e-12);
        assert!((c.shared.get(0) - 0.4).abs() < 1e-12);
        assert!((c.shared.get(1) - 0.1).abs() < 1e-12);
        assert!((c.local - 0.5).abs() < 1e-12);
        // Var(A+B) = VarA + VarB + 2Cov.
        let expect = a.variance + b.variance + 2.0 * a.covariance(&b);
        assert!((c.variance - expect).abs() < 1e-12);
    }

    #[test]
    fn covariance_only_shared() {
        let a = canon(0.0, &[0.5, 0.0], 9.0);
        let b = canon(0.0, &[0.5, 1.0], 9.0);
        assert!((a.covariance(&b) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn max_of_dominant_is_dominant() {
        let a = canon(100.0, &[1.0], 0.5);
        let b = canon(0.0, &[0.2], 0.5);
        let m = a.stat_max(&b);
        assert!((m.mean - 100.0).abs() < 1e-6);
        assert!((m.shared.get(0) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn max_variance_never_negative() {
        let a = canon(1.0, &[0.4], 0.0);
        let b = canon(1.0, &[0.4], 0.0);
        let m = a.stat_max(&b);
        assert!(m.variance >= 0.0);
        assert!(m.local >= 0.0);
    }

    #[test]
    fn max_mean_at_least_inputs() {
        let a = canon(3.0, &[0.5, 0.1], 0.2);
        let b = canon(3.1, &[0.1, 0.5], 0.2);
        let m = a.stat_max(&b);
        assert!(m.mean >= 3.1 - 1e-12);
    }

    #[test]
    fn constant_has_zero_variance() {
        let c = Canonical::constant(5.0, 4);
        assert_eq!(c.variance, 0.0);
        assert_eq!(c.num_shared(), 4);
        assert_eq!(c.shared.nnz(), 0);
    }

    #[test]
    fn to_normal_matches_moments() {
        let a = canon(2.0, &[0.3, 0.4], 0.0);
        let n = a.to_normal();
        assert!((n.mean() - 2.0).abs() < 1e-12);
        assert!((n.std() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn quantile_matches_normal() {
        let a = canon(2.0, &[0.3, 0.4], 0.0);
        assert_eq!(a.quantile(0.5), 2.0 + statleak_stats::phi_inv(0.5) * 0.5);
        assert!(a.quantile(0.99) > a.quantile(0.9));
    }

    #[test]
    fn max_against_monte_carlo_correlated() {
        use rand::{Rng, SeedableRng};
        let a = canon(10.0, &[0.8, 0.2], 0.3);
        let b = canon(10.5, &[0.3, 0.6], 0.4);
        let m = a.stat_max(&b);
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let n = 200_000;
        let mut sum = 0.0;
        let mut sum2 = 0.0;
        let draw = |rng: &mut rand::rngs::StdRng| {
            let u1: f64 = rng.gen_range(1e-12..1.0);
            let u2: f64 = rng.gen_range(0.0..1.0);
            (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
        };
        let (sa, sb) = (a.shared_dense(), b.shared_dense());
        for _ in 0..n {
            let z = [draw(&mut rng), draw(&mut rng)];
            let ra = draw(&mut rng);
            let rb = draw(&mut rng);
            let xa = a.mean + sa[0] * z[0] + sa[1] * z[1] + a.local * ra;
            let xb = b.mean + sb[0] * z[0] + sb[1] * z[1] + b.local * rb;
            let x = xa.max(xb);
            sum += x;
            sum2 += x * x;
        }
        let mc_mean = sum / n as f64;
        let mc_var = sum2 / n as f64 - mc_mean * mc_mean;
        assert!((m.mean - mc_mean).abs() < 0.01, "{} vs {}", m.mean, mc_mean);
        assert!(
            (m.variance - mc_var).abs() / mc_var < 0.05,
            "{} vs {}",
            m.variance,
            mc_var
        );
    }

    #[test]
    #[should_panic(expected = "local sigma must be non-negative")]
    fn negative_local_rejected() {
        let _ = Canonical::new(0.0, vec![], -1.0);
    }

    #[test]
    fn add_assign_bit_identical_to_add() {
        let a = canon(1.25, &[0.1, -0.2, 0.37], 0.3);
        let b = canon(2.75, &[0.3, 0.11, -0.05], 0.4);
        let expected = a.add(&b);
        let mut got = a.clone();
        got.add_assign(&b);
        assert_eq!(got, expected); // exact f64 equality, not approximate
    }

    #[test]
    fn stat_max_into_bit_identical_to_stat_max() {
        // Exercise both dominance regimes and a near-tie.
        let cases = [
            (canon(10.0, &[0.8, 0.2], 0.3), canon(10.5, &[0.3, 0.6], 0.4)),
            (canon(100.0, &[1.0, 0.0], 0.5), canon(0.0, &[0.2, 0.1], 0.5)),
            (canon(3.0, &[0.5, 0.1], 0.2), canon(3.0, &[0.5, 0.1], 0.2)),
        ];
        for (a, b) in cases {
            let expected = a.stat_max(&b);
            let mut got = a.clone();
            got.stat_max_into(&b);
            assert_eq!(got, expected, "max({a}, {b})");
        }
    }

    #[test]
    fn disjoint_patterns_merge_like_dense() {
        let a = canon(1.0, &[0.5, 0.0, 0.0, 0.0], 0.1);
        let b = canon(1.2, &[0.0, 0.0, 0.4, 0.3], 0.2);
        let sum = a.add(&b);
        assert_eq!(sum.shared_dense(), vec![0.5, 0.0, 0.4, 0.3]);
        let m = a.stat_max(&b);
        assert_eq!(m.num_shared(), 4);
        assert!(m.variance > 0.0);
    }

    #[test]
    fn set_constant_keeps_width_clears_moments() {
        let mut c = canon(9.0, &[0.4, 0.2], 0.7);
        c.set_constant(1.5);
        assert_eq!(c, Canonical::constant(1.5, 2));
        assert_eq!(c.num_shared(), 2);
    }

    #[test]
    fn clone_from_canonical_copies_exactly() {
        let src = canon(4.0, &[0.6, -0.3], 0.2);
        let mut dst = Canonical::constant(0.0, 2);
        dst.clone_from_canonical(&src);
        assert_eq!(dst, src);
    }
}
