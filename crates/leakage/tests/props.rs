//! Property-based tests for statistical leakage analysis.

use proptest::prelude::*;
use statleak_leakage::LeakageAnalysis;
use statleak_netlist::generate::{generate, GenSpec};
use statleak_netlist::placement::Placement;
use statleak_tech::{Design, FactorModel, Technology, VariationConfig, VthClass};
use std::sync::Arc;

fn setup(seed: u64) -> (Design, FactorModel) {
    let mut spec = GenSpec::new(format!("leak_prop{seed}"), 6, 3, 40, 7);
    spec.seed = seed;
    let circuit = Arc::new(generate(&spec));
    let placement = Placement::by_level(&circuit);
    let tech = Technology::ptm100();
    let fm =
        FactorModel::build(&circuit, &placement, &tech, &VariationConfig::ptm100()).expect("fm");
    (Design::new(circuit, tech), fm)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn incremental_updates_match_fresh_analysis(
        seed in 0u64..300,
        moves in prop::collection::vec((0usize..40, 0usize..4), 1..10),
    ) {
        let (mut design, fm) = setup(seed);
        let mut leak = LeakageAnalysis::analyze(&design, &fm);
        let gates: Vec<_> = design.circuit().gates().collect();
        for (gi, action) in moves {
            let g = gates[gi % gates.len()];
            match action {
                0 => design.set_vth(g, VthClass::High),
                1 => design.set_vth(g, VthClass::Low),
                2 => {
                    if let Some(up) = design.tech().size_up(design.size(g)) {
                        design.set_size(g, up);
                    }
                }
                _ => {
                    if let Some(down) = design.tech().size_down(design.size(g)) {
                        design.set_size(g, down);
                    }
                }
            }
            leak.update_gate(&design, &fm, g);
        }
        let fresh = LeakageAnalysis::analyze(&design, &fm);
        let a = leak.total_current();
        let b = fresh.total_current();
        prop_assert!((a.mean() - b.mean()).abs() / b.mean() < 1e-9);
        prop_assert!((a.sigma() - b.sigma()).abs() < 1e-9);
    }

    #[test]
    fn undo_round_trip_is_identity(seed in 0u64..300, gi in 0usize..40) {
        let (mut design, fm) = setup(seed);
        let mut leak = LeakageAnalysis::analyze(&design, &fm);
        let before = leak.clone();
        let gates: Vec<_> = design.circuit().gates().collect();
        let g = gates[gi % gates.len()];
        design.set_vth(g, VthClass::High);
        let undo = leak.update_gate(&design, &fm, g);
        leak.undo(undo);
        prop_assert_eq!(leak, before);
    }

    #[test]
    fn mean_is_sum_of_gate_means(seed in 0u64..300) {
        let (design, fm) = setup(seed);
        let leak = LeakageAnalysis::analyze(&design, &fm);
        let sum: f64 = design
            .circuit()
            .gates()
            .map(|g| leak.gate_mean_current(g))
            .sum();
        prop_assert!((leak.mean_total_current() - sum).abs() / sum < 1e-12);
        prop_assert!((leak.total_current().mean() - sum).abs() / sum < 1e-9);
    }

    #[test]
    fn correlation_never_shrinks_variance(seed in 0u64..300) {
        let (design, fm) = setup(seed);
        let leak = LeakageAnalysis::analyze(&design, &fm);
        prop_assert!(
            leak.total_current().variance()
                >= leak.total_current_independent().variance() - 1e-24
        );
    }

    #[test]
    fn high_vth_gate_reduces_total(seed in 0u64..300, gi in 0usize..40) {
        let (mut design, fm) = setup(seed);
        let mut leak = LeakageAnalysis::analyze(&design, &fm);
        let before = leak.total_current().quantile(0.95);
        let gates: Vec<_> = design.circuit().gates().collect();
        let g = gates[gi % gates.len()];
        design.set_vth(g, VthClass::High);
        leak.update_gate(&design, &fm, g);
        prop_assert!(leak.total_current().quantile(0.95) < before);
    }
}
