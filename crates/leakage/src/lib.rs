//! Full-chip statistical leakage analysis.
//!
//! Each gate's sub-threshold leakage is an *exact* lognormal in this
//! model (see [`statleak_tech::CellLibrary::ln_leakage`]): its ln-space form is an
//! affine function of the shared channel-length factors plus a gate-local
//! term. The full-chip leakage is the sum of these correlated lognormals.
//!
//! Summation strategy (accuracy *and* speed):
//!
//! 1. gates are grouped by spatial-correlation **region** — by
//!    construction every gate in a region has the *same* ln-space
//!    sensitivity vector, so a region's subtotal keeps that vector and its
//!    first two moments are available in closed form;
//! 2. region subtotals (≤ `grid²` of them) are combined by
//!    Fenton–Wilkinson moment matching ([`statleak_stats::wilkinson_sum`]),
//!    which handles the cross-region correlation through the shared
//!    factors.
//!
//! The analysis maintains per-region running sums, so a single-gate change
//! (Vth swap or resize — the optimizer's moves) is an O(grid²) update with
//! an exact undo, which is what makes statistical-objective greedy
//! optimization tractable.
//!
//! # Example
//!
//! ```
//! use statleak_netlist::{benchmarks, placement::Placement};
//! use statleak_tech::{Design, FactorModel, Technology, VariationConfig};
//! use statleak_leakage::LeakageAnalysis;
//! use std::sync::Arc;
//!
//! let circuit = Arc::new(benchmarks::by_name("c432").expect("known"));
//! let placement = Placement::by_level(&circuit);
//! let tech = Technology::ptm100();
//! let fm = FactorModel::build(&circuit, &placement, &tech, &VariationConfig::ptm100())?;
//! let design = Design::new(circuit, tech);
//! let leak = LeakageAnalysis::analyze(&design, &fm);
//! let total = leak.total_current();
//! // The 95th percentile exceeds the mean: leakage has a heavy upper tail.
//! assert!(total.quantile(0.95) > total.mean());
//! # Ok::<(), statleak_stats::CholeskyError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use statleak_netlist::NodeId;
use statleak_stats::{wilkinson_sum, LogNormal, LognormalTerm};
use statleak_tech::{Design, FactorModel};

/// The per-gate lognormal leakage description in the shared factor basis.
#[derive(Debug, Clone, PartialEq)]
pub struct GateLeakage {
    /// ln-space mean, `ln I_nom`.
    pub mu: f64,
    /// ln-space sensitivities to the shared factors.
    pub shared: Vec<f64>,
    /// ln-space gate-local sigma.
    pub local: f64,
}

impl GateLeakage {
    /// This gate's leakage as a standalone [`LogNormal`] (current, A).
    pub fn to_lognormal(&self) -> LogNormal {
        let v = self.shared.iter().map(|a| a * a).sum::<f64>() + self.local * self.local;
        LogNormal::new(self.mu, v.sqrt())
    }
}

/// Builds the ln-space leakage description of one gate.
pub fn gate_leakage(design: &Design, fm: &FactorModel, id: NodeId) -> GateLeakage {
    let node = design.circuit().node(id);
    debug_assert!(node.kind.is_gate(), "inputs do not leak");
    let (ln_nom, dln_dl, dln_dvth) =
        design
            .library()
            .ln_leakage(node.kind, node.fanin.len(), design.size(id), design.vth(id));
    let mut shared = fm.l_shared_dense(id);
    for a in &mut shared {
        *a *= dln_dl;
    }
    let local = ((dln_dl * fm.l_local(id)).powi(2) + (dln_dvth * fm.vth_local(id)).powi(2)).sqrt();
    GateLeakage {
        mu: ln_nom,
        shared,
        local,
    }
}

/// Undo token for [`LeakageAnalysis::update_gate`]. Snapshots the affected
/// region's running sums so the rollback is bit-exact (no accumulated
/// floating-point drift across long optimizer runs).
#[derive(Debug, Clone, Copy)]
pub struct LeakUndo {
    gate: u32,
    old_mean: f64,
    old_region_sum: f64,
    old_region_sum_sq: f64,
}

/// Full-chip statistical leakage state with incremental updates.
#[derive(Debug, Clone, PartialEq)]
pub struct LeakageAnalysis {
    /// Linear-space mean leakage current of each gate (0 for inputs).
    gate_mean: Vec<f64>,
    /// Region index per gate (cached from the factor model).
    region: Vec<usize>,
    /// Per-region Σ mean and Σ mean².
    region_sum: Vec<f64>,
    region_sum_sq: Vec<f64>,
    /// Per-region ln-space shared coefficient vector (identical for every
    /// gate in the region by construction).
    region_shared: Vec<Vec<f64>>,
    /// ln-space shared variance per region.
    region_v_shared: Vec<f64>,
    /// ln-space gate-local variance (identical for all gates).
    v_local: f64,
    /// Ratio mean/I_nom (constant across gates: `exp(v_total/2)`).
    mean_over_nominal: f64,
}

impl LeakageAnalysis {
    /// Analyzes the design: computes every gate's lognormal and the
    /// region-aggregated summation state.
    pub fn analyze(design: &Design, fm: &FactorModel) -> Self {
        let circuit = design.circuit();
        let n = circuit.num_nodes();
        let num_regions = fm.num_shared() - 1;
        let mut this = Self {
            gate_mean: vec![0.0; n],
            region: vec![0; n],
            region_sum: vec![0.0; num_regions],
            region_sum_sq: vec![0.0; num_regions],
            region_shared: vec![Vec::new(); num_regions],
            region_v_shared: vec![0.0; num_regions],
            v_local: 0.0,
            mean_over_nominal: 1.0,
        };
        let mut v_local_set = false;
        for id in circuit.gates() {
            let gl = gate_leakage(design, fm, id);
            let r = fm.region(id);
            this.region[id.index()] = r;
            if this.region_shared[r].is_empty() {
                this.region_v_shared[r] = gl.shared.iter().map(|a| a * a).sum();
                this.region_shared[r] = gl.shared.clone();
            }
            if !v_local_set {
                this.v_local = gl.local * gl.local;
                v_local_set = true;
            }
            let v_total = this.region_v_shared[r] + this.v_local;
            let mean = (gl.mu + 0.5 * v_total).exp();
            this.gate_mean[id.index()] = mean;
            this.region_sum[r] += mean;
            this.region_sum_sq[r] += mean * mean;
            this.mean_over_nominal = (0.5 * v_total).exp();
        }
        this
    }

    /// The mean leakage current of one gate (A).
    #[inline]
    pub fn gate_mean_current(&self, id: NodeId) -> f64 {
        self.gate_mean[id.index()]
    }

    /// Total chip leakage **current** as a lognormal (A).
    ///
    /// Region subtotals are moment-matched keeping their shared factor
    /// vector; the cross-region sum is a Wilkinson combination.
    pub fn total_current(&self) -> LogNormal {
        let mut terms = Vec::new();
        for r in 0..self.region_sum.len() {
            if self.region_sum[r] <= 0.0 {
                continue;
            }
            let m = self.region_sum[r];
            let m2 = self.region_sum_sq[r];
            let v_sh = self.region_v_shared[r];
            // Exact region second moment: cross terms share v_sh, diagonal
            // adds the local variance.
            let second = v_sh.exp() * (m * m - m2) + (v_sh + self.v_local).exp() * m2;
            let var = (second - m * m).max(0.0);
            let ln_var_total = (1.0 + var / (m * m)).ln();
            let local = (ln_var_total - v_sh).max(0.0).sqrt();
            terms.push(LognormalTerm {
                mu: m.ln() - 0.5 * ln_var_total,
                factor_coeffs: self.region_shared[r].clone(),
                local_coeff: local,
            });
        }
        assert!(!terms.is_empty(), "design has no leaking gates");
        wilkinson_sum(&terms)
    }

    /// Total chip leakage **power** as a lognormal (W), `vdd · I_total`.
    pub fn total_power(&self, design: &Design) -> LogNormal {
        self.total_current().scale(design.tech().vdd)
    }

    /// Ablation: the total-current lognormal if all gates were treated as
    /// mutually independent (shared variance folded into the local term).
    /// Under-estimates the variance — the comparison is experiment A1.
    pub fn total_current_independent(&self) -> LogNormal {
        let mut mean = 0.0;
        let mut var = 0.0;
        for r in 0..self.region_sum.len() {
            if self.region_sum[r] <= 0.0 {
                continue;
            }
            let v_total = self.region_v_shared[r] + self.v_local;
            // Treat every gate as independent lognormal with variance
            // m²(e^{v}−1).
            mean += self.region_sum[r];
            var += self.region_sum_sq[r] * (v_total.exp() - 1.0);
        }
        LogNormal::from_moments(mean, var)
    }

    /// Applies a single-gate change (the gate's nominal leakage changed via
    /// a Vth swap or resize) and returns an undo token.
    ///
    /// Allocation-free: only the ln-space nominal is needed (the gate's
    /// sensitivity vector is a region-level constant already cached in
    /// `region_v_shared`), so this evaluates
    /// [`statleak_tech::CellLibrary::ln_leakage`] directly
    /// instead of building a full [`GateLeakage`].
    pub fn update_gate(&mut self, design: &Design, _fm: &FactorModel, id: NodeId) -> LeakUndo {
        let node = design.circuit().node(id);
        debug_assert!(node.kind.is_gate(), "inputs do not leak");
        let (ln_nom, _, _) = design.library().ln_leakage(
            node.kind,
            node.fanin.len(),
            design.size(id),
            design.vth(id),
        );
        let r = self.region[id.index()];
        let v_total = self.region_v_shared[r] + self.v_local;
        let new_mean = (ln_nom + 0.5 * v_total).exp();
        let old_mean = self.gate_mean[id.index()];
        let undo = LeakUndo {
            gate: id.0,
            old_mean,
            old_region_sum: self.region_sum[r],
            old_region_sum_sq: self.region_sum_sq[r],
        };
        self.region_sum[r] += new_mean - old_mean;
        self.region_sum_sq[r] += new_mean * new_mean - old_mean * old_mean;
        self.gate_mean[id.index()] = new_mean;
        undo
    }

    /// Rolls back an [`LeakageAnalysis::update_gate`] bit-exactly.
    pub fn undo(&mut self, undo: LeakUndo) {
        let i = undo.gate as usize;
        let r = self.region[i];
        self.region_sum[r] = undo.old_region_sum;
        self.region_sum_sq[r] = undo.old_region_sum_sq;
        self.gate_mean[i] = undo.old_mean;
    }

    /// Sum of gate mean currents (the mean of the total, exactly).
    pub fn mean_total_current(&self) -> f64 {
        self.region_sum.iter().sum()
    }

    /// The conditional-mean surrogate of the total current in the shared
    /// factor basis: `E[I_total | shared = z] = Σ_r scale_r · exp(s_rᵀ z)`,
    /// returned as the per-region `(scale_r, s_r)` pairs (empty regions are
    /// skipped). Its expectation over `z ~ N(0, I)` is exactly
    /// [`Self::mean_total_current`] — the property a Monte-Carlo
    /// control variate needs. Gate-local variation is integrated out
    /// (`scale_r` carries the `e^{v_local/2}` factor), so the surrogate is
    /// the best predictor of the sampled total that depends on the shared
    /// factors alone.
    pub fn conditional_mean_surrogate(&self) -> Vec<(f64, Vec<f64>)> {
        (0..self.region_sum.len())
            .filter(|&r| self.region_sum[r] > 0.0)
            .map(|r| {
                let scale = self.region_sum[r] * (-0.5 * self.region_v_shared[r]).exp();
                (scale, self.region_shared[r].clone())
            })
            .collect()
    }

    /// The total-current lognormal **with its factor structure**: the
    /// ln-space sensitivities of `ln I_total` to each shared factor
    /// (mean-weighted first-order attribution) plus a residual local term
    /// sized so the total variance matches the Wilkinson result.
    ///
    /// This is what joint timing/leakage yield needs: the covariance
    /// between circuit delay and `ln I_total` follows from dotting this
    /// vector with the delay canonical's sensitivities.
    pub fn total_current_factored(&self) -> GateLeakage {
        let total = self.total_current();
        let m: f64 = self.mean_total_current();
        assert!(m > 0.0, "design has no leaking gates");
        let num_factors = self.region_shared.iter().map(Vec::len).max().unwrap_or(0);
        let mut shared = vec![0.0; num_factors];
        for r in 0..self.region_sum.len() {
            if self.region_sum[r] <= 0.0 {
                continue;
            }
            let w = self.region_sum[r] / m;
            for (k, &c) in self.region_shared[r].iter().enumerate() {
                shared[k] += w * c;
            }
        }
        let sigma2 = total.sigma() * total.sigma();
        let shared_var: f64 = shared.iter().map(|a| a * a).sum();
        let local = (sigma2 - shared_var).max(0.0).sqrt();
        GateLeakage {
            mu: total.mu(),
            shared,
            local,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use statleak_netlist::{benchmarks, placement::Placement};
    use statleak_tech::{Technology, VariationConfig, VthClass};
    use std::sync::Arc;

    fn setup(name: &str) -> (Design, FactorModel) {
        let circuit = Arc::new(benchmarks::by_name(name).unwrap());
        let placement = Placement::by_level(&circuit);
        let tech = Technology::ptm100();
        let fm =
            FactorModel::build(&circuit, &placement, &tech, &VariationConfig::ptm100()).unwrap();
        (Design::new(circuit, tech), fm)
    }

    #[test]
    fn mean_exceeds_nominal() {
        // E[lognormal] = nominal · e^{v/2} > nominal.
        let (d, fm) = setup("c432");
        let leak = LeakageAnalysis::analyze(&d, &fm);
        let nominal: f64 = d.circuit().gates().map(|g| d.gate_leakage_nominal(g)).sum();
        let mean = leak.mean_total_current();
        assert!(mean > nominal, "{mean} vs nominal {nominal}");
        assert!(mean < nominal * 1.5, "{mean} vs nominal {nominal}");
    }

    #[test]
    fn total_matches_componentwise_mean() {
        let (d, fm) = setup("c880");
        let leak = LeakageAnalysis::analyze(&d, &fm);
        let total = leak.total_current();
        assert!(
            (total.mean() - leak.mean_total_current()).abs() / total.mean() < 1e-9,
            "wilkinson mean must be exact"
        );
    }

    #[test]
    fn correlated_variance_exceeds_independent() {
        let (d, fm) = setup("c880");
        let leak = LeakageAnalysis::analyze(&d, &fm);
        let corr = leak.total_current();
        let ind = leak.total_current_independent();
        assert!((corr.mean() - ind.mean()).abs() / corr.mean() < 1e-9);
        assert!(corr.variance() > ind.variance() * 2.0);
    }

    #[test]
    fn high_vth_reduces_mean_and_p95() {
        let (mut d, fm) = setup("c432");
        let before = LeakageAnalysis::analyze(&d, &fm).total_current();
        let gates: Vec<_> = d.circuit().gates().collect();
        for g in gates {
            d.set_vth(g, VthClass::High);
        }
        let after = LeakageAnalysis::analyze(&d, &fm).total_current();
        assert!(after.mean() < before.mean() / 10.0);
        assert!(after.quantile(0.95) < before.quantile(0.95) / 10.0);
    }

    #[test]
    fn incremental_update_matches_reanalysis() {
        let (mut d, fm) = setup("c499");
        let mut leak = LeakageAnalysis::analyze(&d, &fm);
        let g = d.circuit().gates().nth(17).unwrap();
        d.set_vth(g, VthClass::High);
        leak.update_gate(&d, &fm, g);
        let fresh = LeakageAnalysis::analyze(&d, &fm);
        let a = leak.total_current();
        let b = fresh.total_current();
        assert!((a.mean() - b.mean()).abs() / b.mean() < 1e-12);
        assert!((a.sigma() - b.sigma()).abs() < 1e-12);
    }

    #[test]
    fn undo_restores_exactly() {
        let (mut d, fm) = setup("c499");
        let mut leak = LeakageAnalysis::analyze(&d, &fm);
        let snapshot = leak.clone();
        let g = d.circuit().gates().nth(3).unwrap();
        d.set_size(g, 6.0);
        let undo = leak.update_gate(&d, &fm, g);
        assert_ne!(leak, snapshot);
        leak.undo(undo);
        // Floating-point restoration is exact because we store the old mean.
        assert!((leak.mean_total_current() - snapshot.mean_total_current()).abs() < 1e-18);
        assert_eq!(leak.gate_mean, snapshot.gate_mean);
    }

    #[test]
    fn sigma_over_mean_in_expected_range() {
        // Chip-level sigma/mean for the default budget: partial correlation
        // keeps it well above the independent limit but below single-gate.
        let (d, fm) = setup("c1355");
        let leak = LeakageAnalysis::analyze(&d, &fm);
        let t = leak.total_current();
        let cv = t.std() / t.mean();
        assert!(cv > 0.10 && cv < 0.80, "cv = {cv}");
    }

    #[test]
    fn conditional_mean_surrogate_has_exact_expectation() {
        // E[scale·exp(sᵀz)] = scale·e^{‖s‖²/2}; summed over regions this
        // must reproduce the exact total mean.
        let (d, fm) = setup("c880");
        let leak = LeakageAnalysis::analyze(&d, &fm);
        let expectation: f64 = leak
            .conditional_mean_surrogate()
            .iter()
            .map(|(scale, s)| scale * (0.5 * s.iter().map(|a| a * a).sum::<f64>()).exp())
            .sum();
        let mean = leak.mean_total_current();
        assert!(
            (expectation - mean).abs() / mean < 1e-12,
            "{expectation} vs {mean}"
        );
    }

    #[test]
    fn power_is_vdd_times_current() {
        let (d, fm) = setup("c17");
        let leak = LeakageAnalysis::analyze(&d, &fm);
        let i = leak.total_current();
        let p = leak.total_power(&d);
        assert!((p.mean() - i.mean() * d.tech().vdd).abs() < 1e-18);
    }

    #[test]
    fn against_monte_carlo() {
        // Sample the exact per-gate lognormals through the factor model and
        // compare the analytical total to the empirical distribution.
        use rand::{Rng, SeedableRng};
        let (d, fm) = setup("c432");
        let leak = LeakageAnalysis::analyze(&d, &fm);
        let analytic = leak.total_current();

        let gates: Vec<_> = d.circuit().gates().collect();
        let gls: Vec<GateLeakage> = gates.iter().map(|&g| gate_leakage(&d, &fm, g)).collect();
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        let draw = |rng: &mut rand::rngs::StdRng| {
            let u1: f64 = rng.gen_range(1e-12..1.0);
            let u2: f64 = rng.gen_range(0.0..1.0);
            (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
        };
        let n = 20_000;
        let mut samples = Vec::with_capacity(n);
        for _ in 0..n {
            let z: Vec<f64> = (0..fm.num_shared()).map(|_| draw(&mut rng)).collect();
            let mut total = 0.0;
            for gl in &gls {
                let g: f64 = gl.shared.iter().zip(&z).map(|(a, zz)| a * zz).sum();
                total += (gl.mu + g + gl.local * draw(&mut rng)).exp();
            }
            samples.push(total);
        }
        samples.sort_by(f64::total_cmp);
        let mc_mean = samples.iter().sum::<f64>() / n as f64;
        let mc_p95 = samples[(0.95 * n as f64) as usize];
        assert!(
            (analytic.mean() - mc_mean).abs() / mc_mean < 0.02,
            "mean {} vs MC {}",
            analytic.mean(),
            mc_mean
        );
        assert!(
            (analytic.quantile(0.95) - mc_p95).abs() / mc_p95 < 0.05,
            "p95 {} vs MC {}",
            analytic.quantile(0.95),
            mc_p95
        );
    }
}
