//! Joint parametric yield: timing **and** leakage together.
//!
//! A die is sellable only if it both meets the clock and stays inside its
//! leakage-power budget. Because circuit delay and `ln I_total` are driven
//! by the same channel-length factors with *opposite* signs (short
//! channels are fast and leaky), the two constraints are strongly
//! anti-correlated: the dies that fail leakage are concentrated among the
//! dies that pass timing most comfortably. The joint yield is therefore
//! well below the product of the marginals — and well modeled by a
//! bivariate normal over `(D, ln I)` in the shared factor basis. This
//! module computes it analytically and the Monte-Carlo engine provides the
//! empirical cross-check (experiment T5 in `EXPERIMENTS.md`).

use statleak_leakage::LeakageAnalysis;
use statleak_ssta::Ssta;
use statleak_stats::bivariate_normal_cdf;
use statleak_tech::{Design, FactorModel};

/// Analytical joint timing/leakage yield model for one design.
#[derive(Debug, Clone)]
pub struct JointYield {
    delay_mean: f64,
    delay_sigma: f64,
    ln_leak_mu: f64,
    ln_leak_sigma: f64,
    /// Correlation between circuit delay and `ln I_total`.
    correlation: f64,
}

impl JointYield {
    /// Builds the joint model from fresh SSTA and leakage analyses.
    pub fn analyze(design: &Design, fm: &FactorModel) -> Self {
        let ssta = Ssta::analyze(design, fm);
        let leak = LeakageAnalysis::analyze(design, fm);
        Self::from_parts(&ssta, &leak)
    }

    /// Builds the joint model from existing analyses (e.g. inside an
    /// optimizer loop where both are maintained incrementally).
    pub fn from_parts(ssta: &Ssta, leak: &LeakageAnalysis) -> Self {
        let d = ssta.circuit_delay();
        let l = leak.total_current_factored();
        // Cov(D, ln I) through the shared factors only.
        let cov: f64 = d.shared.dot_dense(&l.shared);
        let ds = d.std();
        let ls = (l.shared.iter().map(|a| a * a).sum::<f64>() + l.local * l.local).sqrt();
        let correlation = if ds == 0.0 || ls == 0.0 {
            0.0
        } else {
            (cov / (ds * ls)).clamp(-1.0, 1.0)
        };
        Self {
            delay_mean: d.mean,
            delay_sigma: ds,
            ln_leak_mu: l.mu,
            ln_leak_sigma: ls,
            correlation,
        }
    }

    /// The modeled correlation between circuit delay and `ln I_total`
    /// (strongly negative in this technology).
    pub fn correlation(&self) -> f64 {
        self.correlation
    }

    /// Marginal timing yield `P(D ≤ t_clk)`.
    pub fn timing_yield(&self, t_clk: f64) -> f64 {
        if self.delay_sigma == 0.0 {
            return if self.delay_mean <= t_clk { 1.0 } else { 0.0 };
        }
        statleak_stats::phi((t_clk - self.delay_mean) / self.delay_sigma)
    }

    /// Marginal leakage yield `P(I_total ≤ i_max)` for a current budget in
    /// amperes.
    ///
    /// # Panics
    ///
    /// Panics if `i_max` is not strictly positive.
    pub fn leakage_yield(&self, i_max: f64) -> f64 {
        assert!(i_max > 0.0, "leakage budget must be positive");
        if self.ln_leak_sigma == 0.0 {
            return if self.ln_leak_mu <= i_max.ln() {
                1.0
            } else {
                0.0
            };
        }
        statleak_stats::phi((i_max.ln() - self.ln_leak_mu) / self.ln_leak_sigma)
    }

    /// Joint parametric yield `P(D ≤ t_clk ∧ I_total ≤ i_max)` from the
    /// bivariate-normal model of `(D, ln I_total)`.
    ///
    /// # Panics
    ///
    /// Panics if `i_max` is not strictly positive.
    pub fn joint_yield(&self, t_clk: f64, i_max: f64) -> f64 {
        assert!(i_max > 0.0, "leakage budget must be positive");
        if self.delay_sigma == 0.0 || self.ln_leak_sigma == 0.0 {
            return self.timing_yield(t_clk) * self.leakage_yield(i_max);
        }
        let zx = (t_clk - self.delay_mean) / self.delay_sigma;
        let zy = (i_max.ln() - self.ln_leak_mu) / self.ln_leak_sigma;
        bivariate_normal_cdf(zx, zy, self.correlation)
    }

    /// The leakage budget (A) at which the joint yield reaches `eta`,
    /// given the clock, found by bisection on the budget.
    ///
    /// Returns `None` if even an unbounded leakage budget (i.e. the
    /// timing yield alone) cannot reach `eta`.
    pub fn budget_for_yield(&self, t_clk: f64, eta: f64) -> Option<f64> {
        if self.timing_yield(t_clk) < eta {
            return None;
        }
        let mut lo = (self.ln_leak_mu - 10.0 * self.ln_leak_sigma).exp();
        let mut hi = (self.ln_leak_mu + 10.0 * self.ln_leak_sigma).exp();
        for _ in 0..200 {
            let mid = (lo * hi).sqrt(); // geometric bisection: budget is log-scaled
            if self.joint_yield(t_clk, mid) >= eta {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        Some(hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use statleak_mc::{McConfig, MonteCarlo};
    use statleak_netlist::{benchmarks, placement::Placement};
    use statleak_tech::{Technology, VariationConfig};
    use std::sync::Arc;

    fn setup(name: &str) -> (Design, FactorModel) {
        let circuit = Arc::new(benchmarks::by_name(name).unwrap());
        let placement = Placement::by_level(&circuit);
        let tech = Technology::ptm100();
        let fm =
            FactorModel::build(&circuit, &placement, &tech, &VariationConfig::ptm100()).unwrap();
        (Design::new(circuit, tech), fm)
    }

    #[test]
    fn correlation_is_strongly_negative() {
        let (d, fm) = setup("c880");
        let j = JointYield::analyze(&d, &fm);
        assert!(
            j.correlation() < -0.4,
            "delay and ln-leak must be anti-correlated, got {}",
            j.correlation()
        );
    }

    #[test]
    fn joint_below_product_of_marginals() {
        // With negative correlation, meeting both constraints is harder
        // than independence predicts when both cuts bind.
        let (d, fm) = setup("c432");
        let j = JointYield::analyze(&d, &fm);
        let ssta = Ssta::analyze(&d, &fm);
        let t = ssta.clock_for_yield(0.90);
        let leak = LeakageAnalysis::analyze(&d, &fm).total_current();
        let i_max = leak.quantile(0.90);
        let joint = j.joint_yield(t, i_max);
        let product = j.timing_yield(t) * j.leakage_yield(i_max);
        assert!(
            joint < product - 0.005,
            "joint {joint} vs product {product}"
        );
    }

    #[test]
    fn joint_matches_monte_carlo() {
        let (d, fm) = setup("c499");
        let j = JointYield::analyze(&d, &fm);
        let mc = MonteCarlo::new(McConfig {
            samples: 4000,
            ..Default::default()
        })
        .run(&d, &fm);
        let ssta = Ssta::analyze(&d, &fm);
        let t = ssta.clock_for_yield(0.95);
        let leak = LeakageAnalysis::analyze(&d, &fm).total_current();
        for q in [0.80, 0.90, 0.97] {
            let i_max = leak.quantile(q);
            let analytic = j.joint_yield(t, i_max);
            let empirical = mc.joint_yield(t, i_max);
            assert!(
                (analytic - empirical).abs() < 0.04,
                "q={q}: analytic {analytic} vs MC {empirical}"
            );
        }
    }

    #[test]
    fn marginals_recovered_at_loose_budgets() {
        let (d, fm) = setup("c432");
        let j = JointYield::analyze(&d, &fm);
        let ssta = Ssta::analyze(&d, &fm);
        let t = ssta.clock_for_yield(0.9);
        let huge_budget = 1.0; // 1 A is effectively unconstrained
        assert!((j.joint_yield(t, huge_budget) - j.timing_yield(t)).abs() < 1e-6);
    }

    #[test]
    fn budget_for_yield_inverts() {
        let (d, fm) = setup("c432");
        let j = JointYield::analyze(&d, &fm);
        let ssta = Ssta::analyze(&d, &fm);
        let t = ssta.clock_for_yield(0.99);
        let budget = j.budget_for_yield(t, 0.90).expect("feasible");
        assert!((j.joint_yield(t, budget) - 0.90).abs() < 1e-4);
        // Infeasible when timing alone is below target.
        let tight = ssta.clock_for_yield(0.50);
        assert!(j.budget_for_yield(tight, 0.90).is_none());
    }
}
