//! End-to-end flows and reporting for the `statleak` reproduction.
//!
//! This crate assembles the substrates into the experiments the paper
//! reports:
//!
//! * [`flows::prepare`] — benchmark → placement → factor model → minimum
//!   delay → clock target;
//! * [`flows::run_comparison`] — the headline three-way comparison at
//!   equal timing yield: unoptimized baseline vs the guard-banded
//!   deterministic flow vs the statistical flow (table T2);
//! * [`flows::sweep_delay_target`], [`flows::sweep_sigma`] — parameter
//!   sweeps (table T3, figures F2/F4);
//! * [`flows::yield_curves`] — yield-vs-clock curves (figure F3);
//! * [`flows::mc_validation`] — analytical-vs-Monte-Carlo accuracy
//!   (table T4);
//! * [`flows::distribution`] — leakage histograms before/after
//!   optimization (figure F1);
//! * [`flows::ablation`] — modeling ablations (experiment A1);
//! * [`joint::JointYield`] — joint timing+leakage parametric yield
//!   (experiment T5), an extension beyond the paper's single-constraint
//!   formulation;
//! * [`report`] — fixed-width console tables and CSV writers used by the
//!   `repro` binary.
//!
//! # Example
//!
//! ```
//! use statleak_core::flows::{self, FlowConfig};
//!
//! let cfg = FlowConfig::builder("c17").mc_samples(200).build()?;
//! let setup = flows::prepare(&cfg)?;
//! let outcome = flows::run_comparison_on(&setup, &cfg)?;
//! // Statistical optimization never loses to deterministic at equal yield.
//! assert!(outcome.statistical.leakage_p95 <= outcome.deterministic.leakage_p95 * 1.0001);
//! # Ok::<(), statleak_core::FlowError>(())
//! ```
//!
//! Long-lived processes that issue many requests should go through
//! `statleak-engine`, whose `Engine` caches prepared setups (and memoizes
//! flow results) behind a content-hash key; the free functions here re-run
//! [`flows::prepare`] on every call.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod flows;
pub mod joint;
pub mod report;

pub use flows::{
    ComparisonOutcome, ConfigError, DesignMetrics, FlowConfig, FlowConfigBuilder, FlowError,
    LibraryErrorClass, LibrarySpec, McSpec, SweepSpec,
};
pub use joint::JointYield;
