//! Console tables and CSV writers for the experiment harness.

use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// A simple fixed-width console table.
///
/// ```
/// use statleak_core::report::Table;
/// let mut t = Table::new(&["circuit", "p95 (uW)"]);
/// t.row(&["c432".to_string(), "12.3".to_string()]);
/// let s = t.render();
/// assert!(s.contains("c432"));
/// assert!(s.lines().count() >= 3);
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Self {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header count.
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row has {} cells, table has {} columns",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells.to_vec());
    }

    /// Renders the table with padded columns and a separator line.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut width = vec![0usize; cols];
        for (i, h) in self.headers.iter().enumerate() {
            width[i] = h.chars().count();
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                width[i] = width[i].max(c.chars().count());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], width: &[usize], out: &mut String| {
            for (i, c) in cells.iter().enumerate() {
                let pad = width[i] - c.chars().count();
                let _ = write!(out, "{}{}", c, " ".repeat(pad));
                if i + 1 < cells.len() {
                    out.push_str("  ");
                }
            }
            out.push('\n');
        };
        fmt_row(&self.headers, &width, &mut out);
        let total: usize = width.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            fmt_row(row, &width, &mut out);
        }
        out
    }

    /// Appends a structured failure row: the first column carries `label`,
    /// every remaining column a `-` placeholder. The repro harness uses
    /// this to keep a failed circuit visible in tables and CSVs without
    /// aborting the rest of the suite.
    pub fn failure_row(&mut self, label: &str) {
        let mut cells = vec![label.to_string()];
        cells.resize(self.headers.len().max(1), "-".to_string());
        self.rows.push(cells);
    }

    /// The number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Serializes the table as CSV (headers first).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let esc = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }

    /// Writes the CSV form to a file, creating parent directories.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn write_csv(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, self.to_csv())
    }
}

/// Formats a power value in engineering units (W → µW/nW as appropriate).
pub fn fmt_power(w: f64) -> String {
    if w >= 1e-3 {
        format!("{:.3} mW", w * 1e3)
    } else if w >= 1e-6 {
        format!("{:.3} uW", w * 1e6)
    } else {
        format!("{:.3} nW", w * 1e9)
    }
}

/// Formats a fraction as a percentage with one decimal.
pub fn fmt_pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["a", "bbbb"]);
        t.row(&["xx".into(), "y".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0].len(), lines[2].len());
    }

    #[test]
    fn csv_escapes_commas() {
        let mut t = Table::new(&["x"]);
        t.row(&["a,b".into()]);
        assert!(t.to_csv().contains("\"a,b\""));
    }

    #[test]
    fn csv_round_trips_headers() {
        let t = Table::new(&["p95 (uW)", "yield"]);
        assert!(t.to_csv().starts_with("p95 (uW),yield\n"));
        assert!(t.is_empty());
    }

    #[test]
    fn power_units() {
        assert_eq!(fmt_power(2.5e-3), "2.500 mW");
        assert_eq!(fmt_power(2.5e-6), "2.500 uW");
        assert_eq!(fmt_power(2.5e-9), "2.500 nW");
    }

    #[test]
    fn pct_format() {
        assert_eq!(fmt_pct(0.1234), "12.3%");
    }

    #[test]
    #[should_panic(expected = "row has 1 cells")]
    fn row_arity_checked() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["only".into()]);
    }
}

/// Renders a sign-off-style path timing report for the `k` worst paths:
/// per-stage delay increments, cell bindings (kind, size, Vth), arrival
/// totals, and slack against the clock.
pub fn timing_report(
    design: &statleak_tech::Design,
    sta: &statleak_sta::Sta,
    t_clk: f64,
    k: usize,
) -> String {
    let mut out = String::new();
    let circuit = design.circuit();
    for (pi, path) in sta.top_paths(design, k).iter().enumerate() {
        let (Some(&first), Some(&last)) = (path.nodes.first(), path.nodes.last()) else {
            continue;
        };
        let start = circuit.name_of(first);
        let end = circuit.name_of(last);
        let _ = writeln!(
            out,
            "Path {} — startpoint {start} (input), endpoint {end} (output)",
            pi + 1
        );
        let _ = writeln!(
            out,
            "  {:<12} {:<18} {:>10} {:>10}",
            "point", "cell", "incr(ps)", "path(ps)"
        );
        let mut total = 0.0;
        for &u in &path.nodes {
            let node = circuit.node(u);
            if node.kind.is_gate() {
                let d = design.gate_delay_nominal(u);
                total += d;
                let cell = format!(
                    "{}{} X{} {}",
                    node.kind,
                    node.fanin.len(),
                    design.size(u),
                    design.vth(u)
                );
                let _ = writeln!(
                    out,
                    "  {:<12} {:<18} {:>10.2} {:>10.2}",
                    node.name, cell, d, total
                );
            } else {
                let _ = writeln!(
                    out,
                    "  {:<12} {:<18} {:>10.2} {:>10.2}",
                    node.name, "(input)", 0.0, 0.0
                );
            }
        }
        let _ = writeln!(out, "  arrival {total:>38.2}");
        let _ = writeln!(out, "  required {t_clk:>37.2}");
        let _ = writeln!(out, "  slack {:>40.2}\n", t_clk - total);
    }
    out
}

#[cfg(test)]
mod timing_report_tests {
    use super::*;
    use statleak_netlist::benchmarks;
    use statleak_sta::Sta;
    use statleak_tech::{Design, Technology};
    use std::sync::Arc;

    #[test]
    fn report_contains_paths_and_slack() {
        let design = Design::new(
            Arc::new(benchmarks::by_name("c432").unwrap()),
            Technology::ptm100(),
        );
        let sta = Sta::analyze(&design);
        let t = sta.circuit_delay() * 1.1;
        let text = timing_report(&design, &sta, t, 3);
        assert_eq!(text.matches("Path ").count(), 3);
        assert!(text.contains("slack"));
        assert!(text.contains("(input)"));
        // Worst path slack = t - circuit delay.
        let expect = t - sta.circuit_delay();
        assert!(text.contains(&format!("{expect:.2}")));
    }

    #[test]
    fn report_cells_show_bindings() {
        let design = Design::new(Arc::new(benchmarks::c17()), Technology::ptm100());
        let sta = Sta::analyze(&design);
        let text = timing_report(&design, &sta, 100.0, 1);
        assert!(text.contains("NAND2 X1 L"));
    }
}
