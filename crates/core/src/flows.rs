//! The experiment flows.

use statleak_leakage::LeakageAnalysis;
use statleak_mc::{McConfig, MonteCarlo};
use statleak_netlist::{benchmarks, placement::Placement, Circuit};
use statleak_opt::{deterministic_for_yield, sizing, statistical_for_yield};
use statleak_ssta::Ssta;
use statleak_stats::{CholeskyError, Histogram};
use statleak_tech::{Design, FactorModel, Technology, VariationConfig};
use std::sync::Arc;
use std::time::Instant;

/// Errors surfaced by the flows.
#[derive(Debug, Clone, PartialEq)]
pub enum FlowError {
    /// The named benchmark does not exist.
    UnknownBenchmark(String),
    /// The spatial-correlation matrix failed to factor.
    Correlation(CholeskyError),
    /// A sizing step could not reach its target.
    Sizing(statleak_opt::SizeError),
}

impl FlowError {
    /// A stable machine-readable class name for this error, used by the
    /// repro harness to record structured failure rows and by the CLI to
    /// pick exit codes. The names are part of the output format
    /// (`results/failures.csv`) and must not change between releases.
    pub fn class(&self) -> &'static str {
        match self {
            FlowError::UnknownBenchmark(_) => "unknown-benchmark",
            FlowError::Correlation(_) => "correlation",
            FlowError::Sizing(_) => "infeasible",
        }
    }
}

impl std::fmt::Display for FlowError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FlowError::UnknownBenchmark(n) => write!(f, "unknown benchmark `{n}`"),
            FlowError::Correlation(e) => write!(f, "correlation model: {e}"),
            FlowError::Sizing(e) => write!(f, "sizing: {e}"),
        }
    }
}

impl std::error::Error for FlowError {}

impl From<CholeskyError> for FlowError {
    fn from(e: CholeskyError) -> Self {
        FlowError::Correlation(e)
    }
}

impl From<statleak_opt::SizeError> for FlowError {
    fn from(e: statleak_opt::SizeError) -> Self {
        FlowError::Sizing(e)
    }
}

/// Configuration of one experiment flow.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowConfig {
    /// Benchmark name (see [`statleak_netlist::benchmarks::SUITE`]).
    pub benchmark: String,
    /// Clock target as a multiple of the minimum achievable delay.
    pub slack_factor: f64,
    /// Timing-yield requirement `η`.
    pub eta: f64,
    /// Variation model.
    pub variation: VariationConfig,
    /// Monte-Carlo samples used for validation metrics (0 = skip MC).
    pub mc_samples: usize,
    /// Install placement-driven wire loads
    /// ([`statleak_tech::wire::wire_caps_from_placement`]) instead of the
    /// fixed-stub-only load model.
    pub wire_loads: bool,
}

impl FlowConfig {
    /// The default experiment configuration for a benchmark:
    /// `T = 1.20·Dmin`, `η = 0.95`, the 100 nm variation budget, and
    /// 2000 Monte-Carlo samples.
    pub fn new(benchmark: impl Into<String>) -> Self {
        Self {
            benchmark: benchmark.into(),
            slack_factor: 1.20,
            eta: 0.95,
            variation: VariationConfig::ptm100(),
            mc_samples: 2000,
            wire_loads: false,
        }
    }

    /// A fast configuration for tests and doc examples (few MC samples).
    pub fn quick(benchmark: impl Into<String>) -> Self {
        Self {
            mc_samples: 200,
            ..Self::new(benchmark)
        }
    }
}

/// Prepared experiment state: circuit, factor model, delay targets.
#[derive(Debug, Clone)]
pub struct Setup {
    /// The benchmark circuit.
    pub circuit: Arc<Circuit>,
    /// The factor model for the configured variation.
    pub fm: FactorModel,
    /// An unsized all-low-Vth base design.
    pub base: Design,
    /// Minimum achievable (nominal) delay, ps.
    pub dmin: f64,
    /// The clock target `slack_factor · dmin`, ps.
    pub t_clk: f64,
}

/// Builds the experiment state for a configuration.
///
/// # Errors
///
/// Returns [`FlowError::UnknownBenchmark`] or a correlation-model error.
pub fn prepare(cfg: &FlowConfig) -> Result<Setup, FlowError> {
    // Combinational suite first, then the sequential (FF-cut) suite.
    let circuit = benchmarks::by_name(&cfg.benchmark)
        .or_else(|| benchmarks::sequential_by_name(&cfg.benchmark).map(|(c, _)| c))
        .ok_or_else(|| FlowError::UnknownBenchmark(cfg.benchmark.clone()))?;
    let circuit = Arc::new(circuit);
    let placement = Placement::by_level(&circuit);
    let tech = Technology::ptm100();
    let fm = FactorModel::build(&circuit, &placement, &tech, &cfg.variation)?;
    let mut base = Design::new(Arc::clone(&circuit), tech);
    if cfg.wire_loads {
        base.set_wire_caps(statleak_tech::wire::wire_caps_from_placement(
            &circuit,
            &placement,
            &statleak_tech::wire::WireModel::ptm100(),
        ));
    }
    let dmin = sizing::min_delay_estimate(&base);
    Ok(Setup {
        circuit,
        fm,
        base,
        dmin,
        t_clk: dmin * cfg.slack_factor,
    })
}

/// Metrics of one optimized (or baseline) design.
#[derive(Debug, Clone, PartialEq)]
pub struct DesignMetrics {
    /// Nominal (no-variation) total leakage power, W.
    pub leakage_nominal: f64,
    /// Mean of the total leakage-power lognormal, W.
    pub leakage_mean: f64,
    /// 95th percentile of the total leakage-power lognormal, W.
    pub leakage_p95: f64,
    /// Analytical (SSTA) timing yield at the clock target.
    pub timing_yield: f64,
    /// Empirical Monte-Carlo yield (`None` if MC was skipped).
    pub mc_yield: Option<f64>,
    /// Empirical Monte-Carlo 95th-percentile leakage power, W.
    pub mc_leakage_p95: Option<f64>,
    /// Total gate width (area proxy).
    pub width: f64,
    /// Gates assigned high Vth.
    pub high_vth: usize,
    /// Optimization wall-clock time, seconds.
    pub runtime_s: f64,
}

/// Measures a design against the clock target (and optionally MC).
pub fn measure(
    design: &Design,
    fm: &FactorModel,
    t_clk: f64,
    mc_samples: usize,
    runtime_s: f64,
) -> DesignMetrics {
    let ssta = Ssta::analyze(design, fm);
    let power = LeakageAnalysis::analyze(design, fm).total_power(design);
    let (mc_yield, mc_p95) = if mc_samples > 0 {
        let mc = MonteCarlo::new(McConfig {
            samples: mc_samples,
            ..Default::default()
        })
        .run(design, fm);
        let vdd = design.tech().vdd;
        (
            Some(mc.timing_yield(t_clk)),
            Some(mc.leakage_percentile(0.95) * vdd),
        )
    } else {
        (None, None)
    };
    DesignMetrics {
        leakage_nominal: design.total_leakage_power_nominal(),
        leakage_mean: power.mean(),
        leakage_p95: power.quantile(0.95),
        timing_yield: ssta.timing_yield(t_clk),
        mc_yield,
        mc_leakage_p95: mc_p95,
        width: design.total_width(),
        high_vth: design.high_vth_count(),
        runtime_s,
    }
}

/// Outcome of the headline three-way comparison (table T2).
#[derive(Debug, Clone, PartialEq)]
pub struct ComparisonOutcome {
    /// Benchmark name.
    pub benchmark: String,
    /// Minimum achievable delay, ps.
    pub dmin: f64,
    /// Clock target, ps.
    pub t_clk: f64,
    /// All-low-Vth design sized for the yield target (no optimization).
    pub baseline: DesignMetrics,
    /// Guard-banded deterministic dual-Vth + sizing at yield ≥ η.
    pub deterministic: DesignMetrics,
    /// Statistical dual-Vth + sizing at yield ≥ η.
    pub statistical: DesignMetrics,
    /// Guard band the deterministic flow selected.
    pub det_guard_band: f64,
    /// Extra saving of statistical over deterministic on p95 leakage,
    /// `1 − p95_stat / p95_det`.
    pub stat_extra_saving: f64,
}

/// Runs the headline comparison: baseline vs deterministic vs statistical
/// at equal timing yield `η`.
///
/// # Errors
///
/// Returns [`FlowError`] on unknown benchmarks or infeasible sizing.
pub fn run_comparison(cfg: &FlowConfig) -> Result<ComparisonOutcome, FlowError> {
    let setup = prepare(cfg)?;
    let Setup {
        fm,
        base,
        dmin,
        t_clk,
        ..
    } = setup;

    // Baseline: size for the yield target, no leakage optimization.
    let t0 = Instant::now();
    let mut baseline = base.clone();
    sizing::size_for_yield(&mut baseline, &fm, t_clk, cfg.eta)?;
    let m_base = measure(
        &baseline,
        &fm,
        t_clk,
        cfg.mc_samples,
        t0.elapsed().as_secs_f64(),
    );

    // Deterministic flow (best guard band for the yield target).
    let t0 = Instant::now();
    let det = deterministic_for_yield(&base, &fm, t_clk, cfg.eta, 6)?;
    let m_det = measure(
        &det.design,
        &fm,
        t_clk,
        cfg.mc_samples,
        t0.elapsed().as_secs_f64(),
    );

    // Statistical flow.
    let t0 = Instant::now();
    let stat = statistical_for_yield(&base, &fm, t_clk, cfg.eta)?;
    let m_stat = measure(
        &stat.design,
        &fm,
        t_clk,
        cfg.mc_samples,
        t0.elapsed().as_secs_f64(),
    );

    let extra = 1.0 - m_stat.leakage_p95 / m_det.leakage_p95;
    Ok(ComparisonOutcome {
        benchmark: cfg.benchmark.clone(),
        dmin,
        t_clk,
        baseline: m_base,
        deterministic: m_det,
        statistical: m_stat,
        det_guard_band: det.guard_band,
        stat_extra_saving: extra,
    })
}

/// One point of a delay-target sweep (table T3 / figure F2).
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// The swept parameter value (slack factor or sigma).
    pub x: f64,
    /// Deterministic p95 leakage power, W.
    pub det_p95: f64,
    /// Statistical p95 leakage power, W.
    pub stat_p95: f64,
    /// Timing yield the deterministic flow actually achieved (can fall
    /// short of `η` at very tight clocks, where no guard band suffices).
    pub det_yield: f64,
    /// Timing yield the statistical flow achieved.
    pub stat_yield: f64,
    /// Extra saving of statistical over deterministic (only an
    /// equal-yield comparison when both yields reach `η`).
    pub extra_saving: f64,
}

/// Sweeps the clock target tightness (T3 / F2): for each slack factor,
/// runs both flows at yield `η` and reports p95 leakage.
///
/// # Errors
///
/// Propagates [`FlowError`]; individual infeasible points are skipped.
pub fn sweep_delay_target(
    cfg: &FlowConfig,
    slack_factors: &[f64],
) -> Result<Vec<SweepPoint>, FlowError> {
    let mut out = Vec::new();
    for &sf in slack_factors {
        let point_cfg = FlowConfig {
            slack_factor: sf,
            mc_samples: 0,
            ..cfg.clone()
        };
        match run_comparison(&point_cfg) {
            Ok(o) => out.push(SweepPoint {
                x: sf,
                det_p95: o.deterministic.leakage_p95,
                stat_p95: o.statistical.leakage_p95,
                det_yield: o.deterministic.timing_yield,
                stat_yield: o.statistical.timing_yield,
                extra_saving: o.stat_extra_saving,
            }),
            Err(FlowError::Sizing(_)) => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(out)
}

/// Sweeps the channel-length variation magnitude (F4).
///
/// # Errors
///
/// Propagates [`FlowError`]; individual infeasible points are skipped.
pub fn sweep_sigma(cfg: &FlowConfig, sigmas: &[f64]) -> Result<Vec<SweepPoint>, FlowError> {
    let mut out = Vec::new();
    for &s in sigmas {
        let point_cfg = FlowConfig {
            variation: cfg.variation.with_sigma_l(s),
            mc_samples: 0,
            ..cfg.clone()
        };
        match run_comparison(&point_cfg) {
            Ok(o) => out.push(SweepPoint {
                x: s,
                det_p95: o.deterministic.leakage_p95,
                stat_p95: o.statistical.leakage_p95,
                det_yield: o.deterministic.timing_yield,
                stat_yield: o.statistical.timing_yield,
                extra_saving: o.stat_extra_saving,
            }),
            Err(FlowError::Sizing(_)) => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(out)
}

/// Yield-vs-clock curves for the three designs (figure F3). Returns
/// `(t_over_dmin, baseline, deterministic, statistical)` rows.
///
/// # Errors
///
/// Propagates [`FlowError`].
pub fn yield_curves(
    cfg: &FlowConfig,
    t_grid: &[f64],
) -> Result<Vec<(f64, f64, f64, f64)>, FlowError> {
    let setup = prepare(cfg)?;
    let mut baseline = setup.base.clone();
    sizing::size_for_yield(&mut baseline, &setup.fm, setup.t_clk, cfg.eta)?;
    let det = deterministic_for_yield(&setup.base, &setup.fm, setup.t_clk, cfg.eta, 6)?;
    let stat = statistical_for_yield(&setup.base, &setup.fm, setup.t_clk, cfg.eta)?;
    let ssta_b = Ssta::analyze(&baseline, &setup.fm);
    let ssta_d = Ssta::analyze(&det.design, &setup.fm);
    let ssta_s = Ssta::analyze(&stat.design, &setup.fm);
    Ok(t_grid
        .iter()
        .map(|&k| {
            let t = k * setup.dmin;
            (
                k,
                ssta_b.timing_yield(t),
                ssta_d.timing_yield(t),
                ssta_s.timing_yield(t),
            )
        })
        .collect())
}

/// Analytical-vs-Monte-Carlo validation of SSTA and the leakage lognormal
/// (table T4).
#[derive(Debug, Clone, PartialEq)]
pub struct McValidation {
    /// Benchmark name.
    pub benchmark: String,
    /// SSTA delay mean, ps.
    pub ssta_mean: f64,
    /// MC delay mean, ps.
    pub mc_mean: f64,
    /// SSTA delay sigma, ps.
    pub ssta_sigma: f64,
    /// MC delay sigma, ps.
    pub mc_sigma: f64,
    /// SSTA yield at the clock target.
    pub ssta_yield: f64,
    /// MC yield at the clock target.
    pub mc_yield: f64,
    /// Analytical leakage-power mean, W.
    pub leak_mean: f64,
    /// MC leakage-power mean, W.
    pub mc_leak_mean: f64,
    /// Analytical leakage-power p95, W.
    pub leak_p95: f64,
    /// MC leakage-power p95, W.
    pub mc_leak_p95: f64,
}

/// Runs the T4 validation on the *sized baseline* design of a benchmark.
///
/// # Errors
///
/// Propagates [`FlowError`].
pub fn mc_validation(cfg: &FlowConfig) -> Result<McValidation, FlowError> {
    let setup = prepare(cfg)?;
    let mut design = setup.base.clone();
    sizing::size_for_yield(&mut design, &setup.fm, setup.t_clk, cfg.eta)?;
    let ssta = Ssta::analyze(&design, &setup.fm);
    let power = LeakageAnalysis::analyze(&design, &setup.fm).total_power(&design);
    let mc = MonteCarlo::new(McConfig {
        samples: cfg.mc_samples.max(100),
        ..Default::default()
    })
    .run(&design, &setup.fm);
    let vdd = design.tech().vdd;
    let d = ssta.circuit_delay();
    let md = mc.delay_summary();
    let ml = mc.leakage_summary();
    Ok(McValidation {
        benchmark: cfg.benchmark.clone(),
        ssta_mean: d.mean,
        mc_mean: md.mean,
        ssta_sigma: d.std(),
        mc_sigma: md.std,
        ssta_yield: ssta.timing_yield(setup.t_clk),
        mc_yield: mc.timing_yield(setup.t_clk),
        leak_mean: power.mean(),
        mc_leak_mean: ml.mean * vdd,
        leak_p95: power.quantile(0.95),
        mc_leak_p95: ml.p95 * vdd,
    })
}

/// Leakage-distribution data for figure F1: the baseline and the
/// statistically optimized design, each with an MC histogram and the
/// analytical lognormal parameters.
#[derive(Debug, Clone)]
pub struct DistributionData {
    /// MC leakage-power samples of the sized baseline (W).
    pub baseline_samples: Vec<f64>,
    /// MC leakage-power samples of the optimized design (W).
    pub optimized_samples: Vec<f64>,
    /// Analytical lognormal of the baseline leakage power.
    pub baseline_analytic: statleak_stats::LogNormal,
    /// Analytical lognormal of the optimized leakage power.
    pub optimized_analytic: statleak_stats::LogNormal,
}

impl DistributionData {
    /// Histogram of the baseline samples.
    pub fn baseline_histogram(&self, bins: usize) -> Histogram {
        Histogram::from_samples(&self.baseline_samples, bins)
    }

    /// Histogram of the optimized samples.
    pub fn optimized_histogram(&self, bins: usize) -> Histogram {
        Histogram::from_samples(&self.optimized_samples, bins)
    }
}

/// Produces the F1 distribution data.
///
/// # Errors
///
/// Propagates [`FlowError`].
pub fn distribution(cfg: &FlowConfig) -> Result<DistributionData, FlowError> {
    let setup = prepare(cfg)?;
    let mut baseline = setup.base.clone();
    sizing::size_for_yield(&mut baseline, &setup.fm, setup.t_clk, cfg.eta)?;
    let stat = statistical_for_yield(&setup.base, &setup.fm, setup.t_clk, cfg.eta)?;
    let vdd = setup.base.tech().vdd;
    let run = |d: &Design| -> Vec<f64> {
        MonteCarlo::new(McConfig {
            samples: cfg.mc_samples.max(100),
            ..Default::default()
        })
        .run(d, &setup.fm)
        .chips()
        .iter()
        .map(|c| c.leakage * vdd)
        .collect()
    };
    Ok(DistributionData {
        baseline_samples: run(&baseline),
        optimized_samples: run(&stat.design),
        baseline_analytic: LeakageAnalysis::analyze(&baseline, &setup.fm).total_power(&baseline),
        optimized_analytic: LeakageAnalysis::analyze(&stat.design, &setup.fm)
            .total_power(&stat.design),
    })
}

/// One ablation row (experiment A1).
#[derive(Debug, Clone, PartialEq)]
pub struct AblationRow {
    /// Which model variant.
    pub variant: String,
    /// Circuit-delay sigma under the variant, ps.
    pub delay_sigma: f64,
    /// Leakage-power p95 under the variant, W.
    pub leak_p95: f64,
    /// Leakage sigma/mean under the variant.
    pub leak_cv: f64,
}

/// Runs the modeling ablations on the sized baseline design: full model,
/// no spatial correlation, no Vth–L coupling, and independent-sum leakage.
///
/// # Errors
///
/// Propagates [`FlowError`].
pub fn ablation(cfg: &FlowConfig) -> Result<Vec<AblationRow>, FlowError> {
    let setup = prepare(cfg)?;
    let mut design = setup.base.clone();
    sizing::size_for_yield(&mut design, &setup.fm, setup.t_clk, cfg.eta)?;
    let placement = Placement::by_level(&setup.circuit);
    let mut rows = Vec::new();

    let mut add = |variant: &str, fm: &FactorModel, d: &Design, independent: bool| {
        let ssta = Ssta::analyze(d, fm);
        let leak = LeakageAnalysis::analyze(d, fm);
        let power = if independent {
            leak.total_current_independent().scale(d.tech().vdd)
        } else {
            leak.total_power(d)
        };
        rows.push(AblationRow {
            variant: variant.to_string(),
            delay_sigma: ssta.circuit_delay().std(),
            leak_p95: power.quantile(0.95),
            leak_cv: power.std() / power.mean(),
        });
    };

    add("full model", &setup.fm, &design, false);

    let fm_nospatial = FactorModel::build(
        &setup.circuit,
        &placement,
        design.tech(),
        &cfg.variation.without_spatial_correlation(),
    )?;
    add("no spatial correlation", &fm_nospatial, &design, false);

    let mut tech_nocouple = design.tech().clone();
    tech_nocouple.vth_l_coeff = 0.0;
    let fm_nc = FactorModel::build(&setup.circuit, &placement, &tech_nocouple, &cfg.variation)?;
    let design_nc = {
        let mut d = Design::new(Arc::clone(&setup.circuit), tech_nocouple);
        // Copy the baseline's implementation state.
        for g in design.circuit().gates() {
            d.set_size(g, design.size(g));
            d.set_vth(g, design.vth(g));
        }
        d
    };
    add("no Vth-L coupling", &fm_nc, &design_nc, false);

    add("independent-sum leakage", &setup.fm, &design, true);

    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prepare_rejects_unknown() {
        let cfg = FlowConfig::quick("c9999");
        assert!(matches!(prepare(&cfg), Err(FlowError::UnknownBenchmark(_))));
    }

    #[test]
    fn comparison_on_c432_shows_statistical_win() {
        let cfg = FlowConfig {
            mc_samples: 0,
            ..FlowConfig::new("c432")
        };
        let o = run_comparison(&cfg).unwrap();
        // Both optimizers beat the baseline massively.
        assert!(o.deterministic.leakage_p95 < o.baseline.leakage_p95 * 0.7);
        assert!(o.statistical.leakage_p95 < o.baseline.leakage_p95 * 0.7);
        // Statistical wins at equal yield.
        assert!(
            o.stat_extra_saving > 0.0,
            "extra saving {}",
            o.stat_extra_saving
        );
        assert!(o.statistical.timing_yield >= cfg.eta - 1e-9);
        assert!(o.deterministic.timing_yield >= cfg.eta - 1e-9);
    }

    #[test]
    fn sweep_reports_monotone_pressure() {
        let cfg = FlowConfig {
            mc_samples: 0,
            ..FlowConfig::new("c432")
        };
        let pts = sweep_delay_target(&cfg, &[1.10, 1.30]).unwrap();
        assert_eq!(pts.len(), 2);
        // Looser clock → lower leakage for both flows.
        assert!(pts[1].det_p95 <= pts[0].det_p95 * 1.01);
        assert!(pts[1].stat_p95 <= pts[0].stat_p95 * 1.01);
    }

    #[test]
    fn yield_curves_monotone() {
        let cfg = FlowConfig {
            mc_samples: 0,
            ..FlowConfig::quick("c432")
        };
        let rows = yield_curves(&cfg, &[1.0, 1.1, 1.2, 1.3]).unwrap();
        for w in rows.windows(2) {
            assert!(w[1].1 >= w[0].1);
            assert!(w[1].2 >= w[0].2);
            assert!(w[1].3 >= w[0].3);
        }
    }

    #[test]
    fn mc_validation_errors_small() {
        let cfg = FlowConfig {
            mc_samples: 1500,
            ..FlowConfig::new("c432")
        };
        let v = mc_validation(&cfg).unwrap();
        assert!((v.ssta_mean - v.mc_mean).abs() / v.mc_mean < 0.03);
        assert!((v.leak_mean - v.mc_leak_mean).abs() / v.mc_leak_mean < 0.05);
        assert!((v.leak_p95 - v.mc_leak_p95).abs() / v.mc_leak_p95 < 0.10);
        assert!((v.ssta_yield - v.mc_yield).abs() < 0.07);
    }

    #[test]
    fn ablation_shows_expected_ordering() {
        let cfg = FlowConfig {
            mc_samples: 0,
            ..FlowConfig::quick("c432")
        };
        let rows = ablation(&cfg).unwrap();
        assert_eq!(rows.len(), 4);
        let by = |name: &str| rows.iter().find(|r| r.variant == name).unwrap().clone();
        let full = by("full model");
        // Removing spatial correlation shrinks both delay and leakage
        // spread (independent averaging).
        assert!(by("no spatial correlation").delay_sigma < full.delay_sigma);
        assert!(by("independent-sum leakage").leak_cv < full.leak_cv);
        // Removing the Vth-L coupling shrinks the leakage spread.
        assert!(by("no Vth-L coupling").leak_cv < full.leak_cv);
    }

    #[test]
    fn distribution_samples_present() {
        let cfg = FlowConfig::quick("c17");
        let d = distribution(&cfg).unwrap();
        assert_eq!(d.baseline_samples.len(), 200);
        assert_eq!(d.optimized_samples.len(), 200);
        // Optimization shifts the distribution left.
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(mean(&d.optimized_samples) < mean(&d.baseline_samples));
    }
}
