//! The experiment flows.

use statleak_leakage::LeakageAnalysis;
use statleak_mc::{McConfig, MonteCarlo, SamplingScheme, VarianceReduction, DEFAULT_CI_Z};
use statleak_netlist::{benchmarks, placement::Placement, Circuit};
use statleak_obs as obs;
use statleak_opt::{deterministic_for_yield, sizing, statistical_for_yield};
use statleak_ssta::Ssta;
use statleak_stats::{BinomialInterval, CholeskyError, Histogram};
use statleak_tech::liberty::LibertyLoadError;
use statleak_tech::{
    CellLibrary, Design, FactorModel, LibertyLibrary, Technology, VariationConfig,
};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

/// A configuration value rejected by [`FlowConfigBuilder::build`].
///
/// Carries the offending field name and a human-readable requirement so
/// callers (the CLI, the serve protocol) can surface precise diagnostics.
#[derive(Debug, Clone, PartialEq)]
pub struct ConfigError {
    /// The builder field that failed validation.
    pub field: &'static str,
    /// What the field requires and what was supplied instead.
    pub message: String,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "`{}` {}", self.field, self.message)
    }
}

impl std::error::Error for ConfigError {}

/// Which cell library a flow evaluates through.
///
/// The default is [`LibrarySpec::Builtin`] — the technology's closed-form
/// models, whose results are bit-identical to every release before the
/// library abstraction existed. [`LibrarySpec::Liberty`] substitutes a
/// characterized `.lib` file (NLDM tables, `when`-conditioned leakage),
/// optionally resolved at a named process corner from the sibling-file
/// corner set (`mylib_ss.lib` next to `mylib.lib`).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum LibrarySpec {
    /// The technology's built-in closed-form models (reference semantics).
    #[default]
    Builtin,
    /// A Liberty `.lib` file loaded through
    /// [`statleak_tech::LibertyLibrary`].
    Liberty {
        /// Path to the base `.lib` file.
        path: PathBuf,
        /// Corner name (`ss`, `ff`, ...); `None` or `tt` selects the base
        /// file itself.
        corner: Option<String>,
    },
}

impl LibrarySpec {
    /// Parses the CLI/protocol spelling `path[,corner=<name>]`.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] for an empty path or an unknown option.
    pub fn parse(spec: &str) -> Result<Self, ConfigError> {
        let mut parts = spec.split(',');
        let path = parts.next().unwrap_or("").trim();
        if path.is_empty() {
            return Err(ConfigError {
                field: "library",
                message: "must start with a `.lib` file path".into(),
            });
        }
        let mut corner = None;
        for part in parts {
            let part = part.trim();
            match part.strip_prefix("corner=") {
                Some(c) if !c.is_empty() => corner = Some(c.to_ascii_lowercase()),
                _ => {
                    return Err(ConfigError {
                        field: "library",
                        message: format!("unknown option `{part}` (expected `corner=<name>`)"),
                    })
                }
            }
        }
        Ok(LibrarySpec::Liberty {
            path: PathBuf::from(path),
            corner,
        })
    }

    /// A stable one-line rendering (`builtin` or
    /// `liberty:<path>[,corner=<name>]`), the inverse of
    /// [`LibrarySpec::parse`] up to the `liberty:` prefix.
    pub fn describe(&self) -> String {
        match self {
            LibrarySpec::Builtin => "builtin".into(),
            LibrarySpec::Liberty { path, corner } => match corner {
                Some(c) => format!("liberty:{},corner={c}", path.display()),
                None => format!("liberty:{}", path.display()),
            },
        }
    }

    /// Resolves the spec into a live [`CellLibrary`] for a technology.
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::Library`] when the `.lib` file cannot be
    /// read, parsed, or resolved at the requested corner.
    pub fn build(&self, tech: &Technology) -> Result<Arc<dyn CellLibrary>, FlowError> {
        match self {
            LibrarySpec::Builtin => Ok(Arc::new(statleak_tech::BuiltinLibrary::new(tech.clone()))),
            LibrarySpec::Liberty { path, corner } => {
                let lib = LibertyLibrary::load(path, corner.as_deref(), tech.clone())?;
                Ok(Arc::new(lib))
            }
        }
    }
}

/// Failure class of a [`FlowError::Library`], used by the CLI to pick the
/// exit code (I/O vs parse vs usage).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LibraryErrorClass {
    /// The `.lib` file could not be read.
    Io,
    /// The `.lib` file failed to lex, parse, or decode (the message
    /// carries the line/column).
    Parse,
    /// The requested corner is not in the discovered corner set.
    UnknownCorner,
}

/// Errors surfaced by the flows.
///
/// Marked `#[non_exhaustive]`: downstream matches must keep a wildcard arm
/// so new failure classes can be added without a semver-major bump.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum FlowError {
    /// The named benchmark does not exist.
    UnknownBenchmark(String),
    /// The spatial-correlation matrix failed to factor.
    Correlation(CholeskyError),
    /// A sizing step could not reach its target.
    Sizing(statleak_opt::SizeError),
    /// A [`FlowConfig`] field failed builder validation.
    Config(ConfigError),
    /// The configured cell library could not be loaded.
    Library {
        /// Failure class (I/O vs parse vs unknown corner).
        class: LibraryErrorClass,
        /// Human-readable diagnostic, including the path and (for parse
        /// failures) the line/column.
        message: String,
    },
}

impl FlowError {
    /// A stable machine-readable class name for this error, used by the
    /// repro harness to record structured failure rows and by the CLI to
    /// pick exit codes. The names are part of the output format
    /// (`results/failures.csv`) and must not change between releases.
    pub fn class(&self) -> &'static str {
        match self {
            FlowError::UnknownBenchmark(_) => "unknown-benchmark",
            FlowError::Correlation(_) => "correlation",
            FlowError::Sizing(_) => "infeasible",
            FlowError::Config(_) => "config",
            FlowError::Library { class, .. } => match class {
                LibraryErrorClass::Io => "library-io",
                LibraryErrorClass::Parse => "library-parse",
                LibraryErrorClass::UnknownCorner => "library-corner",
            },
        }
    }
}

impl std::fmt::Display for FlowError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FlowError::UnknownBenchmark(n) => write!(f, "unknown benchmark `{n}`"),
            FlowError::Correlation(e) => write!(f, "correlation model: {e}"),
            FlowError::Sizing(e) => write!(f, "sizing: {e}"),
            FlowError::Config(e) => write!(f, "config: {e}"),
            FlowError::Library { message, .. } => write!(f, "library: {message}"),
        }
    }
}

impl std::error::Error for FlowError {}

impl From<CholeskyError> for FlowError {
    fn from(e: CholeskyError) -> Self {
        FlowError::Correlation(e)
    }
}

impl From<statleak_opt::SizeError> for FlowError {
    fn from(e: statleak_opt::SizeError) -> Self {
        FlowError::Sizing(e)
    }
}

impl From<ConfigError> for FlowError {
    fn from(e: ConfigError) -> Self {
        FlowError::Config(e)
    }
}

impl From<LibertyLoadError> for FlowError {
    fn from(e: LibertyLoadError) -> Self {
        let class = match &e {
            LibertyLoadError::Io { .. } => LibraryErrorClass::Io,
            LibertyLoadError::UnknownCorner { .. } => LibraryErrorClass::UnknownCorner,
            _ => LibraryErrorClass::Parse,
        };
        FlowError::Library {
            class,
            message: e.to_string(),
        }
    }
}

/// Configuration of one experiment flow.
///
/// Construct it with [`FlowConfig::builder`], which validates every knob
/// at [`FlowConfigBuilder::build`]. The struct is `#[non_exhaustive]` so
/// knobs can be added without breaking downstream crates; fields remain
/// `pub` for reading.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct FlowConfig {
    /// Benchmark name (see [`statleak_netlist::benchmarks::SUITE`]).
    pub benchmark: String,
    /// Clock target as a multiple of the minimum achievable delay.
    pub slack_factor: f64,
    /// Timing-yield requirement `η`.
    pub eta: f64,
    /// Variation model.
    pub variation: VariationConfig,
    /// Monte-Carlo samples used for validation metrics (0 = skip MC).
    pub mc_samples: usize,
    /// Sampler and variance-reduction layers for the validation MC (plain
    /// seeded sampling by default; see [`SamplingScheme`]).
    pub mc_sampling: SamplingScheme,
    /// Base seed of the validation MC sub-streams.
    pub mc_seed: u64,
    /// Install placement-driven wire loads
    /// ([`statleak_tech::wire::wire_caps_from_placement`]) instead of the
    /// fixed-stub-only load model.
    pub wire_loads: bool,
    /// The cell library every evaluation path reads through
    /// ([`LibrarySpec::Builtin`] by default).
    pub library: LibrarySpec,
}

impl FlowConfig {
    /// Starts a fluent builder with the default experiment knobs:
    /// `T = 1.20·Dmin`, `η = 0.95`, the 100 nm variation budget, and
    /// 2000 Monte-Carlo samples.
    ///
    /// ```
    /// use statleak_core::flows::FlowConfig;
    /// let cfg = FlowConfig::builder("c432")
    ///     .slack_factor(1.3)
    ///     .mc_samples(0)
    ///     .build()?;
    /// assert_eq!(cfg.benchmark, "c432");
    /// # Ok::<(), statleak_core::flows::ConfigError>(())
    /// ```
    pub fn builder(benchmark: impl Into<String>) -> FlowConfigBuilder {
        FlowConfigBuilder {
            benchmark: benchmark.into(),
            slack_factor: 1.20,
            eta: 0.95,
            variation: VariationConfig::ptm100(),
            mc_samples: 2000,
            mc_sampling: SamplingScheme::default(),
            mc_seed: McConfig::default().seed,
            wire_loads: false,
            library: LibrarySpec::Builtin,
        }
    }

    /// Re-opens this configuration as a builder (for derived configs).
    pub fn to_builder(&self) -> FlowConfigBuilder {
        FlowConfigBuilder {
            benchmark: self.benchmark.clone(),
            slack_factor: self.slack_factor,
            eta: self.eta,
            variation: self.variation.clone(),
            mc_samples: self.mc_samples,
            mc_sampling: self.mc_sampling,
            mc_seed: self.mc_seed,
            wire_loads: self.wire_loads,
            library: self.library.clone(),
        }
    }

    /// The default experiment configuration for a benchmark (see
    /// [`FlowConfig::builder`] for the values).
    #[deprecated(note = "use FlowConfig::builder()")]
    pub fn new(benchmark: impl Into<String>) -> Self {
        Self::builder(benchmark).unvalidated()
    }

    /// A fast configuration for tests and doc examples (few MC samples).
    #[deprecated(note = "use FlowConfig::builder().mc_samples(200)")]
    pub fn quick(benchmark: impl Into<String>) -> Self {
        Self {
            mc_samples: 200,
            ..Self::builder(benchmark).unvalidated()
        }
    }
}

/// Fluent, validating builder for [`FlowConfig`].
///
/// Setters store raw values; [`FlowConfigBuilder::build`] applies the same
/// range checks the CLI enforces on its flags (slack factor ≥ 1, yield in
/// the open unit interval, positive finite variation sigmas) and reports
/// the first violation as a typed [`ConfigError`].
#[derive(Debug, Clone)]
pub struct FlowConfigBuilder {
    benchmark: String,
    slack_factor: f64,
    eta: f64,
    variation: VariationConfig,
    mc_samples: usize,
    mc_sampling: SamplingScheme,
    mc_seed: u64,
    wire_loads: bool,
    library: LibrarySpec,
}

impl FlowConfigBuilder {
    /// Clock target as a multiple of the minimum achievable delay.
    pub fn slack_factor(mut self, slack_factor: f64) -> Self {
        self.slack_factor = slack_factor;
        self
    }

    /// Timing-yield requirement `η`.
    pub fn eta(mut self, eta: f64) -> Self {
        self.eta = eta;
        self
    }

    /// Full variation model override.
    pub fn variation(mut self, variation: VariationConfig) -> Self {
        self.variation = variation;
        self
    }

    /// Shortcut: rescale the channel-length sigma of the current
    /// variation model (keeps the d2d/spatial/local split).
    pub fn sigma_l(mut self, sigma_l_rel: f64) -> Self {
        self.variation = self.variation.with_sigma_l(sigma_l_rel);
        self
    }

    /// Monte-Carlo samples used for validation metrics (0 = skip MC).
    pub fn mc_samples(mut self, mc_samples: usize) -> Self {
        self.mc_samples = mc_samples;
        self
    }

    /// Sampler and variance-reduction layers for the validation MC
    /// (e.g. `"sobol+is"`; see [`SamplingScheme`]).
    pub fn mc_sampler(mut self, mc_sampling: SamplingScheme) -> Self {
        self.mc_sampling = mc_sampling;
        self
    }

    /// Base seed of the validation MC sub-streams.
    pub fn mc_seed(mut self, mc_seed: u64) -> Self {
        self.mc_seed = mc_seed;
        self
    }

    /// Install placement-driven wire loads instead of fixed stubs.
    pub fn wire_loads(mut self, wire_loads: bool) -> Self {
        self.wire_loads = wire_loads;
        self
    }

    /// The cell library every evaluation path reads through (see
    /// [`LibrarySpec`]; builtin closed forms by default).
    pub fn library(mut self, library: LibrarySpec) -> Self {
        self.library = library;
        self
    }

    /// Validates every knob and produces the [`FlowConfig`].
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] naming the first out-of-range field.
    pub fn build(self) -> Result<FlowConfig, ConfigError> {
        fn positive_finite(field: &'static str, x: f64) -> Result<(), ConfigError> {
            if x.is_finite() && x > 0.0 {
                Ok(())
            } else {
                Err(ConfigError {
                    field,
                    message: format!("must be a positive finite number, got {x}"),
                })
            }
        }
        if self.benchmark.is_empty() {
            return Err(ConfigError {
                field: "benchmark",
                message: "must name a circuit (see `statleak benchmarks`)".into(),
            });
        }
        if !(self.slack_factor.is_finite() && self.slack_factor >= 1.0) {
            return Err(ConfigError {
                field: "slack_factor",
                message: format!(
                    "must be >= 1.0 (a multiple of Dmin), got {}",
                    self.slack_factor
                ),
            });
        }
        if !(self.eta.is_finite() && self.eta > 0.0 && self.eta < 1.0) {
            return Err(ConfigError {
                field: "eta",
                message: format!("must be a yield in (0, 1), got {}", self.eta),
            });
        }
        positive_finite("variation.sigma_l_rel", self.variation.sigma_l_rel)?;
        positive_finite("variation.corr_length", self.variation.corr_length)?;
        if !(self.variation.sigma_vth_rand.is_finite() && self.variation.sigma_vth_rand >= 0.0) {
            return Err(ConfigError {
                field: "variation.sigma_vth_rand",
                message: format!(
                    "must be a non-negative finite voltage, got {}",
                    self.variation.sigma_vth_rand
                ),
            });
        }
        for (field, frac) in [
            ("variation.frac_d2d", self.variation.frac_d2d),
            ("variation.frac_spatial", self.variation.frac_spatial),
            ("variation.frac_local", self.variation.frac_local),
        ] {
            if !(frac.is_finite() && (0.0..=1.0).contains(&frac)) {
                return Err(ConfigError {
                    field,
                    message: format!("must be a variance fraction in [0, 1], got {frac}"),
                });
            }
        }
        if self.variation.grid == 0 || self.variation.grid > 64 {
            return Err(ConfigError {
                field: "variation.grid",
                message: format!("must be in 1..=64, got {}", self.variation.grid),
            });
        }
        Ok(self.unvalidated())
    }

    /// Assembles the config without validation (crate-internal: used by the
    /// known-good default constructors).
    fn unvalidated(self) -> FlowConfig {
        FlowConfig {
            benchmark: self.benchmark,
            slack_factor: self.slack_factor,
            eta: self.eta,
            variation: self.variation,
            mc_samples: self.mc_samples,
            mc_sampling: self.mc_sampling,
            mc_seed: self.mc_seed,
            wire_loads: self.wire_loads,
            library: self.library,
        }
    }
}

/// Prepared experiment state: circuit, factor model, delay targets.
#[derive(Debug, Clone)]
pub struct Setup {
    /// The benchmark circuit.
    pub circuit: Arc<Circuit>,
    /// The factor model for the configured variation.
    pub fm: FactorModel,
    /// An unsized all-low-Vth base design.
    pub base: Design,
    /// Minimum achievable (nominal) delay, ps.
    pub dmin: f64,
    /// The clock target `slack_factor · dmin`, ps.
    pub t_clk: f64,
}

/// Builds the experiment state for a configuration.
///
/// # Errors
///
/// Returns [`FlowError::UnknownBenchmark`], a correlation-model error, or
/// [`FlowError::Library`] when a configured `.lib` file fails to load.
pub fn prepare(cfg: &FlowConfig) -> Result<Setup, FlowError> {
    let _span = obs::span!("flow.prepare");
    // Combinational suite first, then the sequential (FF-cut) suite.
    let circuit = benchmarks::by_name(&cfg.benchmark)
        .or_else(|| benchmarks::sequential_by_name(&cfg.benchmark).map(|(c, _)| c))
        .ok_or_else(|| FlowError::UnknownBenchmark(cfg.benchmark.clone()))?;
    let circuit = Arc::new(circuit);
    let placement = Placement::by_level(&circuit);
    let tech = Technology::ptm100();
    let fm = FactorModel::build(&circuit, &placement, &tech, &cfg.variation)?;
    let library = cfg.library.build(&tech)?;
    let mut base = Design::with_library(Arc::clone(&circuit), tech, library);
    if cfg.wire_loads {
        base.set_wire_caps(statleak_tech::wire::wire_caps_from_placement(
            &circuit,
            &placement,
            &statleak_tech::wire::WireModel::ptm100(),
        ));
    }
    let dmin = sizing::min_delay_estimate(&base);
    Ok(Setup {
        circuit,
        fm,
        base,
        dmin,
        t_clk: dmin * cfg.slack_factor,
    })
}

/// Metrics of one optimized (or baseline) design.
#[derive(Debug, Clone, PartialEq)]
pub struct DesignMetrics {
    /// Nominal (no-variation) total leakage power, W.
    pub leakage_nominal: f64,
    /// Mean of the total leakage-power lognormal, W.
    pub leakage_mean: f64,
    /// 95th percentile of the total leakage-power lognormal, W.
    pub leakage_p95: f64,
    /// Analytical (SSTA) timing yield at the clock target.
    pub timing_yield: f64,
    /// Empirical Monte-Carlo yield (`None` if MC was skipped).
    pub mc_yield: Option<f64>,
    /// 95% confidence interval on the MC yield: Wilson score for the
    /// counting estimator, normal-theory for the weighted/adjusted
    /// estimators (`None` if MC was skipped).
    pub mc_yield_ci: Option<BinomialInterval>,
    /// Empirical Monte-Carlo 95th-percentile leakage power, W.
    pub mc_leakage_p95: Option<f64>,
    /// Total gate width (area proxy).
    pub width: f64,
    /// Gates assigned high Vth.
    pub high_vth: usize,
    /// Optimization wall-clock time, seconds.
    pub runtime_s: f64,
}

/// The validation-MC knobs [`measure`] honors, extracted from a
/// [`FlowConfig`] (or assembled directly for one-off measurements).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct McSpec {
    /// Sample count (0 = skip MC).
    pub samples: usize,
    /// Sampler and variance-reduction layers.
    pub sampling: SamplingScheme,
    /// Base seed of the sub-streams.
    pub seed: u64,
}

impl McSpec {
    /// Plain seeded sampling with the default seed — the historical
    /// `measure` behavior.
    pub fn plain(samples: usize) -> Self {
        Self {
            samples,
            sampling: SamplingScheme::default(),
            seed: McConfig::default().seed,
        }
    }

    /// The spec a [`FlowConfig`] requests.
    pub fn from_config(cfg: &FlowConfig) -> Self {
        Self {
            samples: cfg.mc_samples,
            sampling: cfg.mc_sampling,
            seed: cfg.mc_seed,
        }
    }

    fn mc_config(&self) -> McConfig {
        McConfig {
            samples: self.samples,
            seed: self.seed,
            ..Default::default()
        }
        .with_scheme(self.sampling)
    }
}

/// Measures a design against the clock target (and optionally MC).
///
/// The MC yield honors the configured sampler stack: with importance
/// sampling enabled the dedicated tail estimator supplies the yield and
/// its interval (while the leakage percentile still comes from an
/// unshifted population run); with control variates the
/// indicator-regression estimator narrows the interval; otherwise the
/// counting yield carries a Wilson score interval.
pub fn measure(
    design: &Design,
    fm: &FactorModel,
    t_clk: f64,
    spec: McSpec,
    runtime_s: f64,
) -> DesignMetrics {
    let _span = obs::span!("flow.measure");
    let ssta = Ssta::analyze(design, fm);
    let power = LeakageAnalysis::analyze(design, fm).total_power(design);
    let (mc_yield, mc_yield_ci, mc_p95) = if spec.samples > 0 {
        // The population run (leakage percentile + counting/CV yield)
        // never applies the mean shift — IS is an estimator transform,
        // not a population transform.
        let population = MonteCarlo::new(McConfig {
            variance_reduction: VarianceReduction {
                importance_sampling: false,
                ..spec.mc_config().variance_reduction
            },
            ..spec.mc_config()
        });
        let result = population.run(design, fm);
        let est = if spec.sampling.variance_reduction.importance_sampling {
            MonteCarlo::new(spec.mc_config()).timing_yield_estimate(design, fm, t_clk)
        } else {
            population.yield_estimate_from(&result, t_clk)
        };
        let vdd = design.tech().vdd;
        (
            Some(est.yield_value),
            Some(est.ci),
            Some(result.leakage_percentile(0.95) * vdd),
        )
    } else {
        (None, None, None)
    };
    DesignMetrics {
        leakage_nominal: design.total_leakage_power_nominal(),
        leakage_mean: power.mean(),
        leakage_p95: power.quantile(0.95),
        timing_yield: ssta.timing_yield(t_clk),
        mc_yield,
        mc_yield_ci,
        mc_leakage_p95: mc_p95,
        width: design.total_width(),
        high_vth: design.high_vth_count(),
        runtime_s,
    }
}

/// Outcome of the headline three-way comparison (table T2).
#[derive(Debug, Clone, PartialEq)]
pub struct ComparisonOutcome {
    /// Benchmark name.
    pub benchmark: String,
    /// Minimum achievable delay, ps.
    pub dmin: f64,
    /// Clock target, ps.
    pub t_clk: f64,
    /// All-low-Vth design sized for the yield target (no optimization).
    pub baseline: DesignMetrics,
    /// Guard-banded deterministic dual-Vth + sizing at yield ≥ η.
    pub deterministic: DesignMetrics,
    /// Statistical dual-Vth + sizing at yield ≥ η.
    pub statistical: DesignMetrics,
    /// Guard band the deterministic flow selected.
    pub det_guard_band: f64,
    /// Extra saving of statistical over deterministic on p95 leakage,
    /// `1 − p95_stat / p95_det`.
    pub stat_extra_saving: f64,
}

/// Runs the headline comparison on an already-prepared [`Setup`]: baseline
/// vs deterministic vs statistical at equal timing yield `η`.
///
/// This is the single implementation shared by the deprecated one-shot
/// [`run_comparison`] and the cached `statleak-engine` sessions.
///
/// # Errors
///
/// Returns [`FlowError`] on infeasible sizing.
pub fn run_comparison_on(setup: &Setup, cfg: &FlowConfig) -> Result<ComparisonOutcome, FlowError> {
    let Setup {
        fm,
        base,
        dmin,
        t_clk,
        ..
    } = setup;
    let (dmin, t_clk) = (*dmin, *t_clk);

    // Baseline: size for the yield target, no leakage optimization.
    let _baseline_span = obs::span!("flow.baseline");
    let t0 = Instant::now();
    let mut baseline = base.clone();
    sizing::size_for_yield(&mut baseline, fm, t_clk, cfg.eta)?;
    let m_base = measure(
        &baseline,
        fm,
        t_clk,
        McSpec::from_config(cfg),
        t0.elapsed().as_secs_f64(),
    );

    drop(_baseline_span);

    // Deterministic flow (best guard band for the yield target).
    let _det_span = obs::span!("flow.deterministic");
    let t0 = Instant::now();
    let det = deterministic_for_yield(base, fm, t_clk, cfg.eta, 6)?;
    let m_det = measure(
        &det.design,
        fm,
        t_clk,
        McSpec::from_config(cfg),
        t0.elapsed().as_secs_f64(),
    );

    drop(_det_span);

    // Statistical flow.
    let _stat_span = obs::span!("flow.statistical");
    let t0 = Instant::now();
    let stat = statistical_for_yield(base, fm, t_clk, cfg.eta)?;
    let m_stat = measure(
        &stat.design,
        fm,
        t_clk,
        McSpec::from_config(cfg),
        t0.elapsed().as_secs_f64(),
    );

    drop(_stat_span);

    let extra = 1.0 - m_stat.leakage_p95 / m_det.leakage_p95;
    Ok(ComparisonOutcome {
        benchmark: cfg.benchmark.clone(),
        dmin,
        t_clk,
        baseline: m_base,
        deterministic: m_det,
        statistical: m_stat,
        det_guard_band: det.guard_band,
        stat_extra_saving: extra,
    })
}

/// One-shot form of [`run_comparison_on`]: re-runs [`prepare`] every call.
///
/// # Errors
///
/// Returns [`FlowError`] on unknown benchmarks or infeasible sizing.
#[deprecated(
    note = "route repeated requests through `statleak_engine::Engine`, which caches prepare()"
)]
pub fn run_comparison(cfg: &FlowConfig) -> Result<ComparisonOutcome, FlowError> {
    run_comparison_on(&prepare(cfg)?, cfg)
}

/// One point of a delay-target sweep (table T3 / figure F2).
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// The swept parameter value (slack factor or sigma).
    pub x: f64,
    /// Deterministic p95 leakage power, W.
    pub det_p95: f64,
    /// Statistical p95 leakage power, W.
    pub stat_p95: f64,
    /// Timing yield the deterministic flow actually achieved (can fall
    /// short of `η` at very tight clocks, where no guard band suffices).
    pub det_yield: f64,
    /// Timing yield the statistical flow achieved.
    pub stat_yield: f64,
    /// Extra saving of statistical over deterministic (only an
    /// equal-yield comparison when both yields reach `η`).
    pub extra_saving: f64,
}

/// The axis of a parameter sweep.
///
/// [`sweep_delay_target`] and [`sweep_sigma`] historically took the same
/// `&[f64]` with different meanings; `SweepSpec` names the axis so one
/// [`sweep`] entry point (and one `Session::sweep` method) covers both.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SweepSpec {
    /// Sweep the clock-target tightness `T/Dmin` (T3 / F2).
    SlackFactor(Vec<f64>),
    /// Sweep the channel-length variation magnitude `σ(ΔL/L)` (F4).
    SigmaL(Vec<f64>),
}

impl SweepSpec {
    /// The swept values.
    pub fn values(&self) -> &[f64] {
        match self {
            SweepSpec::SlackFactor(v) | SweepSpec::SigmaL(v) => v,
        }
    }

    /// A stable axis name (used by reports and the serve protocol).
    pub fn axis(&self) -> &'static str {
        match self {
            SweepSpec::SlackFactor(_) => "slack_factor",
            SweepSpec::SigmaL(_) => "sigma_l",
        }
    }
}

fn sweep_point(x: f64, o: &ComparisonOutcome) -> SweepPoint {
    SweepPoint {
        x,
        det_p95: o.deterministic.leakage_p95,
        stat_p95: o.statistical.leakage_p95,
        det_yield: o.deterministic.timing_yield,
        stat_yield: o.statistical.timing_yield,
        extra_saving: o.stat_extra_saving,
    }
}

/// Runs a parameter sweep on an already-prepared [`Setup`].
///
/// Slack-factor sweeps reuse the setup directly (only the clock target
/// changes, so the parse/placement/correlation work is amortized across
/// all points); sigma sweeps rebuild the factor model per point, which the
/// variation change requires.
///
/// # Errors
///
/// Propagates [`FlowError`]; individual infeasible points are skipped.
pub fn sweep_on(
    setup: &Setup,
    cfg: &FlowConfig,
    spec: &SweepSpec,
) -> Result<Vec<SweepPoint>, FlowError> {
    let mut out = Vec::new();
    for &x in spec.values() {
        let mut point_cfg = cfg.clone();
        point_cfg.mc_samples = 0;
        let point_setup;
        match spec {
            SweepSpec::SlackFactor(_) => {
                point_cfg.slack_factor = x;
                let mut s = setup.clone();
                s.t_clk = s.dmin * x;
                point_setup = s;
            }
            SweepSpec::SigmaL(_) => {
                point_cfg.variation = cfg.variation.with_sigma_l(x);
                point_setup = prepare(&point_cfg)?;
            }
        }
        match run_comparison_on(&point_setup, &point_cfg) {
            Ok(o) => out.push(sweep_point(x, &o)),
            Err(FlowError::Sizing(_)) => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(out)
}

/// One-shot form of [`sweep_on`]: prepares the setup, then sweeps.
///
/// # Errors
///
/// Propagates [`FlowError`]; individual infeasible points are skipped.
pub fn sweep(cfg: &FlowConfig, spec: &SweepSpec) -> Result<Vec<SweepPoint>, FlowError> {
    sweep_on(&prepare(cfg)?, cfg, spec)
}

/// Sweeps the clock target tightness (T3 / F2): for each slack factor,
/// runs both flows at yield `η` and reports p95 leakage.
///
/// # Errors
///
/// Propagates [`FlowError`]; individual infeasible points are skipped.
#[deprecated(note = "use `sweep(cfg, &SweepSpec::SlackFactor(..))` or `Session::sweep`")]
pub fn sweep_delay_target(
    cfg: &FlowConfig,
    slack_factors: &[f64],
) -> Result<Vec<SweepPoint>, FlowError> {
    sweep(cfg, &SweepSpec::SlackFactor(slack_factors.to_vec()))
}

/// Sweeps the channel-length variation magnitude (F4).
///
/// # Errors
///
/// Propagates [`FlowError`]; individual infeasible points are skipped.
#[deprecated(note = "use `sweep(cfg, &SweepSpec::SigmaL(..))` or `Session::sweep`")]
pub fn sweep_sigma(cfg: &FlowConfig, sigmas: &[f64]) -> Result<Vec<SweepPoint>, FlowError> {
    sweep(cfg, &SweepSpec::SigmaL(sigmas.to_vec()))
}

/// Yield-vs-clock curves for the three designs (figure F3) on an
/// already-prepared [`Setup`]. Returns
/// `(t_over_dmin, baseline, deterministic, statistical)` rows.
///
/// # Errors
///
/// Propagates [`FlowError`].
pub fn yield_curves_on(
    setup: &Setup,
    cfg: &FlowConfig,
    t_grid: &[f64],
) -> Result<Vec<(f64, f64, f64, f64)>, FlowError> {
    let mut baseline = setup.base.clone();
    sizing::size_for_yield(&mut baseline, &setup.fm, setup.t_clk, cfg.eta)?;
    let det = deterministic_for_yield(&setup.base, &setup.fm, setup.t_clk, cfg.eta, 6)?;
    let stat = statistical_for_yield(&setup.base, &setup.fm, setup.t_clk, cfg.eta)?;
    let ssta_b = Ssta::analyze(&baseline, &setup.fm);
    let ssta_d = Ssta::analyze(&det.design, &setup.fm);
    let ssta_s = Ssta::analyze(&stat.design, &setup.fm);
    Ok(t_grid
        .iter()
        .map(|&k| {
            let t = k * setup.dmin;
            (
                k,
                ssta_b.timing_yield(t),
                ssta_d.timing_yield(t),
                ssta_s.timing_yield(t),
            )
        })
        .collect())
}

/// One-shot form of [`yield_curves_on`].
///
/// # Errors
///
/// Propagates [`FlowError`].
#[deprecated(note = "use `Session::yield_curves` on a cached engine session")]
pub fn yield_curves(
    cfg: &FlowConfig,
    t_grid: &[f64],
) -> Result<Vec<(f64, f64, f64, f64)>, FlowError> {
    yield_curves_on(&prepare(cfg)?, cfg, t_grid)
}

/// Analytical-vs-Monte-Carlo validation of SSTA and the leakage lognormal
/// (table T4).
#[derive(Debug, Clone, PartialEq)]
pub struct McValidation {
    /// Benchmark name.
    pub benchmark: String,
    /// SSTA delay mean, ps.
    pub ssta_mean: f64,
    /// MC delay mean, ps.
    pub mc_mean: f64,
    /// SSTA delay sigma, ps.
    pub ssta_sigma: f64,
    /// MC delay sigma, ps.
    pub mc_sigma: f64,
    /// SSTA yield at the clock target.
    pub ssta_yield: f64,
    /// MC yield at the clock target.
    pub mc_yield: f64,
    /// Wilson 95% confidence interval on the MC yield.
    pub mc_yield_ci: BinomialInterval,
    /// Analytical leakage-power mean, W.
    pub leak_mean: f64,
    /// MC leakage-power mean, W.
    pub mc_leak_mean: f64,
    /// Analytical leakage-power p95, W.
    pub leak_p95: f64,
    /// MC leakage-power p95, W.
    pub mc_leak_p95: f64,
}

/// Runs the T4 validation on the *sized baseline* design of an
/// already-prepared [`Setup`].
///
/// # Errors
///
/// Propagates [`FlowError`].
pub fn mc_validation_on(setup: &Setup, cfg: &FlowConfig) -> Result<McValidation, FlowError> {
    let mut design = setup.base.clone();
    sizing::size_for_yield(&mut design, &setup.fm, setup.t_clk, cfg.eta)?;
    let ssta = Ssta::analyze(&design, &setup.fm);
    let power = LeakageAnalysis::analyze(&design, &setup.fm).total_power(&design);
    let mc = MonteCarlo::new(
        McConfig {
            samples: cfg.mc_samples.max(100),
            seed: cfg.mc_seed,
            ..Default::default()
        }
        .with_scheme(SamplingScheme {
            // The validation compares full population statistics, so the
            // IS estimator transform does not apply here.
            variance_reduction: VarianceReduction {
                importance_sampling: false,
                ..cfg.mc_sampling.variance_reduction
            },
            ..cfg.mc_sampling
        }),
    )
    .run(&design, &setup.fm);
    let vdd = design.tech().vdd;
    let d = ssta.circuit_delay();
    let md = mc.delay_summary();
    let ml = mc.leakage_summary();
    Ok(McValidation {
        benchmark: cfg.benchmark.clone(),
        ssta_mean: d.mean,
        mc_mean: md.mean,
        ssta_sigma: d.std(),
        mc_sigma: md.std,
        ssta_yield: ssta.timing_yield(setup.t_clk),
        mc_yield: mc.timing_yield(setup.t_clk),
        mc_yield_ci: mc.timing_yield_interval(setup.t_clk, DEFAULT_CI_Z),
        leak_mean: power.mean(),
        mc_leak_mean: ml.mean * vdd,
        leak_p95: power.quantile(0.95),
        mc_leak_p95: ml.p95 * vdd,
    })
}

/// One-shot form of [`mc_validation_on`].
///
/// # Errors
///
/// Propagates [`FlowError`].
#[deprecated(note = "use `Session::mc_validation` on a cached engine session")]
pub fn mc_validation(cfg: &FlowConfig) -> Result<McValidation, FlowError> {
    mc_validation_on(&prepare(cfg)?, cfg)
}

/// Leakage-distribution data for figure F1: the baseline and the
/// statistically optimized design, each with an MC histogram and the
/// analytical lognormal parameters.
#[derive(Debug, Clone)]
pub struct DistributionData {
    /// MC leakage-power samples of the sized baseline (W).
    pub baseline_samples: Vec<f64>,
    /// MC leakage-power samples of the optimized design (W).
    pub optimized_samples: Vec<f64>,
    /// Analytical lognormal of the baseline leakage power.
    pub baseline_analytic: statleak_stats::LogNormal,
    /// Analytical lognormal of the optimized leakage power.
    pub optimized_analytic: statleak_stats::LogNormal,
}

/// Which of the two compared designs a [`DistributionData`] accessor
/// refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DistKind {
    /// The sized all-low-Vth baseline.
    Baseline,
    /// The statistically optimized design.
    Optimized,
}

impl DistributionData {
    /// The MC leakage samples of one side (W).
    pub fn samples(&self, which: DistKind) -> &[f64] {
        match which {
            DistKind::Baseline => &self.baseline_samples,
            DistKind::Optimized => &self.optimized_samples,
        }
    }

    /// Histogram of one side's samples — the single implementation behind
    /// [`DistributionData::baseline_histogram`] and
    /// [`DistributionData::optimized_histogram`].
    pub fn histogram(&self, which: DistKind, bins: usize) -> Histogram {
        Histogram::from_samples(self.samples(which), bins)
    }

    /// Histogram of the baseline samples.
    pub fn baseline_histogram(&self, bins: usize) -> Histogram {
        self.histogram(DistKind::Baseline, bins)
    }

    /// Histogram of the optimized samples.
    pub fn optimized_histogram(&self, bins: usize) -> Histogram {
        self.histogram(DistKind::Optimized, bins)
    }
}

/// Produces the F1 distribution data on an already-prepared [`Setup`].
///
/// # Errors
///
/// Propagates [`FlowError`].
pub fn distribution_on(setup: &Setup, cfg: &FlowConfig) -> Result<DistributionData, FlowError> {
    let mut baseline = setup.base.clone();
    sizing::size_for_yield(&mut baseline, &setup.fm, setup.t_clk, cfg.eta)?;
    let stat = statistical_for_yield(&setup.base, &setup.fm, setup.t_clk, cfg.eta)?;
    let vdd = setup.base.tech().vdd;
    let run = |d: &Design| -> Vec<f64> {
        MonteCarlo::new(McConfig {
            samples: cfg.mc_samples.max(100),
            seed: cfg.mc_seed,
            sampler: cfg.mc_sampling.sampler,
            ..Default::default()
        })
        .run(d, &setup.fm)
        .chips()
        .iter()
        .map(|c| c.leakage * vdd)
        .collect()
    };
    Ok(DistributionData {
        baseline_samples: run(&baseline),
        optimized_samples: run(&stat.design),
        baseline_analytic: LeakageAnalysis::analyze(&baseline, &setup.fm).total_power(&baseline),
        optimized_analytic: LeakageAnalysis::analyze(&stat.design, &setup.fm)
            .total_power(&stat.design),
    })
}

/// One-shot form of [`distribution_on`].
///
/// # Errors
///
/// Propagates [`FlowError`].
#[deprecated(note = "use `Session::distribution` on a cached engine session")]
pub fn distribution(cfg: &FlowConfig) -> Result<DistributionData, FlowError> {
    distribution_on(&prepare(cfg)?, cfg)
}

/// One ablation row (experiment A1).
#[derive(Debug, Clone, PartialEq)]
pub struct AblationRow {
    /// Which model variant.
    pub variant: String,
    /// Circuit-delay sigma under the variant, ps.
    pub delay_sigma: f64,
    /// Leakage-power p95 under the variant, W.
    pub leak_p95: f64,
    /// Leakage sigma/mean under the variant.
    pub leak_cv: f64,
}

/// Runs the modeling ablations on the sized baseline design of an
/// already-prepared [`Setup`]: full model, no spatial correlation, no
/// Vth–L coupling, and independent-sum leakage.
///
/// # Errors
///
/// Propagates [`FlowError`].
pub fn ablation_on(setup: &Setup, cfg: &FlowConfig) -> Result<Vec<AblationRow>, FlowError> {
    let mut design = setup.base.clone();
    sizing::size_for_yield(&mut design, &setup.fm, setup.t_clk, cfg.eta)?;
    let placement = Placement::by_level(&setup.circuit);
    let mut rows = Vec::new();

    let mut add = |variant: &str, fm: &FactorModel, d: &Design, independent: bool| {
        let ssta = Ssta::analyze(d, fm);
        let leak = LeakageAnalysis::analyze(d, fm);
        let power = if independent {
            leak.total_current_independent().scale(d.tech().vdd)
        } else {
            leak.total_power(d)
        };
        rows.push(AblationRow {
            variant: variant.to_string(),
            delay_sigma: ssta.circuit_delay().std(),
            leak_p95: power.quantile(0.95),
            leak_cv: power.std() / power.mean(),
        });
    };

    add("full model", &setup.fm, &design, false);

    let fm_nospatial = FactorModel::build(
        &setup.circuit,
        &placement,
        design.tech(),
        &cfg.variation.without_spatial_correlation(),
    )?;
    add("no spatial correlation", &fm_nospatial, &design, false);

    let mut tech_nocouple = design.tech().clone();
    tech_nocouple.vth_l_coeff = 0.0;
    let fm_nc = FactorModel::build(&setup.circuit, &placement, &tech_nocouple, &cfg.variation)?;
    let design_nc = {
        let mut d = design.fresh_like(tech_nocouple);
        // Copy the baseline's implementation state.
        for g in design.circuit().gates() {
            d.set_size(g, design.size(g));
            d.set_vth(g, design.vth(g));
        }
        d
    };
    add("no Vth-L coupling", &fm_nc, &design_nc, false);

    add("independent-sum leakage", &setup.fm, &design, true);

    Ok(rows)
}

/// One-shot form of [`ablation_on`].
///
/// # Errors
///
/// Propagates [`FlowError`].
#[deprecated(note = "use `Session::ablation` on a cached engine session")]
pub fn ablation(cfg: &FlowConfig) -> Result<Vec<AblationRow>, FlowError> {
    ablation_on(&prepare(cfg)?, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg_no_mc(benchmark: &str) -> FlowConfig {
        FlowConfig::builder(benchmark)
            .mc_samples(0)
            .build()
            .expect("valid test config")
    }

    #[test]
    fn prepare_rejects_unknown() {
        let cfg = cfg_no_mc("c9999");
        assert!(matches!(prepare(&cfg), Err(FlowError::UnknownBenchmark(_))));
    }

    #[test]
    fn builder_validates_ranges() {
        let e = FlowConfig::builder("c432").slack_factor(0.8).build();
        assert!(
            matches!(
                e,
                Err(ConfigError {
                    field: "slack_factor",
                    ..
                })
            ),
            "{e:?}"
        );
        let e = FlowConfig::builder("c432").eta(1.0).build();
        assert!(matches!(e, Err(ConfigError { field: "eta", .. })), "{e:?}");
        let e = FlowConfig::builder("c432").sigma_l(f64::NAN).build();
        assert!(e.is_err());
        let e = FlowConfig::builder("").build();
        assert!(
            matches!(
                e,
                Err(ConfigError {
                    field: "benchmark",
                    ..
                })
            ),
            "{e:?}"
        );
        // The deprecated constructors forward to the same defaults.
        #[allow(deprecated)]
        let old = FlowConfig::new("c432");
        let new = FlowConfig::builder("c432").build().unwrap();
        assert_eq!(old, new);
        #[allow(deprecated)]
        let old_quick = FlowConfig::quick("c432");
        let new_quick = FlowConfig::builder("c432").mc_samples(200).build().unwrap();
        assert_eq!(old_quick, new_quick);
    }

    #[test]
    fn to_builder_round_trips() {
        let cfg = FlowConfig::builder("c880")
            .slack_factor(1.35)
            .eta(0.9)
            .wire_loads(true)
            .mc_samples(17)
            .build()
            .unwrap();
        assert_eq!(cfg.to_builder().build().unwrap(), cfg);
    }

    #[test]
    fn comparison_on_c432_shows_statistical_win() {
        let cfg = cfg_no_mc("c432");
        let o = run_comparison_on(&prepare(&cfg).unwrap(), &cfg).unwrap();
        // Both optimizers beat the baseline massively.
        assert!(o.deterministic.leakage_p95 < o.baseline.leakage_p95 * 0.7);
        assert!(o.statistical.leakage_p95 < o.baseline.leakage_p95 * 0.7);
        // Statistical wins at equal yield.
        assert!(
            o.stat_extra_saving > 0.0,
            "extra saving {}",
            o.stat_extra_saving
        );
        assert!(o.statistical.timing_yield >= cfg.eta - 1e-9);
        assert!(o.deterministic.timing_yield >= cfg.eta - 1e-9);
    }

    #[test]
    fn sweep_reports_monotone_pressure() {
        let cfg = cfg_no_mc("c432");
        let pts = sweep(&cfg, &SweepSpec::SlackFactor(vec![1.10, 1.30])).unwrap();
        assert_eq!(pts.len(), 2);
        // Looser clock → lower leakage for both flows.
        assert!(pts[1].det_p95 <= pts[0].det_p95 * 1.01);
        assert!(pts[1].stat_p95 <= pts[0].stat_p95 * 1.01);
        // The deprecated per-axis entry points are thin wrappers over the
        // same implementation.
        #[allow(deprecated)]
        let legacy = sweep_delay_target(&cfg, &[1.10, 1.30]).unwrap();
        assert_eq!(legacy, pts);
    }

    #[test]
    fn sweep_axes_are_named() {
        assert_eq!(SweepSpec::SlackFactor(vec![1.1]).axis(), "slack_factor");
        assert_eq!(SweepSpec::SigmaL(vec![0.05]).axis(), "sigma_l");
        assert_eq!(SweepSpec::SigmaL(vec![0.05, 0.1]).values(), &[0.05, 0.1]);
    }

    #[test]
    fn yield_curves_monotone() {
        let cfg = cfg_no_mc("c432");
        let rows = yield_curves_on(&prepare(&cfg).unwrap(), &cfg, &[1.0, 1.1, 1.2, 1.3]).unwrap();
        for w in rows.windows(2) {
            assert!(w[1].1 >= w[0].1);
            assert!(w[1].2 >= w[0].2);
            assert!(w[1].3 >= w[0].3);
        }
    }

    #[test]
    fn mc_validation_errors_small() {
        let cfg = FlowConfig::builder("c432")
            .mc_samples(1500)
            .build()
            .unwrap();
        let v = mc_validation_on(&prepare(&cfg).unwrap(), &cfg).unwrap();
        assert!((v.ssta_mean - v.mc_mean).abs() / v.mc_mean < 0.03);
        assert!((v.leak_mean - v.mc_leak_mean).abs() / v.mc_leak_mean < 0.05);
        assert!((v.leak_p95 - v.mc_leak_p95).abs() / v.mc_leak_p95 < 0.10);
        assert!((v.ssta_yield - v.mc_yield).abs() < 0.07);
    }

    #[test]
    fn ablation_shows_expected_ordering() {
        let cfg = cfg_no_mc("c432");
        let rows = ablation_on(&prepare(&cfg).unwrap(), &cfg).unwrap();
        assert_eq!(rows.len(), 4);
        let by = |name: &str| rows.iter().find(|r| r.variant == name).unwrap().clone();
        let full = by("full model");
        // Removing spatial correlation shrinks both delay and leakage
        // spread (independent averaging).
        assert!(by("no spatial correlation").delay_sigma < full.delay_sigma);
        assert!(by("independent-sum leakage").leak_cv < full.leak_cv);
        // Removing the Vth-L coupling shrinks the leakage spread.
        assert!(by("no Vth-L coupling").leak_cv < full.leak_cv);
    }

    #[test]
    fn distribution_samples_present() {
        let cfg = FlowConfig::builder("c17").mc_samples(200).build().unwrap();
        let d = distribution_on(&prepare(&cfg).unwrap(), &cfg).unwrap();
        assert_eq!(d.baseline_samples.len(), 200);
        assert_eq!(d.optimized_samples.len(), 200);
        // Optimization shifts the distribution left.
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(mean(&d.optimized_samples) < mean(&d.baseline_samples));
        // The per-side wrappers agree with the unified accessor.
        let h = d.histogram(DistKind::Baseline, 16);
        let hb = d.baseline_histogram(16);
        assert_eq!(h.counts(), hb.counts());
        assert_eq!(
            d.optimized_histogram(16).counts(),
            d.histogram(DistKind::Optimized, 16).counts()
        );
    }

    /// A `DistributionData` with hand-picked samples, bypassing the MC run,
    /// so histogram edge cases can be pinned exactly.
    fn dist_with(baseline: Vec<f64>, optimized: Vec<f64>) -> DistributionData {
        DistributionData {
            baseline_samples: baseline,
            optimized_samples: optimized,
            baseline_analytic: statleak_stats::LogNormal::new(-14.0, 0.5),
            optimized_analytic: statleak_stats::LogNormal::new(-15.0, 0.5),
        }
    }

    #[test]
    fn histogram_single_bin_collects_everything() {
        let d = dist_with(vec![1.0, 2.0, 3.0, 4.0], vec![5.0]);
        let h = d.histogram(DistKind::Baseline, 1);
        assert_eq!(h.counts(), &[4]);
        assert_eq!(h.total(), 4);
        assert_eq!(h.dropped(), 0);
    }

    #[test]
    fn histogram_all_equal_samples_land_in_one_bin() {
        // A zero-width sample range must not panic or divide by zero: the
        // degenerate range is widened and every sample lands in bin 0.
        let d = dist_with(vec![2.5e-6; 64], vec![2.5e-6]);
        let h = d.histogram(DistKind::Baseline, 8);
        assert_eq!(h.total(), 64);
        assert_eq!(h.counts()[0], 64);
        assert!(h.counts()[1..].iter().all(|&c| c == 0));
    }

    #[test]
    fn histogram_drops_non_finite_samples() {
        let d = dist_with(
            vec![1.0, f64::NAN, 2.0, f64::INFINITY, 3.0, f64::NEG_INFINITY],
            vec![1.0],
        );
        let h = d.histogram(DistKind::Baseline, 4);
        assert_eq!(h.total(), 3, "only the finite samples are binned");
        assert_eq!(h.dropped(), 3, "NaN and infinities are counted dropped");
        assert_eq!(h.counts().iter().sum::<u64>(), 3);
        // The range comes from the finite samples alone: [1, 3] split in
        // four, with the midpoint sample in the second bin.
        assert_eq!(h.counts(), &[1, 1, 0, 1]);
    }
}
