//! Property-based tests for the core flows and joint-yield model.

use proptest::prelude::*;
use statleak_core::joint::JointYield;
use statleak_core::report::{fmt_pct, fmt_power, Table};
use statleak_leakage::LeakageAnalysis;
use statleak_netlist::generate::{generate, GenSpec};
use statleak_netlist::placement::Placement;
use statleak_ssta::Ssta;
use statleak_tech::{Design, FactorModel, Technology, VariationConfig};
use std::sync::Arc;

fn random_design(seed: u64) -> (Design, FactorModel) {
    let mut spec = GenSpec::new(format!("core_prop{seed}"), 6, 3, 35, 6);
    spec.seed = seed;
    let circuit = Arc::new(generate(&spec));
    let placement = Placement::by_level(&circuit);
    let tech = Technology::ptm100();
    let fm =
        FactorModel::build(&circuit, &placement, &tech, &VariationConfig::ptm100()).expect("fm");
    (Design::new(circuit, tech), fm)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Joint yield is bounded by both marginals and by the Fréchet bounds.
    #[test]
    fn joint_yield_frechet_bounds(seed in 0u64..400, qt in 0.5..0.99f64, ql in 0.5..0.99f64) {
        let (d, fm) = random_design(seed);
        let j = JointYield::analyze(&d, &fm);
        let ssta = Ssta::analyze(&d, &fm);
        let t = ssta.clock_for_yield(qt);
        let leak = LeakageAnalysis::analyze(&d, &fm).total_current();
        let i_max = leak.quantile(ql);
        let yt = j.timing_yield(t);
        let yl = j.leakage_yield(i_max);
        let joint = j.joint_yield(t, i_max);
        prop_assert!(joint <= yt.min(yl) + 1e-6, "joint {joint} vs min marginal");
        prop_assert!(joint >= (yt + yl - 1.0).max(0.0) - 1e-6, "joint {joint} below Frechet");
    }

    /// Joint yield is monotone in both budgets.
    #[test]
    fn joint_yield_monotone(seed in 0u64..400) {
        let (d, fm) = random_design(seed);
        let j = JointYield::analyze(&d, &fm);
        let ssta = Ssta::analyze(&d, &fm);
        let leak = LeakageAnalysis::analyze(&d, &fm).total_current();
        let t1 = ssta.clock_for_yield(0.7);
        let t2 = ssta.clock_for_yield(0.9);
        let i1 = leak.quantile(0.7);
        let i2 = leak.quantile(0.9);
        prop_assert!(j.joint_yield(t2, i1) >= j.joint_yield(t1, i1) - 1e-9);
        prop_assert!(j.joint_yield(t1, i2) >= j.joint_yield(t1, i1) - 1e-9);
    }

    /// The modeled delay/ln-leak correlation is always in [-1, 0) for this
    /// technology (roll-off makes it strictly negative).
    #[test]
    fn correlation_always_negative(seed in 0u64..400) {
        let (d, fm) = random_design(seed);
        let j = JointYield::analyze(&d, &fm);
        prop_assert!(j.correlation() <= 0.0);
        prop_assert!(j.correlation() >= -1.0);
    }

    /// Table rendering never panics and stays rectangular for arbitrary
    /// cell content.
    #[test]
    fn tables_render_for_arbitrary_content(
        cells in prop::collection::vec("[a-zA-Z0-9,\" .%-]{0,20}", 1..20),
    ) {
        let mut t = Table::new(&["a", "b"]);
        for pair in cells.chunks(2) {
            if pair.len() == 2 {
                t.row(&[pair[0].clone(), pair[1].clone()]);
            }
        }
        let rendered = t.render();
        prop_assert!(rendered.lines().count() >= 2);
        let csv = t.to_csv();
        prop_assert!(csv.lines().count() == t.len() + 1);
    }

    /// Power/percentage formatting is total (never panics) over wide ranges.
    #[test]
    fn formatting_total(w in 1e-12..1.0f64, p in -2.0..2.0f64) {
        let _ = fmt_power(w);
        let _ = fmt_pct(p);
    }
}
