//! Property tests for the mergeable histogram representation: merging N
//! shard snapshots must be indistinguishable from one histogram fed the
//! concatenated samples, and exemplar rings must never exceed their cap.
//!
//! `statleak-obs` is zero-dependency, so the randomness is a hand-rolled
//! SplitMix64 generator with fixed seeds (deterministic, CI-stable).

use statleak_obs::metrics::{Registry, EXEMPLAR_CAP};
use statleak_obs::{trace, HistogramSnapshot};

struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A value spread across the full bucket range: uniform bit width,
    /// then uniform bits, so low buckets and the overflow bucket are all
    /// exercised.
    fn sample(&mut self) -> u64 {
        let width = self.next() % 65; // 0..=64 significant bits
        if width == 0 {
            0
        } else {
            self.next() >> (64 - width)
        }
    }
}

#[test]
fn merging_shards_equals_one_histogram_of_concatenated_samples() {
    let mut rng = Rng(0xDEC0DE);
    for case in 0..50 {
        let shards = 1 + (rng.next() % 8) as usize;
        let registry = Registry::new();
        let whole = registry.histogram("whole");
        let shard_names: Vec<&'static str> = (0..shards)
            .map(|s| {
                // Registry keys are &'static str; leak the tiny name.
                Box::leak(format!("shard_{s}").into_boxed_str()) as &'static str
            })
            .collect();
        for &name in &shard_names {
            let shard = registry.histogram(name);
            let samples = rng.next() % 200;
            for _ in 0..samples {
                let v = rng.sample();
                shard.record(v);
                whole.record(v);
            }
        }
        let snapshot = registry.snapshot();
        let by_name = |n: &str| {
            snapshot
                .histograms
                .iter()
                .find(|h| h.name == n)
                .unwrap()
                .clone()
        };
        let mut merged = HistogramSnapshot::empty("whole".to_string());
        for &name in &shard_names {
            merged.merge(&by_name(name));
        }
        let expected = by_name("whole");
        assert_eq!(merged.count, expected.count, "case {case}: count");
        assert_eq!(merged.sum, expected.sum, "case {case}: sum");
        assert_eq!(merged.buckets, expected.buckets, "case {case}: buckets");
        assert_eq!(merged, expected, "case {case}: full snapshot");
        // Merge is order-insensitive.
        let mut reversed = HistogramSnapshot::empty("whole".to_string());
        for &name in shard_names.iter().rev() {
            reversed.merge(&by_name(name));
        }
        assert_eq!(reversed, expected, "case {case}: reversed merge order");
    }
}

#[test]
fn exemplar_rings_never_exceed_cap_under_random_traced_loads() {
    let mut rng = Rng(0xE7E7);
    for case in 0..30 {
        let registry = Registry::new();
        let h = registry.histogram("ring");
        let ops = rng.next() % 300;
        for _ in 0..ops {
            if rng.next().is_multiple_of(3) {
                h.record(rng.sample()); // untraced: must not add exemplars
            } else {
                let _guard = trace::enter(trace::TraceContext::new());
                h.record_traced(rng.sample());
            }
            assert!(
                h.exemplars().len() <= EXEMPLAR_CAP,
                "case {case}: ring overflowed"
            );
        }
        let snapshot = registry.snapshot().histograms[0].clone();
        assert!(snapshot.exemplars.len() <= EXEMPLAR_CAP);
    }
}

#[test]
fn merged_exemplars_stay_capped() {
    let registry = Registry::new();
    let a = registry.histogram("a");
    let b = registry.histogram("b");
    let _guard = trace::enter(trace::TraceContext::new());
    for v in 0..10 {
        a.record_traced(v);
        b.record_traced(v + 100);
    }
    let snapshot = registry.snapshot();
    let mut merged = snapshot.histograms[0].clone();
    merged.merge(&snapshot.histograms[1]);
    assert_eq!(merged.exemplars.len(), EXEMPLAR_CAP);
    // The newest exemplars (from the later-merged shard) survive.
    assert!(merged.exemplars.iter().all(|e| e.value >= 100));
}
