//! 128-bit trace ids and thread-local trace-context propagation.
//!
//! A [`TraceId`] names one logical request end-to-end: the client that
//! originated it, the serve node that accepted it, every worker thread a
//! `batch` fan-out touches, and any node a wrong-shard redirect lands on.
//! The id travels in-band (the serve protocol's optional `trace` field)
//! and is re-installed on each side with [`enter`], which makes it visible
//! to spans ([`crate::span`]), histogram exemplars
//! ([`crate::Histogram::record_traced`]), and the serve access log.
//!
//! Ids are generated from a per-process seed (wall clock, pid, and ASLR
//! jitter) mixed through SplitMix64 with a process-wide counter — unique
//! in practice across a fleet without needing an OS randomness source.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// A 128-bit trace id; never zero (zero encodes "no trace" on the wire).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TraceId(pub u128);

/// SplitMix64 mixing step: decorrelates consecutive counter values.
fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn process_seed() -> u64 {
    static SEED: OnceLock<u64> = OnceLock::new();
    *SEED.get_or_init(|| {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0);
        // The address of a static picks up ASLR entropy, distinguishing
        // two processes that share a pid namespace and a clock tick.
        let aslr = process_seed as *const () as usize as u64;
        nanos ^ (u64::from(std::process::id()) << 32) ^ aslr.rotate_left(17)
    })
}

impl TraceId {
    /// Generates a fresh, process-unique (and fleet-unique in practice)
    /// nonzero trace id.
    pub fn generate() -> TraceId {
        static NEXT: AtomicU64 = AtomicU64::new(1);
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        let hi = splitmix64(process_seed() ^ n);
        let lo = splitmix64(hi ^ n.rotate_left(32));
        let id = (u128::from(hi) << 64) | u128::from(lo);
        TraceId(if id == 0 { 1 } else { id })
    }

    /// 32-digit lowercase hex encoding (the wire format).
    pub fn to_hex(self) -> String {
        format!("{:032x}", self.0)
    }

    /// Parses 1–32 hex digits; rejects zero, empty, and non-hex input.
    pub fn parse(s: &str) -> Option<TraceId> {
        if s.is_empty() || s.len() > 32 {
            return None;
        }
        let v = u128::from_str_radix(s, 16).ok()?;
        (v != 0).then_some(TraceId(v))
    }
}

impl std::fmt::Display for TraceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

/// The propagated context: which trace a unit of work belongs to, and the
/// caller-side span id it should attach under (0 = no remote parent).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    /// The 128-bit trace id shared by every hop of the request.
    pub trace_id: TraceId,
    /// Span id of the remote caller's span, if it sent one; local root
    /// spans opened under this context use it as their parent.
    pub parent_span: u64,
}

impl TraceContext {
    /// A fresh context with a generated id and no remote parent.
    pub fn new() -> TraceContext {
        TraceContext {
            trace_id: TraceId::generate(),
            parent_span: 0,
        }
    }
}

impl Default for TraceContext {
    fn default() -> TraceContext {
        TraceContext::new()
    }
}

thread_local! {
    static CURRENT: Cell<Option<TraceContext>> = const { Cell::new(None) };
}

/// The trace context installed on this thread, if any.
pub fn current() -> Option<TraceContext> {
    CURRENT.with(Cell::get)
}

/// Installs `ctx` as the current thread's trace context until the guard
/// drops (the previous context, if any, is restored — contexts nest).
pub fn enter(ctx: TraceContext) -> TraceGuard {
    TraceGuard {
        prev: CURRENT.with(|c| c.replace(Some(ctx))),
    }
}

/// RAII guard returned by [`enter`]; restores the previous context on drop.
#[must_use = "dropping the guard immediately uninstalls the trace context"]
pub struct TraceGuard {
    prev: Option<TraceContext>,
}

impl Drop for TraceGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| c.set(self.prev.take()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_ids_are_nonzero_and_distinct() {
        let a = TraceId::generate();
        let b = TraceId::generate();
        assert_ne!(a.0, 0);
        assert_ne!(a, b);
    }

    #[test]
    fn hex_round_trips_and_is_32_digits() {
        let id = TraceId::generate();
        let hex = id.to_hex();
        assert_eq!(hex.len(), 32);
        assert_eq!(TraceId::parse(&hex), Some(id));
        assert_eq!(
            TraceId::parse("0000000000000000000000000000002a"),
            Some(TraceId(42))
        );
        assert_eq!(TraceId::parse("2a"), Some(TraceId(42)));
    }

    #[test]
    fn parse_rejects_zero_empty_overlong_and_nonhex() {
        assert_eq!(TraceId::parse(""), None);
        assert_eq!(TraceId::parse("0"), None);
        assert_eq!(TraceId::parse(&"0".repeat(32)), None);
        assert_eq!(TraceId::parse(&"f".repeat(33)), None);
        assert_eq!(TraceId::parse("xyz"), None);
    }

    #[test]
    fn enter_nests_and_restores() {
        assert_eq!(current(), None);
        let outer = TraceContext::new();
        let guard = enter(outer);
        assert_eq!(current(), Some(outer));
        {
            let inner = TraceContext {
                trace_id: TraceId(7),
                parent_span: 9,
            };
            let _inner_guard = enter(inner);
            assert_eq!(current(), Some(inner));
        }
        assert_eq!(current(), Some(outer));
        drop(guard);
        assert_eq!(current(), None);
    }
}
