//! Self-time aggregation over recorded spans, backing `statleak trace`.

use std::collections::BTreeMap;

use crate::span::Record;

/// Aggregate for one span name.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileRow {
    /// Span name.
    pub name: &'static str,
    /// Number of completed spans with this name.
    pub calls: u64,
    /// Total (inclusive) time across calls, microseconds.
    pub total_us: f64,
    /// Self time: total minus time spent in child spans, microseconds.
    pub self_us: f64,
}

/// Aggregates spans by name into per-name call counts, total time, and
/// self time (total minus direct children), sorted by self time
/// descending. Events are ignored.
pub fn self_time(records: &[Record]) -> Vec<ProfileRow> {
    let mut child_sum: BTreeMap<u64, f64> = BTreeMap::new();
    for record in records {
        if let Record::Span(s) = record {
            if s.parent != 0 {
                *child_sum.entry(s.parent).or_insert(0.0) += s.dur_us;
            }
        }
    }
    let mut rows: BTreeMap<&'static str, ProfileRow> = BTreeMap::new();
    for record in records {
        if let Record::Span(s) = record {
            let row = rows.entry(s.name).or_insert(ProfileRow {
                name: s.name,
                calls: 0,
                total_us: 0.0,
                self_us: 0.0,
            });
            row.calls += 1;
            row.total_us += s.dur_us;
            row.self_us += (s.dur_us - child_sum.get(&s.id).copied().unwrap_or(0.0)).max(0.0);
        }
    }
    let mut rows: Vec<ProfileRow> = rows.into_values().collect();
    rows.sort_by(|a, b| b.self_us.total_cmp(&a.self_us).then(a.name.cmp(b.name)));
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::SpanRecord;

    fn span(name: &'static str, id: u64, parent: u64, dur_us: f64) -> Record {
        Record::Span(SpanRecord {
            name,
            id,
            parent,
            thread: 1,
            start_us: 0.0,
            dur_us,
            trace: 0,
        })
    }

    #[test]
    fn self_time_subtracts_direct_children_only() {
        let records = vec![
            span("root", 1, 0, 100.0),
            span("mid", 2, 1, 80.0),
            span("leaf", 3, 2, 30.0),
            span("leaf", 4, 2, 30.0),
        ];
        let rows = self_time(&records);
        let get = |name: &str| rows.iter().find(|r| r.name == name).unwrap().clone();
        assert_eq!(get("leaf").calls, 2);
        assert!((get("leaf").self_us - 60.0).abs() < 1e-9);
        assert!((get("mid").self_us - 20.0).abs() < 1e-9);
        assert!((get("root").self_us - 20.0).abs() < 1e-9);
        assert_eq!(rows[0].name, "leaf", "sorted by self time descending");
    }

    #[test]
    fn negative_self_time_clamps_to_zero() {
        // Overlapping/clock-skewed children can exceed the parent; the
        // row must not go negative.
        let records = vec![span("p", 1, 0, 10.0), span("c", 2, 1, 15.0)];
        let rows = self_time(&records);
        assert_eq!(rows.iter().find(|r| r.name == "p").unwrap().self_us, 0.0);
    }
}
