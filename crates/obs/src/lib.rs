//! Zero-dependency observability layer for the statleak workspace.
//!
//! Three pillars, all hand-rolled (no external crates, in the spirit of
//! `engine::json`):
//!
//! - **Spans** ([`span`], [`span!`]): hierarchical wall-clock timings with
//!   monotonic-clock durations, per-thread parent links, and a stable
//!   `thread` id. Each thread records into its own buffer (uncontended
//!   mutex, so recording never blocks on other threads) and batches are
//!   drained to the installed sinks.
//! - **Metrics** ([`metrics::Registry`]): typed counters, gauges, and
//!   log-bucketed (power-of-two) histograms in a global registry, with a
//!   JSON-friendly snapshot and a Prometheus text exposition.
//! - **Sinks** ([`sink::SinkSpec`]): stderr pretty-printer, NDJSON file,
//!   and an in-memory store for tests. The default sink is
//!   [`sink::SinkSpec::Disabled`]: span entry reduces to one relaxed
//!   atomic load and no clock read, so instrumented code paths stay
//!   effectively free until tracing is switched on.
//! - **Trace context** ([`trace`]): 128-bit request-scoped trace ids,
//!   installed per thread with [`trace::enter`] and propagated across
//!   process boundaries by the serve protocol. Spans, events, and
//!   histogram exemplars recorded under a context carry its id, so one
//!   id follows a request from client to fleet node to worker thread.
//!
//! The overhead contract is enforced by tests in the workspace root:
//! analysis results must be byte-identical with every sink installed,
//! including `Disabled`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod metrics;
pub mod profile;
pub mod sink;
pub mod span;
pub mod trace;

pub use metrics::{Counter, Exemplar, Gauge, Histogram, HistogramSnapshot, Registry};
pub use profile::{self_time, ProfileRow};
pub use sink::{enabled, flush, init_from_env, install, take_memory, SinkSpec};
pub use span::{event, span, EventRecord, Record, SpanRecord};
pub use trace::{TraceContext, TraceId};

use std::sync::atomic::{AtomicU8, Ordering};

/// Log verbosity for [`log`]; higher levels include lower ones.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    /// Unrecoverable or surprising failures.
    Error = 0,
    /// Suspicious conditions the run survives (default).
    Warn = 1,
    /// High-level progress.
    Info = 2,
    /// Per-stage details.
    Debug = 3,
    /// Per-iteration details.
    Trace = 4,
}

impl Level {
    fn as_str(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
            Level::Trace => "trace",
        }
    }

    fn from_u8(v: u8) -> Level {
        match v {
            0 => Level::Error,
            1 => Level::Warn,
            2 => Level::Info,
            3 => Level::Debug,
            _ => Level::Trace,
        }
    }
}

impl std::str::FromStr for Level {
    type Err = String;

    fn from_str(s: &str) -> Result<Level, String> {
        match s {
            "error" => Ok(Level::Error),
            "warn" => Ok(Level::Warn),
            "info" => Ok(Level::Info),
            "debug" => Ok(Level::Debug),
            "trace" => Ok(Level::Trace),
            other => Err(format!(
                "unknown log level {other:?} (expected error|warn|info|debug|trace)"
            )),
        }
    }
}

impl std::fmt::Display for Level {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

static LOG_LEVEL: AtomicU8 = AtomicU8::new(Level::Warn as u8);

/// Sets the global threshold for [`log`].
pub fn set_log_level(level: Level) {
    LOG_LEVEL.store(level as u8, Ordering::Relaxed);
}

/// Current global log threshold.
pub fn log_level() -> Level {
    Level::from_u8(LOG_LEVEL.load(Ordering::Relaxed))
}

/// Writes `msg` to stderr iff `level` is at or below the global threshold.
pub fn log(level: Level, msg: &str) {
    if level <= log_level() {
        eprintln!("statleak[{level}] {msg}");
    }
}

/// Opens a span named by a string literal; bind the guard to keep it alive:
/// `let _span = obs::span!("ssta.propagate");`.
#[macro_export]
macro_rules! span {
    ($name:literal) => {
        $crate::span::span($name)
    };
}

/// Returns a `&'static` counter handle, resolved once per call site.
#[macro_export]
macro_rules! counter {
    ($name:literal) => {{
        static HANDLE: std::sync::OnceLock<$crate::metrics::Counter> = std::sync::OnceLock::new();
        HANDLE.get_or_init(|| $crate::metrics::Registry::global().counter($name))
    }};
}

/// Returns a `&'static` gauge handle, resolved once per call site.
#[macro_export]
macro_rules! gauge {
    ($name:literal) => {{
        static HANDLE: std::sync::OnceLock<$crate::metrics::Gauge> = std::sync::OnceLock::new();
        HANDLE.get_or_init(|| $crate::metrics::Registry::global().gauge($name))
    }};
}

/// Returns a `&'static` histogram handle, resolved once per call site.
#[macro_export]
macro_rules! histogram {
    ($name:literal) => {{
        static HANDLE: std::sync::OnceLock<$crate::metrics::Histogram> = std::sync::OnceLock::new();
        HANDLE.get_or_init(|| $crate::metrics::Registry::global().histogram($name))
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_parse_round_trips_and_orders() {
        for name in ["error", "warn", "info", "debug", "trace"] {
            let level: Level = name.parse().unwrap();
            assert_eq!(level.to_string(), name);
        }
        assert!("verbose".parse::<Level>().is_err());
        assert!(Level::Error < Level::Trace);
    }

    #[test]
    fn metric_macros_return_stable_handles() {
        let c = counter!("obs_test_macro_counter");
        c.inc();
        c.add(2);
        assert_eq!(c.get(), 3);
        gauge!("obs_test_macro_gauge").set(1.5);
        histogram!("obs_test_macro_histo").record(1000);
    }
}
