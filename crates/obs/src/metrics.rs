//! Typed counters, gauges, and log-bucketed histograms in a global
//! registry, with a Prometheus text exposition.
//!
//! Handles are cheap `Arc` clones around atomics; call sites cache them in
//! a `OnceLock` via the [`crate::counter!`] / [`crate::gauge!`] /
//! [`crate::histogram!`] macros so steady-state updates are a single
//! atomic op with no registry lock.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

/// Monotonically increasing counter.
#[derive(Debug, Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Last-write-wins floating-point gauge (stored as bits in an atomic).
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Number of power-of-two buckets; bucket `i` (for `i >= 1`) holds values
/// in `[2^(i-1), 2^i - 1]`, bucket 0 holds exactly 0, and the last bucket
/// additionally absorbs everything above `2^62`.
const BUCKETS: usize = 64;

#[derive(Debug)]
struct HistogramInner {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

/// Log-bucketed histogram for latency-like values (record in nanoseconds).
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistogramInner>);

/// Bucket index for a recorded value: `64 - leading_zeros`, clamped.
fn bucket_index(v: u64) -> usize {
    ((u64::BITS - v.leading_zeros()) as usize).min(BUCKETS - 1)
}

/// Inclusive upper bound of bucket `i` (`None` = +Inf, for the last).
fn bucket_upper(i: usize) -> Option<u64> {
    if i + 1 >= BUCKETS {
        None
    } else {
        Some((1u64 << i) - 1)
    }
}

/// Representative value for bucket `i` (geometric midpoint), used for
/// quantile estimates.
fn bucket_mid(i: usize) -> f64 {
    if i == 0 {
        0.0
    } else {
        let lo = (1u64 << (i - 1)) as f64;
        let hi = (1u64 << i.min(63)) as f64;
        (lo * hi).sqrt()
    }
}

impl Histogram {
    /// Records one observation.
    pub fn record(&self, v: u64) {
        self.0.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Records a duration in nanoseconds (saturating on overflow).
    pub fn record_duration(&self, d: Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    fn snapshot(&self, name: &'static str) -> HistogramSnapshot {
        let buckets: Vec<(usize, u64)> = (0..BUCKETS)
            .filter_map(|i| {
                let c = self.0.buckets[i].load(Ordering::Relaxed);
                (c > 0).then_some((i, c))
            })
            .collect();
        let count = self.count();
        let sum = self.0.sum.load(Ordering::Relaxed);
        let quantile = |q: f64| -> f64 {
            if count == 0 {
                return 0.0;
            }
            let target = (q * count as f64).ceil().max(1.0) as u64;
            let mut seen = 0u64;
            for &(i, c) in &buckets {
                seen += c;
                if seen >= target {
                    return bucket_mid(i);
                }
            }
            bucket_mid(BUCKETS - 1)
        };
        HistogramSnapshot {
            name,
            count,
            sum,
            mean: if count == 0 {
                0.0
            } else {
                sum as f64 / count as f64
            },
            p50: quantile(0.50),
            p95: quantile(0.95),
            p99: quantile(0.99),
            buckets,
        }
    }
}

/// Point-in-time view of one histogram.
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    /// Registered name.
    pub name: &'static str,
    /// Observation count.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
    /// `sum / count` (0 when empty).
    pub mean: f64,
    /// Estimated median (bucket geometric midpoint).
    pub p50: f64,
    /// Estimated 95th percentile.
    pub p95: f64,
    /// Estimated 99th percentile.
    pub p99: f64,
    /// Non-empty `(bucket index, count)` pairs, ascending.
    pub buckets: Vec<(usize, u64)>,
}

/// Point-in-time view of the whole registry (sorted by name).
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// Counter name/value pairs.
    pub counters: Vec<(&'static str, u64)>,
    /// Gauge name/value pairs.
    pub gauges: Vec<(&'static str, f64)>,
    /// Histogram snapshots.
    pub histograms: Vec<HistogramSnapshot>,
}

/// Named-metric registry. Use [`Registry::global`] in production code;
/// `Registry::new` exists so tests can work on an isolated instance.
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<&'static str, Counter>>,
    gauges: Mutex<BTreeMap<&'static str, Gauge>>,
    histograms: Mutex<BTreeMap<&'static str, Histogram>>,
}

impl Registry {
    /// Creates an empty registry (tests / tools).
    pub fn new() -> Registry {
        Registry::default()
    }

    /// The process-wide registry.
    pub fn global() -> &'static Registry {
        static GLOBAL: OnceLock<Registry> = OnceLock::new();
        GLOBAL.get_or_init(Registry::new)
    }

    /// Returns the counter registered under `name`, creating it if new.
    pub fn counter(&self, name: &'static str) -> Counter {
        self.counters
            .lock()
            .expect("metrics registry poisoned")
            .entry(name)
            .or_insert_with(|| Counter(Arc::new(AtomicU64::new(0))))
            .clone()
    }

    /// Returns the gauge registered under `name`, creating it if new.
    pub fn gauge(&self, name: &'static str) -> Gauge {
        self.gauges
            .lock()
            .expect("metrics registry poisoned")
            .entry(name)
            .or_insert_with(|| Gauge(Arc::new(AtomicU64::new(0f64.to_bits()))))
            .clone()
    }

    /// Returns the histogram registered under `name`, creating it if new.
    pub fn histogram(&self, name: &'static str) -> Histogram {
        self.histograms
            .lock()
            .expect("metrics registry poisoned")
            .entry(name)
            .or_insert_with(|| {
                Histogram(Arc::new(HistogramInner {
                    buckets: std::array::from_fn(|_| AtomicU64::new(0)),
                    count: AtomicU64::new(0),
                    sum: AtomicU64::new(0),
                }))
            })
            .clone()
    }

    /// Consistent-enough snapshot of every metric (each atomic read is
    /// individually relaxed).
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .lock()
                .expect("metrics registry poisoned")
                .iter()
                .map(|(&name, c)| (name, c.get()))
                .collect(),
            gauges: self
                .gauges
                .lock()
                .expect("metrics registry poisoned")
                .iter()
                .map(|(&name, g)| (name, g.get()))
                .collect(),
            histograms: self
                .histograms
                .lock()
                .expect("metrics registry poisoned")
                .iter()
                .map(|(&name, h)| h.snapshot(name))
                .collect(),
        }
    }

    /// Prometheus text exposition (version 0.0.4) of the registry, with
    /// every metric name prefixed `statleak_`.
    pub fn prometheus_text(&self) -> String {
        let snapshot = self.snapshot();
        let mut out = String::new();
        for (name, value) in &snapshot.counters {
            out.push_str(&format!(
                "# TYPE statleak_{name} counter\nstatleak_{name} {value}\n"
            ));
        }
        for (name, value) in &snapshot.gauges {
            out.push_str(&format!(
                "# TYPE statleak_{name} gauge\nstatleak_{name} {value}\n"
            ));
        }
        for h in &snapshot.histograms {
            let name = h.name;
            out.push_str(&format!("# TYPE statleak_{name} histogram\n"));
            let mut cumulative = 0u64;
            for &(i, c) in &h.buckets {
                cumulative += c;
                if let Some(upper) = bucket_upper(i) {
                    out.push_str(&format!(
                        "statleak_{name}_bucket{{le=\"{upper}\"}} {cumulative}\n"
                    ));
                }
            }
            out.push_str(&format!(
                "statleak_{name}_bucket{{le=\"+Inf\"}} {}\n",
                h.count
            ));
            out.push_str(&format!("statleak_{name}_sum {}\n", h.sum));
            out.push_str(&format!("statleak_{name}_count {}\n", h.count));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_log2_with_zero_bucket() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), 63);
    }

    #[test]
    fn bucket_bounds_cover_their_index_range() {
        for i in 1..BUCKETS - 1 {
            let upper = bucket_upper(i).unwrap();
            assert_eq!(bucket_index(upper), i, "upper bound of bucket {i}");
            assert_eq!(bucket_index(upper + 1), i + 1);
        }
        assert_eq!(bucket_upper(BUCKETS - 1), None);
    }

    #[test]
    fn registry_dedups_handles_by_name() {
        let registry = Registry::new();
        let a = registry.counter("x");
        let b = registry.counter("x");
        a.add(2);
        b.inc();
        assert_eq!(registry.counter("x").get(), 3);
    }

    #[test]
    fn histogram_snapshot_quantiles_are_monotone() {
        let registry = Registry::new();
        let h = registry.histogram("lat");
        for v in [1u64, 10, 100, 1000, 10_000, 100_000, 1_000_000] {
            h.record(v);
        }
        let snapshot = &registry.snapshot().histograms[0];
        assert_eq!(snapshot.count, 7);
        assert!(snapshot.p50 <= snapshot.p95);
        assert!(snapshot.p95 <= snapshot.p99);
        assert!(snapshot.mean > 0.0);
    }

    #[test]
    fn prometheus_text_is_cumulative_and_typed() {
        let registry = Registry::new();
        registry.counter("reqs").add(5);
        registry.gauge("depth").set(2.5);
        let h = registry.histogram("svc_ns");
        h.record(3);
        h.record(100);
        let text = registry.prometheus_text();
        assert!(text.contains("# TYPE statleak_reqs counter\nstatleak_reqs 5\n"));
        assert!(text.contains("# TYPE statleak_depth gauge\nstatleak_depth 2.5\n"));
        assert!(text.contains("# TYPE statleak_svc_ns histogram\n"));
        assert!(text.contains("statleak_svc_ns_bucket{le=\"3\"} 1\n"));
        assert!(text.contains("statleak_svc_ns_bucket{le=\"127\"} 2\n"));
        assert!(text.contains("statleak_svc_ns_bucket{le=\"+Inf\"} 2\n"));
        assert!(text.contains("statleak_svc_ns_sum 103\n"));
        assert!(text.contains("statleak_svc_ns_count 2\n"));
    }
}
