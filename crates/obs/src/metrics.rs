//! Typed counters, gauges, and log-bucketed histograms in a global
//! registry, with a Prometheus text exposition.
//!
//! Handles are cheap `Arc` clones around atomics; call sites cache them in
//! a `OnceLock` via the [`crate::counter!`] / [`crate::gauge!`] /
//! [`crate::histogram!`] macros so steady-state updates are a single
//! atomic op with no registry lock.

use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

use crate::trace::{self, TraceId};

/// Monotonically increasing counter.
#[derive(Debug, Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Last-write-wins floating-point gauge (stored as bits in an atomic).
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Number of power-of-two buckets; bucket `i` (for `i >= 1`) holds values
/// in `[2^(i-1), 2^i - 1]`, bucket 0 holds exactly 0, and the last bucket
/// additionally absorbs everything above `2^62`.
const BUCKETS: usize = 64;

/// Maximum exemplars a histogram retains (oldest evicted first).
pub const EXEMPLAR_CAP: usize = 4;

/// A sampled observation pinned to the trace that produced it, so a
/// latency spike in a histogram links to a replayable trace id.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Exemplar {
    /// The recorded value (same unit as the histogram).
    pub value: u64,
    /// Trace id of the request that recorded it.
    pub trace_id: TraceId,
}

#[derive(Debug)]
struct HistogramInner {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    exemplars: Mutex<VecDeque<Exemplar>>,
}

/// Log-bucketed histogram for latency-like values (record in nanoseconds).
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistogramInner>);

/// Bucket index for a recorded value: `64 - leading_zeros`, clamped.
fn bucket_index(v: u64) -> usize {
    ((u64::BITS - v.leading_zeros()) as usize).min(BUCKETS - 1)
}

/// Inclusive upper bound of bucket `i` (`None` = +Inf, for the last).
fn bucket_upper(i: usize) -> Option<u64> {
    if i + 1 >= BUCKETS {
        None
    } else {
        Some((1u64 << i) - 1)
    }
}

/// Representative value for bucket `i` (geometric midpoint), used for
/// quantile estimates.
fn bucket_mid(i: usize) -> f64 {
    if i == 0 {
        0.0
    } else {
        let lo = (1u64 << (i - 1)) as f64;
        let hi = (1u64 << i.min(63)) as f64;
        (lo * hi).sqrt()
    }
}

impl Histogram {
    /// Records one observation.
    pub fn record(&self, v: u64) {
        self.0.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Records a duration in nanoseconds (saturating on overflow).
    pub fn record_duration(&self, d: Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Records one observation and, when a [`trace::TraceContext`] is
    /// installed on this thread, retains `(value, trace_id)` as an
    /// exemplar (ring of [`EXEMPLAR_CAP`], oldest evicted). Untraced
    /// calls cost exactly what [`Histogram::record`] does.
    pub fn record_traced(&self, v: u64) {
        self.record(v);
        if let Some(ctx) = trace::current() {
            let mut ring = self.0.exemplars.lock().expect("exemplar ring poisoned");
            if ring.len() >= EXEMPLAR_CAP {
                ring.pop_front();
            }
            ring.push_back(Exemplar {
                value: v,
                trace_id: ctx.trace_id,
            });
        }
    }

    /// Records a duration in nanoseconds with exemplar capture.
    pub fn record_duration_traced(&self, d: Duration) {
        self.record_traced(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Current exemplar ring contents, oldest first.
    pub fn exemplars(&self) -> Vec<Exemplar> {
        self.0
            .exemplars
            .lock()
            .expect("exemplar ring poisoned")
            .iter()
            .cloned()
            .collect()
    }

    fn snapshot(&self, name: &str) -> HistogramSnapshot {
        let buckets: Vec<(usize, u64)> = (0..BUCKETS)
            .filter_map(|i| {
                let c = self.0.buckets[i].load(Ordering::Relaxed);
                (c > 0).then_some((i, c))
            })
            .collect();
        let sum = self.0.sum.load(Ordering::Relaxed);
        HistogramSnapshot::from_parts(name.to_string(), buckets, sum, self.exemplars())
    }
}

/// Estimates the `q`-quantile (0..=1) of a log-bucketed distribution from
/// sparse `(bucket index, count)` pairs, as the geometric midpoint of the
/// bucket containing the target rank. `count` must be the bucket total.
pub fn estimate_quantile(buckets: &[(usize, u64)], count: u64, q: f64) -> f64 {
    if count == 0 {
        return 0.0;
    }
    let target = (q * count as f64).ceil().max(1.0) as u64;
    let mut seen = 0u64;
    for &(i, c) in buckets {
        seen += c;
        if seen >= target {
            return bucket_mid(i);
        }
    }
    bucket_mid(BUCKETS - 1)
}

/// Point-in-time view of one histogram.
///
/// This is also the *mergeable* wire representation for fleet
/// aggregation: the sparse `(bucket index, count)` pairs plus `sum` are
/// lossless under addition, so snapshots from different processes (whose
/// power-of-two bucket layout is identical by construction) combine with
/// [`HistogramSnapshot::merge`] into exactly the histogram a single
/// process would have produced from the concatenated samples.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Registered name.
    pub name: String,
    /// Observation count (always the sum of `buckets` counts, so the
    /// cumulative `+Inf` bucket equals the total by construction).
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
    /// `sum / count` (0 when empty).
    pub mean: f64,
    /// Estimated median (bucket geometric midpoint).
    pub p50: f64,
    /// Estimated 95th percentile.
    pub p95: f64,
    /// Estimated 99th percentile.
    pub p99: f64,
    /// Non-empty `(bucket index, count)` pairs, ascending.
    pub buckets: Vec<(usize, u64)>,
    /// Retained `(value, trace_id)` exemplars, oldest first (≤ [`EXEMPLAR_CAP`]).
    pub exemplars: Vec<Exemplar>,
}

impl HistogramSnapshot {
    /// Builds a snapshot from its mergeable parts, deriving `count`,
    /// `mean`, and the quantile estimates from the buckets.
    pub fn from_parts(
        name: String,
        buckets: Vec<(usize, u64)>,
        sum: u64,
        exemplars: Vec<Exemplar>,
    ) -> HistogramSnapshot {
        let count: u64 = buckets.iter().map(|&(_, c)| c).sum();
        HistogramSnapshot {
            name,
            count,
            sum,
            mean: if count == 0 {
                0.0
            } else {
                sum as f64 / count as f64
            },
            p50: estimate_quantile(&buckets, count, 0.50),
            p95: estimate_quantile(&buckets, count, 0.95),
            p99: estimate_quantile(&buckets, count, 0.99),
            buckets,
            exemplars,
        }
    }

    /// An empty snapshot under `name`, the identity element for [`merge`].
    ///
    /// [`merge`]: HistogramSnapshot::merge
    pub fn empty(name: String) -> HistogramSnapshot {
        HistogramSnapshot::from_parts(name, Vec::new(), 0, Vec::new())
    }

    /// Folds `other` into `self`: bucket counts and sums add, quantile
    /// estimates are recomputed from the merged buckets, and exemplars
    /// concatenate (newest kept, capped at [`EXEMPLAR_CAP`]).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        let mut merged: BTreeMap<usize, u64> = self.buckets.iter().copied().collect();
        for &(i, c) in &other.buckets {
            *merged.entry(i).or_insert(0) += c;
        }
        let mut exemplars = std::mem::take(&mut self.exemplars);
        exemplars.extend(other.exemplars.iter().cloned());
        if exemplars.len() > EXEMPLAR_CAP {
            exemplars.drain(..exemplars.len() - EXEMPLAR_CAP);
        }
        // Wrapping add matches the live histogram's atomic `fetch_add`
        // semantics, so merge ≡ concatenation even at u64::MAX samples.
        *self = HistogramSnapshot::from_parts(
            std::mem::take(&mut self.name),
            merged.into_iter().collect(),
            self.sum.wrapping_add(other.sum),
            exemplars,
        );
    }
}

/// Point-in-time view of the whole registry (sorted by name).
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// Counter name/value pairs.
    pub counters: Vec<(&'static str, u64)>,
    /// Gauge name/value pairs.
    pub gauges: Vec<(&'static str, f64)>,
    /// Histogram snapshots.
    pub histograms: Vec<HistogramSnapshot>,
}

/// Named-metric registry. Use [`Registry::global`] in production code;
/// `Registry::new` exists so tests can work on an isolated instance.
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<&'static str, Counter>>,
    gauges: Mutex<BTreeMap<&'static str, Gauge>>,
    histograms: Mutex<BTreeMap<&'static str, Histogram>>,
    helps: Mutex<BTreeMap<&'static str, &'static str>>,
}

impl Registry {
    /// Creates an empty registry (tests / tools).
    pub fn new() -> Registry {
        Registry::default()
    }

    /// The process-wide registry.
    pub fn global() -> &'static Registry {
        static GLOBAL: OnceLock<Registry> = OnceLock::new();
        GLOBAL.get_or_init(Registry::new)
    }

    /// Returns the counter registered under `name`, creating it if new.
    pub fn counter(&self, name: &'static str) -> Counter {
        self.counters
            .lock()
            .expect("metrics registry poisoned")
            .entry(name)
            .or_insert_with(|| Counter(Arc::new(AtomicU64::new(0))))
            .clone()
    }

    /// Returns the gauge registered under `name`, creating it if new.
    pub fn gauge(&self, name: &'static str) -> Gauge {
        self.gauges
            .lock()
            .expect("metrics registry poisoned")
            .entry(name)
            .or_insert_with(|| Gauge(Arc::new(AtomicU64::new(0f64.to_bits()))))
            .clone()
    }

    /// Returns the histogram registered under `name`, creating it if new.
    pub fn histogram(&self, name: &'static str) -> Histogram {
        self.histograms
            .lock()
            .expect("metrics registry poisoned")
            .entry(name)
            .or_insert_with(|| {
                Histogram(Arc::new(HistogramInner {
                    buckets: std::array::from_fn(|_| AtomicU64::new(0)),
                    count: AtomicU64::new(0),
                    sum: AtomicU64::new(0),
                    exemplars: Mutex::new(VecDeque::new()),
                }))
            })
            .clone()
    }

    /// Registers free-form help text for `name`, emitted as a `# HELP`
    /// line in [`Registry::prometheus_text`] (escaped per the exposition
    /// format). Idempotent; the latest registration wins.
    pub fn describe(&self, name: &'static str, help: &'static str) {
        self.helps
            .lock()
            .expect("metrics registry poisoned")
            .insert(name, help);
    }

    /// Consistent-enough snapshot of every metric (each atomic read is
    /// individually relaxed).
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .lock()
                .expect("metrics registry poisoned")
                .iter()
                .map(|(&name, c)| (name, c.get()))
                .collect(),
            gauges: self
                .gauges
                .lock()
                .expect("metrics registry poisoned")
                .iter()
                .map(|(&name, g)| (name, g.get()))
                .collect(),
            histograms: self
                .histograms
                .lock()
                .expect("metrics registry poisoned")
                .iter()
                .map(|(&name, h)| h.snapshot(name))
                .collect(),
        }
    }

    /// Prometheus text exposition (version 0.0.4) of the registry, with
    /// every metric name prefixed `statleak_`.
    ///
    /// Help text and label values are escaped per the exposition-format
    /// rules, the cumulative `+Inf` bucket always equals `_count` (both
    /// derive from the same bucket totals), and histogram exemplars are
    /// emitted as `# EXEMPLAR` comment lines (ignored by 0.0.4 parsers,
    /// greppable by operators and the fleet tests).
    pub fn prometheus_text(&self) -> String {
        let snapshot = self.snapshot();
        let helps = self
            .helps
            .lock()
            .expect("metrics registry poisoned")
            .clone();
        let mut out = String::new();
        let help_line = |out: &mut String, name: &str| {
            if let Some(help) = helps.get(name) {
                out.push_str(&format!("# HELP statleak_{name} {}\n", escape_help(help)));
            }
        };
        for (name, value) in &snapshot.counters {
            help_line(&mut out, name);
            out.push_str(&format!(
                "# TYPE statleak_{name} counter\nstatleak_{name} {value}\n"
            ));
        }
        for (name, value) in &snapshot.gauges {
            help_line(&mut out, name);
            out.push_str(&format!(
                "# TYPE statleak_{name} gauge\nstatleak_{name} {value}\n"
            ));
        }
        for h in &snapshot.histograms {
            let name = &h.name;
            help_line(&mut out, name);
            out.push_str(&format!("# TYPE statleak_{name} histogram\n"));
            let mut cumulative = 0u64;
            for &(i, c) in &h.buckets {
                cumulative += c;
                if let Some(upper) = bucket_upper(i) {
                    out.push_str(&format!(
                        "statleak_{name}_bucket{{le=\"{upper}\"}} {cumulative}\n"
                    ));
                }
            }
            // `cumulative` now holds the bucket total, so +Inf and _count
            // agree by construction even under concurrent recording.
            out.push_str(&format!(
                "statleak_{name}_bucket{{le=\"+Inf\"}} {cumulative}\n"
            ));
            out.push_str(&format!("statleak_{name}_sum {}\n", h.sum));
            out.push_str(&format!("statleak_{name}_count {cumulative}\n"));
            for ex in &h.exemplars {
                out.push_str(&format!(
                    "# EXEMPLAR statleak_{name}{{trace_id=\"{}\"}} {}\n",
                    escape_label_value(&ex.trace_id.to_hex()),
                    ex.value
                ));
            }
        }
        out
    }
}

/// Escapes a label value per the Prometheus exposition format: backslash,
/// double quote, and newline become `\\`, `\"`, and `\n`.
pub fn escape_label_value(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

/// Escapes `# HELP` text per the Prometheus exposition format: backslash
/// and newline become `\\` and `\n` (quotes are legal in help text).
pub fn escape_help(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_log2_with_zero_bucket() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), 63);
    }

    #[test]
    fn bucket_bounds_cover_their_index_range() {
        for i in 1..BUCKETS - 1 {
            let upper = bucket_upper(i).unwrap();
            assert_eq!(bucket_index(upper), i, "upper bound of bucket {i}");
            assert_eq!(bucket_index(upper + 1), i + 1);
        }
        assert_eq!(bucket_upper(BUCKETS - 1), None);
    }

    #[test]
    fn registry_dedups_handles_by_name() {
        let registry = Registry::new();
        let a = registry.counter("x");
        let b = registry.counter("x");
        a.add(2);
        b.inc();
        assert_eq!(registry.counter("x").get(), 3);
    }

    #[test]
    fn histogram_snapshot_quantiles_are_monotone() {
        let registry = Registry::new();
        let h = registry.histogram("lat");
        for v in [1u64, 10, 100, 1000, 10_000, 100_000, 1_000_000] {
            h.record(v);
        }
        let snapshot = &registry.snapshot().histograms[0];
        assert_eq!(snapshot.count, 7);
        assert!(snapshot.p50 <= snapshot.p95);
        assert!(snapshot.p95 <= snapshot.p99);
        assert!(snapshot.mean > 0.0);
    }

    #[test]
    fn prometheus_text_is_cumulative_and_typed() {
        let registry = Registry::new();
        registry.counter("reqs").add(5);
        registry.gauge("depth").set(2.5);
        let h = registry.histogram("svc_ns");
        h.record(3);
        h.record(100);
        let text = registry.prometheus_text();
        assert!(text.contains("# TYPE statleak_reqs counter\nstatleak_reqs 5\n"));
        assert!(text.contains("# TYPE statleak_depth gauge\nstatleak_depth 2.5\n"));
        assert!(text.contains("# TYPE statleak_svc_ns histogram\n"));
        assert!(text.contains("statleak_svc_ns_bucket{le=\"3\"} 1\n"));
        assert!(text.contains("statleak_svc_ns_bucket{le=\"127\"} 2\n"));
        assert!(text.contains("statleak_svc_ns_bucket{le=\"+Inf\"} 2\n"));
        assert!(text.contains("statleak_svc_ns_sum 103\n"));
        assert!(text.contains("statleak_svc_ns_count 2\n"));
    }

    /// Satellite: exposition escaping + the `+Inf`-equals-`_count`
    /// invariant are locked down here.
    #[test]
    fn prometheus_text_escapes_help_and_labels() {
        assert_eq!(escape_help("a\\b\nc\"d"), "a\\\\b\\nc\"d");
        assert_eq!(escape_label_value("a\\b\nc\"d"), "a\\\\b\\nc\\\"d");
        let registry = Registry::new();
        registry.counter("esc_reqs").inc();
        registry.describe("esc_reqs", "line one\nline \\two");
        let text = registry.prometheus_text();
        assert!(
            text.contains("# HELP statleak_esc_reqs line one\\nline \\\\two\n"),
            "{text}"
        );
        // Escaped help stays a single exposition line.
        assert!(!text.contains("line one\nline"), "{text}");
    }

    #[test]
    fn prometheus_inf_bucket_equals_count() {
        let registry = Registry::new();
        let h = registry.histogram("inf_ns");
        for v in [0u64, 1, 5, 1000, u64::MAX] {
            h.record(v);
        }
        let text = registry.prometheus_text();
        assert!(
            text.contains("statleak_inf_ns_bucket{le=\"+Inf\"} 5\n"),
            "{text}"
        );
        assert!(text.contains("statleak_inf_ns_count 5\n"), "{text}");
        let snapshot = registry.snapshot().histograms[0].clone();
        assert_eq!(
            snapshot.count,
            snapshot.buckets.iter().map(|&(_, c)| c).sum::<u64>()
        );
    }

    #[test]
    fn record_traced_keeps_a_capped_exemplar_ring() {
        let registry = Registry::new();
        let h = registry.histogram("ex_ns");
        h.record_traced(7); // no context installed: no exemplar
        assert!(h.exemplars().is_empty());
        let ctx = trace::TraceContext::new();
        let _guard = trace::enter(ctx);
        for v in 0..(EXEMPLAR_CAP as u64 + 3) {
            h.record_traced(v);
        }
        let exemplars = h.exemplars();
        assert_eq!(exemplars.len(), EXEMPLAR_CAP);
        // Newest survive, all pinned to the installed trace id.
        assert_eq!(exemplars.last().unwrap().value, EXEMPLAR_CAP as u64 + 2);
        assert!(exemplars.iter().all(|e| e.trace_id == ctx.trace_id));
        let snapshot = registry.snapshot().histograms[0].clone();
        assert_eq!(snapshot.exemplars, exemplars);
        let text = registry.prometheus_text();
        assert!(
            text.contains(&format!(
                "# EXEMPLAR statleak_ex_ns{{trace_id=\"{}\"}}",
                ctx.trace_id.to_hex()
            )),
            "{text}"
        );
    }

    #[test]
    fn merge_matches_single_histogram_over_concatenated_samples() {
        let registry = Registry::new();
        let whole = registry.histogram("whole");
        let part_a = registry.histogram("part_a");
        let part_b = registry.histogram("part_b");
        for v in [0u64, 1, 3, 900, 65_000] {
            part_a.record(v);
            whole.record(v);
        }
        for v in [2u64, 3, 1_000_000] {
            part_b.record(v);
            whole.record(v);
        }
        let snapshot = registry.snapshot();
        let by_name = |n: &str| {
            snapshot
                .histograms
                .iter()
                .find(|h| h.name == n)
                .unwrap()
                .clone()
        };
        let mut merged = HistogramSnapshot::empty("whole".to_string());
        merged.merge(&by_name("part_a"));
        merged.merge(&by_name("part_b"));
        assert_eq!(merged, by_name("whole"));
    }
}
