//! Pluggable trace sinks and the global enable gate.
//!
//! The process has one sink configuration at a time, installed with
//! [`install`]. The default is [`SinkSpec::Disabled`]: tracing is off and
//! span entry costs one relaxed atomic load. Multiple sinks may be active
//! at once (e.g. an NDJSON file plus the in-memory store used by
//! `statleak trace` to build its profile table).

use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};

use crate::span::{self, Record};

/// Where trace records go. `Disabled` is compile-checked like every other
/// variant: the byte-identity tests run the flow under each spec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SinkSpec {
    /// Drop everything; span entry is a single relaxed load.
    Disabled,
    /// Human-oriented one-line records on stderr.
    StderrPretty,
    /// Append NDJSON rows to the given file (created/truncated).
    NdjsonFile(PathBuf),
    /// Accumulate records in memory; retrieve with [`take_memory`].
    InMemory,
}

#[derive(Default)]
struct SinkState {
    stderr_pretty: bool,
    file: Option<BufWriter<File>>,
    memory: Option<Vec<Record>>,
}

static ENABLED: AtomicBool = AtomicBool::new(false);

fn state() -> &'static Mutex<SinkState> {
    static STATE: OnceLock<Mutex<SinkState>> = OnceLock::new();
    STATE.get_or_init(|| Mutex::new(SinkState::default()))
}

/// True when at least one non-`Disabled` sink is installed. This is the
/// hot-path gate: instrumentation that would cost clock reads or
/// allocations checks it first.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Replaces the sink configuration. Pending records are flushed to the
/// outgoing sinks first, so switching sinks never loses spans.
pub fn install(specs: &[SinkSpec]) -> io::Result<()> {
    flush();
    let mut next = SinkState::default();
    for spec in specs {
        match spec {
            SinkSpec::Disabled => {}
            SinkSpec::StderrPretty => next.stderr_pretty = true,
            SinkSpec::NdjsonFile(path) => {
                next.file = Some(BufWriter::new(File::create(path)?));
            }
            SinkSpec::InMemory => next.memory = Some(Vec::new()),
        }
    }
    let active = next.stderr_pretty || next.file.is_some() || next.memory.is_some();
    let mut state = state().lock().expect("sink state poisoned");
    *state = next;
    ENABLED.store(active, Ordering::Relaxed);
    Ok(())
}

/// Reads `STATLEAK_TRACE` (NDJSON trace path) and `STATLEAK_LOG` (log
/// level) and applies them; unset variables leave the defaults in place.
pub fn init_from_env() -> io::Result<()> {
    if let Ok(level) = std::env::var("STATLEAK_LOG") {
        if let Ok(level) = level.parse() {
            crate::set_log_level(level);
        }
    }
    if let Ok(path) = std::env::var("STATLEAK_TRACE") {
        if !path.is_empty() {
            install(&[SinkSpec::NdjsonFile(PathBuf::from(path))])?;
        }
    }
    Ok(())
}

/// Writes a drained batch to every active sink (called from the span
/// buffers when full, and from [`flush`]).
pub(crate) fn write_records(records: &[Record]) {
    if records.is_empty() {
        return;
    }
    let mut state = state().lock().expect("sink state poisoned");
    if state.stderr_pretty {
        let mut err = io::stderr().lock();
        for record in records {
            let _ = writeln!(err, "{}", record.to_pretty());
        }
    }
    if let Some(file) = state.file.as_mut() {
        for record in records {
            let _ = writeln!(file, "{}", record.to_ndjson());
        }
    }
    if let Some(memory) = state.memory.as_mut() {
        memory.extend_from_slice(records);
    }
}

/// Drains every thread's span buffer into the sinks and flushes the
/// NDJSON file, if any. Safe to call from any thread.
pub fn flush() {
    let pending = span::drain_all();
    write_records(&pending);
    let mut state = state().lock().expect("sink state poisoned");
    if let Some(file) = state.file.as_mut() {
        let _ = file.flush();
    }
}

/// Flushes, then returns (and clears) the in-memory store. Empty when the
/// `InMemory` sink is not installed.
pub fn take_memory() -> Vec<Record> {
    flush();
    let mut state = state().lock().expect("sink state poisoned");
    match state.memory.as_mut() {
        Some(memory) => std::mem::take(memory),
        None => Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Sink state is process-global; tests that install sinks serialize on
    // this lock so they do not clobber each other under the parallel
    // test runner.
    fn guard() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    #[test]
    fn disabled_by_default_and_spans_are_inert() {
        let _guard = guard();
        install(&[SinkSpec::Disabled]).unwrap();
        assert!(!enabled());
        {
            let _span = crate::span!("test.inert");
        }
        assert!(take_memory().is_empty());
    }

    #[test]
    fn in_memory_sink_captures_nested_spans_with_parent_links() {
        let _guard = guard();
        install(&[SinkSpec::InMemory]).unwrap();
        {
            let _outer = crate::span!("test.outer");
            let _inner = crate::span!("test.inner");
        }
        crate::span::event("test.event", &[("k", 2.0)]);
        let records = take_memory();
        install(&[SinkSpec::Disabled]).unwrap();

        let spans: Vec<_> = records
            .iter()
            .filter_map(|r| match r {
                Record::Span(s) => Some(s),
                Record::Event(_) => None,
            })
            .collect();
        let outer = spans.iter().find(|s| s.name == "test.outer").unwrap();
        let inner = spans.iter().find(|s| s.name == "test.inner").unwrap();
        assert_eq!(inner.parent, outer.id, "inner span links to outer");
        assert_eq!(outer.parent, 0, "outer span is a root");
        assert!(outer.dur_us >= inner.dur_us);
        assert!(records
            .iter()
            .any(|r| matches!(r, Record::Event(e) if e.name == "test.event")));
    }

    #[test]
    fn ndjson_file_sink_writes_one_json_row_per_record() {
        let _guard = guard();
        let path =
            std::env::temp_dir().join(format!("obs_sink_test_{}.ndjson", std::process::id()));
        install(&[SinkSpec::NdjsonFile(path.clone())]).unwrap();
        {
            let _span = crate::span!("test.file");
        }
        flush();
        install(&[SinkSpec::Disabled]).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        let lines: Vec<&str> = body.lines().collect();
        assert!(!lines.is_empty());
        for line in lines {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
            assert!(line.contains("\"t\":\"span\""), "{line}");
        }
    }
}
