//! Hierarchical spans and point events, recorded into per-thread buffers.
//!
//! Recording is "lock-free-ish": every thread owns its own buffer behind a
//! mutex that only that thread locks on the hot path, so a push never
//! contends with other recording threads. The buffers are registered in a
//! global list so [`crate::flush`] can drain spans recorded on short-lived
//! worker threads (the vendored rayon shim spawns scoped threads per
//! parallel call) from any thread.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use crate::sink;
use crate::trace;

/// Records are flushed to the sinks once a thread buffer holds this many.
const BATCH: usize = 256;

/// A completed span: a named interval with a parent link and thread id.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Call-site name, e.g. `"ssta.propagate"`.
    pub name: &'static str,
    /// Unique id (process-wide, monotonically assigned).
    pub id: u64,
    /// Id of the enclosing span on the same thread; 0 for roots.
    pub parent: u64,
    /// Stable small integer identifying the recording thread.
    pub thread: u64,
    /// Start time in microseconds since the trace epoch.
    pub start_us: f64,
    /// Duration in microseconds (monotonic clock).
    pub dur_us: f64,
    /// 128-bit trace id of the enclosing request (0 = untraced).
    pub trace: u128,
}

/// A point-in-time event with numeric fields (e.g. a trajectory snapshot).
#[derive(Debug, Clone, PartialEq)]
pub struct EventRecord {
    /// Event name, e.g. `"opt.trajectory"`.
    pub name: &'static str,
    /// Stable small integer identifying the recording thread.
    pub thread: u64,
    /// Timestamp in microseconds since the trace epoch.
    pub at_us: f64,
    /// Named numeric payload.
    pub fields: Vec<(&'static str, f64)>,
    /// 128-bit trace id of the enclosing request (0 = untraced).
    pub trace: u128,
}

/// One trace record: either a completed span or a point event.
#[derive(Debug, Clone, PartialEq)]
pub enum Record {
    /// A completed span interval.
    Span(SpanRecord),
    /// A point event.
    Event(EventRecord),
}

/// Formats an `f64` as a JSON value (non-finite values become `null`).
fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

impl Record {
    /// Single-line JSON encoding (NDJSON row). Untraced records (trace
    /// id 0) omit the `trace` key, keeping pre-trace output byte-stable.
    pub fn to_ndjson(&self) -> String {
        let trace_field = |trace: u128| {
            if trace == 0 {
                String::new()
            } else {
                format!(",\"trace\":\"{trace:032x}\"")
            }
        };
        match self {
            Record::Span(s) => format!(
                "{{\"t\":\"span\",\"name\":\"{}\",\"id\":{},\"parent\":{},\"thread\":{},\"start_us\":{},\"dur_us\":{}{}}}",
                s.name,
                s.id,
                s.parent,
                s.thread,
                json_num(s.start_us),
                json_num(s.dur_us),
                trace_field(s.trace),
            ),
            Record::Event(e) => {
                let fields: Vec<String> = e
                    .fields
                    .iter()
                    .map(|(k, v)| format!("\"{k}\":{}", json_num(*v)))
                    .collect();
                format!(
                    "{{\"t\":\"event\",\"name\":\"{}\",\"thread\":{},\"at_us\":{},\"fields\":{{{}}}{}}}",
                    e.name,
                    e.thread,
                    json_num(e.at_us),
                    fields.join(","),
                    trace_field(e.trace),
                )
            }
        }
    }

    /// Human-oriented one-line rendering for the stderr sink.
    pub fn to_pretty(&self) -> String {
        match self {
            Record::Span(s) => format!(
                "span  {:<28} {:>10.1} us  (thread {}, id {}, parent {})",
                s.name, s.dur_us, s.thread, s.id, s.parent
            ),
            Record::Event(e) => {
                let fields: Vec<String> =
                    e.fields.iter().map(|(k, v)| format!("{k}={v}")).collect();
                format!("event {:<28} {}", e.name, fields.join(" "))
            }
        }
    }
}

/// Per-thread record buffer; only the owning thread pushes, any thread may
/// drain (so worker-thread spans are not stranded when the worker exits).
struct ThreadBuf {
    thread: u64,
    records: Mutex<Vec<Record>>,
}

fn registry() -> &'static Mutex<Vec<Arc<ThreadBuf>>> {
    static REGISTRY: OnceLock<Mutex<Vec<Arc<ThreadBuf>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Microseconds elapsed since the trace epoch.
fn now_us() -> f64 {
    epoch().elapsed().as_secs_f64() * 1e6
}

static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);
static NEXT_THREAD_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static LOCAL_BUF: Arc<ThreadBuf> = {
        let buf = Arc::new(ThreadBuf {
            thread: NEXT_THREAD_ID.fetch_add(1, Ordering::Relaxed),
            records: Mutex::new(Vec::new()),
        });
        registry().lock().expect("span registry poisoned").push(Arc::clone(&buf));
        buf
    };
    static STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

fn push_record(record: Record) {
    LOCAL_BUF.with(|buf| {
        let mut records = buf.records.lock().expect("thread buffer poisoned");
        records.push(record);
        if records.len() >= BATCH {
            let batch = std::mem::take(&mut *records);
            drop(records);
            sink::write_records(&batch);
        }
    });
}

/// Drains every thread's buffer into one batch (any-thread safe).
pub(crate) fn drain_all() -> Vec<Record> {
    let bufs: Vec<Arc<ThreadBuf>> = registry().lock().expect("span registry poisoned").clone();
    let mut out = Vec::new();
    for buf in bufs {
        let mut records = buf.records.lock().expect("thread buffer poisoned");
        out.append(&mut records);
    }
    out
}

/// Live span state carried by a [`SpanGuard`].
struct ActiveSpan {
    name: &'static str,
    id: u64,
    parent: u64,
    start_us: f64,
    start: Instant,
    trace: u128,
}

/// RAII guard for an open span; records the span when dropped. Inert (no
/// clock reads, nothing recorded) when tracing is disabled at entry.
pub struct SpanGuard(Option<ActiveSpan>);

/// Opens a span. Prefer the [`crate::span!`] macro at call sites.
pub fn span(name: &'static str) -> SpanGuard {
    if !sink::enabled() {
        return SpanGuard(None);
    }
    let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
    let ctx = trace::current();
    let parent = STACK.with(|stack| {
        let mut stack = stack.borrow_mut();
        // A root span opened under a propagated trace context links to the
        // remote caller's span id, joining client and server trees.
        let parent = stack
            .last()
            .copied()
            .unwrap_or_else(|| ctx.map_or(0, |c| c.parent_span));
        stack.push(id);
        parent
    });
    SpanGuard(Some(ActiveSpan {
        name,
        id,
        parent,
        start_us: now_us(),
        start: Instant::now(),
        trace: ctx.map_or(0, |c| c.trace_id.0),
    }))
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(active) = self.0.take() else {
            return;
        };
        let dur_us = active.start.elapsed().as_secs_f64() * 1e6;
        STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            // Guards drop LIFO in straight-line code; tolerate an
            // out-of-order drop by removing the matching id.
            if stack.last() == Some(&active.id) {
                stack.pop();
            } else {
                stack.retain(|&id| id != active.id);
            }
        });
        let thread = LOCAL_BUF.with(|buf| buf.thread);
        push_record(Record::Span(SpanRecord {
            name: active.name,
            id: active.id,
            parent: active.parent,
            thread,
            start_us: active.start_us,
            dur_us,
            trace: active.trace,
        }));
    }
}

/// Records a point event with numeric fields; a no-op when disabled.
pub fn event(name: &'static str, fields: &[(&'static str, f64)]) {
    if !sink::enabled() {
        return;
    }
    let thread = LOCAL_BUF.with(|buf| buf.thread);
    push_record(Record::Event(EventRecord {
        name,
        thread,
        at_us: now_us(),
        fields: fields.to_vec(),
        trace: trace::current().map_or(0, |c| c.trace_id.0),
    }));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ndjson_escapes_non_finite_fields_to_null() {
        let record = Record::Event(EventRecord {
            name: "e",
            thread: 1,
            at_us: 2.0,
            fields: vec![("ok", 1.5), ("bad", f64::NAN)],
            trace: 0,
        });
        let line = record.to_ndjson();
        assert!(line.contains("\"ok\":1.5"), "{line}");
        assert!(line.contains("\"bad\":null"), "{line}");
        assert!(!line.contains("\"trace\""), "{line}");
    }

    #[test]
    fn span_ndjson_has_expected_keys() {
        let record = Record::Span(SpanRecord {
            name: "x.y",
            id: 7,
            parent: 3,
            thread: 1,
            start_us: 10.0,
            dur_us: 2.5,
            trace: 0,
        });
        let line = record.to_ndjson();
        for key in [
            "\"t\":\"span\"",
            "\"name\":\"x.y\"",
            "\"id\":7",
            "\"parent\":3",
        ] {
            assert!(line.contains(key), "{line}");
        }
        assert!(!line.contains("\"trace\""), "{line}");
    }

    #[test]
    fn traced_records_carry_a_32_digit_hex_trace_id() {
        let span = Record::Span(SpanRecord {
            name: "x",
            id: 1,
            parent: 0,
            thread: 1,
            start_us: 0.0,
            dur_us: 1.0,
            trace: 0xCAFE,
        });
        let line = span.to_ndjson();
        assert!(
            line.contains(&format!("\"trace\":\"{:032x}\"", 0xCAFEu128)),
            "{line}"
        );
        let event = Record::Event(EventRecord {
            name: "e",
            thread: 1,
            at_us: 0.0,
            fields: vec![],
            trace: 0xCAFE,
        });
        assert!(event.to_ndjson().contains("\"trace\":\""));
    }
}
