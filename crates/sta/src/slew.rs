//! Slew-aware deterministic timing analysis.
//!
//! The baseline STA (like the paper's precharacterized gate models) treats
//! gate delay as a function of size, Vth, and load only. Real signoff
//! timing also propagates the *transition time* (slew): a slowly rising
//! input makes the receiving gate slower, and the output transition
//! depends on how hard the gate drives its load. This module adds that
//! second-order effect as a standalone analysis:
//!
//! ```text
//! d(g)      = d_base(g, load) + slew_delay_coeff · s_in(g)
//! s_out(g)  = slew_gain · d_base(g, load)
//! s_in(g)   = s_out of the worst-arrival fanin (primary inputs drive
//!             `input_slew`)
//! ```
//!
//! It is intentionally separate from [`crate::Sta`]: the optimizers use
//! the slew-blind model (as the paper does), and this analysis quantifies
//! what that simplification costs — typically a few percent of path delay
//! for well-sized designs, ballooning when gates are undersized.

use statleak_netlist::NodeId;
use statleak_obs as obs;
use statleak_tech::Design;

/// Slew-aware arrival state.
#[derive(Debug, Clone, PartialEq)]
pub struct SlewSta {
    arrival: Vec<f64>,
    slew: Vec<f64>,
    circuit_delay: f64,
}

impl SlewSta {
    /// Runs a slew-aware timing analysis of the design.
    pub fn analyze(design: &Design) -> Self {
        let _span = obs::span!("sta.slew_propagate");
        let circuit = design.circuit();
        let tech = design.tech();
        let n = circuit.num_nodes();
        let mut arrival = vec![0.0; n];
        let mut slew = vec![tech.input_slew; n];
        for &id in circuit.topo_order() {
            let node = circuit.node(id);
            if !node.kind.is_gate() {
                continue;
            }
            // Worst fanin by arrival; its slew drives this gate.
            let (worst_arrival, in_slew) = node
                .fanin
                .iter()
                .map(|f| (arrival[f.index()], slew[f.index()]))
                .fold((0.0_f64, tech.input_slew), |acc, cur| {
                    if cur.0 > acc.0 {
                        cur
                    } else {
                        acc
                    }
                });
            let d_base = design.gate_delay_nominal(id);
            arrival[id.index()] = worst_arrival + d_base + tech.slew_delay_coeff * in_slew;
            slew[id.index()] = tech.slew_gain * d_base;
        }
        let circuit_delay = circuit
            .outputs()
            .iter()
            .map(|o| arrival[o.index()])
            .fold(0.0, f64::max);
        Self {
            arrival,
            slew,
            circuit_delay,
        }
    }

    /// Slew-aware arrival time of a node (ps).
    #[inline]
    pub fn arrival(&self, id: NodeId) -> f64 {
        self.arrival[id.index()]
    }

    /// Output transition time of a node (ps).
    #[inline]
    pub fn slew(&self, id: NodeId) -> f64 {
        self.slew[id.index()]
    }

    /// Slew-aware circuit delay (ps).
    #[inline]
    pub fn circuit_delay(&self) -> f64 {
        self.circuit_delay
    }

    /// The relative delay increase versus the slew-blind analysis — the
    /// modeling error the paper's style of precharacterized optimization
    /// accepts.
    pub fn slew_penalty(&self, design: &Design) -> f64 {
        let blind = crate::Sta::analyze(design).circuit_delay();
        self.circuit_delay / blind - 1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Sta;
    use statleak_netlist::benchmarks;
    use statleak_tech::{Technology, VthClass};
    use std::sync::Arc;

    fn design(name: &str) -> Design {
        Design::new(
            Arc::new(benchmarks::by_name(name).unwrap()),
            Technology::ptm100(),
        )
    }

    #[test]
    fn slew_aware_is_slower_than_blind() {
        let d = design("c432");
        let aware = SlewSta::analyze(&d);
        let blind = Sta::analyze(&d);
        assert!(aware.circuit_delay() > blind.circuit_delay());
        // For this technology the penalty is bounded (sanity band).
        let pen = aware.slew_penalty(&d);
        assert!(pen > 0.0 && pen < 0.5, "penalty {pen}");
    }

    #[test]
    fn slews_are_positive_everywhere() {
        let d = design("c880");
        let s = SlewSta::analyze(&d);
        for id in d.circuit().gates() {
            assert!(s.slew(id) > 0.0);
            assert!(s.arrival(id) > 0.0);
        }
    }

    #[test]
    fn upsizing_reduces_downstream_slew() {
        let mut d = design("c17");
        let g10 = d.circuit().find("G10").unwrap();
        let before = SlewSta::analyze(&d).slew(g10);
        // Upsizing the gate lowers its own delay into the same load,
        // hence its output transition.
        d.set_size(g10, 4.0);
        let after = SlewSta::analyze(&d).slew(g10);
        assert!(after < before, "{after} vs {before}");
    }

    #[test]
    fn zero_coefficients_recover_blind_sta() {
        let circuit = Arc::new(benchmarks::by_name("c499").unwrap());
        let mut tech = Technology::ptm100();
        tech.slew_delay_coeff = 0.0;
        tech.input_slew = 0.0;
        let d = Design::new(circuit, tech);
        let aware = SlewSta::analyze(&d);
        let blind = Sta::analyze(&d);
        assert!((aware.circuit_delay() - blind.circuit_delay()).abs() < 1e-9);
    }

    #[test]
    fn high_vth_raises_slew_penalty_in_absolute_terms() {
        // Slower gates produce slower edges.
        let mut d = design("c432");
        let before = SlewSta::analyze(&d).circuit_delay();
        let gates: Vec<_> = d.circuit().gates().collect();
        for g in gates {
            d.set_vth(g, VthClass::High);
        }
        let after = SlewSta::analyze(&d).circuit_delay();
        assert!(after > before * 1.10);
    }
}
