//! Deterministic static timing analysis (STA) for `statleak` designs.
//!
//! Block-based STA over the combinational DAG: primary inputs arrive at
//! `t = 0`, each gate's arrival is the max of its fanin arrivals plus the
//! gate's nominal delay, and the circuit delay is the max arrival over the
//! primary outputs. The deterministic dual-Vth/sizing optimizer — the
//! paper's comparison baseline — is built entirely on this analysis.
//!
//! [`Sta`] keeps the arrival state alive between optimizer moves and
//! supports *incremental cone updates* with an undo log, so a candidate
//! move (Vth swap or resize) can be evaluated and rolled back in time
//! proportional to its fanout cone rather than the whole circuit.
//!
//! # Example
//!
//! ```
//! use statleak_netlist::benchmarks;
//! use statleak_tech::{Design, Technology};
//! use statleak_sta::Sta;
//! use std::sync::Arc;
//!
//! let design = Design::new(Arc::new(benchmarks::c17()), Technology::ptm100());
//! let sta = Sta::analyze(&design);
//! assert!(sta.circuit_delay() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod slew;

pub use slew::SlewSta;

use rayon::prelude::*;
use statleak_netlist::{Circuit, ConeScratch, NodeId};
use statleak_obs as obs;
use statleak_tech::Design;

/// Minimum gates in a level before parallel propagation pays for the
/// scatter/collect overhead; below this the sequential loop is used.
const PAR_LEVEL_MIN_GATES: usize = 256;

/// Deterministic arrival-time state for one design.
///
/// Owns a reusable [`ConeScratch`] so incremental cone updates neither
/// allocate a full-circuit visited array nor scan the whole topological
/// order. Equality compares only the timing state (arrivals and circuit
/// delay); the scratch is incidental.
#[derive(Debug, Clone)]
pub struct Sta {
    arrival: Vec<f64>,
    circuit_delay: f64,
    scratch: ConeScratch,
}

impl PartialEq for Sta {
    fn eq(&self, other: &Self) -> bool {
        self.arrival == other.arrival && self.circuit_delay == other.circuit_delay
    }
}

/// Undo log returned by [`Sta::recompute_cone`]; pass to [`Sta::undo`] to
/// roll the analysis state back to before the update.
#[derive(Debug, Clone)]
pub struct StaUndo {
    changed: Vec<(u32, f64)>,
    old_circuit_delay: f64,
}

impl Sta {
    /// Runs a full timing analysis of the design.
    ///
    /// Propagation walks the circuit level by level (levels partition the
    /// topological order); within a level every gate's fanins sit at
    /// strictly lower levels, so large levels are computed in parallel with
    /// results scattered back in node order — bit-identical to the
    /// sequential walk at any thread count.
    pub fn analyze(design: &Design) -> Self {
        let _span = obs::span!("sta.propagate");
        obs::counter!("sta_full_analyze_total").inc();
        let circuit = design.circuit();
        let threads = rayon::current_num_threads();
        let mut arrival = vec![0.0; circuit.num_nodes()];
        for lvl in 1..=circuit.depth() {
            let ids = circuit.level_nodes(lvl);
            if threads > 1 && ids.len() >= PAR_LEVEL_MIN_GATES {
                let computed: Vec<f64> = ids
                    .into_par_iter()
                    .map(|&id| Self::gate_arrival(design, &arrival, id))
                    .collect();
                for (&id, a) in ids.iter().zip(computed) {
                    arrival[id.index()] = a;
                }
            } else {
                for &id in ids {
                    debug_assert!(circuit.kind(id).is_gate(), "levels >= 1 hold only gates");
                    arrival[id.index()] = Self::gate_arrival(design, &arrival, id);
                }
            }
        }
        let circuit_delay = Self::max_output_arrival(circuit, &arrival);
        Self {
            arrival,
            circuit_delay,
            scratch: ConeScratch::new(),
        }
    }

    fn gate_arrival(design: &Design, arrival: &[f64], id: NodeId) -> f64 {
        let node = design.circuit().node(id);
        let worst_fanin = node
            .fanin
            .iter()
            .map(|f| arrival[f.index()])
            .fold(0.0, f64::max);
        worst_fanin + design.gate_delay_nominal(id)
    }

    fn max_output_arrival(circuit: &Circuit, arrival: &[f64]) -> f64 {
        circuit
            .outputs()
            .iter()
            .map(|o| arrival[o.index()])
            .fold(0.0, f64::max)
    }

    /// Arrival time of a node (ps).
    #[inline]
    pub fn arrival(&self, id: NodeId) -> f64 {
        self.arrival[id.index()]
    }

    /// The circuit delay: latest arrival over the primary outputs (ps).
    #[inline]
    pub fn circuit_delay(&self) -> f64 {
        self.circuit_delay
    }

    /// Recomputes arrivals in the union of fanout cones of `seeds` (after
    /// the design was mutated at those nodes and/or their loads), returning
    /// an undo log that restores the previous state.
    ///
    /// `seeds` must include every node whose *own delay* may have changed:
    /// for a Vth swap on `g` that is `{g}`; for a resize of `g` it is `{g}`
    /// plus `g`'s fanin drivers (their load changed).
    pub fn recompute_cone(&mut self, design: &Design, seeds: &[NodeId]) -> StaUndo {
        let circuit = design.circuit();
        circuit.collect_fanout_cone(seeds, &mut self.scratch);
        let mut undo = StaUndo {
            changed: Vec::new(),
            old_circuit_delay: self.circuit_delay,
        };
        let mut output_changed = false;
        for &id in self.scratch.cone() {
            if !circuit.node(id).kind.is_gate() {
                continue;
            }
            let new = Self::gate_arrival(design, &self.arrival, id);
            let old = self.arrival[id.index()];
            if new != old {
                output_changed |= circuit.is_output(id);
                undo.changed.push((id.0, old));
                self.arrival[id.index()] = new;
            }
        }
        // The output max reads only output arrivals; when none changed it
        // would reproduce the cached value exactly, so skip the fold.
        if output_changed {
            self.circuit_delay = Self::max_output_arrival(circuit, &self.arrival);
        }
        if obs::enabled() {
            obs::counter!("sta_cone_recomputes_total").inc();
            obs::histogram!("sta_cone_nodes").record(self.scratch.cone().len() as u64);
        }
        undo
    }

    /// Rolls back a [`Sta::recompute_cone`] update.
    pub fn undo(&mut self, undo: StaUndo) {
        for (raw, old) in undo.changed.into_iter().rev() {
            self.arrival[raw as usize] = old;
        }
        self.circuit_delay = undo.old_circuit_delay;
    }

    /// Computes required times and slacks against a clock period `t_clk`
    /// (ps). Primary outputs are required at `t_clk`; slack of a node is
    /// `required − arrival`.
    pub fn slacks(&self, design: &Design, t_clk: f64) -> Slacks {
        let circuit = design.circuit();
        let n = circuit.num_nodes();
        let mut required = vec![f64::INFINITY; n];
        for &o in circuit.outputs() {
            required[o.index()] = t_clk;
        }
        for id in circuit.reverse_topo() {
            let req = required[id.index()];
            if req.is_infinite() && !circuit.is_output(id) && circuit.node(id).fanout.is_empty() {
                continue;
            }
            let node = circuit.node(id);
            if node.kind.is_gate() {
                let d = design.gate_delay_nominal(id);
                let req_at_input = req - d;
                for &f in node.fanin {
                    if req_at_input < required[f.index()] {
                        required[f.index()] = req_at_input;
                    }
                }
            }
        }
        let slack = (0..n).map(|i| required[i] - self.arrival[i]).collect();
        Slacks { required, slack }
    }

    /// Traces the critical path (latest-arrival chain) from the worst
    /// output back to a primary input. Returns node ids from input to
    /// output.
    pub fn critical_path(&self, design: &Design) -> Vec<NodeId> {
        let circuit = design.circuit();
        let mut cur = *circuit
            .outputs()
            .iter()
            .max_by(|a, b| self.arrival[a.index()].total_cmp(&self.arrival[b.index()]))
            .expect("circuits have outputs");
        let mut path = vec![cur];
        while circuit.node(cur).kind.is_gate() {
            let prev = circuit
                .node(cur)
                .fanin
                .iter()
                .copied()
                .max_by(|a, b| self.arrival[a.index()].total_cmp(&self.arrival[b.index()]))
                .expect("gates have fanin");
            path.push(prev);
            cur = prev;
        }
        path.reverse();
        path
    }
}

/// Required times and slacks produced by [`Sta::slacks`].
#[derive(Debug, Clone, PartialEq)]
pub struct Slacks {
    /// Required time per node (ps); `+inf` for nodes that reach no output.
    pub required: Vec<f64>,
    /// Slack per node (ps): `required − arrival`.
    pub slack: Vec<f64>,
}

impl Slacks {
    /// Slack of one node.
    #[inline]
    pub fn of(&self, id: NodeId) -> f64 {
        self.slack[id.index()]
    }

    /// The worst (minimum) slack over all nodes.
    pub fn worst(&self) -> f64 {
        self.slack.iter().copied().fold(f64::INFINITY, f64::min)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use statleak_netlist::benchmarks;
    use statleak_tech::{Technology, VthClass};
    use std::sync::Arc;

    fn design(name: &str) -> Design {
        Design::new(
            Arc::new(benchmarks::by_name(name).unwrap()),
            Technology::ptm100(),
        )
    }

    #[test]
    fn arrivals_monotone_along_paths() {
        let d = design("c432");
        let sta = Sta::analyze(&d);
        for g in d.circuit().gates() {
            for &f in d.circuit().node(g).fanin {
                assert!(sta.arrival(g) > sta.arrival(f), "edge {f}->{g}");
            }
        }
    }

    #[test]
    fn circuit_delay_is_max_output() {
        let d = design("c17");
        let sta = Sta::analyze(&d);
        let max_out = d
            .circuit()
            .outputs()
            .iter()
            .map(|o| sta.arrival(*o))
            .fold(0.0, f64::max);
        assert_eq!(sta.circuit_delay(), max_out);
    }

    #[test]
    fn high_vth_everywhere_slows_circuit() {
        let mut d = design("c880");
        let before = Sta::analyze(&d).circuit_delay();
        let gates: Vec<_> = d.circuit().gates().collect();
        for g in gates {
            d.set_vth(g, VthClass::High);
        }
        let after = Sta::analyze(&d).circuit_delay();
        assert!(after > before * 1.10, "{before} -> {after}");
        assert!(after < before * 1.35, "{before} -> {after}");
    }

    #[test]
    fn incremental_matches_full_on_vth_swap() {
        let mut d = design("c432");
        let mut sta = Sta::analyze(&d);
        let g = d.circuit().gates().nth(40).unwrap();
        d.set_vth(g, VthClass::High);
        sta.recompute_cone(&d, &[g]);
        let full = Sta::analyze(&d);
        assert!((sta.circuit_delay() - full.circuit_delay()).abs() < 1e-9);
        for id in d.circuit().gates() {
            assert!(
                (sta.arrival(id) - full.arrival(id)).abs() < 1e-9,
                "node {id}"
            );
        }
    }

    #[test]
    fn incremental_matches_full_on_resize() {
        let mut d = design("c432");
        let mut sta = Sta::analyze(&d);
        let g = d.circuit().gates().nth(25).unwrap();
        d.set_size(g, 4.0);
        // Seeds: the gate plus its fanin drivers (their load changed).
        let mut seeds = vec![g];
        seeds.extend(d.circuit().node(g).fanin.iter().copied());
        sta.recompute_cone(&d, &seeds);
        let full = Sta::analyze(&d);
        assert!((sta.circuit_delay() - full.circuit_delay()).abs() < 1e-9);
    }

    #[test]
    fn undo_restores_exactly() {
        let mut d = design("c499");
        let mut sta = Sta::analyze(&d);
        let snapshot = sta.clone();
        let g = d.circuit().gates().nth(10).unwrap();
        d.set_vth(g, VthClass::High);
        let undo = sta.recompute_cone(&d, &[g]);
        assert_ne!(sta, snapshot);
        sta.undo(undo);
        assert_eq!(sta, snapshot);
    }

    #[test]
    fn slacks_nonnegative_at_relaxed_clock() {
        let d = design("c880");
        let sta = Sta::analyze(&d);
        let s = sta.slacks(&d, sta.circuit_delay() * 1.2);
        assert!(s.worst() > 0.0);
    }

    #[test]
    fn slack_zero_on_critical_path_at_exact_clock() {
        let d = design("c1355");
        let sta = Sta::analyze(&d);
        let s = sta.slacks(&d, sta.circuit_delay());
        assert!(s.worst().abs() < 1e-9);
        // Critical-path nodes have ~zero slack.
        for id in sta.critical_path(&d) {
            assert!(s.of(id).abs() < 1e-6, "node {id} slack {}", s.of(id));
        }
    }

    #[test]
    fn critical_path_starts_at_input_ends_at_output() {
        let d = design("c432");
        let sta = Sta::analyze(&d);
        let path = sta.critical_path(&d);
        assert!(!d.circuit().node(*path.first().unwrap()).kind.is_gate());
        assert!(d.circuit().is_output(*path.last().unwrap()));
        // The max-delay path is at most as deep as the deepest path (they
        // need not coincide: a shallower path can carry more delay).
        let gates_on_path = path.len() - 1;
        assert!(gates_on_path >= 1);
        assert!(gates_on_path <= d.circuit().stats().depth);
        // Consecutive path nodes must be wired: each node drives the next.
        for w in path.windows(2) {
            assert!(d.circuit().node(w[1]).fanin.contains(&w[0]));
        }
    }

    #[test]
    fn upsizing_critical_gate_reduces_delay() {
        let d = design("c880");
        let sta = Sta::analyze(&d);
        let path = sta.critical_path(&d);
        // Upsizing one critical gate cuts its own delay but loads its
        // drivers, so no single fixed pick is guaranteed to win; sizing
        // leverage means *some* critical gate must win.
        let improved = path
            .iter()
            .filter(|&&g| d.circuit().node(g).kind.is_gate())
            .any(|&g| {
                let mut trial = d.clone();
                trial.set_size(g, 4.0);
                Sta::analyze(&trial).circuit_delay() < sta.circuit_delay()
            });
        assert!(improved, "no critical-path upsize reduced circuit delay");
    }
}

/// One enumerated path: its total delay and the nodes from input to
/// output.
#[derive(Debug, Clone, PartialEq)]
pub struct TimingPath {
    /// Total path delay (sum of gate delays along it), ps.
    pub delay: f64,
    /// Node ids from a primary input to a primary output.
    pub nodes: Vec<NodeId>,
}

impl Sta {
    /// Enumerates the `k` longest input→output paths, in non-increasing
    /// delay order, by best-first backward expansion from the outputs.
    ///
    /// The priority of a partial path ending (backwards) at node `u` with
    /// downstream delay sum `s` is `arrival(u) + s`, which upper-bounds
    /// every completion and is monotone along expansion, so the first `k`
    /// completed paths popped are exactly the `k` longest.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    ///
    /// ```
    /// use statleak_netlist::benchmarks;
    /// use statleak_tech::{Design, Technology};
    /// use statleak_sta::Sta;
    /// use std::sync::Arc;
    ///
    /// let design = Design::new(Arc::new(benchmarks::c17()), Technology::ptm100());
    /// let sta = Sta::analyze(&design);
    /// let paths = sta.top_paths(&design, 3);
    /// assert!((paths[0].delay - sta.circuit_delay()).abs() < 1e-9);
    /// assert!(paths.windows(2).all(|w| w[0].delay >= w[1].delay));
    /// ```
    pub fn top_paths(&self, design: &Design, k: usize) -> Vec<TimingPath> {
        assert!(k > 0, "need at least one path");
        use std::cmp::Ordering;
        use std::collections::BinaryHeap;

        struct Partial {
            priority: f64,
            node: NodeId,
            downstream: f64,
            suffix: Vec<NodeId>, // nodes after `node`, in forward order
        }
        impl PartialEq for Partial {
            fn eq(&self, other: &Self) -> bool {
                self.priority == other.priority
            }
        }
        impl Eq for Partial {}
        impl PartialOrd for Partial {
            fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
                Some(self.cmp(other))
            }
        }
        impl Ord for Partial {
            fn cmp(&self, other: &Self) -> Ordering {
                self.priority.total_cmp(&other.priority)
            }
        }

        let circuit = design.circuit();
        let mut heap = BinaryHeap::new();
        for &o in circuit.outputs() {
            heap.push(Partial {
                priority: self.arrival(o),
                node: o,
                downstream: 0.0,
                suffix: Vec::new(),
            });
        }
        let mut out = Vec::with_capacity(k);
        while let Some(p) = heap.pop() {
            let node = circuit.node(p.node);
            if !node.kind.is_gate() {
                // Reached a primary input: the partial is a complete path.
                let mut nodes = vec![p.node];
                nodes.extend(p.suffix.iter().rev().copied());
                out.push(TimingPath {
                    delay: p.priority,
                    nodes,
                });
                if out.len() == k {
                    break;
                }
                continue;
            }
            let d = design.gate_delay_nominal(p.node);
            let downstream = p.downstream + d;
            for &f in node.fanin {
                let mut suffix = p.suffix.clone();
                suffix.push(p.node);
                heap.push(Partial {
                    priority: self.arrival(f) + downstream,
                    node: f,
                    downstream,
                    suffix,
                });
            }
        }
        out
    }
}

#[cfg(test)]
mod path_tests {
    use super::*;
    use statleak_netlist::benchmarks;
    use statleak_tech::Technology;
    use std::sync::Arc;

    fn design(name: &str) -> Design {
        Design::new(
            Arc::new(benchmarks::by_name(name).unwrap()),
            Technology::ptm100(),
        )
    }

    #[test]
    fn first_path_is_the_critical_path() {
        let d = design("c432");
        let sta = Sta::analyze(&d);
        let paths = sta.top_paths(&d, 1);
        assert_eq!(paths.len(), 1);
        assert!((paths[0].delay - sta.circuit_delay()).abs() < 1e-9);
        // Ties among zero-arrival inputs make multiple critical paths
        // equally valid; compare the gate portion (which is unique here).
        let trace = sta.critical_path(&d);
        assert_eq!(paths[0].nodes[1..], trace[1..]);
    }

    #[test]
    fn paths_sorted_and_distinct() {
        let d = design("c880");
        let sta = Sta::analyze(&d);
        let paths = sta.top_paths(&d, 25);
        assert_eq!(paths.len(), 25);
        for w in paths.windows(2) {
            assert!(w[0].delay >= w[1].delay - 1e-12);
        }
        let mut seen = std::collections::HashSet::new();
        for p in &paths {
            assert!(seen.insert(p.nodes.clone()), "duplicate path");
        }
    }

    #[test]
    fn path_delays_match_recomputation() {
        let d = design("c499");
        let sta = Sta::analyze(&d);
        for p in sta.top_paths(&d, 10) {
            let sum: f64 = p
                .nodes
                .iter()
                .filter(|&&u| d.circuit().node(u).kind.is_gate())
                .map(|&u| d.gate_delay_nominal(u))
                .sum();
            assert!((sum - p.delay).abs() < 1e-9, "path delay mismatch");
            // Structural sanity: consecutive nodes are connected.
            for e in p.nodes.windows(2) {
                assert!(d.circuit().node(e[1]).fanin.contains(&e[0]));
            }
            // Ends at an output, starts at an input.
            assert!(!d.circuit().node(p.nodes[0]).kind.is_gate());
            assert!(d.circuit().is_output(*p.nodes.last().unwrap()));
        }
    }

    #[test]
    fn k_larger_than_path_count_is_fine() {
        let d = design("c17");
        let sta = Sta::analyze(&d);
        let paths = sta.top_paths(&d, 10_000);
        assert!(!paths.is_empty());
        assert!(paths.len() < 10_000, "c17 has few paths");
    }
}
