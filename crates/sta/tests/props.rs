//! Property-based tests for deterministic STA on random circuits.

use proptest::prelude::*;
use statleak_netlist::generate::{generate, GenSpec};
use statleak_sta::{SlewSta, Sta};
use statleak_tech::{Design, Technology, VthClass};
use std::sync::Arc;

fn random_design(seed: u64, gates: usize, depth: usize) -> Design {
    let mut spec = GenSpec::new(format!("sta_prop{seed}_{gates}"), 6, 3, gates, depth);
    spec.seed = seed;
    Design::new(Arc::new(generate(&spec)), Technology::ptm100())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Worst slack at any clock equals `t_clk − circuit_delay`.
    #[test]
    fn worst_slack_identity(seed in 0u64..500, k in 0.5..2.0f64) {
        let d = random_design(seed, 40, 7);
        let sta = Sta::analyze(&d);
        let t = k * sta.circuit_delay();
        let slacks = sta.slacks(&d, t);
        prop_assert!(
            (slacks.worst() - (t - sta.circuit_delay())).abs() < 1e-9,
            "worst {} vs identity {}",
            slacks.worst(),
            t - sta.circuit_delay()
        );
    }

    /// Incremental cone updates match full re-analysis after arbitrary
    /// move sequences, and undo restores exactly.
    #[test]
    fn incremental_matches_full(
        seed in 0u64..500,
        moves in prop::collection::vec((0usize..40, 0usize..4), 1..8),
    ) {
        let mut d = random_design(seed, 40, 7);
        let mut sta = Sta::analyze(&d);
        let gates: Vec<_> = d.circuit().gates().collect();
        for (gi, action) in moves {
            let g = gates[gi % gates.len()];
            let mut seeds = vec![g];
            match action {
                0 => d.set_vth(g, VthClass::High),
                1 => d.set_vth(g, VthClass::Low),
                2 => {
                    if let Some(up) = d.tech().size_up(d.size(g)) {
                        d.set_size(g, up);
                    }
                    seeds.extend(d.circuit().node(g).fanin.iter().copied());
                }
                _ => {
                    if let Some(down) = d.tech().size_down(d.size(g)) {
                        d.set_size(g, down);
                    }
                    seeds.extend(d.circuit().node(g).fanin.iter().copied());
                }
            }
            sta.recompute_cone(&d, &seeds);
        }
        let full = Sta::analyze(&d);
        prop_assert!((sta.circuit_delay() - full.circuit_delay()).abs() < 1e-9);
    }

    /// Top paths are sorted, distinct, structurally valid, and the first
    /// one carries the circuit delay.
    #[test]
    fn top_paths_invariants(seed in 0u64..500, k in 1usize..12) {
        let d = random_design(seed, 35, 6);
        let sta = Sta::analyze(&d);
        let paths = sta.top_paths(&d, k);
        prop_assert!(!paths.is_empty());
        prop_assert!((paths[0].delay - sta.circuit_delay()).abs() < 1e-9);
        for w in paths.windows(2) {
            prop_assert!(w[0].delay >= w[1].delay - 1e-12);
        }
        for p in &paths {
            for e in p.nodes.windows(2) {
                prop_assert!(d.circuit().node(e[1]).fanin.contains(&e[0]));
            }
            let sum: f64 = p
                .nodes
                .iter()
                .filter(|&&u| d.circuit().node(u).kind.is_gate())
                .map(|&u| d.gate_delay_nominal(u))
                .sum();
            prop_assert!((sum - p.delay).abs() < 1e-9);
        }
    }

    /// Slew-aware delay is always at least the slew-blind delay (the
    /// slew terms are non-negative).
    #[test]
    fn slew_aware_upper_bounds_blind(seed in 0u64..500) {
        let d = random_design(seed, 30, 6);
        prop_assert!(SlewSta::analyze(&d).circuit_delay() >= Sta::analyze(&d).circuit_delay() - 1e-9);
    }

    /// Critical-path arrival decomposes into the gate delays along it.
    #[test]
    fn critical_path_decomposition(seed in 0u64..500) {
        let d = random_design(seed, 30, 6);
        let sta = Sta::analyze(&d);
        let path = sta.critical_path(&d);
        let sum: f64 = path
            .iter()
            .filter(|&&u| d.circuit().node(u).kind.is_gate())
            .map(|&u| d.gate_delay_nominal(u))
            .sum();
        prop_assert!((sum - sta.circuit_delay()).abs() < 1e-9);
    }
}
