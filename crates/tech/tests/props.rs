//! Property-based tests for the device models.
//!
//! These exercise the deprecated `cell::*` forwarders on purpose: they
//! are the reference semantics `BuiltinLibrary` must keep matching.
#![allow(deprecated)]

use proptest::prelude::*;
use statleak_netlist::GateKind;
use statleak_tech::{cell, Technology, VthClass};

fn kinds() -> impl Strategy<Value = GateKind> {
    prop::sample::select(vec![
        GateKind::Not,
        GateKind::Buff,
        GateKind::And,
        GateKind::Nand,
        GateKind::Or,
        GateKind::Nor,
        GateKind::Xor,
        GateKind::Xnor,
    ])
}

fn vths() -> impl Strategy<Value = VthClass> {
    prop::sample::select(vec![VthClass::Low, VthClass::High])
}

proptest! {
    #[test]
    fn delay_positive_and_finite(
        kind in kinds(),
        fanin in 1usize..5,
        size in prop::sample::select(vec![1.0, 1.5, 2.0, 4.0, 8.0, 16.0]),
        vth in vths(),
        c_load in 0.0..200.0f64,
        dl in -0.2..0.2f64,
        dv in -0.1..0.1f64,
    ) {
        let t = Technology::ptm100();
        let d = cell::gate_delay(&t, kind, fanin, size, vth, c_load, dl, dv);
        prop_assert!(d.is_finite() && d > 0.0);
    }

    #[test]
    fn delay_monotone_in_load(
        kind in kinds(),
        fanin in 1usize..4,
        vth in vths(),
        c1 in 0.0..100.0f64,
        extra in 0.1..100.0f64,
    ) {
        let t = Technology::ptm100();
        let d1 = cell::gate_delay_nominal(&t, kind, fanin, 2.0, vth, c1);
        let d2 = cell::gate_delay_nominal(&t, kind, fanin, 2.0, vth, c1 + extra);
        prop_assert!(d2 > d1);
    }

    #[test]
    fn high_vth_always_slower_and_leaner(
        kind in kinds(),
        fanin in 1usize..4,
        size in prop::sample::select(vec![1.0, 2.0, 6.0]),
        c_load in 1.0..80.0f64,
    ) {
        let t = Technology::ptm100();
        let dl = cell::gate_delay_nominal(&t, kind, fanin, size, VthClass::Low, c_load);
        let dh = cell::gate_delay_nominal(&t, kind, fanin, size, VthClass::High, c_load);
        prop_assert!(dh > dl);
        let il = cell::leakage_nominal(&t, kind, fanin, size, VthClass::Low);
        let ih = cell::leakage_nominal(&t, kind, fanin, size, VthClass::High);
        prop_assert!(il > ih * 10.0);
    }

    #[test]
    fn leakage_linear_in_size(
        kind in kinds(),
        fanin in 1usize..4,
        vth in vths(),
    ) {
        let t = Technology::ptm100();
        let i1 = cell::leakage_nominal(&t, kind, fanin, 1.0, vth);
        let i3 = cell::leakage_nominal(&t, kind, fanin, 3.0, vth);
        prop_assert!((i3 / i1 - 3.0).abs() < 1e-9);
    }

    #[test]
    fn ln_leakage_expansion_is_exact(
        kind in kinds(),
        fanin in 1usize..4,
        size in prop::sample::select(vec![1.0, 2.0, 8.0]),
        vth in vths(),
        dl in -0.15..0.15f64,
        dv in -0.05..0.05f64,
    ) {
        let t = Technology::ptm100();
        let (ln_nom, dln_dl, dln_dv) = cell::ln_leakage(&t, kind, fanin, size, vth);
        let exact = cell::leakage_current(&t, kind, fanin, size, vth, dl, dv).ln();
        prop_assert!((exact - (ln_nom + dln_dl * dl + dln_dv * dv)).abs() < 1e-9);
    }

    #[test]
    fn delay_sensitivities_match_finite_difference(
        kind in kinds(),
        fanin in 1usize..4,
        vth in vths(),
        c_load in 1.0..60.0f64,
    ) {
        let t = Technology::ptm100();
        let (d, dd_dl, dd_dv) = cell::delay_sensitivities(&t, kind, fanin, 2.0, vth, c_load);
        let h = 1e-6;
        let fd_l = (cell::gate_delay(&t, kind, fanin, 2.0, vth, c_load, h, 0.0)
            - cell::gate_delay(&t, kind, fanin, 2.0, vth, c_load, -h, 0.0)) / (2.0 * h);
        let fd_v = (cell::gate_delay(&t, kind, fanin, 2.0, vth, c_load, 0.0, h)
            - cell::gate_delay(&t, kind, fanin, 2.0, vth, c_load, 0.0, -h)) / (2.0 * h);
        prop_assert!((dd_dl - fd_l).abs() / d < 1e-3, "dl {dd_dl} vs {fd_l}");
        prop_assert!((dd_dv - fd_v).abs() / dd_dv.abs() < 1e-3, "dv {dd_dv} vs {fd_v}");
    }

    #[test]
    fn size_stepping_stays_in_set(
        start in prop::sample::select(vec![1.0, 1.5, 2.0, 3.0, 4.0, 6.0, 8.0, 12.0, 16.0]),
    ) {
        let t = Technology::ptm100();
        if let Some(up) = t.size_up(start) {
            prop_assert!(t.sizes.contains(&up));
            prop_assert!(up > start);
        }
        if let Some(down) = t.size_down(start) {
            prop_assert!(t.sizes.contains(&down));
            prop_assert!(down < start);
        }
    }
}
