//! Per-cell delay and leakage equations with first-order sensitivities.
//!
//! Delay follows the alpha-power law
//!
//! ```text
//! d = k_delay · r_stack · (1 + ΔL/L) · (C_par·w + C_load) · Vdd
//!     ─────────────────────────────────────────────────────────
//!                w · (Vdd − Vth − ΔVth_eff)^alpha
//! ```
//!
//! and sub-threshold leakage is exponential in the effective threshold
//!
//! ```text
//! I = i0 · w · s_state · exp(−(Vth + ΔVth_eff) / (n·vT))
//! ΔVth_eff = vth_l_coeff · (ΔL/L) + ΔVth_rand
//! ```
//!
//! Shorter channels (negative `ΔL/L`) *lower* the threshold (roll-off), so
//! fast die are leaky die — the correlation the statistical optimizer must
//! respect and the deterministic one ignores.
//!
//! # Deprecation note
//!
//! The free functions taking `&Technology` are **deprecated**: evaluation
//! now goes through the [`crate::CellLibrary`] trait, resolved once per
//! flow ([`crate::BuiltinLibrary`] wraps exactly these closed forms;
//! [`crate::LibertyLibrary`] substitutes characterized `.lib` values).
//! The forwarders below delegate verbatim to the crate-private
//! implementations, so existing callers keep bit-identical results while
//! they migrate.

use crate::params::{Technology, VthClass};
use statleak_netlist::GateKind;

/// Effective series-stack resistance multiplier of a gate kind with the
/// given fanin count (drive degradation from stacked devices).
pub fn stack_resistance(kind: GateKind, fanin: usize) -> f64 {
    debug_assert!(fanin >= 1);
    match kind {
        GateKind::Input => 0.0,
        GateKind::Buff | GateKind::Not => 1.0,
        GateKind::And | GateKind::Nand | GateKind::Or | GateKind::Nor => {
            1.0 + 0.30 * (fanin.saturating_sub(1) as f64)
        }
        GateKind::Xor | GateKind::Xnor => 1.6,
    }
}

/// State-averaged leakage factor of a gate kind (stack effect: series
/// devices in the off path suppress sub-threshold leakage).
pub fn leak_state_factor(kind: GateKind, fanin: usize) -> f64 {
    debug_assert!(fanin >= 1);
    match kind {
        GateKind::Input => 0.0,
        GateKind::Buff => 1.2, // two stages
        GateKind::Not => 1.0,
        GateKind::And | GateKind::Nand | GateKind::Or | GateKind::Nor => {
            1.0 / (1.0 + 0.8 * (fanin.saturating_sub(1) as f64))
        }
        GateKind::Xor | GateKind::Xnor => 1.3, // more devices
    }
}

/// Per-input-state leakage factor of a gate kind.
///
/// `state` is a bitmask over the cell's input pins (bit `i` set = pin `i`
/// high, `0 ≤ state < 2^fanin`). The profile models the series-stack
/// effect — for NAND/AND every *low* input adds an off NMOS in series;
/// for NOR/OR every *high* input adds an off PMOS — and is normalized so
/// the arithmetic mean over all `2^fanin` states equals
/// [`leak_state_factor`] (the scalar the averaged model consumes).
pub fn leak_state_factor_for_state(kind: GateKind, fanin: usize, state: usize) -> f64 {
    debug_assert!(fanin >= 1);
    debug_assert!(state < (1usize << fanin));
    let states = 1usize << fanin;
    let raw = |s: usize| -> f64 {
        let ones = (s & (states - 1)).count_ones() as f64;
        let zeros = fanin as f64 - ones;
        match kind {
            GateKind::Input => 0.0,
            // Off devices in the series stack suppress leakage.
            GateKind::And | GateKind::Nand => 1.0 / (1.0 + 0.8 * zeros),
            GateKind::Or | GateKind::Nor => 1.0 / (1.0 + 0.8 * ones),
            // Single-input and pass-structure cells: mild input asymmetry.
            GateKind::Buff | GateKind::Not => 1.0 + 0.1 * (ones - zeros),
            GateKind::Xor | GateKind::Xnor => 1.0,
        }
    };
    let total: f64 = (0..states).map(raw).sum();
    leak_state_factor(kind, fanin) * raw(state) * states as f64 / total
}

// ---------------------------------------------------------------------------
// Crate-private implementations: the single source of truth for the closed
// forms. `BuiltinLibrary`, the deprecated forwarders, and the Liberty
// characterizer all call these, so every path evaluates the identical
// floating-point expression.
// ---------------------------------------------------------------------------

#[inline]
pub(crate) fn input_cap_impl(tech: &Technology, size: f64) -> f64 {
    tech.c_gate * size
}

#[allow(clippy::too_many_arguments)]
pub(crate) fn gate_delay_impl(
    tech: &Technology,
    kind: GateKind,
    fanin: usize,
    size: f64,
    vth_class: VthClass,
    c_load: f64,
    delta_l_rel: f64,
    delta_vth_rand: f64,
) -> f64 {
    debug_assert!(kind.is_gate(), "inputs have no delay");
    let vth_eff = tech.vth(vth_class) + tech.vth_l_coeff * delta_l_rel + delta_vth_rand;
    let overdrive = (tech.vdd - vth_eff).max(0.05 * tech.vdd);
    let c_total = tech.c_par * size + c_load;
    tech.k_delay * stack_resistance(kind, fanin) * (1.0 + delta_l_rel) * c_total * tech.vdd
        / (size * overdrive.powf(tech.alpha))
}

pub(crate) fn gate_delay_nominal_impl(
    tech: &Technology,
    kind: GateKind,
    fanin: usize,
    size: f64,
    vth_class: VthClass,
    c_load: f64,
) -> f64 {
    gate_delay_impl(tech, kind, fanin, size, vth_class, c_load, 0.0, 0.0)
}

pub(crate) fn delay_sensitivities_impl(
    tech: &Technology,
    kind: GateKind,
    fanin: usize,
    size: f64,
    vth_class: VthClass,
    c_load: f64,
) -> (f64, f64, f64) {
    let d = gate_delay_nominal_impl(tech, kind, fanin, size, vth_class, c_load);
    let overdrive = tech.vdd - tech.vth(vth_class);
    // ∂d/∂Vth = alpha · d / (Vdd − Vth)
    let dd_dvth = tech.alpha * d / overdrive;
    // ∂d/∂(ΔL/L): direct transit term (d ∝ L) plus the roll-off path.
    let dd_dl = d + dd_dvth * tech.vth_l_coeff;
    (d, dd_dl, dd_dvth)
}

pub(crate) fn leakage_current_impl(
    tech: &Technology,
    kind: GateKind,
    fanin: usize,
    size: f64,
    vth_class: VthClass,
    delta_l_rel: f64,
    delta_vth_rand: f64,
) -> f64 {
    debug_assert!(kind.is_gate(), "inputs do not leak");
    let vth_eff = tech.vth(vth_class) + tech.vth_l_coeff * delta_l_rel + delta_vth_rand;
    tech.i0 * size * leak_state_factor(kind, fanin) * (-vth_eff / tech.n_vt()).exp()
}

pub(crate) fn leakage_nominal_impl(
    tech: &Technology,
    kind: GateKind,
    fanin: usize,
    size: f64,
    vth_class: VthClass,
) -> f64 {
    leakage_current_impl(tech, kind, fanin, size, vth_class, 0.0, 0.0)
}

pub(crate) fn ln_leakage_impl(
    tech: &Technology,
    kind: GateKind,
    fanin: usize,
    size: f64,
    vth_class: VthClass,
) -> (f64, f64, f64) {
    let ln_nom = leakage_nominal_impl(tech, kind, fanin, size, vth_class).ln();
    let dln_dvth = -1.0 / tech.n_vt();
    let dln_dl = dln_dvth * tech.vth_l_coeff;
    (ln_nom, dln_dl, dln_dvth)
}

// ---------------------------------------------------------------------------
// Deprecated forwarders (kept so downstream code compiles while migrating
// to the `CellLibrary` trait).
// ---------------------------------------------------------------------------

/// Input capacitance presented by one gate pin (fF).
#[deprecated(note = "use `CellLibrary::input_cap` via `Design::library()` instead")]
#[inline]
pub fn input_cap(tech: &Technology, size: f64) -> f64 {
    input_cap_impl(tech, size)
}

/// Full (non-linearized) gate delay under a parameter perturbation (ps).
///
/// This is the model the Monte-Carlo engine evaluates; SSTA uses its
/// first-order expansion ([`delay_sensitivities`]).
///
/// # Panics
///
/// Panics (debug) if called for [`GateKind::Input`].
// The argument list mirrors the physical model's parameter vector; bundling
// it into a struct would just move the same eight names one level down.
#[deprecated(note = "use `CellLibrary::delay` via `Design::library()` instead")]
#[allow(clippy::too_many_arguments)]
pub fn gate_delay(
    tech: &Technology,
    kind: GateKind,
    fanin: usize,
    size: f64,
    vth_class: VthClass,
    c_load: f64,
    delta_l_rel: f64,
    delta_vth_rand: f64,
) -> f64 {
    gate_delay_impl(
        tech,
        kind,
        fanin,
        size,
        vth_class,
        c_load,
        delta_l_rel,
        delta_vth_rand,
    )
}

/// Nominal gate delay (no variation), ps.
#[deprecated(note = "use `CellLibrary::delay_nominal` via `Design::library()` instead")]
pub fn gate_delay_nominal(
    tech: &Technology,
    kind: GateKind,
    fanin: usize,
    size: f64,
    vth_class: VthClass,
    c_load: f64,
) -> f64 {
    gate_delay_nominal_impl(tech, kind, fanin, size, vth_class, c_load)
}

/// First-order delay sensitivities at the nominal point.
///
/// Returns `(d_nom, ∂d/∂(ΔL/L), ∂d/∂ΔVth)` where the `ΔL/L` derivative
/// already folds in the threshold roll-off path `∂d/∂Vth · dVth/dL`.
#[deprecated(note = "use `CellLibrary::delay_sensitivities` via `Design::library()` instead")]
pub fn delay_sensitivities(
    tech: &Technology,
    kind: GateKind,
    fanin: usize,
    size: f64,
    vth_class: VthClass,
    c_load: f64,
) -> (f64, f64, f64) {
    delay_sensitivities_impl(tech, kind, fanin, size, vth_class, c_load)
}

/// Full (non-linearized) sub-threshold leakage current (A).
#[deprecated(note = "use `CellLibrary::leakage` via `Design::library()` instead")]
pub fn leakage_current(
    tech: &Technology,
    kind: GateKind,
    fanin: usize,
    size: f64,
    vth_class: VthClass,
    delta_l_rel: f64,
    delta_vth_rand: f64,
) -> f64 {
    leakage_current_impl(
        tech,
        kind,
        fanin,
        size,
        vth_class,
        delta_l_rel,
        delta_vth_rand,
    )
}

/// Nominal leakage current (A).
#[deprecated(note = "use `CellLibrary::leakage_nominal` via `Design::library()` instead")]
pub fn leakage_nominal(
    tech: &Technology,
    kind: GateKind,
    fanin: usize,
    size: f64,
    vth_class: VthClass,
) -> f64 {
    leakage_nominal_impl(tech, kind, fanin, size, vth_class)
}

/// ln-space leakage description: `(ln I_nom, ∂lnI/∂(ΔL/L), ∂lnI/∂ΔVth)`.
///
/// Because leakage is *exactly* exponential in the Gaussian parameters in
/// this model, the ln-space expansion is exact, and per-gate leakage is an
/// exact lognormal — which is what makes Wilkinson summation the right
/// full-chip aggregation.
#[deprecated(note = "use `CellLibrary::ln_leakage` via `Design::library()` instead")]
pub fn ln_leakage(
    tech: &Technology,
    kind: GateKind,
    fanin: usize,
    size: f64,
    vth_class: VthClass,
) -> (f64, f64, f64) {
    ln_leakage_impl(tech, kind, fanin, size, vth_class)
}

#[cfg(test)]
#[allow(deprecated)] // the forwarders themselves are under test
mod tests {
    use super::*;

    fn tech() -> Technology {
        Technology::ptm100()
    }

    #[test]
    fn high_vth_is_slower_and_less_leaky() {
        let t = tech();
        let d_l = gate_delay_nominal(&t, GateKind::Nand, 2, 2.0, VthClass::Low, 10.0);
        let d_h = gate_delay_nominal(&t, GateKind::Nand, 2, 2.0, VthClass::High, 10.0);
        assert!(d_h > d_l * 1.10 && d_h < d_l * 1.30, "{d_l} vs {d_h}");
        let i_l = leakage_nominal(&t, GateKind::Nand, 2, 2.0, VthClass::Low);
        let i_h = leakage_nominal(&t, GateKind::Nand, 2, 2.0, VthClass::High);
        assert!(i_l / i_h > 15.0 && i_l / i_h < 30.0);
    }

    #[test]
    fn upsizing_speeds_up_under_external_load() {
        let t = tech();
        let d1 = gate_delay_nominal(&t, GateKind::Nor, 2, 1.0, VthClass::Low, 20.0);
        let d2 = gate_delay_nominal(&t, GateKind::Nor, 2, 4.0, VthClass::Low, 20.0);
        assert!(d2 < d1);
        // But leakage grows linearly with size.
        let i1 = leakage_nominal(&t, GateKind::Nor, 2, 1.0, VthClass::Low);
        let i4 = leakage_nominal(&t, GateKind::Nor, 2, 4.0, VthClass::Low);
        assert!((i4 / i1 - 4.0).abs() < 1e-9);
    }

    #[test]
    fn min_size_inverter_calibration() {
        // ~100 nA at low Vth, ~20x less at high Vth.
        let t = tech();
        let i = leakage_nominal(&t, GateKind::Not, 1, 1.0, VthClass::Low);
        assert!(i > 5e-8 && i < 2e-7, "low-Vth inverter leaks {i} A");
        let ih = leakage_nominal(&t, GateKind::Not, 1, 1.0, VthClass::High);
        assert!(i / ih > 15.0);
    }

    #[test]
    fn shorter_channel_is_faster_and_leakier() {
        let t = tech();
        let d0 = gate_delay(&t, GateKind::Nand, 2, 2.0, VthClass::Low, 10.0, 0.0, 0.0);
        let dm = gate_delay(&t, GateKind::Nand, 2, 2.0, VthClass::Low, 10.0, -0.1, 0.0);
        assert!(dm < d0, "short channel should be faster");
        let i0 = leakage_current(&t, GateKind::Nand, 2, 2.0, VthClass::Low, 0.0, 0.0);
        let im = leakage_current(&t, GateKind::Nand, 2, 2.0, VthClass::Low, -0.1, 0.0);
        assert!(im > i0 * 1.5, "short channel should be much leakier");
    }

    #[test]
    fn delay_sensitivities_match_finite_differences() {
        let t = tech();
        let (d, dd_dl, dd_dvth) =
            delay_sensitivities(&t, GateKind::Nand, 3, 2.0, VthClass::Low, 12.0);
        let h = 1e-6;
        let fd_l = (gate_delay(&t, GateKind::Nand, 3, 2.0, VthClass::Low, 12.0, h, 0.0)
            - gate_delay(&t, GateKind::Nand, 3, 2.0, VthClass::Low, 12.0, -h, 0.0))
            / (2.0 * h);
        let fd_v = (gate_delay(&t, GateKind::Nand, 3, 2.0, VthClass::Low, 12.0, 0.0, h)
            - gate_delay(&t, GateKind::Nand, 3, 2.0, VthClass::Low, 12.0, 0.0, -h))
            / (2.0 * h);
        assert!((dd_dl - fd_l).abs() / d < 1e-4, "dl: {dd_dl} vs {fd_l}");
        assert!(
            (dd_dvth - fd_v).abs() / dd_dvth.abs() < 1e-4,
            "dvth: {dd_dvth} vs {fd_v}"
        );
    }

    #[test]
    fn ln_leakage_matches_full_model() {
        let t = tech();
        let (ln_nom, dln_dl, dln_dvth) = ln_leakage(&t, GateKind::Nor, 2, 3.0, VthClass::High);
        for &(dl, dv) in &[(0.05, 0.0), (-0.08, 0.01), (0.0, -0.02)] {
            let exact = leakage_current(&t, GateKind::Nor, 2, 3.0, VthClass::High, dl, dv).ln();
            let lin = ln_nom + dln_dl * dl + dln_dvth * dv;
            // Exact because the model is exactly exponential.
            assert!((exact - lin).abs() < 1e-9, "dl={dl} dv={dv}");
        }
    }

    #[test]
    fn stack_factors_monotone_in_fanin() {
        assert!(stack_resistance(GateKind::Nand, 3) > stack_resistance(GateKind::Nand, 2));
        assert!(leak_state_factor(GateKind::Nand, 3) < leak_state_factor(GateKind::Nand, 2));
    }

    #[test]
    fn per_state_factors_average_to_scalar() {
        for (kind, fanin) in [
            (GateKind::Nand, 2),
            (GateKind::Nand, 4),
            (GateKind::Nor, 3),
            (GateKind::And, 2),
            (GateKind::Or, 4),
            (GateKind::Not, 1),
            (GateKind::Buff, 1),
            (GateKind::Xor, 2),
        ] {
            let states = 1usize << fanin;
            let mean: f64 = (0..states)
                .map(|s| leak_state_factor_for_state(kind, fanin, s))
                .sum::<f64>()
                / states as f64;
            let scalar = leak_state_factor(kind, fanin);
            assert!(
                (mean - scalar).abs() < 1e-12,
                "{kind:?}/{fanin}: mean {mean} vs scalar {scalar}"
            );
        }
    }

    #[test]
    fn nand_all_high_state_is_leakiest() {
        // All inputs high = full NMOS stack on, leakage through PMOS: the
        // NAND's worst state; each low input adds a series off device.
        let f = |s| leak_state_factor_for_state(GateKind::Nand, 2, s);
        assert!(f(0b11) > f(0b01));
        assert!(f(0b01) > f(0b00));
    }

    #[test]
    fn overdrive_floor_prevents_blowup() {
        // Even absurd Vth shifts keep the delay finite and positive.
        let t = tech();
        let d = gate_delay(&t, GateKind::Not, 1, 1.0, VthClass::High, 5.0, 0.0, 2.0);
        assert!(d.is_finite() && d > 0.0);
    }
}
