//! Technology and device models for the `statleak` workspace.
//!
//! This crate is the "SPICE substitute" of the reproduction (see
//! `DESIGN.md` §5): closed-form alpha-power-law delay and exponential
//! sub-threshold leakage models calibrated to published 100 nm dual-Vth
//! ratios, plus the process-variation specification that couples both
//! through the effective channel length.
//!
//! * [`Technology`] — the 100 nm parameter set ([`Technology::ptm100`]):
//!   supply, the two threshold voltages, alpha-power exponent,
//!   sub-threshold slope, capacitances, and the discrete size set;
//! * [`cell`] — per-gate delay/leakage equations and their first-order
//!   sensitivities to `ΔL/L` and `ΔVth`;
//! * [`Design`] — a circuit plus its per-gate size and Vth assignment, the
//!   object every analysis and optimizer operates on;
//! * [`CellLibrary`] — the library abstraction every analysis consumes:
//!   [`BuiltinLibrary`] wraps the closed forms (default, reference
//!   semantics), [`LibertyLibrary`] substitutes characterized `.lib`
//!   values (NLDM tables, `when`-conditioned leakage, corner variants);
//! * [`liberty`] — the typed Liberty front-end (lexer → AST → decode)
//!   plus `.lib` export/import for interchange with other tools;
//! * [`variation`] — the variation decomposition (die-to-die / spatially
//!   correlated / gate-local) factored into independent standard-normal
//!   factors shared by SSTA, leakage analysis, and Monte Carlo.
//!
//! # Example
//!
//! ```
//! use statleak_netlist::benchmarks;
//! use statleak_tech::{Design, Technology, VthClass};
//! use std::sync::Arc;
//!
//! let tech = Technology::ptm100();
//! let mut design = Design::new(Arc::new(benchmarks::c17()), tech);
//! let g = design.circuit().gates().next().expect("c17 has gates");
//! let before = design.gate_leakage_nominal(g);
//! design.set_vth(g, VthClass::High);
//! assert!(design.gate_leakage_nominal(g) < before / 10.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cell;
mod design;
pub mod liberty;
pub mod library;
mod params;
pub mod variation;
pub mod wire;

pub use design::Design;
pub use liberty::LibertyLibrary;
pub use library::{BuiltinLibrary, CellLibrary};
pub use params::{Technology, VthClass};
pub use variation::{FactorModel, VariationConfig};
