//! Process-variation decomposition and its factorization into independent
//! standard-normal factors.
//!
//! Channel-length variation is split three ways (Agarwal/Blaauw-style):
//!
//! * **die-to-die** — one factor shared by every gate on the chip;
//! * **spatially correlated within-die** — the die is divided into a
//!   `grid × grid` array of regions whose correlation decays exponentially
//!   with distance, `ρ(d) = exp(−d/λ)`; the region covariance matrix is
//!   Cholesky-factored once so each region's correlated component is a
//!   known linear combination of independent factors;
//! * **gate-local random** — independent per gate.
//!
//! Threshold voltage additionally carries an independent random-dopant
//! component per gate. The resulting [`FactorModel`] expresses each gate's
//! `ΔL/L` as an affine function of `1 + grid²` shared factors plus a local
//! term — the *same* basis used by SSTA (canonical delays), statistical
//! leakage (lognormal exponents), and Monte Carlo (sampling), which is what
//! makes the analytical and simulated results directly comparable.

use crate::params::Technology;
use statleak_netlist::placement::Placement;
use statleak_netlist::{Circuit, NodeId};
use statleak_stats::{cholesky, CholeskyError, Matrix};

/// Configuration of the variation model.
#[derive(Debug, Clone, PartialEq)]
pub struct VariationConfig {
    /// Total sigma of relative channel-length variation `σ(ΔL/L)`.
    pub sigma_l_rel: f64,
    /// Fraction of the `ΔL/L` *variance* that is die-to-die.
    pub frac_d2d: f64,
    /// Fraction of the variance that is spatially correlated within-die.
    pub frac_spatial: f64,
    /// Fraction of the variance that is gate-local random.
    pub frac_local: f64,
    /// Sigma of the independent random-dopant Vth component (V).
    pub sigma_vth_rand: f64,
    /// Spatial correlation length, in die units (die is the unit square).
    pub corr_length: f64,
    /// Grid resolution: the die is divided into `grid × grid` regions.
    pub grid: usize,
}

impl VariationConfig {
    /// The default 100 nm variation budget: `σ(ΔL/L) = 6.67 %` (3σ = 20 %),
    /// split 40/40/20 between die-to-die, spatial, and local, plus 10 mV of
    /// random-dopant Vth sigma, correlation length of half the die, 4×4
    /// grid.
    pub fn ptm100() -> Self {
        Self {
            sigma_l_rel: 0.0667,
            frac_d2d: 0.40,
            frac_spatial: 0.40,
            frac_local: 0.20,
            sigma_vth_rand: 0.010,
            corr_length: 0.5,
            grid: 4,
        }
    }

    /// A copy with all spatial correlation removed (the variance moves into
    /// the gate-local component). Used by the correlation ablation.
    pub fn without_spatial_correlation(&self) -> Self {
        Self {
            frac_local: self.frac_local + self.frac_spatial,
            frac_spatial: 0.0,
            ..self.clone()
        }
    }

    /// A copy with a scaled total `ΔL/L` sigma (variation-magnitude sweep).
    pub fn with_sigma_l(&self, sigma_l_rel: f64) -> Self {
        Self {
            sigma_l_rel,
            ..self.clone()
        }
    }

    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics if fractions do not sum to 1, sigmas are negative, or the
    /// grid is empty.
    pub fn validate(&self) {
        assert!(self.sigma_l_rel >= 0.0 && self.sigma_vth_rand >= 0.0);
        assert!(
            (self.frac_d2d + self.frac_spatial + self.frac_local - 1.0).abs() < 1e-9,
            "variance fractions must sum to 1"
        );
        assert!(self.frac_d2d >= 0.0 && self.frac_spatial >= 0.0 && self.frac_local >= 0.0);
        assert!(self.corr_length > 0.0);
        assert!(self.grid >= 1, "grid must be at least 1x1");
    }
}

impl Default for VariationConfig {
    fn default() -> Self {
        Self::ptm100()
    }
}

/// The factored variation model for one placed circuit.
///
/// For gate `i`:
///
/// ```text
/// ΔL_i/L   = Σ_k l_shared[i][k] · Z_k  +  l_local[i] · R_i
/// ΔVth_i   = vth_l_coeff · ΔL_i/L      +  vth_local[i] · S_i
/// ```
///
/// with `Z_k` the shared factors (factor 0 = die-to-die, factors
/// `1..=grid²` the Cholesky-mixed regional factors) and `R_i`, `S_i`
/// gate-local independent standard normals.
///
/// The per-gate sensitivity rows are stored in **CSR form** (one offsets
/// array plus packed index/value arrays, indices strictly ascending, exact
/// zeros dropped): with the quadtree decomposition each gate touches only
/// O(log n) of the factors, and downstream consumers (SSTA canonical
/// forms, leakage exponents, Monte-Carlo sampling) iterate nonzeros only.
#[derive(Debug, Clone, PartialEq)]
pub struct FactorModel {
    num_shared: usize,
    /// Row offsets into `shared_idx`/`shared_val`, length `num_nodes + 1`.
    /// Non-gate nodes have empty rows.
    shared_off: Vec<u32>,
    /// Factor indices, strictly ascending within each row.
    shared_idx: Vec<u32>,
    /// Sensitivities, parallel to `shared_idx`.
    shared_val: Vec<f64>,
    l_local: Vec<f64>,
    vth_local: Vec<f64>,
    region: Vec<usize>,
    config: VariationConfig,
}

impl FactorModel {
    /// Builds the factor model for a placed circuit.
    ///
    /// # Errors
    ///
    /// Returns [`CholeskyError`] if the regional correlation matrix fails to
    /// factor (cannot happen for the exponential kernel on distinct points,
    /// but surfaced rather than hidden).
    ///
    /// # Panics
    ///
    /// Panics if the config is invalid (see [`VariationConfig::validate`]).
    pub fn build(
        circuit: &Circuit,
        placement: &Placement,
        tech: &Technology,
        config: &VariationConfig,
    ) -> Result<Self, CholeskyError> {
        config.validate();
        let _ = tech; // tech reserved for future per-parameter scaling
        let g = config.grid;
        let regions = g * g;
        let num_shared = 1 + regions;

        // Regional correlation matrix over region centers.
        let mut corr = Matrix::identity(regions);
        for a in 0..regions {
            let (ax, ay) = region_center(a, g);
            for b in (a + 1)..regions {
                let (bx, by) = region_center(b, g);
                let d = ((ax - bx).powi(2) + (ay - by).powi(2)).sqrt();
                let rho = (-d / config.corr_length).exp();
                corr[(a, b)] = rho;
                corr[(b, a)] = rho;
            }
        }
        let chol = cholesky(&corr)?;

        let sigma_d2d = config.sigma_l_rel * config.frac_d2d.sqrt();
        let sigma_sp = config.sigma_l_rel * config.frac_spatial.sqrt();
        let sigma_local = config.sigma_l_rel * config.frac_local.sqrt();

        let n = circuit.num_nodes();
        let mut rows = CsrBuilder::new(n);
        let mut l_local = vec![0.0; n];
        let mut vth_local = vec![0.0; n];
        let mut region = vec![0usize; n];

        for id in circuit.node_ids() {
            let i = id.index();
            if circuit.kind(id).is_gate() {
                let (x, y) = placement.position(id);
                let r = region_of(x, y, g);
                region[i] = r;
                rows.push(0, sigma_d2d);
                for k in 0..regions {
                    // The Cholesky factor is lower-triangular: entries with
                    // k > r are exact zeros and are not stored.
                    rows.push(1 + k, sigma_sp * chol[(r, k)]);
                }
                l_local[i] = sigma_local;
                vth_local[i] = config.sigma_vth_rand;
            }
            rows.finish_row();
        }

        let (shared_off, shared_idx, shared_val) = rows.build();
        Ok(Self {
            num_shared,
            shared_off,
            shared_idx,
            shared_val,
            l_local,
            vth_local,
            region,
            config: config.clone(),
        })
    }

    /// Number of shared factors (`1 + grid²`).
    #[inline]
    pub fn num_shared(&self) -> usize {
        self.num_shared
    }

    /// The configuration this model was built from.
    pub fn config(&self) -> &VariationConfig {
        &self.config
    }

    /// Gate `i`'s sparse shared-factor row as `(indices, values)` — indices
    /// strictly ascending, exact zeros dropped, empty for non-gates.
    #[inline]
    pub fn l_shared_row(&self, id: NodeId) -> (&[u32], &[f64]) {
        let s = self.shared_off[id.index()] as usize;
        let e = self.shared_off[id.index() + 1] as usize;
        (&self.shared_idx[s..e], &self.shared_val[s..e])
    }

    /// Gate `i`'s shared-factor coefficients as a dense vector (allocates;
    /// for tests, reporting, and the dense reference path).
    pub fn l_shared_dense(&self, id: NodeId) -> Vec<f64> {
        let mut out = vec![0.0; self.num_shared];
        let (idx, val) = self.l_shared_row(id);
        for (&k, &v) in idx.iter().zip(val) {
            out[k as usize] = v;
        }
        out
    }

    /// Gate-local `ΔL/L` sigma.
    #[inline]
    pub fn l_local(&self, id: NodeId) -> f64 {
        self.l_local[id.index()]
    }

    /// Gate-local random-dopant Vth sigma (V).
    #[inline]
    pub fn vth_local(&self, id: NodeId) -> f64 {
        self.vth_local[id.index()]
    }

    /// The grid region a gate was mapped to.
    #[inline]
    pub fn region(&self, id: NodeId) -> usize {
        self.region[id.index()]
    }

    /// Total `ΔL/L` standard deviation of one gate (should equal the
    /// configured `sigma_l_rel` by construction).
    pub fn l_total_sigma(&self, id: NodeId) -> f64 {
        let (_, val) = self.l_shared_row(id);
        let shared: f64 = val.iter().map(|a| a * a).sum();
        (shared + self.l_local[id.index()].powi(2)).sqrt()
    }

    /// Correlation of `ΔL/L` between two gates (through shared factors).
    pub fn l_correlation(&self, a: NodeId, b: NodeId) -> f64 {
        let (ia, va) = self.l_shared_row(a);
        let (ib, vb) = self.l_shared_row(b);
        // Ascending intersection walk — the nonzero terms of the dense dot.
        let mut cov = 0.0;
        let (mut i, mut j) = (0, 0);
        while i < ia.len() && j < ib.len() {
            match ia[i].cmp(&ib[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    cov += va[i] * vb[j];
                    i += 1;
                    j += 1;
                }
            }
        }
        let sa = self.l_total_sigma(a);
        let sb = self.l_total_sigma(b);
        if sa == 0.0 || sb == 0.0 {
            0.0
        } else {
            cov / (sa * sb)
        }
    }

    /// Builds a factor model whose spatially correlated component uses the
    /// Agarwal–Blaauw **quadtree** decomposition instead of the
    /// grid-Cholesky kernel: the die is recursively quartered for
    /// `levels` levels; each cell of each level carries an independent
    /// factor with an equal share `σ_sp²/levels` of the spatial variance,
    /// and a gate sums the factors of the cells containing it. Gates in
    /// the same deep cell share more factors, hence correlate more — the
    /// same qualitative structure as the exponential kernel, with O(1)
    /// factor lookup and no matrix factorization.
    ///
    /// # Panics
    ///
    /// Panics if `levels == 0` or the config is invalid.
    pub fn build_quadtree(
        circuit: &Circuit,
        placement: &Placement,
        tech: &Technology,
        config: &VariationConfig,
        levels: usize,
    ) -> Self {
        config.validate();
        assert!(levels >= 1, "need at least one quadtree level");
        let _ = tech;
        // Factor layout: [0] die-to-die, then level 1 (4 cells), level 2
        // (16 cells), ... level `levels` (4^levels cells).
        let mut level_offset = vec![1usize; levels + 1];
        for l in 1..=levels {
            level_offset[l] = level_offset[l - 1]
                + if l == 1 {
                    0
                } else {
                    4usize.pow((l - 1) as u32)
                };
        }
        let num_shared = level_offset[levels] + 4usize.pow(levels as u32);

        let sigma_d2d = config.sigma_l_rel * config.frac_d2d.sqrt();
        let sigma_sp_level = config.sigma_l_rel * (config.frac_spatial / levels as f64).sqrt();
        let sigma_local = config.sigma_l_rel * config.frac_local.sqrt();

        let n = circuit.num_nodes();
        let mut rows = CsrBuilder::new(n);
        let mut l_local = vec![0.0; n];
        let mut vth_local = vec![0.0; n];
        let mut region = vec![0usize; n];

        for id in circuit.node_ids() {
            let i = id.index();
            if circuit.kind(id).is_gate() {
                let (x, y) = placement.position(id);
                // Indices ascend across levels: `level_offset[l] + cell <
                // level_offset[l] + 4^l = level_offset[l+1]`.
                rows.push(0, sigma_d2d);
                for (l, off) in level_offset.iter().enumerate().take(levels + 1).skip(1) {
                    let g = 1usize << l; // 2^l cells per side at level l
                    let cell = region_of(x, y, g);
                    rows.push(off + cell, sigma_sp_level);
                }
                // Deepest-level cell doubles as the aggregation region.
                region[i] = region_of(x, y, 1usize << levels);
                l_local[i] = sigma_local;
                vth_local[i] = config.sigma_vth_rand;
            }
            rows.finish_row();
        }

        let (shared_off, shared_idx, shared_val) = rows.build();
        Self {
            num_shared,
            shared_off,
            shared_idx,
            shared_val,
            l_local,
            vth_local,
            region,
            config: config.clone(),
        }
    }

    /// Evaluates gate `i`'s `ΔL/L` for a concrete factor sample: `shared`
    /// must have length [`Self::num_shared`], `local` is the gate's own
    /// standard-normal draw. Used by the Monte-Carlo engine.
    pub fn sample_l(&self, id: NodeId, shared: &[f64], local: f64) -> f64 {
        debug_assert_eq!(shared.len(), self.num_shared);
        let (idx, val) = self.l_shared_row(id);
        let mut v = 0.0;
        for (&k, &c) in idx.iter().zip(val) {
            v += c * shared[k as usize];
        }
        v + self.l_local[id.index()] * local
    }
}

/// Incremental builder for the CSR sensitivity rows: `push` entries with
/// strictly ascending factor indices (exact zeros are dropped), then
/// `finish_row` once per node in id order.
struct CsrBuilder {
    off: Vec<u32>,
    idx: Vec<u32>,
    val: Vec<f64>,
}

impl CsrBuilder {
    fn new(num_rows: usize) -> Self {
        let mut off = Vec::with_capacity(num_rows + 1);
        off.push(0);
        Self {
            off,
            idx: Vec::new(),
            val: Vec::new(),
        }
    }

    fn push(&mut self, k: usize, v: f64) {
        if v != 0.0 {
            let row_start = *self.off.last().unwrap() as usize;
            debug_assert!(
                self.idx.len() == row_start || self.idx[self.idx.len() - 1] < k as u32,
                "CSR row indices must be strictly ascending"
            );
            self.idx.push(k as u32);
            self.val.push(v);
        }
    }

    fn finish_row(&mut self) {
        self.off.push(self.idx.len() as u32);
    }

    fn build(self) -> (Vec<u32>, Vec<u32>, Vec<f64>) {
        (self.off, self.idx, self.val)
    }
}

/// Center of region `r` in a `g × g` grid over the unit square.
fn region_center(r: usize, g: usize) -> (f64, f64) {
    let row = r / g;
    let col = r % g;
    ((col as f64 + 0.5) / g as f64, (row as f64 + 0.5) / g as f64)
}

/// Region index of a point in the unit square.
fn region_of(x: f64, y: f64, g: usize) -> usize {
    let col = ((x * g as f64) as usize).min(g - 1);
    let row = ((y * g as f64) as usize).min(g - 1);
    row * g + col
}

#[cfg(test)]
mod tests {
    use super::*;
    use statleak_netlist::benchmarks;
    use statleak_netlist::placement::Placement;

    fn model(name: &str, cfg: &VariationConfig) -> (std::sync::Arc<Circuit>, FactorModel) {
        let c = std::sync::Arc::new(benchmarks::by_name(name).unwrap());
        let p = Placement::by_level(&c);
        let m = FactorModel::build(&c, &p, &Technology::ptm100(), cfg).unwrap();
        (c, m)
    }

    #[test]
    fn total_sigma_matches_budget() {
        let cfg = VariationConfig::ptm100();
        let (c, m) = model("c432", &cfg);
        for g in c.gates() {
            let s = m.l_total_sigma(g);
            assert!(
                (s - cfg.sigma_l_rel).abs() < 1e-9,
                "gate sigma {s} vs budget {}",
                cfg.sigma_l_rel
            );
        }
    }

    #[test]
    fn self_correlation_is_partial() {
        // Two distinct gates share d2d + (maybe) spatial, never local.
        let cfg = VariationConfig::ptm100();
        let (c, m) = model("c432", &cfg);
        let gates: Vec<_> = c.gates().collect();
        let rho = m.l_correlation(gates[0], gates[gates.len() - 1]);
        assert!(rho > 0.3, "far gates still share d2d: rho={rho}");
        assert!(rho < 1.0 - cfg.frac_local / 2.0, "rho={rho}");
    }

    #[test]
    fn nearby_gates_more_correlated_than_far() {
        let cfg = VariationConfig {
            corr_length: 0.15,
            ..VariationConfig::ptm100()
        };
        let (c, m) = model("c880", &cfg);
        let gates: Vec<_> = c.gates().collect();
        // Same region pair vs max-distance pair.
        let a = gates[0];
        let same = gates
            .iter()
            .copied()
            .find(|&g| g != a && m.region(g) == m.region(a));
        let far = gates
            .iter()
            .copied()
            .max_by(|&x, &y| {
                let dx = (m.region(x) as f64 - m.region(a) as f64).abs();
                let dy = (m.region(y) as f64 - m.region(a) as f64).abs();
                dx.total_cmp(&dy)
            })
            .unwrap();
        if let Some(same) = same {
            assert!(m.l_correlation(a, same) >= m.l_correlation(a, far) - 1e-12);
        }
    }

    #[test]
    fn no_spatial_ablation_moves_variance_to_local() {
        let cfg = VariationConfig::ptm100().without_spatial_correlation();
        cfg.validate();
        let (c, m) = model("c432", &cfg);
        let g = c.gates().next().unwrap();
        // Shared coefficients beyond factor 0 must vanish — with exact
        // zeros dropped, the sparse row holds only the d2d entry.
        assert!(m.l_shared_dense(g)[1..].iter().all(|&a| a == 0.0));
        let (idx, _) = m.l_shared_row(g);
        assert_eq!(idx, &[0]);
        // Budget preserved.
        assert!((m.l_total_sigma(g) - cfg.sigma_l_rel).abs() < 1e-9);
    }

    #[test]
    fn sample_l_reproduces_linear_combination() {
        let cfg = VariationConfig::ptm100();
        let (c, m) = model("c17", &cfg);
        let g = c.gates().next().unwrap();
        let shared = vec![1.0; m.num_shared()];
        let manual: f64 = m.l_shared_dense(g).iter().sum::<f64>() + m.l_local(g) * 2.0;
        assert!((m.sample_l(g, &shared, 2.0) - manual).abs() < 1e-12);
    }

    #[test]
    fn region_mapping_covers_grid() {
        assert_eq!(region_of(0.0, 0.0, 4), 0);
        assert_eq!(region_of(0.99, 0.99, 4), 15);
        assert_eq!(region_of(1.0, 1.0, 4), 15); // clamped
        let (cx, cy) = region_center(5, 4);
        assert!((cx - 0.375).abs() < 1e-12 && (cy - 0.375).abs() < 1e-12);
    }

    #[test]
    fn quadtree_preserves_total_sigma() {
        let cfg = VariationConfig::ptm100();
        let c = std::sync::Arc::new(benchmarks::by_name("c432").unwrap());
        let p = Placement::by_level(&c);
        let m = FactorModel::build_quadtree(&c, &p, &Technology::ptm100(), &cfg, 2);
        for g in c.gates() {
            assert!(
                (m.l_total_sigma(g) - cfg.sigma_l_rel).abs() < 1e-9,
                "gate sigma {}",
                m.l_total_sigma(g)
            );
        }
    }

    #[test]
    fn quadtree_same_cell_more_correlated_than_far() {
        let cfg = VariationConfig::ptm100();
        let c = std::sync::Arc::new(benchmarks::by_name("c880").unwrap());
        let p = Placement::by_level(&c);
        let m = FactorModel::build_quadtree(&c, &p, &Technology::ptm100(), &cfg, 2);
        let gates: Vec<_> = c.gates().collect();
        let a = gates[0];
        let same = gates
            .iter()
            .copied()
            .find(|&g| g != a && m.region(g) == m.region(a));
        // Find a gate in a different top-level quadrant.
        let (ax, ay) = p.position(a);
        let far = gates.iter().copied().find(|&g| {
            let (x, y) = p.position(g);
            (x < 0.5) != (ax < 0.5) && (y < 0.5) != (ay < 0.5)
        });
        if let (Some(same), Some(far)) = (same, far) {
            assert!(m.l_correlation(a, same) > m.l_correlation(a, far));
        }
    }

    #[test]
    fn quadtree_factor_count() {
        let cfg = VariationConfig::ptm100();
        let c = std::sync::Arc::new(benchmarks::c17());
        let p = Placement::by_level(&c);
        let m = FactorModel::build_quadtree(&c, &p, &Technology::ptm100(), &cfg, 2);
        // 1 d2d + 4 (level 1) + 16 (level 2).
        assert_eq!(m.num_shared(), 21);
    }

    #[test]
    #[should_panic(expected = "variance fractions must sum to 1")]
    fn bad_fractions_rejected() {
        let cfg = VariationConfig {
            frac_d2d: 0.9,
            frac_spatial: 0.9,
            frac_local: 0.9,
            ..VariationConfig::ptm100()
        };
        cfg.validate();
    }
}
