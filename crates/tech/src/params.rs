//! The 100 nm dual-Vth technology parameter set.

/// The two threshold-voltage flavors every cell is available in.
///
/// Dual-Vth libraries fabricate the same layout with two channel implants:
/// the low-Vth flavor is fast and leaky, the high-Vth flavor is ~20× less
/// leaky but slower. Assigning the flavor per gate is one of the paper's
/// two optimization knobs (the other is sizing).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum VthClass {
    /// Fast, leaky (nominal 0.20 V at 100 nm).
    #[default]
    Low,
    /// The optional middle flavor of a triple-Vth library (nominal
    /// 0.26 V): ~9 % slower and ~4.7× less leaky than low-Vth. Only used
    /// when an optimizer is configured for triple-Vth operation.
    Mid,
    /// ~18 % slower, ~20× less leaky (nominal 0.32 V at 100 nm).
    High,
}

impl std::fmt::Display for VthClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            VthClass::Low => "L",
            VthClass::Mid => "M",
            VthClass::High => "H",
        })
    }
}

/// Closed-form 100 nm technology parameters (BPTM-flavoured).
///
/// Units used consistently across the workspace:
///
/// * delay — picoseconds (ps)
/// * capacitance — femtofarads (fF)
/// * current — amperes (A); leakage *power* is `vdd · I` in watts
/// * gate size — multiples of the minimum drive width
/// * channel-length variation — relative (`ΔL / L_nominal`)
///
/// The calibration targets (see `DESIGN.md` §3): a minimum-size low-Vth
/// inverter leaks ≈ 100 nA and a high-Vth one ≈ 20× less; swapping low→high
/// Vth slows a gate by ≈ 18 %.
#[derive(Debug, Clone, PartialEq)]
pub struct Technology {
    /// Supply voltage (V).
    pub vdd: f64,
    /// Low threshold voltage (V).
    pub vth_low: f64,
    /// Middle threshold voltage (V), used by triple-Vth optimization.
    pub vth_mid: f64,
    /// High threshold voltage (V).
    pub vth_high: f64,
    /// Alpha-power-law velocity-saturation exponent.
    pub alpha: f64,
    /// Sub-threshold swing factor `n` (dimensionless).
    pub n_sub: f64,
    /// Thermal voltage `kT/q` at the analysis temperature (V).
    pub v_thermal: f64,
    /// Delay scale: ps per (fF·V / unit-width / V^alpha).
    pub k_delay: f64,
    /// Gate input capacitance per unit width (fF).
    pub c_gate: f64,
    /// Parasitic (self-load) capacitance per unit width (fF).
    pub c_par: f64,
    /// Wire capacitance per fanout branch (fF).
    pub c_wire: f64,
    /// Fixed load presented by each primary output (fF).
    pub c_output_load: f64,
    /// Sub-threshold leakage scale per unit width at `Vth = 0` (A).
    pub i0: f64,
    /// Threshold-voltage shift per unit *relative* channel-length change
    /// (V); positive — `ΔVth = vth_l_coeff · ΔL/L`, so shorter channels
    /// (negative `ΔL`) have lower Vth (roll-off), which is exactly the
    /// delay↔leakage anti-correlation the paper exploits.
    pub vth_l_coeff: f64,
    /// Discrete allowed gate sizes, ascending, starting at 1.0.
    pub sizes: Vec<f64>,
    /// Output-slew gain: output transition ≈ `slew_gain ·` (load-dependent
    /// gate delay). Used by the slew-aware timing extension.
    pub slew_gain: f64,
    /// Delay sensitivity to input slew (dimensionless): the slew-aware
    /// model adds `slew_delay_coeff · s_in` to each gate delay.
    pub slew_delay_coeff: f64,
    /// Transition time driven into the primary inputs (ps).
    pub input_slew: f64,
}

impl Technology {
    /// The 100 nm parameter set used by every experiment in this repo.
    pub fn ptm100() -> Self {
        Self {
            vdd: 1.2,
            vth_low: 0.20,
            vth_mid: 0.26,
            vth_high: 0.32,
            alpha: 1.3,
            n_sub: 1.5,
            v_thermal: 0.0259,
            k_delay: 2.8,
            c_gate: 2.0,
            c_par: 1.0,
            c_wire: 0.4,
            c_output_load: 8.0,
            i0: 17.0e-6,
            vth_l_coeff: 0.30,
            sizes: vec![1.0, 1.5, 2.0, 3.0, 4.0, 6.0, 8.0, 12.0, 16.0],
            slew_gain: 2.0,
            slew_delay_coeff: 0.15,
            input_slew: 20.0,
        }
    }

    /// The threshold voltage of a flavor.
    #[inline]
    pub fn vth(&self, class: VthClass) -> f64 {
        match class {
            VthClass::Low => self.vth_low,
            VthClass::Mid => self.vth_mid,
            VthClass::High => self.vth_high,
        }
    }

    /// The sub-threshold slope denominator `n · vT` (V).
    #[inline]
    pub fn n_vt(&self) -> f64 {
        self.n_sub * self.v_thermal
    }

    /// The next larger size in the discrete set, if any.
    pub fn size_up(&self, w: f64) -> Option<f64> {
        self.sizes.iter().copied().find(|&s| s > w * 1.000_001)
    }

    /// The next smaller size in the discrete set, if any.
    pub fn size_down(&self, w: f64) -> Option<f64> {
        self.sizes
            .iter()
            .rev()
            .copied()
            .find(|&s| s < w * 0.999_999)
    }

    /// Validates internal consistency (used by constructors in tests).
    ///
    /// # Panics
    ///
    /// Panics if the parameter set is physically inconsistent (non-positive
    /// scales, `vth_high ≤ vth_low`, `vth_high ≥ vdd`, empty or unsorted
    /// size set).
    pub fn validate(&self) {
        assert!(self.vdd > 0.0 && self.k_delay > 0.0 && self.i0 > 0.0);
        assert!(self.vth_low > 0.0 && self.vth_high > self.vth_low);
        assert!(
            self.vth_mid > self.vth_low && self.vth_mid < self.vth_high,
            "vth_mid must lie strictly between vth_low and vth_high"
        );
        assert!(self.vth_high < self.vdd, "vth_high must stay below vdd");
        assert!(self.n_vt() > 0.0);
        assert!(!self.sizes.is_empty(), "size set must be non-empty");
        assert!(
            self.sizes.windows(2).all(|w| w[0] < w[1]),
            "size set must be strictly ascending"
        );
        assert!(
            (self.sizes[0] - 1.0).abs() < 1e-9,
            "smallest size must be 1.0"
        );
        assert!(
            self.slew_gain > 0.0 && self.slew_delay_coeff >= 0.0 && self.input_slew >= 0.0,
            "slew parameters must be non-negative (gain positive)"
        );
    }
}

impl Default for Technology {
    fn default() -> Self {
        Self::ptm100()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ptm100_is_valid() {
        Technology::ptm100().validate();
    }

    #[test]
    fn vth_lookup() {
        let t = Technology::ptm100();
        assert_eq!(t.vth(VthClass::Low), t.vth_low);
        assert_eq!(t.vth(VthClass::Mid), t.vth_mid);
        assert_eq!(t.vth(VthClass::High), t.vth_high);
    }

    #[test]
    fn mid_vth_between_flavors() {
        let t = Technology::ptm100();
        let il = (-t.vth_low / t.n_vt()).exp();
        let im = (-t.vth_mid / t.n_vt()).exp();
        let ih = (-t.vth_high / t.n_vt()).exp();
        assert!(il > im && im > ih);
    }

    #[test]
    #[should_panic(expected = "vth_mid must lie strictly between")]
    fn validate_rejects_misordered_mid() {
        let mut t = Technology::ptm100();
        t.vth_mid = 0.10;
        t.validate();
    }

    #[test]
    fn size_stepping() {
        let t = Technology::ptm100();
        assert_eq!(t.size_up(1.0), Some(1.5));
        assert_eq!(t.size_up(16.0), None);
        assert_eq!(t.size_down(1.0), None);
        assert_eq!(t.size_down(2.0), Some(1.5));
        assert_eq!(t.size_down(16.0), Some(12.0));
    }

    #[test]
    fn leakage_ratio_calibration() {
        // exp(ΔVth / n·vT) ≈ 20×.
        let t = Technology::ptm100();
        let ratio = ((t.vth_high - t.vth_low) / t.n_vt()).exp();
        assert!(ratio > 15.0 && ratio < 30.0, "ratio {ratio}");
    }

    #[test]
    fn delay_penalty_calibration() {
        // (Vdd-VthL)^a / (Vdd-VthH)^a ≈ 1.18.
        let t = Technology::ptm100();
        let pen = ((t.vdd - t.vth_low) / (t.vdd - t.vth_high)).powf(t.alpha);
        assert!(pen > 1.10 && pen < 1.30, "penalty {pen}");
    }

    #[test]
    #[should_panic(expected = "vth_high must stay below vdd")]
    fn validate_rejects_vth_above_vdd() {
        let mut t = Technology::ptm100();
        t.vth_high = 1.3;
        t.validate();
    }
}
