//! Placement-driven wire-load model.
//!
//! The baseline load model charges a fixed stub capacitance per fanout
//! branch (`Technology::c_wire`). For placed designs we can do better:
//! estimate each net's length as the half-perimeter of the bounding box of
//! its driver and sinks (the standard HPWL pre-route estimate), scale by
//! the per-unit wire capacitance, and fold the result into the driver's
//! load. [`crate::Design::set_wire_caps`] installs the per-net extra
//! capacitance so every downstream analysis (STA, SSTA, leakage-through-
//! sizing, Monte Carlo) sees it transparently.

use crate::params::Technology;
use statleak_netlist::placement::Placement;
use statleak_netlist::Circuit;

/// Wire parasitics per unit die length.
#[derive(Debug, Clone, PartialEq)]
pub struct WireModel {
    /// Wire capacitance per unit of die edge length (fF). The die is the
    /// unit square, so a corner-to-corner net sees `≈ 2·c_per_unit`.
    pub c_per_unit: f64,
    /// Minimum net length charged even for abutting cells (local routing).
    pub min_length: f64,
}

impl WireModel {
    /// The default 100 nm global-wire estimate: a full die crossing adds
    /// ~40 fF (≈ 20 gate loads), abutting cells ~0.4 fF.
    pub fn ptm100() -> Self {
        Self {
            c_per_unit: 40.0,
            min_length: 0.01,
        }
    }
}

impl Default for WireModel {
    fn default() -> Self {
        Self::ptm100()
    }
}

/// Computes the half-perimeter wirelength of each node's output net.
pub fn net_hpwl(circuit: &Circuit, placement: &Placement) -> Vec<f64> {
    let mut hpwl = vec![0.0; circuit.num_nodes()];
    for &id in circuit.topo_order() {
        let node = circuit.node(id);
        if node.fanout.is_empty() {
            continue;
        }
        let (mut xmin, mut ymin) = placement.position(id);
        let (mut xmax, mut ymax) = (xmin, ymin);
        for &f in node.fanout {
            let (x, y) = placement.position(f);
            xmin = xmin.min(x);
            xmax = xmax.max(x);
            ymin = ymin.min(y);
            ymax = ymax.max(y);
        }
        hpwl[id.index()] = (xmax - xmin) + (ymax - ymin);
    }
    hpwl
}

/// Computes per-net extra wire capacitance (fF) from the placement, ready
/// for [`crate::Design::set_wire_caps`]. The fixed per-branch stub
/// (`Technology::c_wire`) remains in the load model; this adds the
/// distance-dependent part.
pub fn wire_caps_from_placement(
    circuit: &Circuit,
    placement: &Placement,
    model: &WireModel,
) -> Vec<f64> {
    net_hpwl(circuit, placement)
        .into_iter()
        .enumerate()
        .map(|(i, l)| {
            if circuit
                .fanout(statleak_netlist::NodeId(i as u32))
                .is_empty()
            {
                0.0
            } else {
                model.c_per_unit * l.max(model.min_length)
            }
        })
        .collect()
}

/// Convenience: total extra wire capacitance of a design (fF).
pub fn total_wire_cap(tech: &Technology, caps: &[f64]) -> f64 {
    let _ = tech;
    caps.iter().sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Design, Technology};
    use statleak_netlist::benchmarks;
    use std::sync::Arc;

    #[test]
    fn hpwl_positive_for_driving_nodes() {
        let c = benchmarks::by_name("c432").unwrap();
        let p = Placement::by_level(&c);
        let h = net_hpwl(&c, &p);
        for id in c.gates() {
            if !c.node(id).fanout.is_empty() {
                assert!(h[id.index()] >= 0.0);
            }
        }
        // At least some nets span a visible distance.
        assert!(h.iter().copied().fold(0.0, f64::max) > 0.05);
    }

    #[test]
    fn high_fanout_nets_are_longer() {
        let c = benchmarks::by_name("c880").unwrap();
        let p = Placement::by_level(&c);
        let h = net_hpwl(&c, &p);
        let mut by_fanout: Vec<(usize, f64)> = c
            .topo_order()
            .iter()
            .map(|&id| (c.node(id).fanout.len(), h[id.index()]))
            .filter(|&(f, _)| f > 0)
            .collect();
        by_fanout.sort_by_key(|&(f, _)| f);
        let small: Vec<f64> = by_fanout
            .iter()
            .filter(|&&(f, _)| f == 1)
            .map(|&(_, l)| l)
            .collect();
        let large: Vec<f64> = by_fanout
            .iter()
            .filter(|&&(f, _)| f >= 4)
            .map(|&(_, l)| l)
            .collect();
        if !small.is_empty() && !large.is_empty() {
            let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
            assert!(mean(&large) > mean(&small));
        }
    }

    #[test]
    fn wire_caps_slow_the_circuit() {
        let circuit = Arc::new(benchmarks::by_name("c499").unwrap());
        let p = Placement::by_level(&circuit);
        let mut d = Design::new(Arc::clone(&circuit), Technology::ptm100());
        let before: f64 = circuit.gates().map(|g| d.load_cap(g)).sum();
        let caps = wire_caps_from_placement(&circuit, &p, &WireModel::ptm100());
        d.set_wire_caps(caps);
        let after: f64 = circuit.gates().map(|g| d.load_cap(g)).sum();
        assert!(
            after > before * 1.2,
            "wire load should be visible: {before} -> {after}"
        );
    }

    #[test]
    fn min_length_floor_applies() {
        let c = benchmarks::c17();
        let p = Placement::by_level(&c);
        let model = WireModel {
            c_per_unit: 10.0,
            min_length: 0.5,
        };
        let caps = wire_caps_from_placement(&c, &p, &model);
        for id in c.topo_order() {
            if !c.node(*id).fanout.is_empty() {
                assert!(caps[id.index()] >= 5.0 - 1e-12);
            }
        }
    }
}
