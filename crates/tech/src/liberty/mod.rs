//! Liberty (`.lib`) front-end: lexer, AST, typed decode, writer, and the
//! [`LibertyLibrary`] adapter.
//!
//! Downstream tools (synthesis, sign-off) consume characterized libraries
//! in Synopsys Liberty format; users bring their own characterized
//! libraries the same way. The pipeline:
//!
//! ```text
//! .lib text ─lex→ tokens ─parse→ Group AST ─decode→ Library (typed)
//!                                                   │
//!                     CellLibrary trait ←── LibertyLibrary (+ corners)
//! ```
//!
//! * [`lexer`] — position-tagged tokens (line/column on every token);
//! * [`ast`] — the `name (args) { ... }` group grammar;
//! * [`decode`] — typed [`Library`]/[`Cell`]/[`Pin`]/[`LeakagePower`]/
//!   [`NldmTable`] with strict checking of what is read (templates must
//!   exist, table shapes must match, pins must be unique);
//! * [`export`] — renders the closed-form models as Liberty text with
//!   `when`-conditioned per-state leakage and NLDM tables;
//! * [`LibertyLibrary`] — presents a parsed library through the
//!   [`crate::CellLibrary`] trait, with SS/TT/FF-style corner loading
//!   ([`CornerSet`]);
//! * [`parse`] — the legacy flat-attribute scanner (template round-trip
//!   API, kept for compatibility).
//!
//! All errors from the typed path carry line/column ([`LibertyError`])
//! and map onto the CLI's stable *parse* exit code.

pub mod ast;
pub mod decode;
pub mod error;
pub mod export;
mod legacy;
pub mod lexer;
mod liberty_lib;

pub use decode::{
    parse_library, Cell, LeakagePower, Library, NldmTable, Pin, TableTemplate, Timing,
};
pub use error::{LibertyError, LibertyErrorKind, LibertyLoadError};
pub use export::{characterize, export, LibertyCell};
pub use legacy::{parse, ParseLibertyError};
pub use liberty_lib::{CornerSet, LibertyLibrary};
