//! The legacy flat-attribute Liberty parser.
//!
//! Predates the typed front-end ([`super::decode`]): a light-weight scan
//! that extracts the attributes written by [`super::export`] into flat
//! [`LibertyCell`] records. Kept because its API (`parse`,
//! [`ParseLibertyError`]) is public and the round-trip template tests
//! build on it; new code should use [`super::parse_library`] /
//! [`crate::LibertyLibrary`].

use super::export::LibertyCell;
use crate::params::VthClass;
use statleak_netlist::GateKind;
use std::collections::BTreeMap;
use std::fmt;

/// Errors produced while parsing the Liberty subset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseLibertyError {
    /// No `library (...)` header.
    MissingLibrary,
    /// A cell lacked a required attribute; carries cell name + attribute.
    MissingAttribute {
        /// The cell.
        cell: String,
        /// The missing attribute key.
        attribute: String,
    },
    /// A value could not be parsed as a number; carries key and text.
    BadValue {
        /// Attribute key.
        key: String,
        /// Unparsable text.
        text: String,
    },
}

impl fmt::Display for ParseLibertyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseLibertyError::MissingLibrary => write!(f, "no `library` group found"),
            ParseLibertyError::MissingAttribute { cell, attribute } => {
                write!(f, "cell `{cell}` lacks attribute `{attribute}`")
            }
            ParseLibertyError::BadValue { key, text } => {
                write!(f, "bad numeric value for `{key}`: `{text}`")
            }
        }
    }
}

impl std::error::Error for ParseLibertyError {}

/// Parses Liberty-subset text back into flat cells.
///
/// Only the attributes written by [`super::export`] are interpreted;
/// unknown attributes and groups are skipped (which is the Liberty
/// convention and lets users feed in real libraries with richer content).
///
/// # Errors
///
/// Returns [`ParseLibertyError`] on missing headers/attributes or
/// unparsable numbers.
pub fn parse(src: &str) -> Result<Vec<LibertyCell>, ParseLibertyError> {
    if !src.contains("library") {
        return Err(ParseLibertyError::MissingLibrary);
    }
    let mut cells = Vec::new();
    // Light-weight scan: find `cell (NAME) {` groups, then read key : value
    // pairs until the group's brace depth closes.
    let mut rest = src;
    while let Some(pos) = rest.find("cell (") {
        rest = &rest[pos + "cell (".len()..];
        let close = rest.find(')').ok_or(ParseLibertyError::MissingLibrary)?;
        let name = rest[..close].trim().to_string();
        let body_start = rest[close..]
            .find('{')
            .map(|i| close + i + 1)
            .ok_or(ParseLibertyError::MissingLibrary)?;
        // Find the matching closing brace.
        let mut depth = 1;
        let mut end = body_start;
        for (i, ch) in rest[body_start..].char_indices() {
            match ch {
                '{' => depth += 1,
                '}' => {
                    depth -= 1;
                    if depth == 0 {
                        end = body_start + i;
                        break;
                    }
                }
                _ => {}
            }
        }
        let body = &rest[body_start..end];
        let mut attrs: BTreeMap<String, String> = BTreeMap::new();
        for line in body.lines() {
            if let Some((k, v)) = line.split_once(':') {
                attrs.insert(
                    k.trim().to_string(),
                    v.trim().trim_end_matches(';').trim().to_string(),
                );
            }
        }
        let get = |key: &str| -> Result<String, ParseLibertyError> {
            attrs
                .get(key)
                .cloned()
                .ok_or_else(|| ParseLibertyError::MissingAttribute {
                    cell: name.clone(),
                    attribute: key.to_string(),
                })
        };
        let num = |key: &str| -> Result<f64, ParseLibertyError> {
            let text = get(key)?;
            text.parse().map_err(|_| ParseLibertyError::BadValue {
                key: key.to_string(),
                text,
            })
        };
        let kind = GateKind::from_bench_keyword(&get("function_kind")?).ok_or_else(|| {
            ParseLibertyError::BadValue {
                key: "function_kind".into(),
                text: get("function_kind").unwrap_or_default(),
            }
        })?;
        let vth = match get("threshold_flavor")?.as_str() {
            "LVT" => VthClass::Low,
            "MVT" => VthClass::Mid,
            "HVT" => VthClass::High,
            other => {
                return Err(ParseLibertyError::BadValue {
                    key: "threshold_flavor".into(),
                    text: other.to_string(),
                })
            }
        };
        cells.push(LibertyCell {
            name: name.clone(),
            kind,
            fanin: num("fanin_count")? as usize,
            size: num("drive_size")?,
            vth,
            input_cap: num("capacitance")?,
            leakage_nw: num("cell_leakage_power")?,
            intrinsic_ps: num("intrinsic_rise")?,
            slope_ps_per_ff: num("rise_resistance")?,
        });
        rest = &rest[end..];
    }
    Ok(cells)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::liberty::export::{characterize, export};
    use crate::params::Technology;

    #[test]
    fn round_trip_preserves_values() {
        let tech = Technology::ptm100();
        let cells = parse(&export(&tech, "lib")).unwrap();
        // 2 single-fanin kinds + 4 kinds × 3 fanins + 2 kinds × 1 fanin
        // = 16 variants × 9 sizes × 2 vth.
        assert_eq!(cells.len(), 16 * tech.sizes.len() * 2);
        let inv = cells
            .iter()
            .find(|c| c.name == "INV_X1_LVT")
            .expect("inverter present");
        let expect = characterize(&tech, GateKind::Not, "INV", 1, 1.0, VthClass::Low);
        assert!((inv.leakage_nw - expect.leakage_nw).abs() < 1e-4);
        assert!((inv.input_cap - expect.input_cap).abs() < 1e-4);
        assert!((inv.intrinsic_ps - expect.intrinsic_ps).abs() < 1e-4);
        assert!((inv.slope_ps_per_ff - expect.slope_ps_per_ff).abs() < 1e-4);
    }

    #[test]
    fn hvt_cells_leak_less_than_lvt() {
        let cells = parse(&export(&Technology::ptm100(), "lib")).unwrap();
        let lvt = cells.iter().find(|c| c.name == "NAND2_X1_LVT").unwrap();
        let hvt = cells.iter().find(|c| c.name == "NAND2_X1_HVT").unwrap();
        assert!(lvt.leakage_nw / hvt.leakage_nw > 15.0);
        assert!(hvt.intrinsic_ps > lvt.intrinsic_ps);
    }

    #[test]
    fn missing_library_rejected() {
        assert_eq!(parse("cell (X) {}"), Err(ParseLibertyError::MissingLibrary));
    }

    #[test]
    fn missing_attribute_reported() {
        let src = "library (l) { cell (BROKEN) { drive_size : 1; } }";
        let e = parse(src).unwrap_err();
        assert!(matches!(e, ParseLibertyError::MissingAttribute { .. }));
    }

    #[test]
    fn unknown_attributes_skipped() {
        let tech = Technology::ptm100();
        let mut text = export(&tech, "lib");
        text = text.replace(
            "delay_model : table_lookup;",
            "delay_model : table_lookup;\n  vendor_secret_sauce : 42;",
        );
        assert!(parse(&text).is_ok());
    }
}
