//! Liberty writer: renders the closed-form cell models as a `.lib` text.
//!
//! Each cell carries three redundant views of the same model so every
//! consumer tier can read it:
//!
//! * the legacy scalar attributes (`cell_leakage_power`, `intrinsic_rise`,
//!   `rise_resistance`) consumed by the string-scanning [`super::parse`];
//! * `when`-conditioned `leakage_power` groups — one per input state,
//!   values written with full (shortest-round-trip) precision so an
//!   export→import cycle through the typed parser preserves
//!   state-dependent leakage bit-exactly;
//! * NLDM `cell_rise`/`cell_fall` lookup tables over input transition ×
//!   output load (the closed-form delay is linear in load and
//!   slew-independent, so the sampled table reproduces it exactly under
//!   bilinear interpolation).

use crate::cell;
use crate::library::BuiltinLibrary;
use crate::library::CellLibrary;
use crate::params::{Technology, VthClass};
use statleak_netlist::GateKind;

/// One exported/imported library cell (flat legacy view).
#[derive(Debug, Clone, PartialEq)]
pub struct LibertyCell {
    /// Cell name, e.g. `NAND2_X2_HVT`.
    pub name: String,
    /// Gate function.
    pub kind: GateKind,
    /// Fanin count the cell was characterized for.
    pub fanin: usize,
    /// Drive size (multiple of minimum width).
    pub size: f64,
    /// Threshold flavor.
    pub vth: VthClass,
    /// Input pin capacitance (fF).
    pub input_cap: f64,
    /// State-averaged leakage power (nW).
    pub leakage_nw: f64,
    /// Intrinsic delay at zero external load (ps).
    pub intrinsic_ps: f64,
    /// Delay slope per fF of external load (ps/fF).
    pub slope_ps_per_ff: f64,
}

/// The gate kinds exported to the library (with their fanin variants).
pub(crate) const EXPORT_KINDS: [(GateKind, &str, &[usize]); 8] = [
    (GateKind::Not, "INV", &[1]),
    (GateKind::Buff, "BUF", &[1]),
    (GateKind::Nand, "NAND", &[2, 3, 4]),
    (GateKind::Nor, "NOR", &[2, 3, 4]),
    (GateKind::And, "AND", &[2, 3, 4]),
    (GateKind::Or, "OR", &[2, 3, 4]),
    (GateKind::Xor, "XOR", &[2]),
    (GateKind::Xnor, "XNOR", &[2]),
];

pub(crate) fn vth_suffix(vth: VthClass) -> &'static str {
    match vth {
        VthClass::Low => "LVT",
        VthClass::Mid => "MVT",
        VthClass::High => "HVT",
    }
}

pub(crate) fn vth_from_suffix(text: &str) -> Option<VthClass> {
    match text {
        "LVT" => Some(VthClass::Low),
        "MVT" => Some(VthClass::Mid),
        "HVT" => Some(VthClass::High),
        _ => None,
    }
}

pub(crate) fn cell_name(base: &str, fanin: usize, size: f64, vth: VthClass) -> String {
    let arity = if fanin > 1 {
        fanin.to_string()
    } else {
        String::new()
    };
    format!("{base}{arity}_X{}_{}", format_size(size), vth_suffix(vth))
}

pub(crate) fn format_size(size: f64) -> String {
    if (size - size.round()).abs() < 1e-9 {
        format!("{}", size.round() as i64)
    } else {
        format!("{size}").replace('.', "p")
    }
}

/// Input pin names in bit order: bit `i` of a state mask refers to pin
/// `PIN_NAMES[i]`.
pub(crate) const PIN_NAMES: [&str; 10] = ["A", "B", "C", "D", "E", "F", "G", "H", "I", "J"];

/// Renders a state bitmask as a Liberty `when` condition, e.g. `A&!B`.
pub(crate) fn when_condition(fanin: usize, state: usize) -> String {
    let mut parts = Vec::with_capacity(fanin);
    for (bit, name) in PIN_NAMES.iter().enumerate().take(fanin) {
        if state & (1 << bit) != 0 {
            parts.push((*name).to_string());
        } else {
            parts.push(format!("!{name}"));
        }
    }
    parts.join("&")
}

/// Parses a `when` condition written by [`when_condition`] back into a
/// state bitmask, given the cell's fanin. Returns `None` for conditions
/// outside that subset (products of possibly-negated single pins).
pub(crate) fn when_to_state(when: &str, fanin: usize) -> Option<usize> {
    let mut state = 0usize;
    let mut seen = 0usize;
    for term in when.split('&') {
        let term = term.trim().trim_matches(|c| c == '(' || c == ')');
        let (neg, pin) = match term.strip_prefix('!') {
            Some(p) => (true, p.trim()),
            None => (false, term),
        };
        let bit = PIN_NAMES.iter().position(|&n| n == pin)?;
        if bit >= fanin {
            return None;
        }
        seen |= 1 << bit;
        if !neg {
            state |= 1 << bit;
        }
    }
    // Every pin must be constrained for the condition to name one state.
    if seen == (1 << fanin) - 1 {
        Some(state)
    } else {
        None
    }
}

/// Characterizes one cell from the closed-form models.
pub fn characterize(
    tech: &Technology,
    kind: GateKind,
    base: &str,
    fanin: usize,
    size: f64,
    vth: VthClass,
) -> LibertyCell {
    // Linear delay fit from two load points (the model *is* linear in
    // load, so two points are exact).
    let d0 = cell::gate_delay_nominal_impl(tech, kind, fanin, size, vth, 0.0);
    let d10 = cell::gate_delay_nominal_impl(tech, kind, fanin, size, vth, 10.0);
    LibertyCell {
        name: cell_name(base, fanin, size, vth),
        kind,
        fanin,
        size,
        vth,
        input_cap: cell::input_cap_impl(tech, size),
        leakage_nw: cell::leakage_nominal_impl(tech, kind, fanin, size, vth) * tech.vdd * 1e9,
        intrinsic_ps: d0,
        slope_ps_per_ff: (d10 - d0) / 10.0,
    }
}

/// The NLDM sample axes used by [`export`]: input transition (ps) ×
/// output load (fF).
const NLDM_INDEX_1: [f64; 3] = [10.0, 20.0, 40.0];
const NLDM_INDEX_2: [f64; 6] = [0.0, 2.0, 5.0, 10.0, 20.0, 40.0];

/// Exports the whole dual-Vth library (all kinds × sizes × {L,H}) as
/// Liberty text with `when`-conditioned leakage and NLDM delay tables.
pub fn export(tech: &Technology, library_name: &str) -> String {
    let builtin = BuiltinLibrary::new(tech.clone());
    let mut out = String::new();
    out.push_str(&format!("library ({library_name}) {{\n"));
    out.push_str("  delay_model : table_lookup;\n");
    out.push_str("  time_unit : \"1ps\";\n");
    out.push_str("  leakage_power_unit : \"1nW\";\n");
    out.push_str("  capacitive_load_unit (1, ff);\n");
    out.push_str(&format!("  nom_voltage : {};\n", tech.vdd));
    out.push_str("  lu_table_template (delay_3x6) {\n");
    out.push_str("    variable_1 : input_net_transition;\n");
    out.push_str("    variable_2 : total_output_net_capacitance;\n");
    out.push_str(&format!(
        "    index_1 (\"{}\");\n",
        join_nums(&NLDM_INDEX_1)
    ));
    out.push_str(&format!(
        "    index_2 (\"{}\");\n",
        join_nums(&NLDM_INDEX_2)
    ));
    out.push_str("  }\n");
    for (kind, base, fanins) in EXPORT_KINDS {
        for &fanin in fanins {
            for &size in &tech.sizes {
                for vth in [VthClass::Low, VthClass::High] {
                    let c = characterize(tech, kind, base, fanin, size, vth);
                    out.push_str(&format!("  cell ({}) {{\n", c.name));
                    out.push_str(&format!("    cell_leakage_power : {:.6};\n", c.leakage_nw));
                    out.push_str(&format!("    drive_size : {};\n", c.size));
                    out.push_str(&format!("    fanin_count : {};\n", c.fanin));
                    out.push_str(&format!(
                        "    function_kind : {};\n",
                        c.kind.bench_keyword()
                    ));
                    out.push_str(&format!("    threshold_flavor : {};\n", vth_suffix(c.vth)));
                    // Per-state leakage: full precision so the typed
                    // parser round-trips the values bit-exactly.
                    for state in 0..(1usize << fanin) {
                        let i_state = builtin.leakage_by_state(kind, fanin, size, vth, state);
                        let nw = i_state * tech.vdd * 1e9;
                        out.push_str("    leakage_power () {\n");
                        out.push_str(&format!(
                            "      when : \"{}\";\n",
                            when_condition(fanin, state)
                        ));
                        out.push_str(&format!("      value : {nw};\n"));
                        out.push_str("    }\n");
                    }
                    for pin in PIN_NAMES.iter().take(fanin) {
                        out.push_str(&format!("    pin ({pin}) {{\n"));
                        out.push_str("      direction : input;\n");
                        out.push_str(&format!("      capacitance : {:.6};\n", c.input_cap));
                        out.push_str("    }\n");
                    }
                    out.push_str("    pin (Y) {\n");
                    out.push_str("      direction : output;\n");
                    out.push_str("      timing () {\n");
                    out.push_str("        related_pin : \"A\";\n");
                    out.push_str(&format!(
                        "        intrinsic_rise : {:.6};\n",
                        c.intrinsic_ps
                    ));
                    out.push_str(&format!(
                        "        rise_resistance : {:.6};\n",
                        c.slope_ps_per_ff
                    ));
                    for table in ["cell_rise", "cell_fall"] {
                        out.push_str(&format!("        {table} (delay_3x6) {{\n"));
                        out.push_str("          values ( \\\n");
                        for (i, _) in NLDM_INDEX_1.iter().enumerate() {
                            let row: Vec<String> = NLDM_INDEX_2
                                .iter()
                                .map(|&load| {
                                    let d = c.intrinsic_ps + c.slope_ps_per_ff * load;
                                    format!("{d}")
                                })
                                .collect();
                            let sep = if i + 1 < NLDM_INDEX_1.len() { "," } else { "" };
                            out.push_str(&format!("            \"{}\"{sep} \\\n", row.join(", ")));
                        }
                        out.push_str("          );\n");
                        out.push_str("        }\n");
                    }
                    out.push_str("      }\n");
                    out.push_str("    }\n");
                    out.push_str("  }\n");
                }
            }
        }
    }
    out.push_str("}\n");
    out
}

fn join_nums(xs: &[f64]) -> String {
    xs.iter()
        .map(|x| format!("{x}"))
        .collect::<Vec<_>>()
        .join(", ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::liberty::decode::parse_library;
    use crate::liberty::parse;

    #[test]
    fn export_contains_expected_cells() {
        let text = export(&Technology::ptm100(), "statleak100");
        assert!(text.contains("library (statleak100)"));
        assert!(text.contains("cell (INV_X1_LVT)"));
        assert!(text.contains("cell (NAND2_X4_HVT)"));
        assert!(text.contains("cell (XOR2_X16_LVT)"));
    }

    #[test]
    fn linear_fit_reproduces_model_delay() {
        let tech = Technology::ptm100();
        let c = characterize(&tech, GateKind::Nand, "NAND", 2, 2.0, VthClass::High);
        let builtin = BuiltinLibrary::new(tech);
        for load in [0.0, 5.0, 20.0, 50.0] {
            let model = builtin.delay_nominal(GateKind::Nand, 2, 2.0, VthClass::High, load);
            let fit = c.intrinsic_ps + c.slope_ps_per_ff * load;
            assert!((model - fit).abs() < 1e-9, "load {load}");
        }
    }

    #[test]
    fn when_conditions_round_trip() {
        for fanin in 1..=4usize {
            for state in 0..(1usize << fanin) {
                let cond = when_condition(fanin, state);
                assert_eq!(when_to_state(&cond, fanin), Some(state), "{cond}");
            }
        }
        assert_eq!(when_to_state("A", 2), None, "underconstrained");
        assert_eq!(when_to_state("A&!Z", 2), None, "unknown pin");
    }

    #[test]
    fn export_round_trips_state_leakage_bit_exactly() {
        let tech = Technology::ptm100();
        let builtin = BuiltinLibrary::new(tech.clone());
        let lib = parse_library(&export(&tech, "lib")).unwrap();
        let cell = lib
            .cells
            .iter()
            .find(|c| c.name == "NAND3_X2_HVT")
            .expect("exported cell present");
        assert_eq!(cell.leakage_power.len(), 8);
        for lp in &cell.leakage_power {
            let state = when_to_state(lp.when.as_deref().unwrap(), 3).unwrap();
            let expect = builtin.leakage_by_state(GateKind::Nand, 3, 2.0, VthClass::High, state)
                * tech.vdd
                * 1e9;
            assert_eq!(
                lp.value.to_bits(),
                expect.to_bits(),
                "state {state} must round-trip bit-exactly"
            );
        }
    }

    #[test]
    fn nldm_tables_reproduce_linear_model() {
        let tech = Technology::ptm100();
        let lib = parse_library(&export(&tech, "lib")).unwrap();
        let cell = lib.cells.iter().find(|c| c.name == "NOR2_X4_LVT").unwrap();
        let y = cell.pins.iter().find(|p| p.name == "Y").unwrap();
        let rise = y.timings[0].cell_rise.as_ref().unwrap();
        let c = characterize(&tech, GateKind::Nor, "NOR", 2, 4.0, VthClass::Low);
        for load in [0.0, 3.0, 17.0, 60.0] {
            let table = rise.lookup(tech.input_slew, load);
            let linear = c.intrinsic_ps + c.slope_ps_per_ff * load;
            assert!(
                (table - linear).abs() < 1e-9,
                "load {load}: {table} vs {linear}"
            );
        }
    }

    #[test]
    fn legacy_parser_still_reads_the_export() {
        let tech = Technology::ptm100();
        let cells = parse(&export(&tech, "lib")).unwrap();
        assert_eq!(cells.len(), 16 * tech.sizes.len() * 2);
    }
}
