//! Liberty lexer: raw text → position-tagged tokens.
//!
//! The token set is deliberately small — Liberty is `name (args) { ... }`
//! groups, `key : value ;` simple attributes, and `key (args) ;` complex
//! attributes. Identifiers, numbers, and unit suffixes all lex as
//! [`TokenKind::Word`]; quoted strings keep their unescaped content.
//! `//` line comments, `/* */` block comments, and `\`-newline line
//! continuations are skipped. Every token records the 1-based line/column
//! of its first character for error reporting.

use super::error::{LibertyError, LibertyErrorKind};

/// One lexed token.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// Token class and payload.
    pub kind: TokenKind,
    /// 1-based source line of the first character.
    pub line: u32,
    /// 1-based source column of the first character.
    pub column: u32,
}

/// Token classes.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Bare word: identifier, number, or unit text (e.g. `cell_rise`,
    /// `1.25`, `1ps`).
    Word(String),
    /// Quoted string with escapes resolved.
    Quoted(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `:`
    Colon,
    /// `;`
    Semi,
    /// `,`
    Comma,
}

impl TokenKind {
    /// A short human-readable rendering for error messages.
    pub fn describe(&self) -> String {
        match self {
            TokenKind::Word(w) => w.clone(),
            TokenKind::Quoted(s) => format!("\"{s}\""),
            TokenKind::LParen => "(".into(),
            TokenKind::RParen => ")".into(),
            TokenKind::LBrace => "{".into(),
            TokenKind::RBrace => "}".into(),
            TokenKind::Colon => ":".into(),
            TokenKind::Semi => ";".into(),
            TokenKind::Comma => ",".into(),
        }
    }
}

/// Lexes Liberty source into tokens.
///
/// # Errors
///
/// Returns a position-carrying [`LibertyError`] for unterminated strings
/// or block comments and for unsupported string escapes.
pub fn lex(src: &str) -> Result<Vec<Token>, LibertyError> {
    let mut tokens = Vec::new();
    let mut chars = src.chars().peekable();
    let mut line: u32 = 1;
    let mut column: u32 = 1;

    macro_rules! bump {
        ($c:expr) => {
            if $c == '\n' {
                line += 1;
                column = 1;
            } else {
                column += 1;
            }
        };
    }

    while let Some(&c) = chars.peek() {
        let (tok_line, tok_col) = (line, column);
        match c {
            ' ' | '\t' | '\r' | '\n' => {
                chars.next();
                bump!(c);
            }
            '\\' => {
                // Line continuation: backslash followed by (optional CR and)
                // newline is whitespace; anything else is an error here.
                chars.next();
                bump!(c);
                while matches!(chars.peek(), Some('\r')) {
                    chars.next();
                    bump!('\r');
                }
                match chars.peek() {
                    Some('\n') => {
                        chars.next();
                        bump!('\n');
                    }
                    other => {
                        return Err(LibertyError::new(
                            LibertyErrorKind::Expected {
                                expected: "newline after line-continuation `\\`",
                                found: other.map(|c| c.to_string()).unwrap_or_default(),
                            },
                            tok_line,
                            tok_col,
                        ));
                    }
                }
            }
            '/' => {
                chars.next();
                bump!('/');
                match chars.peek() {
                    Some('/') => {
                        // Line comment.
                        for c2 in chars.by_ref() {
                            bump!(c2);
                            if c2 == '\n' {
                                break;
                            }
                        }
                    }
                    Some('*') => {
                        chars.next();
                        bump!('*');
                        let mut closed = false;
                        let mut prev = '\0';
                        for c2 in chars.by_ref() {
                            bump!(c2);
                            if prev == '*' && c2 == '/' {
                                closed = true;
                                break;
                            }
                            prev = c2;
                        }
                        if !closed {
                            return Err(LibertyError::new(
                                LibertyErrorKind::UnterminatedComment,
                                tok_line,
                                tok_col,
                            ));
                        }
                    }
                    _ => {
                        // A lone `/` inside e.g. a path-like word.
                        let mut word = String::from('/');
                        while let Some(&c2) = chars.peek() {
                            if is_word_char(c2) {
                                word.push(c2);
                                chars.next();
                                bump!(c2);
                            } else {
                                break;
                            }
                        }
                        tokens.push(Token {
                            kind: TokenKind::Word(word),
                            line: tok_line,
                            column: tok_col,
                        });
                    }
                }
            }
            '"' => {
                chars.next();
                bump!('"');
                let mut text = String::new();
                let mut closed = false;
                while let Some(c2) = chars.next() {
                    bump!(c2);
                    match c2 {
                        '"' => {
                            closed = true;
                            break;
                        }
                        '\n' => {
                            return Err(LibertyError::new(
                                LibertyErrorKind::UnterminatedString,
                                tok_line,
                                tok_col,
                            ));
                        }
                        '\\' => {
                            let (esc_line, esc_col) = (line, column.saturating_sub(1));
                            match chars.next() {
                                Some('"') => {
                                    bump!('"');
                                    text.push('"');
                                }
                                Some('\\') => {
                                    bump!('\\');
                                    text.push('\\');
                                }
                                Some('n') => {
                                    bump!('n');
                                    text.push('\n');
                                }
                                // Multi-line quoted values (common for
                                // `values` tables): backslash-newline
                                // continues the string.
                                Some('\n') => {
                                    bump!('\n');
                                }
                                Some(other) => {
                                    return Err(LibertyError::new(
                                        LibertyErrorKind::BadEscape { escape: other },
                                        esc_line,
                                        esc_col,
                                    ));
                                }
                                None => {
                                    return Err(LibertyError::new(
                                        LibertyErrorKind::UnterminatedString,
                                        tok_line,
                                        tok_col,
                                    ));
                                }
                            }
                        }
                        other => text.push(other),
                    }
                }
                if !closed {
                    return Err(LibertyError::new(
                        LibertyErrorKind::UnterminatedString,
                        tok_line,
                        tok_col,
                    ));
                }
                tokens.push(Token {
                    kind: TokenKind::Quoted(text),
                    line: tok_line,
                    column: tok_col,
                });
            }
            '(' | ')' | '{' | '}' | ':' | ';' | ',' => {
                chars.next();
                bump!(c);
                let kind = match c {
                    '(' => TokenKind::LParen,
                    ')' => TokenKind::RParen,
                    '{' => TokenKind::LBrace,
                    '}' => TokenKind::RBrace,
                    ':' => TokenKind::Colon,
                    ';' => TokenKind::Semi,
                    _ => TokenKind::Comma,
                };
                tokens.push(Token {
                    kind,
                    line: tok_line,
                    column: tok_col,
                });
            }
            _ => {
                let mut word = String::new();
                while let Some(&c2) = chars.peek() {
                    if is_word_char(c2) {
                        word.push(c2);
                        chars.next();
                        bump!(c2);
                    } else {
                        break;
                    }
                }
                if word.is_empty() {
                    // An unexpected single character (e.g. `@`): surface it
                    // as a word token; the parser will reject it with
                    // position info.
                    word.push(c);
                    chars.next();
                    bump!(c);
                }
                tokens.push(Token {
                    kind: TokenKind::Word(word),
                    line: tok_line,
                    column: tok_col,
                });
            }
        }
    }
    Ok(tokens)
}

fn is_word_char(c: char) -> bool {
    c.is_alphanumeric() || matches!(c, '_' | '.' | '-' | '+' | '!' | '&' | '|' | '*' | '\'')
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn positions_are_one_based() {
        let toks = lex("library (demo) {\n  key : 1.5;\n}").unwrap();
        assert_eq!(toks[0].kind, TokenKind::Word("library".into()));
        assert_eq!((toks[0].line, toks[0].column), (1, 1));
        let key = toks
            .iter()
            .find(|t| t.kind == TokenKind::Word("key".into()));
        assert_eq!((key.unwrap().line, key.unwrap().column), (2, 3));
    }

    #[test]
    fn comments_are_skipped() {
        let toks = lex("a /* x\n y */ b // tail\nc").unwrap();
        let words: Vec<_> = toks
            .iter()
            .filter_map(|t| match &t.kind {
                TokenKind::Word(w) => Some(w.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(words, ["a", "b", "c"]);
    }

    #[test]
    fn bad_escape_is_positioned() {
        let err = lex("x : \"a\\qb\";").unwrap_err();
        assert_eq!(err.kind, LibertyErrorKind::BadEscape { escape: 'q' });
        assert_eq!(err.line, 1);
        assert!(
            err.column >= 6,
            "column {} should point at the escape",
            err.column
        );
    }

    #[test]
    fn unterminated_string_rejected() {
        let err = lex("x : \"abc").unwrap_err();
        assert_eq!(err.kind, LibertyErrorKind::UnterminatedString);
    }

    #[test]
    fn unterminated_comment_rejected() {
        let err = lex("/* never closed").unwrap_err();
        assert_eq!(err.kind, LibertyErrorKind::UnterminatedComment);
    }
}
