//! Position-carrying Liberty errors.
//!
//! Every failure from the lexer, AST parser, or typed decoder carries the
//! 1-based line and column where it was detected, so `statleak analyze
//! --liberty broken.lib` can point at the offending character. The CLI
//! maps [`LibertyError`] onto the stable *parse* exit code (4), exactly
//! like malformed netlists.

use std::fmt;
use std::path::PathBuf;

/// A Liberty parse/decode failure at a known source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LibertyError {
    /// What went wrong.
    pub kind: LibertyErrorKind,
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column.
    pub column: u32,
}

impl LibertyError {
    pub(crate) fn new(kind: LibertyErrorKind, line: u32, column: u32) -> Self {
        Self { kind, line, column }
    }
}

/// The failure classes of the Liberty front-end.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum LibertyErrorKind {
    /// A group (`name (...) { ... `) was never closed before end of input;
    /// the position points at the group's opening.
    UnterminatedGroup {
        /// The group's name (e.g. `cell`).
        name: String,
    },
    /// A quoted string ran to end of line/input without a closing quote.
    UnterminatedString,
    /// An unsupported backslash escape inside a quoted string.
    BadEscape {
        /// The escaped character.
        escape: char,
    },
    /// A block comment `/* ... ` was never closed.
    UnterminatedComment,
    /// The parser expected one token and found another.
    Expected {
        /// What the grammar required.
        expected: &'static str,
        /// What was actually found.
        found: String,
    },
    /// The top-level `library (...) { ... }` group is missing.
    MissingLibrary,
    /// A numeric attribute failed to parse.
    BadNumber {
        /// Attribute key.
        key: String,
        /// The unparsable text.
        text: String,
    },
    /// A lookup table references an undeclared `lu_table_template`.
    UnknownTemplate {
        /// The referenced template name.
        name: String,
    },
    /// A cell declared the same pin twice.
    DuplicatePin {
        /// The cell.
        cell: String,
        /// The repeated pin name.
        pin: String,
    },
    /// A table's `values` shape disagrees with its index axes.
    BadTableShape {
        /// The table's template name.
        template: String,
    },
}

impl fmt::Display for LibertyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}, column {}: ", self.line, self.column)?;
        match &self.kind {
            LibertyErrorKind::UnterminatedGroup { name } => {
                write!(f, "group `{name}` is never closed")
            }
            LibertyErrorKind::UnterminatedString => write!(f, "unterminated quoted string"),
            LibertyErrorKind::BadEscape { escape } => {
                write!(f, "unsupported escape `\\{escape}` in quoted string")
            }
            LibertyErrorKind::UnterminatedComment => write!(f, "unterminated block comment"),
            LibertyErrorKind::Expected { expected, found } => {
                write!(f, "expected {expected}, found `{found}`")
            }
            LibertyErrorKind::MissingLibrary => write!(f, "no `library (...)` group found"),
            LibertyErrorKind::BadNumber { key, text } => {
                write!(f, "bad numeric value for `{key}`: `{text}`")
            }
            LibertyErrorKind::UnknownTemplate { name } => {
                write!(f, "unknown table template `{name}`")
            }
            LibertyErrorKind::DuplicatePin { cell, pin } => {
                write!(f, "cell `{cell}` declares pin `{pin}` twice")
            }
            LibertyErrorKind::BadTableShape { template } => {
                write!(f, "table values do not match template `{template}` axes")
            }
        }
    }
}

impl std::error::Error for LibertyError {}

/// A failure loading a Liberty library from disk into a
/// [`crate::LibertyLibrary`] (I/O, parse, or corner resolution).
#[derive(Debug)]
pub enum LibertyLoadError {
    /// The file could not be read.
    Io {
        /// The path involved.
        path: PathBuf,
        /// The underlying I/O error.
        source: std::io::Error,
    },
    /// The file's content failed to parse/decode.
    Parse {
        /// The path involved.
        path: PathBuf,
        /// The position-carrying parse error.
        source: LibertyError,
    },
    /// The requested corner has no matching library file.
    UnknownCorner {
        /// The corner the caller asked for.
        requested: String,
        /// The corner names that were discovered.
        available: Vec<String>,
    },
    /// The library parsed but contains no usable cells.
    NoUsableCells {
        /// The path involved.
        path: PathBuf,
    },
}

impl fmt::Display for LibertyLoadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LibertyLoadError::Io { path, source } => {
                write!(f, "cannot read `{}`: {source}", path.display())
            }
            LibertyLoadError::Parse { path, source } => {
                write!(f, "{}: {source}", path.display())
            }
            LibertyLoadError::UnknownCorner {
                requested,
                available,
            } => write!(
                f,
                "unknown corner `{requested}` (available: {})",
                if available.is_empty() {
                    "none".to_string()
                } else {
                    available.join(", ")
                }
            ),
            LibertyLoadError::NoUsableCells { path } => {
                write!(f, "`{}` contains no usable cells", path.display())
            }
        }
    }
}

impl std::error::Error for LibertyLoadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LibertyLoadError::Io { source, .. } => Some(source),
            LibertyLoadError::Parse { source, .. } => Some(source),
            _ => None,
        }
    }
}
