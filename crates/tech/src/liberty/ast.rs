//! Liberty group/attribute AST.
//!
//! The grammar (the real Liberty grammar, minus vendor pragmas):
//!
//! ```text
//! group   := IDENT '(' args? ')' '{' (attr | group)* '}'
//! attr    := IDENT ':' value ';'          (simple attribute)
//!          | IDENT '(' args? ')' ';'      (complex attribute)
//! args    := value (',' value)*
//! value   := WORD | QUOTED
//! ```
//!
//! Statement kind is decided by lookahead after the argument list: `{`
//! opens a sub-group, `;` (or a following statement, which some writers
//! emit without the semicolon) ends a complex attribute.

use super::error::{LibertyError, LibertyErrorKind};
use super::lexer::{lex, Token, TokenKind};

/// A `name (args) { ... }` group node.
#[derive(Debug, Clone, PartialEq)]
pub struct Group {
    /// Group keyword (`library`, `cell`, `pin`, ...).
    pub name: String,
    /// Parenthesized arguments (cell name, template name, ...).
    pub args: Vec<String>,
    /// Simple and complex attributes, in source order.
    pub attrs: Vec<Attr>,
    /// Nested sub-groups, in source order.
    pub groups: Vec<Group>,
    /// 1-based line of the group keyword.
    pub line: u32,
    /// 1-based column of the group keyword.
    pub column: u32,
}

impl Group {
    /// The value of the first simple attribute with this key, if any.
    pub fn simple(&self, key: &str) -> Option<&str> {
        self.attrs.iter().find_map(|a| match &a.value {
            AttrValue::Simple(v) if a.key == key => Some(v.as_str()),
            _ => None,
        })
    }

    /// The arguments of the first complex attribute with this key, if any.
    pub fn complex(&self, key: &str) -> Option<&[String]> {
        self.attrs.iter().find_map(|a| match &a.value {
            AttrValue::Complex(v) if a.key == key => Some(v.as_slice()),
            _ => None,
        })
    }

    /// All nested groups with the given name.
    pub fn groups_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a Group> + 'a {
        self.groups.iter().filter(move |g| g.name == name)
    }
}

/// One attribute inside a group.
#[derive(Debug, Clone, PartialEq)]
pub struct Attr {
    /// Attribute key.
    pub key: String,
    /// Simple (`key : value ;`) or complex (`key (a, b) ;`) payload.
    pub value: AttrValue,
    /// 1-based line of the key.
    pub line: u32,
    /// 1-based column of the key.
    pub column: u32,
}

/// Attribute payload.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrValue {
    /// `key : value ;`
    Simple(String),
    /// `key (a, b, ...) ;`
    Complex(Vec<String>),
}

/// Parses Liberty text into its top-level groups (usually exactly one
/// `library`).
///
/// # Errors
///
/// Returns the first lex or grammar error with its source position.
pub fn parse_groups(src: &str) -> Result<Vec<Group>, LibertyError> {
    let tokens = lex(src)?;
    let mut p = Parser { tokens, pos: 0 };
    let mut groups = Vec::new();
    while !p.at_end() {
        groups.push(p.group()?);
    }
    Ok(groups)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn last_pos(&self) -> (u32, u32) {
        self.tokens
            .last()
            .map(|t| (t.line, t.column))
            .unwrap_or((1, 1))
    }

    fn expect(&mut self, kind: &TokenKind, expected: &'static str) -> Result<Token, LibertyError> {
        match self.next() {
            Some(t) if &t.kind == kind => Ok(t),
            Some(t) => Err(LibertyError::new(
                LibertyErrorKind::Expected {
                    expected,
                    found: t.kind.describe(),
                },
                t.line,
                t.column,
            )),
            None => {
                let (l, c) = self.last_pos();
                Err(LibertyError::new(
                    LibertyErrorKind::Expected {
                        expected,
                        found: "end of input".into(),
                    },
                    l,
                    c,
                ))
            }
        }
    }

    fn word(&mut self, expected: &'static str) -> Result<(String, u32, u32), LibertyError> {
        match self.next() {
            Some(Token {
                kind: TokenKind::Word(w),
                line,
                column,
            }) => Ok((w, line, column)),
            Some(t) => Err(LibertyError::new(
                LibertyErrorKind::Expected {
                    expected,
                    found: t.kind.describe(),
                },
                t.line,
                t.column,
            )),
            None => {
                let (l, c) = self.last_pos();
                Err(LibertyError::new(
                    LibertyErrorKind::Expected {
                        expected,
                        found: "end of input".into(),
                    },
                    l,
                    c,
                ))
            }
        }
    }

    /// Parses `( value, value, ... )`; the opening paren is already
    /// consumed by the caller's lookahead decision.
    fn args(&mut self) -> Result<Vec<String>, LibertyError> {
        self.expect(&TokenKind::LParen, "`(`")?;
        let mut out = Vec::new();
        loop {
            match self.peek().map(|t| t.kind.clone()) {
                Some(TokenKind::RParen) => {
                    self.next();
                    return Ok(out);
                }
                Some(TokenKind::Comma) => {
                    self.next();
                }
                Some(TokenKind::Word(w)) => {
                    self.next();
                    out.push(w);
                }
                Some(TokenKind::Quoted(s)) => {
                    self.next();
                    out.push(s);
                }
                Some(other) => {
                    let t = self.next().unwrap();
                    return Err(LibertyError::new(
                        LibertyErrorKind::Expected {
                            expected: "argument or `)`",
                            found: other.describe(),
                        },
                        t.line,
                        t.column,
                    ));
                }
                None => {
                    let (l, c) = self.last_pos();
                    return Err(LibertyError::new(
                        LibertyErrorKind::Expected {
                            expected: "`)`",
                            found: "end of input".into(),
                        },
                        l,
                        c,
                    ));
                }
            }
        }
    }

    /// Parses one full group; the caller guarantees the next token is the
    /// group keyword.
    fn group(&mut self) -> Result<Group, LibertyError> {
        let (name, line, column) = self.word("group keyword")?;
        let args = self.args()?;
        self.expect(&TokenKind::LBrace, "`{`")?;
        let mut group = Group {
            name,
            args,
            attrs: Vec::new(),
            groups: Vec::new(),
            line,
            column,
        };
        loop {
            match self.peek().map(|t| t.kind.clone()) {
                Some(TokenKind::RBrace) => {
                    self.next();
                    return Ok(group);
                }
                Some(TokenKind::Semi) => {
                    // Stray semicolon between statements: tolerated.
                    self.next();
                }
                Some(TokenKind::Word(_)) => {
                    self.statement(&mut group)?;
                }
                Some(other) => {
                    let t = self.next().unwrap();
                    return Err(LibertyError::new(
                        LibertyErrorKind::Expected {
                            expected: "attribute, sub-group, or `}`",
                            found: other.describe(),
                        },
                        t.line,
                        t.column,
                    ));
                }
                None => {
                    return Err(LibertyError::new(
                        LibertyErrorKind::UnterminatedGroup { name: group.name },
                        line,
                        column,
                    ));
                }
            }
        }
    }

    /// One statement inside a group body: simple attribute, complex
    /// attribute, or sub-group.
    fn statement(&mut self, parent: &mut Group) -> Result<(), LibertyError> {
        let (key, line, column) = self.word("attribute or group keyword")?;
        match self.peek().map(|t| t.kind.clone()) {
            Some(TokenKind::Colon) => {
                self.next();
                let value = match self.next() {
                    Some(Token {
                        kind: TokenKind::Word(w),
                        ..
                    }) => w,
                    Some(Token {
                        kind: TokenKind::Quoted(s),
                        ..
                    }) => s,
                    Some(t) => {
                        return Err(LibertyError::new(
                            LibertyErrorKind::Expected {
                                expected: "attribute value",
                                found: t.kind.describe(),
                            },
                            t.line,
                            t.column,
                        ));
                    }
                    None => {
                        let (l, c) = self.last_pos();
                        return Err(LibertyError::new(
                            LibertyErrorKind::Expected {
                                expected: "attribute value",
                                found: "end of input".into(),
                            },
                            l,
                            c,
                        ));
                    }
                };
                self.expect(&TokenKind::Semi, "`;`")?;
                parent.attrs.push(Attr {
                    key,
                    value: AttrValue::Simple(value),
                    line,
                    column,
                });
                Ok(())
            }
            Some(TokenKind::LParen) => {
                // Complex attribute or sub-group: decided by what follows
                // the closing paren.
                let args = self.args()?;
                match self.peek().map(|t| t.kind.clone()) {
                    Some(TokenKind::LBrace) => {
                        self.next();
                        let mut group = Group {
                            name: key,
                            args,
                            attrs: Vec::new(),
                            groups: Vec::new(),
                            line,
                            column,
                        };
                        loop {
                            match self.peek().map(|t| t.kind.clone()) {
                                Some(TokenKind::RBrace) => {
                                    self.next();
                                    parent.groups.push(group);
                                    return Ok(());
                                }
                                Some(TokenKind::Semi) => {
                                    self.next();
                                }
                                Some(TokenKind::Word(_)) => {
                                    self.statement(&mut group)?;
                                }
                                Some(other) => {
                                    let t = self.next().unwrap();
                                    return Err(LibertyError::new(
                                        LibertyErrorKind::Expected {
                                            expected: "attribute, sub-group, or `}`",
                                            found: other.describe(),
                                        },
                                        t.line,
                                        t.column,
                                    ));
                                }
                                None => {
                                    return Err(LibertyError::new(
                                        LibertyErrorKind::UnterminatedGroup { name: group.name },
                                        line,
                                        column,
                                    ));
                                }
                            }
                        }
                    }
                    _ => {
                        // Complex attribute; the semicolon is optional in
                        // the wild, so accept it if present.
                        if matches!(self.peek().map(|t| &t.kind), Some(TokenKind::Semi)) {
                            self.next();
                        }
                        parent.attrs.push(Attr {
                            key,
                            value: AttrValue::Complex(args),
                            line,
                            column,
                        });
                        Ok(())
                    }
                }
            }
            Some(other) => {
                let t = self.next().unwrap();
                Err(LibertyError::new(
                    LibertyErrorKind::Expected {
                        expected: "`:` or `(`",
                        found: other.describe(),
                    },
                    t.line,
                    t.column,
                ))
            }
            None => Err(LibertyError::new(
                LibertyErrorKind::Expected {
                    expected: "`:` or `(`",
                    found: "end of input".into(),
                },
                line,
                column,
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_groups_and_attrs() {
        let src = r#"
library (demo) {
  time_unit : "1ps";
  capacitive_load_unit (1, ff);
  cell (INV_X1_LVT) {
    cell_leakage_power : 0.5;
    pin (Y) {
      direction : output;
    }
  }
}
"#;
        let groups = parse_groups(src).unwrap();
        assert_eq!(groups.len(), 1);
        let lib = &groups[0];
        assert_eq!(lib.name, "library");
        assert_eq!(lib.args, ["demo"]);
        assert_eq!(lib.simple("time_unit"), Some("1ps"));
        assert_eq!(
            lib.complex("capacitive_load_unit"),
            Some(&["1".to_string(), "ff".to_string()][..])
        );
        let cell = lib.groups_named("cell").next().unwrap();
        assert_eq!(cell.args, ["INV_X1_LVT"]);
        assert_eq!(cell.simple("cell_leakage_power"), Some("0.5"));
        let pin = cell.groups_named("pin").next().unwrap();
        assert_eq!(pin.simple("direction"), Some("output"));
    }

    #[test]
    fn unterminated_group_points_at_opening() {
        let src = "library (demo) {\n  cell (X) {\n    a : 1;\n";
        let err = parse_groups(src).unwrap_err();
        assert_eq!(
            err.kind,
            LibertyErrorKind::UnterminatedGroup {
                name: "cell".into()
            }
        );
        assert_eq!((err.line, err.column), (2, 3));
    }

    #[test]
    fn expected_errors_carry_position() {
        let err = parse_groups("library (demo) {\n  key 5;\n}").unwrap_err();
        assert!(matches!(err.kind, LibertyErrorKind::Expected { .. }));
        assert_eq!(err.line, 2);
    }
}
