//! [`LibertyLibrary`]: a [`CellLibrary`] backed by characterized `.lib`
//! values, with multi-corner loading.
//!
//! Nominal numbers (leakage per state, NLDM or linear delay, pin caps)
//! come from the parsed library; the *variational* structure around that
//! nominal — threshold roll-off coupling `ΔVth = vth_l_coeff·ΔL/L`,
//! alpha-power overdrive scaling of delay, exponential leakage in `ΔVth`
//! — comes from the base [`Technology`], so SSTA/MC/leakage analyses see
//! the same process physics regardless of where the nominal values came
//! from (that is what makes corner libraries comparable to the built-in
//! statistical model).
//!
//! Cells are classified by the exporter's self-describing attributes
//! (`function_kind`, `fanin_count`, `drive_size`, `threshold_flavor`)
//! when present, else by the `{BASE}{arity}_X{size}_{LVT|MVT|HVT}` naming
//! convention. Gates the netlist needs but the library does not provide
//! (e.g. a fanin-9 NOR when the library stops at fanin 4) are derived
//! from the nearest characterized variant via the closed-form stack
//! ratios, so analysis over arbitrary benchmarks is total.

use super::decode::{parse_library, Library, NldmTable};
use super::error::LibertyLoadError;
use super::export::{vth_from_suffix, when_to_state};
use crate::cell;
use crate::library::{fnv1a64, CellLibrary};
use crate::params::{Technology, VthClass};
use statleak_netlist::GateKind;
use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};

/// The delay view of one library cell.
#[derive(Debug, Clone)]
enum DelayModel {
    /// NLDM lookup table (input transition × output load).
    Table(NldmTable),
    /// Linear `intrinsic + slope · load` fit.
    Linear {
        intrinsic_ps: f64,
        slope_ps_per_ff: f64,
    },
}

#[derive(Debug, Clone)]
struct CellData {
    input_cap: f64,
    /// State-averaged leakage current (A).
    leak_avg: f64,
    /// Per-state leakage currents (A), indexed by input-state bitmask;
    /// empty when the library had no `when`-conditioned groups.
    leak_by_state: Vec<f64>,
    delay: DelayModel,
}

impl CellData {
    fn delay_nominal(&self, input_slew: f64, c_load: f64) -> f64 {
        match &self.delay {
            DelayModel::Table(t) => t.lookup(input_slew, c_load),
            DelayModel::Linear {
                intrinsic_ps,
                slope_ps_per_ff,
            } => intrinsic_ps + slope_ps_per_ff * c_load,
        }
    }
}

fn key(kind: GateKind, vth: VthClass, fanin: usize, size: f64) -> (u8, u8, u32, u64) {
    let k = kind as u8;
    let v = match vth {
        VthClass::Low => 0u8,
        VthClass::Mid => 1,
        VthClass::High => 2,
    };
    (k, v, fanin as u32, size.to_bits())
}

/// The corner variants discovered next to a base library file:
/// `<stem>_<corner>.lib` siblings (e.g. `mylib_ss.lib` next to
/// `mylib.lib`).
#[derive(Debug, Clone)]
pub struct CornerSet {
    /// The base (default/typical) library file.
    pub base: PathBuf,
    /// Discovered corner name → file, sorted by name.
    pub corners: Vec<(String, PathBuf)>,
}

impl CornerSet {
    /// Scans the base file's directory for `<stem>_<corner>.lib` siblings.
    pub fn discover(base: &Path) -> Self {
        let mut corners = Vec::new();
        let stem = base
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or_default()
            .to_string();
        if let Some(dir) = base.parent() {
            if let Ok(entries) = std::fs::read_dir(if dir.as_os_str().is_empty() {
                Path::new(".")
            } else {
                dir
            }) {
                for entry in entries.flatten() {
                    let path = entry.path();
                    if path.extension().and_then(|e| e.to_str()) != Some("lib") {
                        continue;
                    }
                    let Some(sib_stem) = path.file_stem().and_then(|s| s.to_str()) else {
                        continue;
                    };
                    if let Some(corner) = sib_stem.strip_prefix(&format!("{stem}_")) {
                        if !corner.is_empty() && !corner.contains('_') {
                            corners.push((corner.to_ascii_lowercase(), path.clone()));
                        }
                    }
                }
            }
        }
        corners.sort();
        corners.dedup_by(|a, b| a.0 == b.0);
        Self {
            base: base.to_path_buf(),
            corners,
        }
    }

    /// The corner names available (the base file answers to `tt`,
    /// `default`, and `nom` in addition to any discovered siblings).
    pub fn names(&self) -> Vec<String> {
        self.corners.iter().map(|(n, _)| n.clone()).collect()
    }

    /// Resolves a requested corner name (case-insensitive) to a file.
    pub fn resolve(&self, corner: &str) -> Option<&Path> {
        let want = corner.to_ascii_lowercase();
        if matches!(want.as_str(), "tt" | "default" | "nom" | "typical") {
            return Some(&self.base);
        }
        self.corners
            .iter()
            .find(|(n, _)| *n == want)
            .map(|(_, p)| p.as_path())
    }
}

/// A [`CellLibrary`] built from a parsed Liberty `.lib`.
#[derive(Clone)]
pub struct LibertyLibrary {
    id: String,
    name: String,
    corner: String,
    tech: Technology,
    cells: BTreeMap<(u8, u8, u32, u64), CellData>,
    sizes: Vec<f64>,
    vth_classes: Vec<VthClass>,
}

impl fmt::Debug for LibertyLibrary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LibertyLibrary")
            .field("id", &self.id)
            .field("name", &self.name)
            .field("corner", &self.corner)
            .field("cells", &self.cells.len())
            .field("sizes", &self.sizes)
            .field("vth_classes", &self.vth_classes)
            .finish()
    }
}

impl LibertyLibrary {
    /// Loads a Liberty library from disk, optionally selecting a corner
    /// by name: `corner=ss` next to `mylib.lib` loads `mylib_ss.lib`.
    ///
    /// # Errors
    ///
    /// [`LibertyLoadError`] on unreadable files, parse failures (with
    /// line/column), unknown corners, or libraries with no usable cells.
    pub fn load(
        path: &Path,
        corner: Option<&str>,
        tech: Technology,
    ) -> Result<Self, LibertyLoadError> {
        let corners = CornerSet::discover(path);
        let (corner_name, target): (String, &Path) = match corner {
            None => ("tt".into(), path),
            Some(c) => {
                let resolved =
                    corners
                        .resolve(c)
                        .ok_or_else(|| LibertyLoadError::UnknownCorner {
                            requested: c.to_string(),
                            available: corners.names(),
                        })?;
                (c.to_ascii_lowercase(), resolved)
            }
        };
        let src = std::fs::read_to_string(target).map_err(|e| LibertyLoadError::Io {
            path: target.to_path_buf(),
            source: e,
        })?;
        let parsed = parse_library(&src).map_err(|e| LibertyLoadError::Parse {
            path: target.to_path_buf(),
            source: e,
        })?;
        let stem = path
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or("lib")
            .to_string();
        let id = format!("liberty:{stem}:{corner_name}:{:016x}", fnv1a64(&src));
        Self::from_parsed(parsed, tech, id, corner_name).ok_or(LibertyLoadError::NoUsableCells {
            path: target.to_path_buf(),
        })
    }

    /// Builds a library from already-parsed Liberty content. Returns
    /// `None` when no cell could be classified.
    pub fn from_library(parsed: Library, tech: Technology, id: String) -> Option<Self> {
        Self::from_parsed(parsed, tech, id, "tt".into())
    }

    fn from_parsed(parsed: Library, tech: Technology, id: String, corner: String) -> Option<Self> {
        tech.validate();
        let vdd = parsed.nom_voltage.unwrap_or(tech.vdd);
        let mut cells = BTreeMap::new();
        let mut sizes: Vec<f64> = Vec::new();
        let mut vth_present = [false; 3];
        for c in &parsed.cells {
            let Some((kind, fanin, size, vth)) = classify(c) else {
                continue;
            };
            let input_cap = c
                .pins
                .iter()
                .find(|p| p.direction.as_deref() != Some("output") && p.capacitance.is_some())
                .and_then(|p| p.capacitance)
                .unwrap_or_else(|| cell::input_cap_impl(&tech, size));
            // Leakage: `when`-conditioned groups (power, library units =
            // nW) override the state-averaged scalar.
            let nw_to_amps = 1e-9 / vdd;
            let mut leak_by_state = Vec::new();
            if !c.leakage_power.is_empty() {
                let states = 1usize << fanin.min(12);
                let mut per_state = vec![f64::NAN; states];
                let mut unconditioned = None;
                for lp in &c.leakage_power {
                    match &lp.when {
                        Some(cond) => {
                            if let Some(s) = when_to_state(cond, fanin) {
                                per_state[s] = lp.value * nw_to_amps;
                            }
                        }
                        None => unconditioned = Some(lp.value * nw_to_amps),
                    }
                }
                let fallback = unconditioned
                    .or(c.cell_leakage_power.map(|v| v * nw_to_amps))
                    .unwrap_or_else(|| {
                        let known: Vec<f64> =
                            per_state.iter().copied().filter(|v| !v.is_nan()).collect();
                        known.iter().sum::<f64>() / known.len().max(1) as f64
                    });
                for v in &mut per_state {
                    if v.is_nan() {
                        *v = fallback;
                    }
                }
                leak_by_state = per_state;
            }
            let leak_avg = if leak_by_state.is_empty() {
                c.cell_leakage_power.unwrap_or(0.0) * nw_to_amps
            } else {
                leak_by_state.iter().sum::<f64>() / leak_by_state.len() as f64
            };
            // Delay: NLDM table if present, else the linear fit.
            let timing = c
                .pins
                .iter()
                .filter(|p| p.direction.as_deref() == Some("output") || p.name == "Y")
                .flat_map(|p| p.timings.iter())
                .next();
            let delay = match timing {
                Some(t) => {
                    if let Some(table) = t.cell_rise.clone().or_else(|| t.cell_fall.clone()) {
                        DelayModel::Table(table)
                    } else {
                        DelayModel::Linear {
                            intrinsic_ps: t.intrinsic_rise.unwrap_or(0.0),
                            slope_ps_per_ff: t.rise_resistance.unwrap_or(0.0),
                        }
                    }
                }
                None => continue,
            };
            vth_present[match vth {
                VthClass::Low => 0,
                VthClass::Mid => 1,
                VthClass::High => 2,
            }] = true;
            if !sizes.iter().any(|&s| (s - size).abs() < 1e-12) {
                sizes.push(size);
            }
            cells.insert(
                key(kind, vth, fanin, size),
                CellData {
                    input_cap,
                    leak_avg,
                    leak_by_state,
                    delay,
                },
            );
        }
        if cells.is_empty() {
            return None;
        }
        sizes.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut vth_classes = Vec::new();
        for (i, class) in [VthClass::Low, VthClass::Mid, VthClass::High]
            .into_iter()
            .enumerate()
        {
            if vth_present[i] {
                vth_classes.push(class);
            }
        }
        Some(Self {
            id,
            name: parsed.name,
            corner,
            tech,
            cells,
            sizes,
            vth_classes,
        })
    }

    /// The library name from the `.lib` header.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The corner this instance was loaded as (`tt` for the base file).
    pub fn corner(&self) -> &str {
        &self.corner
    }

    /// The base technology supplying the variational structure.
    pub fn tech(&self) -> &Technology {
        &self.tech
    }

    /// Looks up cell data with graceful degradation: exact → nearest
    /// characterized fanin (stack-ratio scaled) → nearest Vth flavor
    /// (closed-form ratio scaled). Returns the data plus delay/leakage
    /// scale factors, or `None` when the (kind, size) has no
    /// characterized variant at all.
    fn resolve(
        &self,
        kind: GateKind,
        fanin: usize,
        size: f64,
        vth: VthClass,
    ) -> Option<(&CellData, f64, f64)> {
        if let Some(d) = self.cells.get(&key(kind, vth, fanin, size)) {
            return Some((d, 1.0, 1.0));
        }
        // Nearest characterized fanin of the same kind/vth/size.
        let nearest_fanin = |v: VthClass| -> Option<(usize, &CellData)> {
            let (k, vb, _, sb) = key(kind, v, fanin, size);
            self.cells
                .range((k, vb, 0, sb)..=(k, vb, u32::MAX, sb))
                .filter(|((_, _, _, s), _)| *s == sb)
                .map(|((_, _, f, _), d)| (*f as usize, d))
                .min_by_key(|(f, _)| f.abs_diff(fanin))
        };
        if let Some((f0, d)) = nearest_fanin(vth) {
            let delay_scale =
                cell::stack_resistance(kind, fanin) / cell::stack_resistance(kind, f0);
            let leak_scale =
                cell::leak_state_factor(kind, fanin) / cell::leak_state_factor(kind, f0);
            return Some((d, delay_scale, leak_scale));
        }
        // Nearest present Vth flavor, re-scaled by the closed-form
        // threshold ratios.
        let order = |c: VthClass| match c {
            VthClass::Low => 0i32,
            VthClass::Mid => 1,
            VthClass::High => 2,
        };
        let mut flavors: Vec<VthClass> = self.vth_classes.clone();
        flavors.sort_by_key(|c| (order(*c) - order(vth)).abs());
        for v0 in flavors {
            if v0 == vth {
                continue;
            }
            if let Some((f0, d)) = nearest_fanin(v0) {
                let stack_d =
                    cell::stack_resistance(kind, fanin) / cell::stack_resistance(kind, f0);
                let stack_l =
                    cell::leak_state_factor(kind, fanin) / cell::leak_state_factor(kind, f0);
                let od = |c: VthClass| (self.tech.vdd - self.tech.vth(c)).max(0.05 * self.tech.vdd);
                let delay_scale = stack_d * (od(v0) / od(vth)).powf(self.tech.alpha);
                let leak_scale =
                    stack_l * ((self.tech.vth(v0) - self.tech.vth(vth)) / self.tech.n_vt()).exp();
                return Some((d, delay_scale, leak_scale));
            }
        }
        None
    }

    /// The variational delay factor around the library nominal: the exact
    /// alpha-power ratio `d(ΔL, ΔVth) / d(0, 0)` of the closed-form model
    /// (transit term × overdrive shift), which is what makes Liberty and
    /// builtin designs see identical *relative* process sensitivity.
    fn delay_variation_factor(&self, vth: VthClass, dl: f64, dv: f64) -> f64 {
        let t = &self.tech;
        let vth_nom = t.vth(vth);
        let od_nom = (t.vdd - vth_nom).max(0.05 * t.vdd);
        let od_eff = (t.vdd - (vth_nom + t.vth_l_coeff * dl + dv)).max(0.05 * t.vdd);
        (1.0 + dl) * (od_nom / od_eff).powf(t.alpha)
    }
}

impl CellLibrary for LibertyLibrary {
    fn id(&self) -> &str {
        &self.id
    }

    fn sizes(&self) -> &[f64] {
        &self.sizes
    }

    fn vth_classes(&self) -> &[VthClass] {
        &self.vth_classes
    }

    fn input_cap(&self, kind: GateKind, fanin: usize, size: f64, vth: VthClass) -> f64 {
        match self.resolve(kind, fanin, size, vth) {
            Some((d, _, _)) => d.input_cap,
            None => cell::input_cap_impl(&self.tech, size),
        }
    }

    fn delay(
        &self,
        kind: GateKind,
        fanin: usize,
        size: f64,
        vth: VthClass,
        c_load: f64,
        delta_l_rel: f64,
        delta_vth_rand: f64,
    ) -> f64 {
        self.delay_nominal(kind, fanin, size, vth, c_load)
            * self.delay_variation_factor(vth, delta_l_rel, delta_vth_rand)
    }

    fn delay_nominal(
        &self,
        kind: GateKind,
        fanin: usize,
        size: f64,
        vth: VthClass,
        c_load: f64,
    ) -> f64 {
        match self.resolve(kind, fanin, size, vth) {
            Some((d, delay_scale, _)) => {
                d.delay_nominal(self.tech.input_slew, c_load) * delay_scale
            }
            None => cell::gate_delay_nominal_impl(&self.tech, kind, fanin, size, vth, c_load),
        }
    }

    fn delay_sensitivities(
        &self,
        kind: GateKind,
        fanin: usize,
        size: f64,
        vth: VthClass,
        c_load: f64,
    ) -> (f64, f64, f64) {
        let d = self.delay_nominal(kind, fanin, size, vth, c_load);
        let overdrive = self.tech.vdd - self.tech.vth(vth);
        let dd_dvth = self.tech.alpha * d / overdrive;
        let dd_dl = d + dd_dvth * self.tech.vth_l_coeff;
        (d, dd_dl, dd_dvth)
    }

    fn leakage(
        &self,
        kind: GateKind,
        fanin: usize,
        size: f64,
        vth: VthClass,
        delta_l_rel: f64,
        delta_vth_rand: f64,
    ) -> f64 {
        let shift = self.tech.vth_l_coeff * delta_l_rel + delta_vth_rand;
        self.leakage_nominal(kind, fanin, size, vth) * (-shift / self.tech.n_vt()).exp()
    }

    fn leakage_nominal(&self, kind: GateKind, fanin: usize, size: f64, vth: VthClass) -> f64 {
        match self.resolve(kind, fanin, size, vth) {
            Some((d, _, leak_scale)) => d.leak_avg * leak_scale,
            None => cell::leakage_nominal_impl(&self.tech, kind, fanin, size, vth),
        }
    }

    fn ln_leakage(
        &self,
        kind: GateKind,
        fanin: usize,
        size: f64,
        vth: VthClass,
    ) -> (f64, f64, f64) {
        let ln_nom = self.leakage_nominal(kind, fanin, size, vth).ln();
        let dln_dvth = -1.0 / self.tech.n_vt();
        let dln_dl = dln_dvth * self.tech.vth_l_coeff;
        (ln_nom, dln_dl, dln_dvth)
    }

    fn leakage_by_state(
        &self,
        kind: GateKind,
        fanin: usize,
        size: f64,
        vth: VthClass,
        state: usize,
    ) -> f64 {
        if let Some((d, _, leak_scale)) = self.resolve(kind, fanin, size, vth) {
            if let Some(&v) = d.leak_by_state.get(state) {
                return v * leak_scale;
            }
            // No per-state data: apply the closed-form state profile to
            // the library's averaged current.
            let profile = cell::leak_state_factor_for_state(kind, fanin, state)
                / cell::leak_state_factor(kind, fanin);
            return d.leak_avg * leak_scale * profile;
        }
        let avg = cell::leakage_nominal_impl(&self.tech, kind, fanin, size, vth);
        avg * cell::leak_state_factor_for_state(kind, fanin, state)
            / cell::leak_state_factor(kind, fanin)
    }
}

/// Classifies a decoded cell into `(kind, fanin, size, vth)` using the
/// self-describing attributes when present, else the
/// `{BASE}{arity}_X{size}_{VT}` naming convention.
fn classify(c: &super::decode::Cell) -> Option<(GateKind, usize, f64, VthClass)> {
    let from_attrs = (|| {
        let kind = GateKind::from_bench_keyword(c.function_kind.as_deref()?)?;
        let fanin = c.fanin_count?;
        let size = c.drive_size?;
        let vth = vth_from_suffix(c.threshold_flavor.as_deref()?)?;
        Some((kind, fanin, size, vth))
    })();
    if from_attrs.is_some() {
        return from_attrs;
    }
    classify_by_name(c)
}

fn classify_by_name(c: &super::decode::Cell) -> Option<(GateKind, usize, f64, VthClass)> {
    let name = c.name.as_str();
    let mut parts = name.split('_');
    let head = parts.next()?;
    let size_part = parts.next()?;
    let vth_part = parts.next()?;
    let vth = vth_from_suffix(vth_part)?;
    let size: f64 = size_part
        .strip_prefix('X')?
        .replace('p', ".")
        .parse()
        .ok()?;
    let arity: String = head.chars().filter(|c| c.is_ascii_digit()).collect();
    let base: String = head.chars().filter(|c| !c.is_ascii_digit()).collect();
    let kind = match base.as_str() {
        "INV" | "NOT" => GateKind::Not,
        "BUF" | "BUFF" => GateKind::Buff,
        "NAND" => GateKind::Nand,
        "NOR" => GateKind::Nor,
        "AND" => GateKind::And,
        "OR" => GateKind::Or,
        "XOR" => GateKind::Xor,
        "XNOR" => GateKind::Xnor,
        _ => return None,
    };
    let fanin = if arity.is_empty() {
        // Fall back to counting input pins.
        let n = c
            .pins
            .iter()
            .filter(|p| p.direction.as_deref() == Some("input"))
            .count();
        if n == 0 {
            1
        } else {
            n
        }
    } else {
        arity.parse().ok()?
    };
    Some((kind, fanin, size, vth))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::liberty::export::export;

    fn lib() -> LibertyLibrary {
        let tech = Technology::ptm100();
        let parsed = parse_library(&export(&tech, "demo")).unwrap();
        LibertyLibrary::from_library(parsed, tech, "liberty:test".into()).unwrap()
    }

    #[test]
    fn imported_nominals_match_the_models_they_sampled() {
        let tech = Technology::ptm100();
        let l = lib();
        for (kind, fanin) in [(GateKind::Nand, 2), (GateKind::Nor, 3), (GateKind::Not, 1)] {
            for vth in [VthClass::Low, VthClass::High] {
                for load in [0.0, 7.0, 23.0] {
                    let got = l.delay_nominal(kind, fanin, 2.0, vth, load);
                    let want = cell::gate_delay_nominal_impl(&tech, kind, fanin, 2.0, vth, load);
                    assert!(
                        (got / want - 1.0).abs() < 1e-9,
                        "{kind:?}/{fanin}/{vth:?}@{load}: {got} vs {want}"
                    );
                }
                let got = l.leakage_nominal(kind, fanin, 2.0, vth);
                let want = cell::leakage_nominal_impl(&tech, kind, fanin, 2.0, vth);
                assert!((got / want - 1.0).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn uncharacterized_fanin_falls_back_to_stack_ratio() {
        let l = lib();
        // The export stops at fanin 4; c432-style fanin-9 gates must
        // still evaluate, scaled from the fanin-4 cell.
        let d9 = l.delay_nominal(GateKind::Nand, 9, 2.0, VthClass::Low, 10.0);
        let d4 = l.delay_nominal(GateKind::Nand, 4, 2.0, VthClass::Low, 10.0);
        let want =
            cell::stack_resistance(GateKind::Nand, 9) / cell::stack_resistance(GateKind::Nand, 4);
        assert!((d9 / d4 - want).abs() < 1e-9);
        let i9 = l.leakage_nominal(GateKind::Nand, 9, 2.0, VthClass::Low);
        assert!(i9 > 0.0 && i9.is_finite());
    }

    #[test]
    fn mid_vth_falls_back_with_threshold_scaling() {
        // The export writes only LVT/HVT; Mid must still evaluate and lie
        // strictly between the two flavors.
        let l = lib();
        let dl = l.delay_nominal(GateKind::Nand, 2, 2.0, VthClass::Low, 10.0);
        let dm = l.delay_nominal(GateKind::Nand, 2, 2.0, VthClass::Mid, 10.0);
        let dh = l.delay_nominal(GateKind::Nand, 2, 2.0, VthClass::High, 10.0);
        assert!(dl < dm && dm < dh, "{dl} {dm} {dh}");
        let il = l.leakage_nominal(GateKind::Nand, 2, 2.0, VthClass::Low);
        let im = l.leakage_nominal(GateKind::Nand, 2, 2.0, VthClass::Mid);
        let ih = l.leakage_nominal(GateKind::Nand, 2, 2.0, VthClass::High);
        assert!(il > im && im > ih, "{il} {im} {ih}");
    }

    #[test]
    fn variational_structure_matches_builtin_ratios() {
        let tech = Technology::ptm100();
        let l = lib();
        for &(dl, dv) in &[(0.05, 0.0), (-0.08, 0.01), (0.02, -0.015)] {
            let ratio_lib = l.delay(GateKind::Nor, 2, 4.0, VthClass::Low, 9.0, dl, dv)
                / l.delay_nominal(GateKind::Nor, 2, 4.0, VthClass::Low, 9.0);
            let ratio_builtin =
                cell::gate_delay_impl(&tech, GateKind::Nor, 2, 4.0, VthClass::Low, 9.0, dl, dv)
                    / cell::gate_delay_nominal_impl(
                        &tech,
                        GateKind::Nor,
                        2,
                        4.0,
                        VthClass::Low,
                        9.0,
                    );
            assert!((ratio_lib / ratio_builtin - 1.0).abs() < 1e-12, "{dl}/{dv}");
            let lr_lib = l.leakage(GateKind::Nor, 2, 4.0, VthClass::Low, dl, dv)
                / l.leakage_nominal(GateKind::Nor, 2, 4.0, VthClass::Low);
            let lr_builtin =
                cell::leakage_current_impl(&tech, GateKind::Nor, 2, 4.0, VthClass::Low, dl, dv)
                    / cell::leakage_nominal_impl(&tech, GateKind::Nor, 2, 4.0, VthClass::Low);
            assert!((lr_lib / lr_builtin - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn state_leakage_comes_from_when_groups() {
        let tech = Technology::ptm100();
        let l = lib();
        let crate_builtin = crate::library::BuiltinLibrary::new(tech);
        for state in 0..4usize {
            let got = l.leakage_by_state(GateKind::Nand, 2, 1.0, VthClass::Low, state);
            let want = crate_builtin.leakage_by_state(GateKind::Nand, 2, 1.0, VthClass::Low, state);
            assert!((got / want - 1.0).abs() < 1e-9, "state {state}");
        }
    }

    #[test]
    fn classify_by_name_handles_convention() {
        use crate::liberty::decode::Cell;
        let cell = Cell {
            name: "NAND3_X2p5_HVT".into(),
            cell_leakage_power: Some(1.0),
            leakage_power: vec![],
            pins: vec![],
            drive_size: None,
            fanin_count: None,
            function_kind: None,
            threshold_flavor: None,
            line: 1,
        };
        let (kind, fanin, size, vth) = classify_by_name(&cell).unwrap();
        assert_eq!(kind, GateKind::Nand);
        assert_eq!(fanin, 3);
        assert!((size - 2.5).abs() < 1e-12);
        assert_eq!(vth, VthClass::High);
    }
}
