//! Typed decode: AST groups → `Library`/`Cell`/`Pin`/`LeakagePower`/
//! [`NldmTable`].
//!
//! Unknown attributes and groups are skipped (the Liberty convention —
//! real libraries carry far more than any one consumer reads), but what
//! *is* read is checked strictly: numbers must parse, lookup tables must
//! reference a declared `lu_table_template` (or the built-in `scalar`),
//! `values` shapes must match their index axes, and a cell may not declare
//! the same pin twice. All violations carry line/column positions.

use super::ast::{parse_groups, AttrValue, Group};
use super::error::{LibertyError, LibertyErrorKind};
use std::collections::BTreeMap;

/// A decoded Liberty library.
#[derive(Debug, Clone, PartialEq)]
pub struct Library {
    /// Library name (the `library (...)` argument).
    pub name: String,
    /// `nom_voltage`, if declared (V).
    pub nom_voltage: Option<f64>,
    /// Declared `lu_table_template` groups, by name.
    pub templates: BTreeMap<String, TableTemplate>,
    /// All cells, in source order.
    pub cells: Vec<Cell>,
}

/// A `lu_table_template` declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct TableTemplate {
    /// Template name.
    pub name: String,
    /// `variable_1` (conventionally the input transition axis).
    pub variable_1: Option<String>,
    /// `variable_2` (conventionally the output load axis).
    pub variable_2: Option<String>,
    /// Default `index_1` sample points.
    pub index_1: Vec<f64>,
    /// Default `index_2` sample points.
    pub index_2: Vec<f64>,
}

/// One decoded cell.
#[derive(Debug, Clone, PartialEq)]
pub struct Cell {
    /// Cell name, e.g. `NAND2_X2_HVT`.
    pub name: String,
    /// State-averaged `cell_leakage_power` attribute (library leakage
    /// power units), if present.
    pub cell_leakage_power: Option<f64>,
    /// `when`-conditioned per-state leakage groups, in source order.
    pub leakage_power: Vec<LeakagePower>,
    /// Pins, in source order.
    pub pins: Vec<Pin>,
    /// Optional self-describing attributes written by this repo's
    /// exporter (absent in third-party libraries, which are classified by
    /// cell-name convention instead).
    pub drive_size: Option<f64>,
    /// `fanin_count` attribute.
    pub fanin_count: Option<usize>,
    /// `function_kind` attribute (bench keyword, e.g. `NAND`).
    pub function_kind: Option<String>,
    /// `threshold_flavor` attribute (`LVT`/`MVT`/`HVT`).
    pub threshold_flavor: Option<String>,
    /// 1-based source line of the cell group.
    pub line: u32,
}

/// One `leakage_power () { when : ...; value : ...; }` group.
#[derive(Debug, Clone, PartialEq)]
pub struct LeakagePower {
    /// The input-state condition, e.g. `A&!B` (`None` = unconditioned).
    pub when: Option<String>,
    /// Leakage power in library leakage power units.
    pub value: f64,
}

/// One decoded pin.
#[derive(Debug, Clone, PartialEq)]
pub struct Pin {
    /// Pin name.
    pub name: String,
    /// `direction` attribute (`input`/`output`), if present.
    pub direction: Option<String>,
    /// `capacitance` attribute (library capacitance units).
    pub capacitance: Option<f64>,
    /// `timing ()` groups on this pin.
    pub timings: Vec<Timing>,
}

/// One `timing ()` group.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Timing {
    /// `related_pin`, if declared.
    pub related_pin: Option<String>,
    /// Linear-model intrinsic delay (`intrinsic_rise`), if declared.
    pub intrinsic_rise: Option<f64>,
    /// Linear-model load slope (`rise_resistance`), if declared.
    pub rise_resistance: Option<f64>,
    /// NLDM rise table, if declared.
    pub cell_rise: Option<NldmTable>,
    /// NLDM fall table, if declared.
    pub cell_fall: Option<NldmTable>,
}

/// A non-linear delay-model lookup table: delay values sampled over
/// `index_1` (input transition) × `index_2` (output load).
#[derive(Debug, Clone, PartialEq)]
pub struct NldmTable {
    /// The `lu_table_template` this table instantiates.
    pub template: String,
    /// Input-transition sample points (ps), ascending.
    pub index_1: Vec<f64>,
    /// Output-load sample points (library capacitance units), ascending.
    pub index_2: Vec<f64>,
    /// Row-major values: `values[i][j]` is delay at `index_1[i]`,
    /// `index_2[j]`.
    pub values: Vec<Vec<f64>>,
}

impl NldmTable {
    /// Bilinear interpolation (linear extrapolation beyond the grid) of
    /// the table at an input transition and output load.
    pub fn lookup(&self, transition: f64, load: f64) -> f64 {
        let (i0, i1, ti) = bracket(&self.index_1, transition);
        let (j0, j1, tj) = bracket(&self.index_2, load);
        let interp_row = |i: usize| -> f64 {
            let row = &self.values[i];
            row[j0] + (row[j1] - row[j0]) * tj
        };
        let v0 = interp_row(i0);
        let v1 = interp_row(i1);
        v0 + (v1 - v0) * ti
    }
}

/// Bracketing for 1-D interpolation: returns `(lo, hi, t)` with `t` the
/// (possibly <0 or >1, i.e. extrapolating) blend factor between the two
/// nearest sample points.
fn bracket(axis: &[f64], x: f64) -> (usize, usize, f64) {
    match axis.len() {
        0 => (0, 0, 0.0),
        1 => (0, 0, 0.0),
        _ => {
            let mut hi = axis.len() - 1;
            for (i, &a) in axis.iter().enumerate().skip(1) {
                if x <= a || i == axis.len() - 1 {
                    hi = i;
                    break;
                }
            }
            let lo = hi - 1;
            let span = axis[hi] - axis[lo];
            let t = if span.abs() < 1e-300 {
                0.0
            } else {
                (x - axis[lo]) / span
            };
            (lo, hi, t)
        }
    }
}

/// Parses and decodes Liberty text into a typed [`Library`].
///
/// # Errors
///
/// Returns the first lex/grammar/decode error with its source position.
pub fn parse_library(src: &str) -> Result<Library, LibertyError> {
    let groups = parse_groups(src)?;
    let lib = groups
        .iter()
        .find(|g| g.name == "library")
        .ok_or_else(|| LibertyError::new(LibertyErrorKind::MissingLibrary, 1, 1))?;
    decode_library(lib)
}

fn decode_library(lib: &Group) -> Result<Library, LibertyError> {
    let name = lib.args.first().cloned().unwrap_or_default();
    let nom_voltage = match lib.simple("nom_voltage") {
        Some(text) => Some(parse_num(text, "nom_voltage", lib)?),
        None => None,
    };

    let mut templates = BTreeMap::new();
    for t in lib.groups_named("lu_table_template") {
        let tname = t.args.first().cloned().unwrap_or_default();
        templates.insert(
            tname.clone(),
            TableTemplate {
                name: tname,
                variable_1: t.simple("variable_1").map(str::to_string),
                variable_2: t.simple("variable_2").map(str::to_string),
                index_1: parse_axis(t, "index_1")?,
                index_2: parse_axis(t, "index_2")?,
            },
        );
    }

    let mut cells = Vec::new();
    for c in lib.groups_named("cell") {
        cells.push(decode_cell(c, &templates)?);
    }
    Ok(Library {
        name,
        nom_voltage,
        templates,
        cells,
    })
}

fn decode_cell(
    c: &Group,
    templates: &BTreeMap<String, TableTemplate>,
) -> Result<Cell, LibertyError> {
    let name = c.args.first().cloned().unwrap_or_default();
    let mut cell = Cell {
        name: name.clone(),
        cell_leakage_power: opt_num(c, "cell_leakage_power")?,
        leakage_power: Vec::new(),
        pins: Vec::new(),
        drive_size: opt_num(c, "drive_size")?,
        fanin_count: opt_num(c, "fanin_count")?.map(|v| v as usize),
        function_kind: c.simple("function_kind").map(str::to_string),
        threshold_flavor: c.simple("threshold_flavor").map(str::to_string),
        line: c.line,
    };
    for lp in c.groups_named("leakage_power") {
        let value_text = lp.simple("value").ok_or_else(|| {
            LibertyError::new(
                LibertyErrorKind::Expected {
                    expected: "`value` attribute in leakage_power group",
                    found: "none".into(),
                },
                lp.line,
                lp.column,
            )
        })?;
        cell.leakage_power.push(LeakagePower {
            when: lp.simple("when").map(str::to_string),
            value: parse_num(value_text, "value", lp)?,
        });
    }
    for p in c.groups_named("pin") {
        let pname = p.args.first().cloned().unwrap_or_default();
        if cell.pins.iter().any(|e| e.name == pname) {
            return Err(LibertyError::new(
                LibertyErrorKind::DuplicatePin {
                    cell: name,
                    pin: pname,
                },
                p.line,
                p.column,
            ));
        }
        let mut pin = Pin {
            name: pname,
            direction: p.simple("direction").map(str::to_string),
            capacitance: opt_num(p, "capacitance")?,
            timings: Vec::new(),
        };
        for t in p.groups_named("timing") {
            let mut timing = Timing {
                related_pin: t.simple("related_pin").map(str::to_string),
                intrinsic_rise: opt_num(t, "intrinsic_rise")?,
                rise_resistance: opt_num(t, "rise_resistance")?,
                ..Timing::default()
            };
            for table_group in &t.groups {
                let which = match table_group.name.as_str() {
                    "cell_rise" => 0,
                    "cell_fall" => 1,
                    _ => continue,
                };
                let table = decode_table(table_group, templates)?;
                if which == 0 {
                    timing.cell_rise = Some(table);
                } else {
                    timing.cell_fall = Some(table);
                }
            }
            pin.timings.push(timing);
        }
        cell.pins.push(pin);
    }
    Ok(cell)
}

fn decode_table(
    g: &Group,
    templates: &BTreeMap<String, TableTemplate>,
) -> Result<NldmTable, LibertyError> {
    let tname = g.args.first().cloned().unwrap_or_default();
    let template = match templates.get(&tname) {
        Some(t) => Some(t),
        None if tname == "scalar" => None,
        None => {
            return Err(LibertyError::new(
                LibertyErrorKind::UnknownTemplate { name: tname },
                g.line,
                g.column,
            ));
        }
    };
    // Local index_1/index_2 override the template defaults.
    let mut index_1 = parse_axis(g, "index_1")?;
    let mut index_2 = parse_axis(g, "index_2")?;
    if let Some(t) = template {
        if index_1.is_empty() {
            index_1 = t.index_1.clone();
        }
        if index_2.is_empty() {
            index_2 = t.index_2.clone();
        }
    }
    let values_attr = g.attrs.iter().find(|a| a.key == "values").ok_or_else(|| {
        LibertyError::new(
            LibertyErrorKind::Expected {
                expected: "`values` attribute in lookup table",
                found: "none".into(),
            },
            g.line,
            g.column,
        )
    })?;
    let rows_text: Vec<String> = match &values_attr.value {
        AttrValue::Complex(rows) => rows.clone(),
        AttrValue::Simple(row) => vec![row.clone()],
    };
    let mut values = Vec::with_capacity(rows_text.len());
    for row_text in &rows_text {
        let mut row = Vec::new();
        for tok in row_text.split([',', ' ']).filter(|s| !s.is_empty()) {
            row.push(tok.parse::<f64>().map_err(|_| {
                LibertyError::new(
                    LibertyErrorKind::BadNumber {
                        key: "values".into(),
                        text: tok.to_string(),
                    },
                    values_attr.line,
                    values_attr.column,
                )
            })?);
        }
        values.push(row);
    }
    let rows = index_1.len().max(1);
    let cols = index_2.len().max(1);
    let shape_ok = values.len() == rows && values.iter().all(|r| r.len() == cols);
    // Scalar tables (1×1) are also commonly written as a single row.
    let scalar_ok = rows == 1 && cols == 1 && values.len() == 1 && values[0].len() == 1;
    if !(shape_ok || scalar_ok) {
        return Err(LibertyError::new(
            LibertyErrorKind::BadTableShape {
                template: if tname.is_empty() {
                    "scalar".into()
                } else {
                    tname
                },
            },
            values_attr.line,
            values_attr.column,
        ));
    }
    Ok(NldmTable {
        template: tname,
        index_1,
        index_2,
        values,
    })
}

fn parse_axis(g: &Group, key: &str) -> Result<Vec<f64>, LibertyError> {
    let Some(attr) = g.attrs.iter().find(|a| a.key == key) else {
        return Ok(Vec::new());
    };
    let texts: Vec<String> = match &attr.value {
        AttrValue::Complex(args) => args.clone(),
        AttrValue::Simple(v) => vec![v.clone()],
    };
    let mut out = Vec::new();
    for text in &texts {
        for tok in text.split([',', ' ']).filter(|s| !s.is_empty()) {
            out.push(tok.parse::<f64>().map_err(|_| {
                LibertyError::new(
                    LibertyErrorKind::BadNumber {
                        key: key.to_string(),
                        text: tok.to_string(),
                    },
                    attr.line,
                    attr.column,
                )
            })?);
        }
    }
    Ok(out)
}

fn opt_num(g: &Group, key: &str) -> Result<Option<f64>, LibertyError> {
    match g.simple(key) {
        Some(text) => Ok(Some(parse_num(text, key, g)?)),
        None => Ok(None),
    }
}

fn parse_num(text: &str, key: &str, g: &Group) -> Result<f64, LibertyError> {
    let attr_pos = g
        .attrs
        .iter()
        .find(|a| a.key == key)
        .map(|a| (a.line, a.column))
        .unwrap_or((g.line, g.column));
    text.parse::<f64>().map_err(|_| {
        LibertyError::new(
            LibertyErrorKind::BadNumber {
                key: key.to_string(),
                text: text.to_string(),
            },
            attr_pos.0,
            attr_pos.1,
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const MINI: &str = r#"
library (demo) {
  nom_voltage : 1.2;
  lu_table_template (delay_2x3) {
    variable_1 : input_net_transition;
    variable_2 : total_output_net_capacitance;
    index_1 ("10, 40");
    index_2 ("0, 10, 30");
  }
  cell (NAND2_X1_LVT) {
    cell_leakage_power : 0.5;
    leakage_power () { when : "A&B"; value : 0.9; }
    leakage_power () { when : "!A&!B"; value : 0.1; }
    pin (A) { direction : input; capacitance : 2.0; }
    pin (Y) {
      direction : output;
      timing () {
        related_pin : "A";
        cell_rise (delay_2x3) {
          values ("5, 15, 35", "5, 15, 35");
        }
      }
    }
  }
}
"#;

    #[test]
    fn decodes_templates_states_and_tables() {
        let lib = parse_library(MINI).unwrap();
        assert_eq!(lib.name, "demo");
        assert_eq!(lib.nom_voltage, Some(1.2));
        let t = &lib.templates["delay_2x3"];
        assert_eq!(t.index_1, [10.0, 40.0]);
        assert_eq!(t.index_2, [0.0, 10.0, 30.0]);
        let cell = &lib.cells[0];
        assert_eq!(cell.leakage_power.len(), 2);
        assert_eq!(cell.leakage_power[0].when.as_deref(), Some("A&B"));
        assert_eq!(cell.leakage_power[1].value, 0.1);
        let y = cell.pins.iter().find(|p| p.name == "Y").unwrap();
        let rise = y.timings[0].cell_rise.as_ref().unwrap();
        assert_eq!(rise.index_2, [0.0, 10.0, 30.0]);
        // Linear table: interpolation and extrapolation are exact.
        assert!((rise.lookup(20.0, 5.0) - 10.0).abs() < 1e-12);
        assert!((rise.lookup(20.0, 50.0) - 55.0).abs() < 1e-12);
    }

    #[test]
    fn unknown_template_is_positioned() {
        let src = MINI.replace("cell_rise (delay_2x3)", "cell_rise (missing_tmpl)");
        let err = parse_library(&src).unwrap_err();
        assert_eq!(
            err.kind,
            LibertyErrorKind::UnknownTemplate {
                name: "missing_tmpl".into()
            }
        );
        assert!(err.line > 1);
    }

    #[test]
    fn duplicate_pin_is_positioned() {
        let src = MINI.replace(
            "pin (A) { direction : input; capacitance : 2.0; }",
            "pin (A) { direction : input; capacitance : 2.0; }\n    pin (A) { direction : input; }",
        );
        let err = parse_library(&src).unwrap_err();
        assert!(matches!(
            err.kind,
            LibertyErrorKind::DuplicatePin { ref pin, .. } if pin == "A"
        ));
    }

    #[test]
    fn bad_table_shape_rejected() {
        let src = MINI.replace(
            "values (\"5, 15, 35\", \"5, 15, 35\");",
            "values (\"5, 15\", \"5, 15, 35\");",
        );
        let err = parse_library(&src).unwrap_err();
        assert!(matches!(err.kind, LibertyErrorKind::BadTableShape { .. }));
    }

    #[test]
    fn missing_library_reported() {
        let err = parse_library("cell (X) { }").unwrap_err();
        assert_eq!(err.kind, LibertyErrorKind::MissingLibrary);
    }
}
