//! A circuit with its implementation choices: per-gate size and Vth flavor.

use crate::library::{BuiltinLibrary, CellLibrary};
use crate::params::{Technology, VthClass};
use statleak_netlist::{Circuit, NodeId};
use std::sync::Arc;

/// A gate-level design: a [`Circuit`], a [`Technology`], a
/// [`CellLibrary`], and the per-gate implementation state the optimizers
/// mutate (drive size and Vth flavor).
///
/// The library is resolved once when the design is built
/// ([`Design::new`] installs the [`BuiltinLibrary`] reference semantics;
/// [`Design::with_library`] installs e.g. a
/// [`crate::LibertyLibrary`]) and every evaluation path reads cell
/// numbers through it.
///
/// Node-indexed state vectors cover *all* nodes; entries for primary inputs
/// are inert (size 1.0, low Vth) and never read by the models.
#[derive(Debug, Clone)]
pub struct Design {
    circuit: Arc<Circuit>,
    tech: Technology,
    library: Arc<dyn CellLibrary>,
    sizes: Vec<f64>,
    vth: Vec<VthClass>,
    /// Optional per-net extra wire capacitance (fF), indexed by driver
    /// node; empty = the fixed-stub-only load model.
    wire_caps: Vec<f64>,
}

impl PartialEq for Design {
    fn eq(&self, other: &Self) -> bool {
        // Libraries compare by content identity (`CellLibrary::id`): two
        // designs are equal iff they would evaluate identically.
        self.circuit == other.circuit
            && self.tech == other.tech
            && self.library.id() == other.library.id()
            && self.sizes == other.sizes
            && self.vth == other.vth
            && self.wire_caps == other.wire_caps
    }
}

impl Design {
    /// Creates a design with every gate at minimum size and low Vth — the
    /// starting point of every optimization flow in the paper — using the
    /// technology's built-in closed-form library.
    pub fn new(circuit: Arc<Circuit>, tech: Technology) -> Self {
        let library: Arc<dyn CellLibrary> = Arc::new(BuiltinLibrary::new(tech.clone()));
        Self::with_library(circuit, tech, library)
    }

    /// Creates a design evaluating through an explicit [`CellLibrary`]
    /// (e.g. a [`crate::LibertyLibrary`] loaded from a `.lib` file). The
    /// technology still supplies the wire/load constants and the
    /// variation model; the library supplies all cell numbers.
    ///
    /// # Panics
    ///
    /// Panics if the technology is invalid or the library exposes no
    /// sizes.
    pub fn with_library(
        circuit: Arc<Circuit>,
        tech: Technology,
        library: Arc<dyn CellLibrary>,
    ) -> Self {
        tech.validate();
        assert!(
            !library.sizes().is_empty(),
            "library must expose at least one drive size"
        );
        let n = circuit.num_nodes();
        Self {
            circuit,
            tech,
            library,
            sizes: vec![1.0; n],
            vth: vec![VthClass::Low; n],
            wire_caps: Vec::new(),
        }
    }

    /// Creates a fresh minimum-size design over the same circuit, library,
    /// and wire loads as `self` but a (possibly modified) technology —
    /// used by ablation flows that perturb the technology while keeping
    /// everything else fixed. When `self` uses the builtin library, the
    /// new design wraps the *new* technology's builtin models.
    pub fn fresh_like(&self, tech: Technology) -> Self {
        let library: Arc<dyn CellLibrary> = if self.library.id().starts_with("builtin:") {
            Arc::new(BuiltinLibrary::new(tech.clone()))
        } else {
            Arc::clone(&self.library)
        };
        let mut d = Self::with_library(Arc::clone(&self.circuit), tech, library);
        if !self.wire_caps.is_empty() {
            d.set_wire_caps(self.wire_caps.clone());
        }
        d
    }

    /// Installs per-net extra wire capacitance (fF, indexed by driver
    /// node), typically from
    /// [`crate::wire::wire_caps_from_placement`]. Every analysis sees the
    /// extra load transparently through [`Design::load_cap`].
    ///
    /// # Panics
    ///
    /// Panics if the vector length differs from the node count.
    pub fn set_wire_caps(&mut self, caps: Vec<f64>) {
        assert_eq!(
            caps.len(),
            self.circuit.num_nodes(),
            "wire caps must cover every node"
        );
        self.wire_caps = caps;
    }

    /// The underlying circuit.
    #[inline]
    pub fn circuit(&self) -> &Circuit {
        &self.circuit
    }

    /// Shared handle to the underlying circuit.
    pub fn circuit_arc(&self) -> Arc<Circuit> {
        Arc::clone(&self.circuit)
    }

    /// The technology parameters.
    #[inline]
    pub fn tech(&self) -> &Technology {
        &self.tech
    }

    /// The cell library every evaluation path reads through.
    #[inline]
    pub fn library(&self) -> &dyn CellLibrary {
        &*self.library
    }

    /// Shared handle to the cell library.
    pub fn library_arc(&self) -> Arc<dyn CellLibrary> {
        Arc::clone(&self.library)
    }

    /// The drive size of a node.
    #[inline]
    pub fn size(&self, id: NodeId) -> f64 {
        self.sizes[id.index()]
    }

    /// The Vth flavor of a node.
    #[inline]
    pub fn vth(&self, id: NodeId) -> VthClass {
        self.vth[id.index()]
    }

    /// Sets the drive size of a gate.
    ///
    /// # Panics
    ///
    /// Panics if `size` is not in the library's discrete size set.
    pub fn set_size(&mut self, id: NodeId, size: f64) {
        assert!(
            self.library
                .sizes()
                .iter()
                .any(|&s| (s - size).abs() < 1e-9),
            "size {size} not in the discrete size set"
        );
        self.sizes[id.index()] = size;
    }

    /// Sets the Vth flavor of a gate.
    pub fn set_vth(&mut self, id: NodeId, class: VthClass) {
        self.vth[id.index()] = class;
    }

    /// The next larger size in the library's discrete grid, if any. The
    /// optimizers step through this (not [`Technology::sizes`]) so a
    /// Liberty library with a sparser grid than the builtin models stays
    /// consistent with [`Design::set_size`] validation.
    pub fn size_up(&self, w: f64) -> Option<f64> {
        self.library
            .sizes()
            .iter()
            .copied()
            .find(|&s| s > w * 1.000_001)
    }

    /// The next smaller size in the library's discrete grid, if any.
    pub fn size_down(&self, w: f64) -> Option<f64> {
        self.library
            .sizes()
            .iter()
            .rev()
            .copied()
            .find(|&s| s < w * 0.999_999)
    }

    /// The capacitive load seen by a node's output (fF): fanin pins of the
    /// driven gates, wire stubs per branch, and the fixed primary-output
    /// load if the node is an output.
    pub fn load_cap(&self, id: NodeId) -> f64 {
        let node = self.circuit.node(id);
        let mut c = 0.0;
        for &f in node.fanout {
            let sink = self.circuit.node(f);
            c += self.library.input_cap(
                sink.kind,
                sink.fanin.len(),
                self.sizes[f.index()],
                self.vth[f.index()],
            ) + self.tech.c_wire;
        }
        if self.circuit.is_output(id) {
            c += self.tech.c_output_load;
        }
        if !self.wire_caps.is_empty() {
            c += self.wire_caps[id.index()];
        }
        c
    }

    /// Nominal (no-variation) delay of a gate (ps).
    ///
    /// # Panics
    ///
    /// Panics (debug) if `id` is a primary input.
    pub fn gate_delay_nominal(&self, id: NodeId) -> f64 {
        let node = self.circuit.node(id);
        self.library.delay_nominal(
            node.kind,
            node.fanin.len(),
            self.sizes[id.index()],
            self.vth[id.index()],
            self.load_cap(id),
        )
    }

    /// Nominal leakage current of a gate (A).
    pub fn gate_leakage_nominal(&self, id: NodeId) -> f64 {
        let node = self.circuit.node(id);
        self.library.leakage_nominal(
            node.kind,
            node.fanin.len(),
            self.sizes[id.index()],
            self.vth[id.index()],
        )
    }

    /// Total nominal leakage power (W): `vdd · Σ I_gate`.
    pub fn total_leakage_power_nominal(&self) -> f64 {
        self.tech.vdd
            * self
                .circuit
                .gates()
                .map(|g| self.gate_leakage_nominal(g))
                .sum::<f64>()
    }

    /// Total gate width (area proxy, in minimum-width units).
    pub fn total_width(&self) -> f64 {
        self.circuit.gates().map(|g| self.sizes[g.index()]).sum()
    }

    /// Number of gates assigned the high-Vth flavor.
    pub fn high_vth_count(&self) -> usize {
        self.vth_count(VthClass::High)
    }

    /// Number of gates assigned a given Vth flavor.
    pub fn vth_count(&self, class: VthClass) -> usize {
        self.circuit
            .gates()
            .filter(|&g| self.vth[g.index()] == class)
            .count()
    }

    /// Dynamic switching power (W) for an average activity factor and clock
    /// frequency in GHz: `0.5 · a · C_total · Vdd² · f`.
    pub fn dynamic_power(&self, activity: f64, f_ghz: f64) -> f64 {
        let c_total_ff: f64 = self
            .circuit
            .gates()
            .map(|g| self.tech.c_par * self.sizes[g.index()] + self.load_cap(g))
            .sum();
        0.5 * activity * (c_total_ff * 1e-15) * self.tech.vdd * self.tech.vdd * (f_ghz * 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use statleak_netlist::benchmarks;

    fn design() -> Design {
        Design::new(Arc::new(benchmarks::c17()), Technology::ptm100())
    }

    #[test]
    fn starts_min_size_low_vth() {
        let d = design();
        for g in d.circuit().gates() {
            assert_eq!(d.size(g), 1.0);
            assert_eq!(d.vth(g), VthClass::Low);
        }
    }

    #[test]
    fn load_includes_output_cap() {
        let d = design();
        let out = d.circuit().outputs()[0];
        assert!(d.load_cap(out) >= d.tech().c_output_load);
    }

    #[test]
    fn upsizing_fanout_increases_driver_load() {
        let mut d = design();
        let g22 = d.circuit().find("G22").unwrap();
        let g10 = d.circuit().find("G10").unwrap(); // drives G22
        let before = d.load_cap(g10);
        d.set_size(g22, 4.0);
        assert!(d.load_cap(g10) > before);
    }

    #[test]
    fn high_vth_cuts_total_leakage() {
        let mut d = design();
        let base = d.total_leakage_power_nominal();
        let gates: Vec<_> = d.circuit().gates().collect();
        for g in gates {
            d.set_vth(g, VthClass::High);
        }
        assert!(d.total_leakage_power_nominal() < base / 10.0);
        assert_eq!(d.high_vth_count(), 6);
    }

    #[test]
    fn total_width_tracks_sizes() {
        let mut d = design();
        assert!((d.total_width() - 6.0).abs() < 1e-12);
        let g = d.circuit().gates().next().unwrap();
        d.set_size(g, 3.0);
        assert!((d.total_width() - 8.0).abs() < 1e-12);
    }

    #[test]
    fn dynamic_power_positive_and_scales_with_activity() {
        let d = design();
        let p1 = d.dynamic_power(0.1, 1.0);
        let p2 = d.dynamic_power(0.2, 1.0);
        assert!(p1 > 0.0);
        assert!((p2 / p1 - 2.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "not in the discrete size set")]
    fn rejects_off_grid_size() {
        let mut d = design();
        let g = d.circuit().gates().next().unwrap();
        d.set_size(g, 2.7);
    }

    #[test]
    fn equality_tracks_library_identity() {
        let a = design();
        let b = design();
        assert_eq!(a, b);
        let mut t = Technology::ptm100();
        t.vth_l_coeff = 0.0;
        let c = Design::new(Arc::new(benchmarks::c17()), t);
        assert_ne!(a, c);
    }

    #[test]
    fn fresh_like_keeps_wire_caps() {
        let mut a = design();
        let n = a.circuit().num_nodes();
        a.set_wire_caps(vec![0.5; n]);
        let b = a.fresh_like(Technology::ptm100());
        assert!(
            (b.load_cap(b.circuit().outputs()[0]) - a.load_cap(a.circuit().outputs()[0])).abs()
                < 1e-12
        );
    }
}
