//! Liberty-subset (`.lib`) export and import of the dual-Vth cell library.
//!
//! Downstream tools (synthesis, sign-off) consume characterized libraries
//! in Synopsys Liberty format. This module renders the closed-form cell
//! models of this technology as a Liberty-style library — one cell per
//! (gate kind, fanin, drive size, Vth flavor) — with pin capacitance,
//! state-averaged leakage power, and a linear (intrinsic + slope·load)
//! timing model sampled from the alpha-power equation. A matching parser
//! reads the subset back, which both round-trip-tests the writer and gives
//! users a template for importing their own characterized values.

use crate::cell;
use crate::params::{Technology, VthClass};
use statleak_netlist::GateKind;
use std::collections::BTreeMap;
use std::fmt;

/// One exported/imported library cell.
#[derive(Debug, Clone, PartialEq)]
pub struct LibertyCell {
    /// Cell name, e.g. `NAND2_X2_HVT`.
    pub name: String,
    /// Gate function.
    pub kind: GateKind,
    /// Fanin count the cell was characterized for.
    pub fanin: usize,
    /// Drive size (multiple of minimum width).
    pub size: f64,
    /// Threshold flavor.
    pub vth: VthClass,
    /// Input pin capacitance (fF).
    pub input_cap: f64,
    /// State-averaged leakage power (nW).
    pub leakage_nw: f64,
    /// Intrinsic delay at zero external load (ps).
    pub intrinsic_ps: f64,
    /// Delay slope per fF of external load (ps/fF).
    pub slope_ps_per_ff: f64,
}

/// The gate kinds exported to the library (with their fanin variants).
const EXPORT_KINDS: [(GateKind, &str, &[usize]); 8] = [
    (GateKind::Not, "INV", &[1]),
    (GateKind::Buff, "BUF", &[1]),
    (GateKind::Nand, "NAND", &[2, 3, 4]),
    (GateKind::Nor, "NOR", &[2, 3, 4]),
    (GateKind::And, "AND", &[2, 3, 4]),
    (GateKind::Or, "OR", &[2, 3, 4]),
    (GateKind::Xor, "XOR", &[2]),
    (GateKind::Xnor, "XNOR", &[2]),
];

fn vth_suffix(vth: VthClass) -> &'static str {
    match vth {
        VthClass::Low => "LVT",
        VthClass::Mid => "MVT",
        VthClass::High => "HVT",
    }
}

fn cell_name(base: &str, fanin: usize, size: f64, vth: VthClass) -> String {
    let arity = if fanin > 1 {
        fanin.to_string()
    } else {
        String::new()
    };
    format!("{base}{arity}_X{}_{}", format_size(size), vth_suffix(vth))
}

fn format_size(size: f64) -> String {
    if (size - size.round()).abs() < 1e-9 {
        format!("{}", size.round() as i64)
    } else {
        format!("{size}").replace('.', "p")
    }
}

/// Characterizes one cell from the closed-form models.
pub fn characterize(
    tech: &Technology,
    kind: GateKind,
    base: &str,
    fanin: usize,
    size: f64,
    vth: VthClass,
) -> LibertyCell {
    // Linear delay fit from two load points (the model *is* linear in
    // load, so two points are exact).
    let d0 = cell::gate_delay_nominal(tech, kind, fanin, size, vth, 0.0);
    let d10 = cell::gate_delay_nominal(tech, kind, fanin, size, vth, 10.0);
    LibertyCell {
        name: cell_name(base, fanin, size, vth),
        kind,
        fanin,
        size,
        vth,
        input_cap: cell::input_cap(tech, size),
        leakage_nw: cell::leakage_nominal(tech, kind, fanin, size, vth) * tech.vdd * 1e9,
        intrinsic_ps: d0,
        slope_ps_per_ff: (d10 - d0) / 10.0,
    }
}

/// Exports the whole dual-Vth library (all kinds × sizes × {L,H}) as
/// Liberty-subset text.
pub fn export(tech: &Technology, library_name: &str) -> String {
    let mut out = String::new();
    out.push_str(&format!("library ({library_name}) {{\n"));
    out.push_str("  delay_model : generic_cmos;\n");
    out.push_str("  time_unit : \"1ps\";\n");
    out.push_str("  leakage_power_unit : \"1nW\";\n");
    out.push_str("  capacitive_load_unit (1, ff);\n");
    out.push_str(&format!("  nom_voltage : {};\n", tech.vdd));
    for (kind, base, fanins) in EXPORT_KINDS {
        for &fanin in fanins {
            for &size in &tech.sizes {
                for vth in [VthClass::Low, VthClass::High] {
                    let c = characterize(tech, kind, base, fanin, size, vth);
                    out.push_str(&format!("  cell ({}) {{\n", c.name));
                    out.push_str(&format!("    cell_leakage_power : {:.6};\n", c.leakage_nw));
                    out.push_str(&format!("    drive_size : {};\n", c.size));
                    out.push_str(&format!("    fanin_count : {};\n", c.fanin));
                    out.push_str(&format!(
                        "    function_kind : {};\n",
                        c.kind.bench_keyword()
                    ));
                    out.push_str(&format!("    threshold_flavor : {};\n", vth_suffix(c.vth)));
                    out.push_str("    pin (A) {\n");
                    out.push_str("      direction : input;\n");
                    out.push_str(&format!("      capacitance : {:.6};\n", c.input_cap));
                    out.push_str("    }\n");
                    out.push_str("    pin (Y) {\n");
                    out.push_str("      direction : output;\n");
                    out.push_str("      timing () {\n");
                    out.push_str(&format!(
                        "        intrinsic_rise : {:.6};\n",
                        c.intrinsic_ps
                    ));
                    out.push_str(&format!(
                        "        rise_resistance : {:.6};\n",
                        c.slope_ps_per_ff
                    ));
                    out.push_str("      }\n");
                    out.push_str("    }\n");
                    out.push_str("  }\n");
                }
            }
        }
    }
    out.push_str("}\n");
    out
}

/// Errors produced while parsing the Liberty subset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseLibertyError {
    /// No `library (...)` header.
    MissingLibrary,
    /// A cell lacked a required attribute; carries cell name + attribute.
    MissingAttribute {
        /// The cell.
        cell: String,
        /// The missing attribute key.
        attribute: String,
    },
    /// A value could not be parsed as a number; carries key and text.
    BadValue {
        /// Attribute key.
        key: String,
        /// Unparsable text.
        text: String,
    },
}

impl fmt::Display for ParseLibertyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseLibertyError::MissingLibrary => write!(f, "no `library` group found"),
            ParseLibertyError::MissingAttribute { cell, attribute } => {
                write!(f, "cell `{cell}` lacks attribute `{attribute}`")
            }
            ParseLibertyError::BadValue { key, text } => {
                write!(f, "bad numeric value for `{key}`: `{text}`")
            }
        }
    }
}

impl std::error::Error for ParseLibertyError {}

/// Parses Liberty-subset text back into cells.
///
/// Only the attributes written by [`export`] are interpreted; unknown
/// attributes and groups are skipped (which is the Liberty convention and
/// lets users feed in real libraries with richer content).
///
/// # Errors
///
/// Returns [`ParseLibertyError`] on missing headers/attributes or
/// unparsable numbers.
pub fn parse(src: &str) -> Result<Vec<LibertyCell>, ParseLibertyError> {
    if !src.contains("library") {
        return Err(ParseLibertyError::MissingLibrary);
    }
    let mut cells = Vec::new();
    // Light-weight scan: find `cell (NAME) {` groups, then read key : value
    // pairs until the group's brace depth closes.
    let mut rest = src;
    while let Some(pos) = rest.find("cell (") {
        rest = &rest[pos + "cell (".len()..];
        let close = rest.find(')').ok_or(ParseLibertyError::MissingLibrary)?;
        let name = rest[..close].trim().to_string();
        let body_start = rest[close..]
            .find('{')
            .map(|i| close + i + 1)
            .ok_or(ParseLibertyError::MissingLibrary)?;
        // Find the matching closing brace.
        let mut depth = 1;
        let mut end = body_start;
        for (i, ch) in rest[body_start..].char_indices() {
            match ch {
                '{' => depth += 1,
                '}' => {
                    depth -= 1;
                    if depth == 0 {
                        end = body_start + i;
                        break;
                    }
                }
                _ => {}
            }
        }
        let body = &rest[body_start..end];
        let mut attrs: BTreeMap<String, String> = BTreeMap::new();
        for line in body.lines() {
            if let Some((k, v)) = line.split_once(':') {
                attrs.insert(
                    k.trim().to_string(),
                    v.trim().trim_end_matches(';').trim().to_string(),
                );
            }
        }
        let get = |key: &str| -> Result<String, ParseLibertyError> {
            attrs
                .get(key)
                .cloned()
                .ok_or_else(|| ParseLibertyError::MissingAttribute {
                    cell: name.clone(),
                    attribute: key.to_string(),
                })
        };
        let num = |key: &str| -> Result<f64, ParseLibertyError> {
            let text = get(key)?;
            text.parse().map_err(|_| ParseLibertyError::BadValue {
                key: key.to_string(),
                text,
            })
        };
        let kind = GateKind::from_bench_keyword(&get("function_kind")?).ok_or_else(|| {
            ParseLibertyError::BadValue {
                key: "function_kind".into(),
                text: get("function_kind").unwrap_or_default(),
            }
        })?;
        let vth = match get("threshold_flavor")?.as_str() {
            "LVT" => VthClass::Low,
            "MVT" => VthClass::Mid,
            "HVT" => VthClass::High,
            other => {
                return Err(ParseLibertyError::BadValue {
                    key: "threshold_flavor".into(),
                    text: other.to_string(),
                })
            }
        };
        cells.push(LibertyCell {
            name: name.clone(),
            kind,
            fanin: num("fanin_count")? as usize,
            size: num("drive_size")?,
            vth,
            input_cap: num("capacitance")?,
            leakage_nw: num("cell_leakage_power")?,
            intrinsic_ps: num("intrinsic_rise")?,
            slope_ps_per_ff: num("rise_resistance")?,
        });
        rest = &rest[end..];
    }
    Ok(cells)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn export_contains_expected_cells() {
        let text = export(&Technology::ptm100(), "statleak100");
        assert!(text.contains("library (statleak100)"));
        assert!(text.contains("cell (INV_X1_LVT)"));
        assert!(text.contains("cell (NAND2_X4_HVT)"));
        assert!(text.contains("cell (XOR2_X16_LVT)"));
    }

    #[test]
    fn round_trip_preserves_values() {
        let tech = Technology::ptm100();
        let cells = parse(&export(&tech, "lib")).unwrap();
        // 2 single-fanin kinds + 4 kinds × 3 fanins + 2 kinds × 1 fanin
        // = 16 variants × 9 sizes × 2 vth.
        assert_eq!(cells.len(), 16 * tech.sizes.len() * 2);
        let inv = cells
            .iter()
            .find(|c| c.name == "INV_X1_LVT")
            .expect("inverter present");
        let expect = characterize(&tech, GateKind::Not, "INV", 1, 1.0, VthClass::Low);
        assert!((inv.leakage_nw - expect.leakage_nw).abs() < 1e-4);
        assert!((inv.input_cap - expect.input_cap).abs() < 1e-4);
        assert!((inv.intrinsic_ps - expect.intrinsic_ps).abs() < 1e-4);
        assert!((inv.slope_ps_per_ff - expect.slope_ps_per_ff).abs() < 1e-4);
    }

    #[test]
    fn linear_fit_reproduces_model_delay() {
        let tech = Technology::ptm100();
        let c = characterize(&tech, GateKind::Nand, "NAND", 2, 2.0, VthClass::High);
        for load in [0.0, 5.0, 20.0, 50.0] {
            let model =
                cell::gate_delay_nominal(&tech, GateKind::Nand, 2, 2.0, VthClass::High, load);
            let fit = c.intrinsic_ps + c.slope_ps_per_ff * load;
            assert!((model - fit).abs() < 1e-9, "load {load}");
        }
    }

    #[test]
    fn hvt_cells_leak_less_than_lvt() {
        let cells = parse(&export(&Technology::ptm100(), "lib")).unwrap();
        let lvt = cells.iter().find(|c| c.name == "NAND2_X1_LVT").unwrap();
        let hvt = cells.iter().find(|c| c.name == "NAND2_X1_HVT").unwrap();
        assert!(lvt.leakage_nw / hvt.leakage_nw > 15.0);
        assert!(hvt.intrinsic_ps > lvt.intrinsic_ps);
    }

    #[test]
    fn missing_library_rejected() {
        assert_eq!(parse("cell (X) {}"), Err(ParseLibertyError::MissingLibrary));
    }

    #[test]
    fn missing_attribute_reported() {
        let src = "library (l) { cell (BROKEN) { drive_size : 1; } }";
        let e = parse(src).unwrap_err();
        assert!(matches!(e, ParseLibertyError::MissingAttribute { .. }));
    }

    #[test]
    fn unknown_attributes_skipped() {
        let tech = Technology::ptm100();
        let mut text = export(&tech, "lib");
        text = text.replace(
            "delay_model : generic_cmos;",
            "delay_model : generic_cmos;\n  vendor_secret_sauce : 42;",
        );
        assert!(parse(&text).is_ok());
    }
}
