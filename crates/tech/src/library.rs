//! The [`CellLibrary`] abstraction: what every analysis asks of a cell
//! library, decoupled from *where* the numbers come from.
//!
//! Two implementations exist:
//!
//! * [`BuiltinLibrary`] — the closed-form alpha-power / exponential-leakage
//!   models of [`crate::cell`], parameterized by a [`Technology`]. This is
//!   the default and the reference semantics: a [`crate::Design`] built
//!   with [`crate::Design::new`] wraps one and produces bit-identical
//!   results to the pre-trait code paths.
//! * [`crate::LibertyLibrary`] — characterized values imported from a
//!   Liberty `.lib` file (NLDM tables, `when`-conditioned leakage,
//!   multiple Vth flavors, per-corner variants).
//!
//! The trait object is resolved **once per flow** and threaded through
//! [`crate::Design`]; hot loops call the object's methods directly. Each
//! library exposes a stable [`CellLibrary::id`] string that names the
//! *content* of the library (for the builtin: a fingerprint of the full
//! `Technology`; for Liberty: file name, corner, and a content hash), so
//! caches and session stores can key on it and never cross libraries.

use crate::cell;
use crate::params::{Technology, VthClass};
use statleak_netlist::GateKind;
use std::fmt;

/// A characterized cell library: everything the leakage, STA, SSTA,
/// Monte-Carlo, and sizing/Vth-assignment paths need to evaluate a gate.
///
/// Variational arguments (`delta_l_rel`, `delta_vth_rand`) perturb the
/// *process* around the library's nominal point; implementations agree on
/// the variational structure (roll-off coupling through `vth_l_coeff`,
/// exponential leakage in `ΔVth`) and differ in the nominal values.
#[allow(clippy::too_many_arguments)]
pub trait CellLibrary: Send + Sync + fmt::Debug {
    /// A stable identity string naming this library's content. Two
    /// libraries with equal ids must produce equal numbers; session and
    /// store hashes incorporate it so cached results never cross
    /// libraries.
    fn id(&self) -> &str;

    /// The discrete drive sizes available (multiples of minimum width),
    /// ascending.
    fn sizes(&self) -> &[f64];

    /// The threshold flavors available.
    fn vth_classes(&self) -> &[VthClass];

    /// Input capacitance presented by one pin of the cell (fF).
    fn input_cap(&self, kind: GateKind, fanin: usize, size: f64, vth: VthClass) -> f64;

    /// Full (non-linearized) gate delay under a process perturbation (ps).
    fn delay(
        &self,
        kind: GateKind,
        fanin: usize,
        size: f64,
        vth: VthClass,
        c_load: f64,
        delta_l_rel: f64,
        delta_vth_rand: f64,
    ) -> f64;

    /// Nominal (no-variation) gate delay (ps).
    fn delay_nominal(
        &self,
        kind: GateKind,
        fanin: usize,
        size: f64,
        vth: VthClass,
        c_load: f64,
    ) -> f64 {
        self.delay(kind, fanin, size, vth, c_load, 0.0, 0.0)
    }

    /// First-order delay sensitivities at the nominal point:
    /// `(d_nom, ∂d/∂(ΔL/L), ∂d/∂ΔVth)`.
    fn delay_sensitivities(
        &self,
        kind: GateKind,
        fanin: usize,
        size: f64,
        vth: VthClass,
        c_load: f64,
    ) -> (f64, f64, f64);

    /// Full (non-linearized) state-averaged sub-threshold leakage current
    /// (A) under a process perturbation.
    fn leakage(
        &self,
        kind: GateKind,
        fanin: usize,
        size: f64,
        vth: VthClass,
        delta_l_rel: f64,
        delta_vth_rand: f64,
    ) -> f64;

    /// Nominal state-averaged leakage current (A).
    fn leakage_nominal(&self, kind: GateKind, fanin: usize, size: f64, vth: VthClass) -> f64 {
        self.leakage(kind, fanin, size, vth, 0.0, 0.0)
    }

    /// ln-space leakage description:
    /// `(ln I_nom, ∂lnI/∂(ΔL/L), ∂lnI/∂ΔVth)`. The sensitivities must be
    /// state- and gate-shape-independent (they are `−1/(n·vT)` scaled), a
    /// property the region-aggregated leakage analysis relies on.
    fn ln_leakage(&self, kind: GateKind, fanin: usize, size: f64, vth: VthClass)
        -> (f64, f64, f64);

    /// Nominal leakage current (A) in one specific input state (`state` is
    /// a bitmask over input pins, bit `i` set = pin `i` high). The
    /// arithmetic mean over all `2^fanin` states equals
    /// [`CellLibrary::leakage_nominal`] up to rounding.
    fn leakage_by_state(
        &self,
        kind: GateKind,
        fanin: usize,
        size: f64,
        vth: VthClass,
        state: usize,
    ) -> f64;
}

/// Fingerprints a string with the 64-bit FNV-1a hash (no external deps;
/// stability across runs is all that is required, not cryptography).
pub(crate) fn fnv1a64(text: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in text.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The closed-form 100 nm models of [`crate::cell`] presented through the
/// [`CellLibrary`] trait. Delegates verbatim to the same implementations
/// the deprecated free functions forward to, so results are bit-identical
/// to the pre-trait code.
#[derive(Debug, Clone)]
pub struct BuiltinLibrary {
    tech: Technology,
    vth_classes: Vec<VthClass>,
    id: String,
}

impl BuiltinLibrary {
    /// Wraps a technology's closed-form models.
    pub fn new(tech: Technology) -> Self {
        tech.validate();
        let id = format!("builtin:{:016x}", fnv1a64(&format!("{tech:?}")));
        Self {
            tech,
            vth_classes: vec![VthClass::Low, VthClass::Mid, VthClass::High],
            id,
        }
    }

    /// The wrapped technology parameters.
    pub fn tech(&self) -> &Technology {
        &self.tech
    }
}

impl CellLibrary for BuiltinLibrary {
    fn id(&self) -> &str {
        &self.id
    }

    fn sizes(&self) -> &[f64] {
        &self.tech.sizes
    }

    fn vth_classes(&self) -> &[VthClass] {
        &self.vth_classes
    }

    fn input_cap(&self, _kind: GateKind, _fanin: usize, size: f64, _vth: VthClass) -> f64 {
        cell::input_cap_impl(&self.tech, size)
    }

    fn delay(
        &self,
        kind: GateKind,
        fanin: usize,
        size: f64,
        vth: VthClass,
        c_load: f64,
        delta_l_rel: f64,
        delta_vth_rand: f64,
    ) -> f64 {
        cell::gate_delay_impl(
            &self.tech,
            kind,
            fanin,
            size,
            vth,
            c_load,
            delta_l_rel,
            delta_vth_rand,
        )
    }

    fn delay_nominal(
        &self,
        kind: GateKind,
        fanin: usize,
        size: f64,
        vth: VthClass,
        c_load: f64,
    ) -> f64 {
        cell::gate_delay_nominal_impl(&self.tech, kind, fanin, size, vth, c_load)
    }

    fn delay_sensitivities(
        &self,
        kind: GateKind,
        fanin: usize,
        size: f64,
        vth: VthClass,
        c_load: f64,
    ) -> (f64, f64, f64) {
        cell::delay_sensitivities_impl(&self.tech, kind, fanin, size, vth, c_load)
    }

    fn leakage(
        &self,
        kind: GateKind,
        fanin: usize,
        size: f64,
        vth: VthClass,
        delta_l_rel: f64,
        delta_vth_rand: f64,
    ) -> f64 {
        cell::leakage_current_impl(
            &self.tech,
            kind,
            fanin,
            size,
            vth,
            delta_l_rel,
            delta_vth_rand,
        )
    }

    fn leakage_nominal(&self, kind: GateKind, fanin: usize, size: f64, vth: VthClass) -> f64 {
        cell::leakage_nominal_impl(&self.tech, kind, fanin, size, vth)
    }

    fn ln_leakage(
        &self,
        kind: GateKind,
        fanin: usize,
        size: f64,
        vth: VthClass,
    ) -> (f64, f64, f64) {
        cell::ln_leakage_impl(&self.tech, kind, fanin, size, vth)
    }

    fn leakage_by_state(
        &self,
        kind: GateKind,
        fanin: usize,
        size: f64,
        vth: VthClass,
        state: usize,
    ) -> f64 {
        let averaged = cell::leakage_nominal_impl(&self.tech, kind, fanin, size, vth);
        let scalar = cell::leak_state_factor(kind, fanin);
        averaged * cell::leak_state_factor_for_state(kind, fanin, state) / scalar
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[allow(deprecated)]
    fn builtin_matches_closed_forms_bit_exactly() {
        let tech = Technology::ptm100();
        let lib = BuiltinLibrary::new(tech.clone());
        for (kind, fanin) in [(GateKind::Nand, 3), (GateKind::Nor, 2), (GateKind::Not, 1)] {
            for vth in [VthClass::Low, VthClass::High] {
                let d_lib = lib.delay(kind, fanin, 2.0, vth, 11.0, 0.03, -0.01);
                let d_fn = cell::gate_delay(&tech, kind, fanin, 2.0, vth, 11.0, 0.03, -0.01);
                assert_eq!(d_lib.to_bits(), d_fn.to_bits());
                let i_lib = lib.leakage(kind, fanin, 2.0, vth, 0.03, -0.01);
                let i_fn = cell::leakage_current(&tech, kind, fanin, 2.0, vth, 0.03, -0.01);
                assert_eq!(i_lib.to_bits(), i_fn.to_bits());
                let s_lib = lib.delay_sensitivities(kind, fanin, 2.0, vth, 11.0);
                let s_fn = cell::delay_sensitivities(&tech, kind, fanin, 2.0, vth, 11.0);
                assert_eq!(s_lib, s_fn);
                let l_lib = lib.ln_leakage(kind, fanin, 2.0, vth);
                let l_fn = cell::ln_leakage(&tech, kind, fanin, 2.0, vth);
                assert_eq!(l_lib, l_fn);
            }
        }
        assert_eq!(
            lib.input_cap(GateKind::Nand, 2, 3.0, VthClass::Low)
                .to_bits(),
            cell::input_cap(&tech, 3.0).to_bits()
        );
    }

    #[test]
    fn id_tracks_technology_content() {
        let a = BuiltinLibrary::new(Technology::ptm100());
        let b = BuiltinLibrary::new(Technology::ptm100());
        assert_eq!(a.id(), b.id());
        let mut t = Technology::ptm100();
        t.vth_l_coeff = 0.0;
        let c = BuiltinLibrary::new(t);
        assert_ne!(a.id(), c.id());
    }

    #[test]
    fn state_leakage_averages_to_scalar() {
        let lib = BuiltinLibrary::new(Technology::ptm100());
        let avg = lib.leakage_nominal(GateKind::Nand, 3, 2.0, VthClass::Low);
        let mean: f64 = (0..8)
            .map(|s| lib.leakage_by_state(GateKind::Nand, 3, 2.0, VthClass::Low, s))
            .sum::<f64>()
            / 8.0;
        assert!((mean / avg - 1.0).abs() < 1e-12);
    }
}
