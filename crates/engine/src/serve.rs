//! `statleak serve` — a long-running TCP daemon over the cached engine.
//!
//! Transport: plain `std::net` TCP, newline-delimited JSON (one request
//! per line, one response line per request, in order per connection). No
//! async runtime: a nonblocking accept loop hands each connection to a
//! thread, analysis ops flow through a bounded queue into a fixed worker
//! pool, and control ops (`ping`/`stats`/`route`/`shutdown`) are answered
//! inline so they stay responsive under load.
//!
//! Three production features sit on top of that core:
//!
//! - **Persistent warm store** ([`Store`]): with a `store_dir` configured,
//!   every analysis result is written to disk keyed by the deterministic
//!   session/op content hashes, and looked up *before* a session is
//!   prepared — so a restarted daemon (even after `kill -9`) answers
//!   repeated requests from disk without rebuilding anything, and fleet
//!   members sharing one directory pre-seed each other.
//! - **Batching**: a `batch` request acquires one session and fans its
//!   items across the worker pool; the submitting worker helps drain
//!   items itself, so a pool saturated with batch parents still makes
//!   progress (items never block, parents only run items).
//! - **Sharding** ([`Ring`]): with a consistent-hash ring and a self node
//!   configured, sessions owned by another fleet member are rejected with
//!   a typed `wrong-shard` error naming the owner, and the `route`
//!   control op lets clients (or peers) resolve owners without a
//!   coordinator.
//!
//! Load shedding is explicit rather than implicit: once the queue reaches
//! the configured high-water mark a request is rejected immediately with
//! a typed `busy` error, and a request that waits in the queue past its
//! deadline is answered `deadline` instead of silently running late. A
//! request that *starts* in time but finishes past its deadline is still
//! answered, marked `"deadline_exceeded":true`, and counted — so the
//! `deadline_expired` report is truthful either way.
//!
//! Shutdown is cooperative: when the shutdown flag flips (SIGTERM in the
//! CLI, or a `shutdown` request), the listener stops accepting, queued
//! and in-flight requests drain to completion, every response is written,
//! and [`Server::run`] returns its final [`ServeReport`].

use crate::audit::{AccessLog, AccessRecord};
use crate::json::Json;
use crate::proto::{self, Op, ProtoError, Request};
use crate::ring::{Ring, DEFAULT_REPLICAS};
use crate::session::{session_key, Engine, Session};
use crate::store::Store;
use statleak_core::flows::FlowConfig;
use statleak_obs as obs;
use statleak_obs::TraceContext;
use std::collections::{BTreeMap, VecDeque};
use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// How often blocked loops re-check the shutdown flag.
const POLL: Duration = Duration::from_millis(50);

/// Server configuration.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:7878` (`:0` picks an ephemeral port;
    /// read it back from [`Server::local_addr`]).
    pub addr: String,
    /// Worker threads executing analysis ops (0 = available parallelism,
    /// capped at 8).
    pub workers: usize,
    /// Queue high-water mark: requests beyond this many *queued* (not yet
    /// executing) are rejected with a `busy` error.
    pub queue_depth: usize,
    /// Default per-request queue deadline; `None` = wait forever unless
    /// the request carries its own `deadline_ms`.
    pub default_deadline_ms: Option<u64>,
    /// Capacity of the session LRU cache.
    pub cache_capacity: usize,
    /// Directory of the persistent result store; `None` = memory only.
    /// Safe to share between fleet members and across restarts.
    pub store_dir: Option<String>,
    /// Node names of the fleet's consistent-hash ring; empty = unsharded.
    pub ring: Vec<String>,
    /// This node's name within `ring`. When both are set, requests whose
    /// session hashes to another node are rejected `wrong-shard`.
    pub self_node: Option<String>,
    /// Virtual points per ring node.
    pub ring_replicas: usize,
    /// NDJSON request audit log path (`--access-log`); `None` = disabled.
    pub access_log: Option<String>,
    /// Audit-log rotation threshold in bytes.
    pub access_log_max_bytes: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:7878".to_string(),
            workers: 0,
            queue_depth: 64,
            default_deadline_ms: None,
            cache_capacity: crate::session::DEFAULT_CACHE_CAPACITY,
            store_dir: None,
            ring: Vec::new(),
            self_node: None,
            ring_replicas: DEFAULT_REPLICAS,
            access_log: None,
            access_log_max_bytes: crate::audit::DEFAULT_ACCESS_LOG_MAX_BYTES,
        }
    }
}

/// Final counters returned by [`Server::run`] after a drain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServeReport {
    /// Requests answered successfully.
    pub served: u64,
    /// Requests that failed in the flow (infeasible targets etc.).
    pub request_errors: u64,
    /// Requests shed at the high-water mark.
    pub busy_rejected: u64,
    /// Requests whose queue wait or execution exceeded their deadline.
    pub deadline_expired: u64,
    /// Lines that failed to parse as protocol requests.
    pub protocol_errors: u64,
    /// Requests rejected because their session belongs to another shard.
    pub wrong_shard: u64,
    /// Connections accepted over the server's lifetime.
    pub connections: u64,
}

struct Job {
    request: Request,
    /// Trace context for the whole request: the client's if it sent one,
    /// otherwise originated by the server at dispatch.
    trace: TraceContext,
    accepted: Instant,
    deadline: Option<Duration>,
    reply: mpsc::Sender<String>,
}

/// One item of an in-flight `batch` request, shared between the parent
/// worker and whichever worker (possibly the parent) executes it.
struct BatchState {
    session: Session,
    ops: Vec<Op>,
    results: Mutex<Vec<Option<Result<Json, ProtoError>>>>,
    remaining: AtomicUsize,
    /// The batch envelope's trace context, inherited by every item so one
    /// trace id joins the fan-out across workers.
    trace: TraceContext,
    /// The envelope's request id, repeated on per-item audit records.
    request_id: Json,
    /// Where the shared session came from (`cache` or `cold`), stamped on
    /// computed items' audit records.
    session_origin: &'static str,
    session_key: u64,
}

struct BatchItem {
    state: Arc<BatchState>,
    index: usize,
}

/// What the worker queue carries: whole request lines, or single batch
/// items fanned out by a batch parent. Items never block, so a parent
/// helping drain them cannot deadlock the pool.
enum Work {
    Line(Box<Job>),
    Item(BatchItem),
}

struct Shared {
    engine: Engine,
    store: Option<Store>,
    access: Option<AccessLog>,
    ring: Option<Ring>,
    self_node: Option<String>,
    queue: Mutex<VecDeque<Work>>,
    queue_cv: Condvar,
    queue_depth: usize,
    default_deadline: Option<Duration>,
    workers: usize,
    started: Instant,
    shutdown: &'static AtomicBool,
    served: AtomicU64,
    /// Per-op request counts (every parsed request, control ops included).
    op_counts: Mutex<BTreeMap<&'static str, u64>>,
    /// High-water mark of the queue length actually observed.
    max_queued: AtomicU64,
    request_errors: AtomicU64,
    busy_rejected: AtomicU64,
    deadline_expired: AtomicU64,
    protocol_errors: AtomicU64,
    wrong_shard: AtomicU64,
    connections: AtomicU64,
}

impl Shared {
    fn draining(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Appends one audit record when the access log is enabled. I/O
    /// failures are counted, not propagated — the request itself already
    /// has its answer.
    fn audit(&self, record: &AccessRecord) {
        if let Some(log) = &self.access {
            if log.write(record).is_err() {
                obs::counter!("serve_access_log_errors_total").inc();
            }
        }
    }

    fn report(&self) -> ServeReport {
        ServeReport {
            served: self.served.load(Ordering::Relaxed),
            request_errors: self.request_errors.load(Ordering::Relaxed),
            busy_rejected: self.busy_rejected.load(Ordering::Relaxed),
            deadline_expired: self.deadline_expired.load(Ordering::Relaxed),
            protocol_errors: self.protocol_errors.load(Ordering::Relaxed),
            wrong_shard: self.wrong_shard.load(Ordering::Relaxed),
            connections: self.connections.load(Ordering::Relaxed),
        }
    }

    fn stats_json(&self) -> Json {
        let r = self.report();
        Json::obj(vec![
            ("cache", proto::cache_stats_json(&self.engine.cache_stats())),
            (
                "store",
                match &self.store {
                    Some(store) => proto::store_stats_json(&store.stats(), store.len()),
                    None => Json::Null,
                },
            ),
            (
                "ring",
                match &self.ring {
                    Some(ring) => Json::obj(vec![
                        (
                            "nodes",
                            Json::Arr(ring.nodes().iter().map(|n| Json::str(n.clone())).collect()),
                        ),
                        ("replicas", Json::Num(ring.replicas() as f64)),
                        (
                            "self",
                            match &self.self_node {
                                Some(n) => Json::str(n.clone()),
                                None => Json::Null,
                            },
                        ),
                    ]),
                    None => Json::Null,
                },
            ),
            (
                "server",
                Json::obj(vec![
                    ("served", Json::Num(r.served as f64)),
                    ("request_errors", Json::Num(r.request_errors as f64)),
                    ("busy_rejected", Json::Num(r.busy_rejected as f64)),
                    ("deadline_expired", Json::Num(r.deadline_expired as f64)),
                    ("protocol_errors", Json::Num(r.protocol_errors as f64)),
                    ("wrong_shard", Json::Num(r.wrong_shard as f64)),
                    ("connections", Json::Num(r.connections as f64)),
                    (
                        "queued",
                        Json::Num(self.queue.lock().expect("queue lock").len() as f64),
                    ),
                    (
                        "max_queued",
                        Json::Num(self.max_queued.load(Ordering::Relaxed) as f64),
                    ),
                    ("workers", Json::Num(self.workers as f64)),
                    ("queue_depth", Json::Num(self.queue_depth as f64)),
                    ("uptime_s", Json::Num(self.started.elapsed().as_secs_f64())),
                    ("draining", Json::Bool(self.draining())),
                ]),
            ),
            (
                "ops",
                Json::Obj(
                    self.op_counts
                        .lock()
                        .expect("op counts lock")
                        .iter()
                        .map(|(&name, &count)| (name.to_string(), Json::Num(count as f64)))
                        .collect(),
                ),
            ),
        ])
    }
}

/// Counts live connection threads so drain can wait for them without the
/// accept loop keeping an ever-growing `JoinHandle` list.
struct ConnGate {
    active: Mutex<u64>,
    cv: Condvar,
}

impl ConnGate {
    fn new() -> Arc<ConnGate> {
        Arc::new(ConnGate {
            active: Mutex::new(0),
            cv: Condvar::new(),
        })
    }

    fn enter(self: &Arc<ConnGate>) -> ConnGuard {
        *self.active.lock().expect("conn gate lock") += 1;
        ConnGuard(Arc::clone(self))
    }

    fn wait_idle(&self) {
        let mut active = self.active.lock().expect("conn gate lock");
        while *active > 0 {
            let (a, _) = self.cv.wait_timeout(active, POLL).expect("conn gate lock");
            active = a;
        }
    }
}

/// RAII decrement: runs on normal exit *and* unwind, so a panicking
/// connection thread cannot wedge the drain.
struct ConnGuard(Arc<ConnGate>);

impl Drop for ConnGuard {
    fn drop(&mut self) {
        *self.0.active.lock().expect("conn gate lock") -= 1;
        self.0.cv.notify_all();
    }
}

/// A bound, not-yet-running server. Splitting bind from run lets callers
/// learn the actual port (ephemeral binds) before the accept loop blocks.
pub struct Server {
    listener: TcpListener,
    local_addr: SocketAddr,
    shared: Arc<Shared>,
}

impl Server {
    /// Binds the listener, opens the store, builds the ring, and sizes
    /// the worker pool.
    ///
    /// The `shutdown` flag is the drain trigger: the CLI points it at a
    /// static that its SIGTERM handler sets; a `shutdown` request sets the
    /// same flag from inside the protocol.
    ///
    /// # Errors
    ///
    /// Propagates bind and store-open failures, and rejects a ring with
    /// no usable nodes or a `self_node` that is not a ring member.
    pub fn bind(config: &ServeConfig, shutdown: &'static AtomicBool) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let workers = if config.workers == 0 {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(2)
                .min(8)
        } else {
            config.workers
        };
        let store = match &config.store_dir {
            Some(dir) => Some(Store::open(dir)?),
            None => None,
        };
        let access = match &config.access_log {
            Some(path) => Some(AccessLog::open(path, config.access_log_max_bytes)?),
            None => None,
        };
        let registry = obs::Registry::global();
        registry.describe("serve_queue_wait_ns", "Time a request waited queued (ns)");
        registry.describe(
            "serve_service_ns",
            "Request execution time once dequeued (ns)",
        );
        registry.describe(
            "serve_requests_total",
            "Parsed requests, control ops included",
        );
        registry.describe("serve_served_total", "Requests answered successfully");
        registry.describe(
            "engine_cache_sessions",
            "Prepared sessions resident in the LRU cache",
        );
        let ring = Ring::new(&config.ring, config.ring_replicas);
        if !config.ring.is_empty() && ring.is_none() {
            return Err(std::io::Error::new(
                ErrorKind::InvalidInput,
                "ring has no usable nodes",
            ));
        }
        if let (Some(ring), Some(node)) = (&ring, &config.self_node) {
            if !ring.contains(node) {
                return Err(std::io::Error::new(
                    ErrorKind::InvalidInput,
                    format!("self node {node:?} is not a member of the ring"),
                ));
            }
        }
        let shared = Arc::new(Shared {
            engine: Engine::new(config.cache_capacity),
            store,
            access,
            ring,
            self_node: config.self_node.clone(),
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            queue_depth: config.queue_depth.max(1),
            default_deadline: config.default_deadline_ms.map(Duration::from_millis),
            workers,
            started: Instant::now(),
            shutdown,
            served: AtomicU64::new(0),
            op_counts: Mutex::new(BTreeMap::new()),
            max_queued: AtomicU64::new(0),
            request_errors: AtomicU64::new(0),
            busy_rejected: AtomicU64::new(0),
            deadline_expired: AtomicU64::new(0),
            protocol_errors: AtomicU64::new(0),
            wrong_shard: AtomicU64::new(0),
            connections: AtomicU64::new(0),
        });
        Ok(Server {
            listener,
            local_addr,
            shared,
        })
    }

    /// The bound address (resolves `:0` ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Runs accept/worker loops until the shutdown flag flips, then drains
    /// in-flight requests and returns the final counters.
    ///
    /// # Errors
    ///
    /// Propagates unexpected accept-loop I/O failures.
    pub fn run(self) -> std::io::Result<ServeReport> {
        let Server {
            listener, shared, ..
        } = self;

        let mut worker_handles = Vec::new();
        for i in 0..shared.workers {
            let shared = shared.clone();
            worker_handles.push(
                std::thread::Builder::new()
                    .name(format!("statleak-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn worker thread"),
            );
        }

        // Connection threads are detached; the gate counts them so drain
        // can wait for the last one without holding a handle per
        // connection for the server's whole lifetime.
        let gate = ConnGate::new();
        while !shared.draining() {
            match listener.accept() {
                Ok((stream, _peer)) => {
                    shared.connections.fetch_add(1, Ordering::Relaxed);
                    let shared = shared.clone();
                    let guard = gate.enter();
                    std::thread::Builder::new()
                        .name("statleak-conn".to_string())
                        .spawn(move || {
                            let _guard = guard;
                            handle_connection(stream, &shared);
                        })
                        .expect("spawn connection thread");
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => std::thread::sleep(POLL),
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }

        // Drain: stop accepting (listener drops below), let connection
        // threads finish their in-flight request, then let workers empty
        // the queue.
        drop(listener);
        gate.wait_idle();
        shared.queue_cv.notify_all();
        for handle in worker_handles {
            let _ = handle.join();
        }
        Ok(shared.report())
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let work = {
            let mut queue = shared.queue.lock().expect("queue lock");
            loop {
                if let Some(work) = queue.pop_front() {
                    break Some(work);
                }
                if shared.draining() {
                    break None;
                }
                let (q, _) = shared
                    .queue_cv
                    .wait_timeout(queue, POLL)
                    .expect("queue lock");
                queue = q;
            }
        };
        match work {
            None => return,
            Some(Work::Line(job)) => {
                let line = process(shared, &job);
                // A dropped receiver just means the client hung up
                // mid-request.
                let _ = job.reply.send(line);
            }
            Some(Work::Item(item)) => run_batch_item(shared, &item),
        }
    }
}

fn process(shared: &Shared, job: &Job) -> String {
    // Install the trace context before anything records: the span below,
    // the histograms (exemplars), and every batch item fanned out from
    // here all pick it up.
    let _trace = obs::trace::enter(job.trace);
    let _span = obs::span!("serve.process");
    let id = &job.request.id;
    let queue_wait = job.accepted.elapsed();
    obs::histogram!("serve_queue_wait_ns").record_duration_traced(queue_wait);
    // Client-supplied trace ids are echoed in the response; server-
    // originated ones are not, so untraced repeats stay byte-identical.
    let client_traced = job.request.trace.is_some();
    let mut record = AccessRecord {
        trace_id: job.trace.trace_id,
        id: id.clone(),
        op: job.request.op.name(),
        outcome: "error",
        session_key: None,
        queue_wait_ns: Some(queue_wait.as_nanos() as u64),
        service_ns: None,
        deadline_exceeded: false,
        batch_index: None,
    };
    if let Some(deadline) = job.deadline {
        if job.accepted.elapsed() > deadline {
            shared.deadline_expired.fetch_add(1, Ordering::Relaxed);
            obs::counter!("serve_deadline_expired_total").inc();
            record.outcome = "deadline_exceeded";
            shared.audit(&record);
            let mut extra: Vec<(&str, Json)> = Vec::new();
            if client_traced {
                extra.push(proto::trace_extra(&job.trace));
            }
            return proto::err_response_with(
                id,
                &ProtoError {
                    class: "deadline",
                    message: format!(
                        "request waited {:.0} ms, past its {:.0} ms deadline",
                        job.accepted.elapsed().as_secs_f64() * 1e3,
                        deadline.as_secs_f64() * 1e3
                    ),
                },
                extra,
            );
        }
    }
    let service_start = Instant::now();
    let outcome = execute_line(shared, &job.request);
    let service = service_start.elapsed();
    obs::histogram!("serve_service_ns").record_duration_traced(service);
    record.service_ns = Some(service.as_nanos() as u64);
    // The request started in time but may have *finished* late: answer it
    // anyway (the work is done), but mark and count it so the
    // deadline_expired report stays truthful.
    let late = job
        .deadline
        .is_some_and(|deadline| job.accepted.elapsed() > deadline);
    if late {
        shared.deadline_expired.fetch_add(1, Ordering::Relaxed);
        obs::counter!("serve_deadline_expired_total").inc();
        record.deadline_exceeded = true;
    }
    let mut extra: Vec<(&str, Json)> = Vec::new();
    if late {
        extra.push(("deadline_exceeded", Json::Bool(true)));
    }
    if client_traced {
        extra.push(proto::trace_extra(&job.trace));
    }
    match outcome {
        Ok(LineOutcome {
            data,
            origin,
            session_key,
        }) => {
            shared.served.fetch_add(1, Ordering::Relaxed);
            obs::counter!("serve_served_total").inc();
            if origin == Origin::Store {
                extra.push(("source", Json::str("store")));
            }
            record.outcome = origin.as_str();
            record.session_key = session_key;
            shared.audit(&record);
            proto::ok_response_with(id, job.request.op.name(), data, extra)
        }
        Err(e) => {
            shared.request_errors.fetch_add(1, Ordering::Relaxed);
            obs::counter!("serve_request_errors_total").inc();
            shared.audit(&record);
            proto::err_response_with(id, &e, extra)
        }
    }
}

/// Where a request's answer came from, in decreasing order of warmth.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Origin {
    /// Persistent store: no session was prepared, nothing was computed.
    Store,
    /// A warm session from the engine cache.
    Cache,
    /// A session prepared from scratch.
    Cold,
}

impl Origin {
    fn as_str(self) -> &'static str {
        match self {
            Origin::Store => "store",
            Origin::Cache => "cache",
            Origin::Cold => "cold",
        }
    }
}

struct LineOutcome {
    data: Json,
    origin: Origin,
    session_key: Option<u64>,
}

fn execute_line(shared: &Shared, request: &Request) -> Result<LineOutcome, ProtoError> {
    if let Op::Batch(cfg, items) = &request.op {
        return process_batch(shared, cfg, items, request);
    }
    let Some(cfg) = proto::op_config(&request.op) else {
        // Control ops never reach the queue (see handle_connection).
        return Err(ProtoError {
            class: "internal",
            message: "control op routed to worker pool".to_string(),
        });
    };
    let key = session_key(cfg).map_err(|e| ProtoError::from_flow(&e))?;
    let op_hash = proto::op_hash(&request.op);
    // Disk before session: a warm store answers without rebuilding
    // anything, which is what makes restarts cheap.
    if let Some(store) = &shared.store {
        if let Some(data) = store.load(key, op_hash) {
            return Ok(LineOutcome {
                data,
                origin: Origin::Store,
                session_key: Some(key),
            });
        }
    }
    let (session, cache_hit) = shared
        .engine
        .session_with_origin(cfg)
        .map_err(|e| ProtoError::from_flow(&e))?;
    let data = proto::execute(&session, &request.op)?;
    if let Some(store) = &shared.store {
        store.save(key, op_hash, &data);
    }
    Ok(LineOutcome {
        data,
        origin: if cache_hit {
            Origin::Cache
        } else {
            Origin::Cold
        },
        session_key: Some(key),
    })
}

/// Executes a `batch`: answer store-warm items from disk, acquire ONE
/// session for the rest, fan them across the worker pool, and help drain
/// items while waiting so saturated pools still make progress.
fn process_batch(
    shared: &Shared,
    cfg: &FlowConfig,
    items: &[Op],
    request: &Request,
) -> Result<LineOutcome, ProtoError> {
    // The envelope's trace context (installed by `process`) rides along
    // into every fanned-out item.
    let trace = obs::trace::current().unwrap_or_default();
    let key = session_key(cfg).map_err(|e| ProtoError::from_flow(&e))?;
    let hashes: Vec<u64> = items.iter().map(proto::op_hash).collect();
    let mut results: Vec<Option<Result<Json, ProtoError>>> = Vec::new();
    results.resize_with(items.len(), || None);
    let mut store_hits = 0u64;
    let mut misses = Vec::new();
    for i in 0..items.len() {
        match shared.store.as_ref().and_then(|s| s.load(key, hashes[i])) {
            Some(data) => {
                results[i] = Some(Ok(data));
                store_hits += 1;
                shared.audit(&AccessRecord {
                    trace_id: trace.trace_id,
                    id: request.id.clone(),
                    op: items[i].name(),
                    outcome: "store",
                    session_key: Some(key),
                    queue_wait_ns: None,
                    service_ns: None,
                    deadline_exceeded: false,
                    batch_index: Some(i),
                });
            }
            None => misses.push(i),
        }
    }
    let mut origin = Origin::Store;
    if !misses.is_empty() {
        let (session, cache_hit) = shared
            .engine
            .session_with_origin(cfg)
            .map_err(|e| ProtoError::from_flow(&e))?;
        origin = if cache_hit {
            Origin::Cache
        } else {
            Origin::Cold
        };
        let state = Arc::new(BatchState {
            session,
            ops: items.to_vec(),
            results: Mutex::new({
                let mut v: Vec<Option<Result<Json, ProtoError>>> = Vec::new();
                v.resize_with(items.len(), || None);
                v
            }),
            remaining: AtomicUsize::new(misses.len()),
            trace,
            request_id: request.id.clone(),
            session_origin: origin.as_str(),
            session_key: key,
        });
        {
            let mut queue = shared.queue.lock().expect("queue lock");
            for &i in &misses {
                queue.push_back(Work::Item(BatchItem {
                    state: state.clone(),
                    index: i,
                }));
            }
            shared
                .max_queued
                .fetch_max(queue.len() as u64, Ordering::Relaxed);
        }
        shared.queue_cv.notify_all();
        // Help drain: run ANY queued batch item (ours or another
        // batch's). Parents never pop whole request lines, so this
        // cannot recurse or deadlock.
        while state.remaining.load(Ordering::SeqCst) > 0 {
            if let Some(item) = take_item(shared) {
                run_batch_item(shared, &item);
            } else {
                let queue = shared.queue.lock().expect("queue lock");
                drop(
                    shared
                        .queue_cv
                        .wait_timeout(queue, POLL)
                        .expect("queue lock"),
                );
            }
        }
        let mut computed = state.results.lock().expect("batch results lock");
        for &i in &misses {
            let result = computed[i].take().expect("worker recorded every item");
            if let (Some(store), Ok(data)) = (&shared.store, &result) {
                store.save(key, hashes[i], data);
            }
            results[i] = Some(result);
        }
    }
    let mut out = Vec::with_capacity(items.len());
    let mut item_errors = 0u64;
    for (op, result) in items.iter().zip(results) {
        let result = result.expect("every item resolved");
        out.push(match result {
            Ok(data) => Json::obj(vec![
                ("ok", Json::Bool(true)),
                ("op", Json::str(op.name())),
                ("data", data),
            ]),
            Err(e) => {
                item_errors += 1;
                Json::obj(vec![
                    ("ok", Json::Bool(false)),
                    ("op", Json::str(op.name())),
                    (
                        "error",
                        Json::obj(vec![
                            ("class", Json::str(e.class)),
                            ("message", Json::str(e.message)),
                        ]),
                    ),
                ])
            }
        });
    }
    obs::counter!("serve_batch_items_total").add(items.len() as u64);
    let data = Json::obj(vec![
        ("count", Json::Num(items.len() as f64)),
        ("item_errors", Json::Num(item_errors as f64)),
        ("store_hits", Json::Num(store_hits as f64)),
        ("session_key", Json::str(format!("{key:016x}"))),
        ("items", Json::Arr(out)),
    ]);
    Ok(LineOutcome {
        data,
        origin,
        session_key: Some(key),
    })
}

/// Pops the first queued batch *item*, skipping whole request lines.
fn take_item(shared: &Shared) -> Option<BatchItem> {
    let mut queue = shared.queue.lock().expect("queue lock");
    let pos = queue.iter().position(|w| matches!(w, Work::Item(_)))?;
    match queue.remove(pos) {
        Some(Work::Item(item)) => Some(item),
        _ => unreachable!("position() found an item at this index"),
    }
}

fn run_batch_item(shared: &Shared, item: &BatchItem) {
    // Items run on arbitrary workers (or helping parents): re-install the
    // envelope's trace so the span and exemplars carry the same id across
    // the fan-out.
    let _trace = obs::trace::enter(item.state.trace);
    let _span = obs::span!("serve.batch_item");
    let op = &item.state.ops[item.index];
    let start = Instant::now();
    let result = proto::execute(&item.state.session, op);
    let service = start.elapsed();
    obs::histogram!("serve_service_ns").record_duration_traced(service);
    shared.audit(&AccessRecord {
        trace_id: item.state.trace.trace_id,
        id: item.state.request_id.clone(),
        op: op.name(),
        outcome: if result.is_ok() {
            item.state.session_origin
        } else {
            "error"
        },
        session_key: Some(item.state.session_key),
        queue_wait_ns: None,
        service_ns: Some(service.as_nanos() as u64),
        deadline_exceeded: false,
        batch_index: Some(item.index),
    });
    item.state.results.lock().expect("batch results lock")[item.index] = Some(result);
    item.state.remaining.fetch_sub(1, Ordering::SeqCst);
    // Wake the parent (and anyone waiting on the queue) promptly.
    shared.queue_cv.notify_all();
}

fn handle_connection(stream: TcpStream, shared: &Shared) {
    // Short read timeouts turn the blocking reader into a poll loop that
    // notices the drain flag; writes stay blocking.
    if stream.set_read_timeout(Some(POLL)).is_err() {
        return;
    }
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        if shared.draining() {
            // In-flight work (below) has already been answered; close.
            return;
        }
        line.clear();
        match read_line_polled(&mut reader, &mut line, shared) {
            ReadOutcome::Closed => return,
            ReadOutcome::Drain => return,
            ReadOutcome::Line => {}
        }
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let response = dispatch(trimmed, shared);
        if writer
            .write_all(response.as_bytes())
            .and_then(|()| writer.write_all(b"\n"))
            .and_then(|()| writer.flush())
            .is_err()
        {
            return;
        }
    }
}

enum ReadOutcome {
    /// A full line is in the buffer.
    Line,
    /// The peer closed the connection.
    Closed,
    /// The server is draining; stop reading.
    Drain,
}

fn read_line_polled(
    reader: &mut BufReader<TcpStream>,
    line: &mut String,
    shared: &Shared,
) -> ReadOutcome {
    loop {
        match reader.read_line(line) {
            Ok(0) => return ReadOutcome::Closed,
            Ok(_) => return ReadOutcome::Line,
            Err(e)
                if matches!(
                    e.kind(),
                    ErrorKind::WouldBlock | ErrorKind::TimedOut | ErrorKind::Interrupted
                ) =>
            {
                // Partial data read so far stays appended to `line`;
                // keep polling until the newline arrives or we drain.
                if shared.draining() {
                    return ReadOutcome::Drain;
                }
            }
            Err(_) => return ReadOutcome::Closed,
        }
    }
}

/// Answers a `route` request: resolve the session's owner on the
/// request-supplied ring if given, else the server's own ring.
fn route_response(
    shared: &Shared,
    cfg: &FlowConfig,
    spec: &proto::RouteSpec,
) -> Result<Json, ProtoError> {
    let key = session_key(cfg).map_err(|e| ProtoError::from_flow(&e))?;
    let request_ring = match &spec.ring {
        Some(nodes) => {
            let replicas = spec.replicas.unwrap_or_else(|| {
                shared
                    .ring
                    .as_ref()
                    .map_or(DEFAULT_REPLICAS, Ring::replicas)
            });
            Some(Ring::new(nodes, replicas).ok_or(ProtoError {
                class: "usage",
                message: "route: ring has no usable nodes".to_string(),
            })?)
        }
        None => None,
    };
    let ring =
        match (&request_ring, &shared.ring) {
            (Some(r), _) => r,
            (None, Some(r)) => r,
            (None, None) => return Err(ProtoError {
                class: "usage",
                message:
                    "route: no ring configured; pass \"ring\":[...] or start the server with --ring"
                        .to_string(),
            }),
        };
    let shard = ring.shard_of(key);
    Ok(Json::obj(vec![
        ("session_key", Json::str(format!("{key:016x}"))),
        ("shard", Json::str(shard)),
        (
            "local",
            Json::Bool(shared.self_node.as_deref() == Some(shard)),
        ),
        (
            "ring",
            Json::Arr(ring.nodes().iter().map(|n| Json::str(n.clone())).collect()),
        ),
        ("replicas", Json::Num(ring.replicas() as f64)),
    ]))
}

/// Rejects an analysis request whose session another fleet member owns.
/// Returns the pre-built error response, or `None` when the request is
/// local (or the key cannot be resolved here — the worker will produce
/// the proper typed error instead).
fn wrong_shard_rejection(
    shared: &Shared,
    id: &Json,
    op: &Op,
    trace: TraceContext,
    client_traced: bool,
) -> Option<String> {
    let (ring, self_node) = (shared.ring.as_ref()?, shared.self_node.as_deref()?);
    let key = session_key(proto::op_config(op)?).ok()?;
    let shard = ring.shard_of(key);
    if shard == self_node {
        return None;
    }
    shared.wrong_shard.fetch_add(1, Ordering::Relaxed);
    obs::counter!("serve_wrong_shard_total").inc();
    // The redirect is audited here with the same trace id the client will
    // carry to the owning node — one id on both sides of the redirect.
    shared.audit(&AccessRecord {
        trace_id: trace.trace_id,
        id: id.clone(),
        op: op.name(),
        outcome: "wrong-shard",
        session_key: Some(key),
        queue_wait_ns: None,
        service_ns: None,
        deadline_exceeded: false,
        batch_index: None,
    });
    let mut extra = vec![
        ("shard", Json::str(shard)),
        ("session_key", Json::str(format!("{key:016x}"))),
    ];
    if client_traced {
        extra.push(proto::trace_extra(&trace));
    }
    Some(proto::err_response_with(
        id,
        &ProtoError {
            class: "wrong-shard",
            message: format!("session {key:016x} belongs to {shard}; re-send it there"),
        },
        extra,
    ))
}

fn dispatch(line: &str, shared: &Shared) -> String {
    let request = match proto::parse_request(line) {
        Ok(r) => r,
        Err((e, id)) => {
            shared.protocol_errors.fetch_add(1, Ordering::Relaxed);
            obs::counter!("serve_protocol_errors_total").inc();
            return proto::err_response(&id, &e);
        }
    };
    *shared
        .op_counts
        .lock()
        .expect("op counts lock")
        .entry(request.op.name())
        .or_insert(0) += 1;
    obs::counter!("serve_requests_total").inc();
    let id = request.id.clone();
    match &request.op {
        // Control ops answer inline: they must stay responsive while the
        // worker pool is saturated with long optimizations.
        Op::Ping => proto::ok_response(&id, "ping", Json::obj(vec![("pong", Json::Bool(true))])),
        Op::Stats => proto::ok_response(&id, "stats", shared.stats_json()),
        Op::Metrics => proto::ok_response(
            &id,
            "metrics",
            proto::obs_metrics_json(&obs::Registry::global().snapshot()),
        ),
        Op::MetricsText => proto::ok_response(
            &id,
            "metrics_text",
            Json::obj(vec![
                ("content_type", Json::str("text/plain; version=0.0.4")),
                ("text", Json::str(obs::Registry::global().prometheus_text())),
            ]),
        ),
        Op::Route(cfg, spec) => match route_response(shared, cfg, spec) {
            Ok(data) => proto::ok_response(&id, "route", data),
            Err(e) => {
                shared.request_errors.fetch_add(1, Ordering::Relaxed);
                proto::err_response(&id, &e)
            }
        },
        Op::Shutdown => {
            shared.shutdown.store(true, Ordering::SeqCst);
            proto::ok_response(
                &id,
                "shutdown",
                Json::obj(vec![("draining", Json::Bool(true))]),
            )
        }
        _ => {
            // Adopt the client's trace context or originate one: every
            // analysis request is traceable from this point on.
            let trace = request.trace.unwrap_or_else(TraceContext::new);
            let client_traced = request.trace.is_some();
            if shared.draining() {
                return proto::err_response(
                    &id,
                    &ProtoError {
                        class: "shutdown",
                        message: "server is draining; request rejected".to_string(),
                    },
                );
            }
            if let Some(rejection) =
                wrong_shard_rejection(shared, &id, &request.op, trace, client_traced)
            {
                return rejection;
            }
            let deadline = request
                .deadline_ms
                .map(Duration::from_millis)
                .or(shared.default_deadline);
            let (tx, rx) = mpsc::channel();
            {
                let mut queue = shared.queue.lock().expect("queue lock");
                if queue.len() >= shared.queue_depth {
                    shared.busy_rejected.fetch_add(1, Ordering::Relaxed);
                    obs::counter!("serve_busy_rejected_total").inc();
                    shared.audit(&AccessRecord {
                        trace_id: trace.trace_id,
                        id: id.clone(),
                        op: request.op.name(),
                        outcome: "busy",
                        session_key: None,
                        queue_wait_ns: None,
                        service_ns: None,
                        deadline_exceeded: false,
                        batch_index: None,
                    });
                    let mut extra: Vec<(&str, Json)> = Vec::new();
                    if client_traced {
                        extra.push(proto::trace_extra(&trace));
                    }
                    return proto::err_response_with(
                        &id,
                        &ProtoError {
                            class: "busy",
                            message: format!(
                                "queue at high-water mark ({} requests); retry later",
                                shared.queue_depth
                            ),
                        },
                        extra,
                    );
                }
                queue.push_back(Work::Line(Box::new(Job {
                    request,
                    trace,
                    accepted: Instant::now(),
                    deadline,
                    reply: tx,
                })));
                shared
                    .max_queued
                    .fetch_max(queue.len() as u64, Ordering::Relaxed);
            }
            shared.queue_cv.notify_one();
            // Block until a worker answers; the worker pool always drains
            // the queue (even during shutdown), so this terminates.
            match rx.recv() {
                Ok(response) => response,
                Err(_) => proto::err_response(
                    &id,
                    &ProtoError {
                        class: "internal",
                        message: "worker dropped the request".to_string(),
                    },
                ),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufRead;
    use std::path::PathBuf;

    fn request(addr: SocketAddr, line: &str) -> String {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .write_all(format!("{line}\n").as_bytes())
            .expect("write");
        let mut reader = BufReader::new(stream);
        let mut response = String::new();
        reader.read_line(&mut response).expect("read");
        response.trim().to_string()
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "statleak-serve-test-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn serves_ping_stats_and_drains_on_shutdown_request() {
        static SHUTDOWN: AtomicBool = AtomicBool::new(false);
        let config = ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            queue_depth: 4,
            ..Default::default()
        };
        let server = Server::bind(&config, &SHUTDOWN).expect("bind");
        let addr = server.local_addr();
        let handle = std::thread::spawn(move || server.run().expect("run"));

        let pong = request(addr, r#"{"id":1,"op":"ping"}"#);
        assert_eq!(
            pong,
            r#"{"id":1,"ok":true,"op":"ping","data":{"pong":true}}"#
        );

        // A real analysis request on the smallest circuit.
        let comparison = request(
            addr,
            r#"{"id":2,"op":"comparison","benchmark":"c17","mc_samples":0}"#,
        );
        assert!(comparison.contains(r#""ok":true"#), "{comparison}");
        assert!(
            comparison.contains(r#""stat_extra_saving""#),
            "{comparison}"
        );

        // Same request again: cache hit, memo hit, byte-identical modulo
        // the runtime_s bookkeeping fields.
        let again = request(
            addr,
            r#"{"id":2,"op":"comparison","benchmark":"c17","mc_samples":0}"#,
        );
        assert_eq!(comparison, again);

        let stats = request(addr, r#"{"id":3,"op":"stats"}"#);
        assert!(stats.contains(r#""hits":1"#), "{stats}");
        assert!(stats.contains(r#""misses":1"#), "{stats}");
        // No store, no ring configured.
        assert!(stats.contains(r#""store":null"#), "{stats}");
        assert!(stats.contains(r#""ring":null"#), "{stats}");

        let bad = request(addr, r#"{"id":4,"op":"comparison","benchmark":"c9999"}"#);
        assert!(bad.contains(r#""class":"unknown-benchmark""#), "{bad}");

        let garbage = request(addr, "not json");
        assert!(garbage.contains(r#""class":"usage""#), "{garbage}");

        let ack = request(addr, r#"{"id":5,"op":"shutdown"}"#);
        assert!(ack.contains(r#""draining":true"#), "{ack}");
        let report = handle.join().expect("server thread");
        assert_eq!(report.served, 2);
        assert_eq!(report.request_errors, 1);
        assert_eq!(report.protocol_errors, 1);
        assert!(report.connections >= 6);
        SHUTDOWN.store(false, Ordering::SeqCst);
    }

    #[test]
    fn expired_deadline_is_reported_not_executed() {
        static SHUTDOWN: AtomicBool = AtomicBool::new(false);
        let config = ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 1,
            queue_depth: 8,
            ..Default::default()
        };
        let server = Server::bind(&config, &SHUTDOWN).expect("bind");
        let addr = server.local_addr();
        let handle = std::thread::spawn(move || server.run().expect("run"));

        // Occupy the single worker, then trail a request whose deadline
        // has certainly passed by the time the worker frees up.
        let busy_conn = std::thread::spawn(move || {
            request(
                addr,
                r#"{"id":"slow","op":"mc_validation","benchmark":"c432","mc_samples":20000}"#,
            )
        });
        std::thread::sleep(Duration::from_millis(150));
        let expired = request(
            addr,
            r#"{"id":"late","op":"comparison","benchmark":"c17","mc_samples":0,"deadline_ms":1}"#,
        );
        assert!(expired.contains(r#""class":"deadline""#), "{expired}");
        let slow = busy_conn.join().expect("slow request");
        assert!(slow.contains(r#""ok":true"#), "{slow}");

        request(addr, r#"{"op":"shutdown"}"#);
        let report = handle.join().expect("server thread");
        assert_eq!(report.deadline_expired, 1);
        SHUTDOWN.store(false, Ordering::SeqCst);
    }

    #[test]
    fn late_finishing_request_is_answered_but_marked() {
        static SHUTDOWN: AtomicBool = AtomicBool::new(false);
        let config = ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 1,
            queue_depth: 8,
            ..Default::default()
        };
        let server = Server::bind(&config, &SHUTDOWN).expect("bind");
        let addr = server.local_addr();
        let handle = std::thread::spawn(move || server.run().expect("run"));

        // The deadline is alive at dequeue (nothing is queued ahead) but
        // certainly expired once the MC run finishes: the response must
        // arrive, marked.
        let late = request(
            addr,
            r#"{"id":"m","op":"mc_validation","benchmark":"c432","mc_samples":20000,"deadline_ms":1}"#,
        );
        assert!(late.contains(r#""ok":true"#), "{late}");
        assert!(late.contains(r#""deadline_exceeded":true"#), "{late}");

        request(addr, r#"{"op":"shutdown"}"#);
        let report = handle.join().expect("server thread");
        assert_eq!(report.deadline_expired, 1);
        assert_eq!(report.served, 1);
        SHUTDOWN.store(false, Ordering::SeqCst);
    }

    #[test]
    fn batch_acquires_one_session_and_answers_every_item() {
        static SHUTDOWN: AtomicBool = AtomicBool::new(false);
        let config = ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            queue_depth: 16,
            ..Default::default()
        };
        let server = Server::bind(&config, &SHUTDOWN).expect("bind");
        let addr = server.local_addr();
        let handle = std::thread::spawn(move || server.run().expect("run"));

        let batch = request(
            addr,
            r#"{"id":"b1","op":"batch","benchmark":"c17","mc_samples":0,"items":[{"op":"comparison"},{"op":"distribution","bins":8},{"op":"sweep","axis":"slack_factor","values":[1.2,1.4]}]}"#,
        );
        assert!(batch.contains(r#""ok":true"#), "{batch}");
        assert!(batch.contains(r#""count":3"#), "{batch}");
        assert!(batch.contains(r#""item_errors":0"#), "{batch}");
        assert!(batch.contains(r#""stat_extra_saving""#), "{batch}");
        assert_eq!(batch.matches(r#""ok":true"#).count(), 4, "{batch}");

        // One config, three items: the session must be prepared once.
        let stats = request(addr, r#"{"op":"stats"}"#);
        assert!(stats.contains(r#""misses":1"#), "{stats}");

        // Batches memoize like single requests: identical re-send.
        let again = request(
            addr,
            r#"{"id":"b1","op":"batch","benchmark":"c17","mc_samples":0,"items":[{"op":"comparison"},{"op":"distribution","bins":8},{"op":"sweep","axis":"slack_factor","values":[1.2,1.4]}]}"#,
        );
        assert_eq!(batch, again);

        request(addr, r#"{"op":"shutdown"}"#);
        let report = handle.join().expect("server thread");
        assert_eq!(report.served, 2);
        assert_eq!(report.request_errors, 0);
        SHUTDOWN.store(false, Ordering::SeqCst);
    }

    #[test]
    fn store_answers_repeats_without_a_session() {
        static SHUTDOWN: AtomicBool = AtomicBool::new(false);
        let dir = tmp_dir("warm");
        let config = ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 1,
            queue_depth: 8,
            store_dir: Some(dir.to_string_lossy().into_owned()),
            ..Default::default()
        };
        let server = Server::bind(&config, &SHUTDOWN).expect("bind");
        let addr = server.local_addr();
        let handle = std::thread::spawn(move || server.run().expect("run"));

        let line = r#"{"id":1,"op":"comparison","benchmark":"c17","mc_samples":0}"#;
        let first = request(addr, line);
        assert!(first.contains(r#""ok":true"#), "{first}");
        assert!(!first.contains(r#""source":"store""#), "{first}");
        let second = request(addr, line);
        assert!(second.contains(r#""source":"store""#), "{second}");
        let stats = request(addr, r#"{"op":"stats"}"#);
        assert!(stats.contains(r#""stores":1"#), "{stats}");
        // The repeat was served from disk before any session lookup: the
        // engine saw exactly one request.
        assert!(stats.contains(r#""misses":1"#), "{stats}");
        assert!(stats.contains(r#""hits":0"#), "{stats}");

        request(addr, r#"{"op":"shutdown"}"#);
        handle.join().expect("server thread");
        SHUTDOWN.store(false, Ordering::SeqCst);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn routes_sessions_and_rejects_wrong_shard() {
        static SHUTDOWN: AtomicBool = AtomicBool::new(false);
        // Work out which of two nodes owns the c17 session, then start a
        // server claiming to be the OTHER node.
        let line = r#"{"id":7,"op":"comparison","benchmark":"c17","mc_samples":0}"#;
        let parsed = proto::parse_request(line).expect("parse");
        let cfg = proto::op_config(&parsed.op).expect("analysis op").clone();
        let key = session_key(&cfg).expect("session key");
        let nodes = vec!["a:1".to_string(), "b:1".to_string()];
        let ring = Ring::new(&nodes, DEFAULT_REPLICAS).expect("ring");
        let owner = ring.shard_of(key).to_string();
        let other = nodes.iter().find(|n| **n != owner).expect("two nodes");

        let config = ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 1,
            queue_depth: 4,
            ring: nodes.clone(),
            self_node: Some(other.clone()),
            ..Default::default()
        };
        let server = Server::bind(&config, &SHUTDOWN).expect("bind");
        let addr = server.local_addr();
        let handle = std::thread::spawn(move || server.run().expect("run"));

        // The analysis op is rejected with the owner's name.
        let rejected = request(addr, line);
        assert!(rejected.contains(r#""class":"wrong-shard""#), "{rejected}");
        assert!(
            rejected.contains(&format!(r#""shard":"{owner}""#)),
            "{rejected}"
        );

        // `route` resolves the same owner, flagged non-local.
        let routed = request(addr, r#"{"op":"route","benchmark":"c17","mc_samples":0}"#);
        assert!(
            routed.contains(&format!(r#""shard":"{owner}""#)),
            "{routed}"
        );
        assert!(routed.contains(r#""local":false"#), "{routed}");

        // A request-supplied single-node ring routes everything there.
        let override_ring = request(
            addr,
            r#"{"op":"route","benchmark":"c17","ring":["solo:9"]}"#,
        );
        assert!(
            override_ring.contains(r#""shard":"solo:9""#),
            "{override_ring}"
        );

        request(addr, r#"{"op":"shutdown"}"#);
        let report = handle.join().expect("server thread");
        assert_eq!(report.wrong_shard, 1);
        SHUTDOWN.store(false, Ordering::SeqCst);

        // A self node outside the ring is a bind-time error.
        static SHUTDOWN2: AtomicBool = AtomicBool::new(false);
        let bad = ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            ring: nodes,
            self_node: Some("stranger".to_string()),
            ..Default::default()
        };
        assert!(Server::bind(&bad, &SHUTDOWN2).is_err());
    }

    #[test]
    fn traced_requests_echo_ids_and_write_the_access_log() {
        static SHUTDOWN: AtomicBool = AtomicBool::new(false);
        let dir = tmp_dir("audit");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let log_path = dir.join("access.log");
        let config = ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            queue_depth: 16,
            access_log: Some(log_path.to_string_lossy().into_owned()),
            ..Default::default()
        };
        let server = Server::bind(&config, &SHUTDOWN).expect("bind");
        let addr = server.local_addr();
        let handle = std::thread::spawn(move || server.run().expect("run"));

        // A client-supplied trace id is echoed zero-padded to 32 digits.
        let hex = "00000000000000000000000000000abc";
        let traced = request(
            addr,
            r#"{"id":1,"op":"comparison","benchmark":"c17","mc_samples":0,"trace":{"trace_id":"abc"}}"#,
        );
        assert!(traced.contains(r#""ok":true"#), "{traced}");
        assert!(
            traced.contains(&format!(r#""trace_id":"{hex}""#)),
            "{traced}"
        );

        // Untraced requests stay byte-identical to the pre-trace wire
        // format: the server originates an id internally but never echoes.
        let untraced = request(
            addr,
            r#"{"id":2,"op":"comparison","benchmark":"c17","mc_samples":0}"#,
        );
        assert!(untraced.contains(r#""ok":true"#), "{untraced}");
        assert!(!untraced.contains("trace_id"), "{untraced}");

        // A traced batch: the envelope id rides into every item record.
        let batch = request(
            addr,
            r#"{"id":"b","op":"batch","benchmark":"c17","mc_samples":0,"trace":{"trace_id":"abc"},"items":[{"op":"comparison"},{"op":"distribution","bins":8}]}"#,
        );
        assert!(batch.contains(r#""ok":true"#), "{batch}");
        assert!(batch.contains(&format!(r#""trace_id":"{hex}""#)), "{batch}");

        request(addr, r#"{"op":"shutdown"}"#);
        handle.join().expect("server thread");
        SHUTDOWN.store(false, Ordering::SeqCst);

        let text = std::fs::read_to_string(&log_path).expect("access log");
        let lines: Vec<&str> = text.lines().collect();
        // 1 cold + 1 cache + batch envelope + 2 batch items.
        assert_eq!(lines.len(), 5, "{text}");
        for line in &lines {
            assert!(Json::parse(line).is_ok(), "{line}");
        }
        assert!(
            lines[0].contains(&format!(r#""trace_id":"{hex}""#)),
            "{}",
            lines[0]
        );
        assert!(lines[0].contains(r#""outcome":"cold""#), "{}", lines[0]);
        assert!(lines[0].contains(r#""queue_wait_ns""#), "{}", lines[0]);
        assert!(lines[0].contains(r#""service_ns""#), "{}", lines[0]);
        assert!(lines[0].contains(r#""session_key""#), "{}", lines[0]);
        // The untraced repeat was a cache hit, audited under a
        // server-originated id.
        assert!(lines[1].contains(r#""outcome":"cache""#), "{}", lines[1]);
        assert!(!lines[1].contains(hex), "{}", lines[1]);
        // Batch items carry the envelope's trace id and their index; the
        // envelope record itself has no index.
        let items: Vec<&&str> = lines.iter().filter(|l| l.contains("batch_index")).collect();
        assert_eq!(items.len(), 2, "{text}");
        for item in items {
            assert!(item.contains(&format!(r#""trace_id":"{hex}""#)), "{item}");
            assert!(item.contains(r#""outcome":"cache""#), "{item}");
        }
        let envelope = lines
            .iter()
            .find(|l| l.contains(r#""op":"batch""#))
            .expect("batch envelope record");
        assert!(
            envelope.contains(&format!(r#""trace_id":"{hex}""#)),
            "{envelope}"
        );
        assert!(!envelope.contains("batch_index"), "{envelope}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
