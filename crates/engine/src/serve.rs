//! `statleak serve` — a long-running TCP daemon over the cached engine.
//!
//! Transport: plain `std::net` TCP, newline-delimited JSON (one request
//! per line, one response line per request, in order per connection). No
//! async runtime: a nonblocking accept loop hands each connection to a
//! thread, analysis ops flow through a bounded queue into a fixed worker
//! pool, and control ops (`ping`/`stats`/`shutdown`) are answered inline
//! so they stay responsive under load.
//!
//! Load shedding is explicit rather than implicit: once the queue reaches
//! the configured high-water mark a request is rejected immediately with
//! a typed `busy` error, and a request that waits in the queue past its
//! deadline is answered `deadline` instead of silently running late.
//!
//! Shutdown is cooperative: when the shutdown flag flips (SIGTERM in the
//! CLI, or a `shutdown` request), the listener stops accepting, queued
//! and in-flight requests drain to completion, every response is written,
//! and [`Server::run`] returns its final [`ServeReport`].

use crate::json::Json;
use crate::proto::{self, Op, ProtoError, Request};
use crate::session::Engine;
use statleak_obs as obs;
use std::collections::{BTreeMap, VecDeque};
use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// How often blocked loops re-check the shutdown flag.
const POLL: Duration = Duration::from_millis(50);

/// Server configuration.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:7878` (`:0` picks an ephemeral port;
    /// read it back from [`Server::local_addr`]).
    pub addr: String,
    /// Worker threads executing analysis ops (0 = available parallelism,
    /// capped at 8).
    pub workers: usize,
    /// Queue high-water mark: requests beyond this many *queued* (not yet
    /// executing) are rejected with a `busy` error.
    pub queue_depth: usize,
    /// Default per-request queue deadline; `None` = wait forever unless
    /// the request carries its own `deadline_ms`.
    pub default_deadline_ms: Option<u64>,
    /// Capacity of the session LRU cache.
    pub cache_capacity: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:7878".to_string(),
            workers: 0,
            queue_depth: 64,
            default_deadline_ms: None,
            cache_capacity: crate::session::DEFAULT_CACHE_CAPACITY,
        }
    }
}

/// Final counters returned by [`Server::run`] after a drain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServeReport {
    /// Requests answered successfully.
    pub served: u64,
    /// Requests that failed in the flow (infeasible targets etc.).
    pub request_errors: u64,
    /// Requests shed at the high-water mark.
    pub busy_rejected: u64,
    /// Requests whose queue wait exceeded their deadline.
    pub deadline_expired: u64,
    /// Lines that failed to parse as protocol requests.
    pub protocol_errors: u64,
    /// Connections accepted over the server's lifetime.
    pub connections: u64,
}

struct Job {
    request: Request,
    accepted: Instant,
    deadline: Option<Duration>,
    reply: mpsc::Sender<String>,
}

struct Shared {
    engine: Engine,
    queue: Mutex<VecDeque<Job>>,
    queue_cv: Condvar,
    queue_depth: usize,
    default_deadline: Option<Duration>,
    workers: usize,
    started: Instant,
    shutdown: &'static AtomicBool,
    served: AtomicU64,
    /// Per-op request counts (every parsed request, control ops included).
    op_counts: Mutex<BTreeMap<&'static str, u64>>,
    /// High-water mark of the queue length actually observed.
    max_queued: AtomicU64,
    request_errors: AtomicU64,
    busy_rejected: AtomicU64,
    deadline_expired: AtomicU64,
    protocol_errors: AtomicU64,
    connections: AtomicU64,
}

impl Shared {
    fn draining(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    fn report(&self) -> ServeReport {
        ServeReport {
            served: self.served.load(Ordering::Relaxed),
            request_errors: self.request_errors.load(Ordering::Relaxed),
            busy_rejected: self.busy_rejected.load(Ordering::Relaxed),
            deadline_expired: self.deadline_expired.load(Ordering::Relaxed),
            protocol_errors: self.protocol_errors.load(Ordering::Relaxed),
            connections: self.connections.load(Ordering::Relaxed),
        }
    }

    fn stats_json(&self) -> Json {
        let r = self.report();
        Json::obj(vec![
            ("cache", proto::cache_stats_json(&self.engine.cache_stats())),
            (
                "server",
                Json::obj(vec![
                    ("served", Json::Num(r.served as f64)),
                    ("request_errors", Json::Num(r.request_errors as f64)),
                    ("busy_rejected", Json::Num(r.busy_rejected as f64)),
                    ("deadline_expired", Json::Num(r.deadline_expired as f64)),
                    ("protocol_errors", Json::Num(r.protocol_errors as f64)),
                    ("connections", Json::Num(r.connections as f64)),
                    (
                        "queued",
                        Json::Num(self.queue.lock().expect("queue lock").len() as f64),
                    ),
                    (
                        "max_queued",
                        Json::Num(self.max_queued.load(Ordering::Relaxed) as f64),
                    ),
                    ("workers", Json::Num(self.workers as f64)),
                    ("queue_depth", Json::Num(self.queue_depth as f64)),
                    ("uptime_s", Json::Num(self.started.elapsed().as_secs_f64())),
                    ("draining", Json::Bool(self.draining())),
                ]),
            ),
            (
                "ops",
                Json::Obj(
                    self.op_counts
                        .lock()
                        .expect("op counts lock")
                        .iter()
                        .map(|(&name, &count)| (name.to_string(), Json::Num(count as f64)))
                        .collect(),
                ),
            ),
        ])
    }
}

/// A bound, not-yet-running server. Splitting bind from run lets callers
/// learn the actual port (ephemeral binds) before the accept loop blocks.
pub struct Server {
    listener: TcpListener,
    local_addr: SocketAddr,
    shared: Arc<Shared>,
}

impl Server {
    /// Binds the listener and sizes the worker pool.
    ///
    /// The `shutdown` flag is the drain trigger: the CLI points it at a
    /// static that its SIGTERM handler sets; a `shutdown` request sets the
    /// same flag from inside the protocol.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn bind(config: &ServeConfig, shutdown: &'static AtomicBool) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let workers = if config.workers == 0 {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(2)
                .min(8)
        } else {
            config.workers
        };
        let shared = Arc::new(Shared {
            engine: Engine::new(config.cache_capacity),
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            queue_depth: config.queue_depth.max(1),
            default_deadline: config.default_deadline_ms.map(Duration::from_millis),
            workers,
            started: Instant::now(),
            shutdown,
            served: AtomicU64::new(0),
            op_counts: Mutex::new(BTreeMap::new()),
            max_queued: AtomicU64::new(0),
            request_errors: AtomicU64::new(0),
            busy_rejected: AtomicU64::new(0),
            deadline_expired: AtomicU64::new(0),
            protocol_errors: AtomicU64::new(0),
            connections: AtomicU64::new(0),
        });
        Ok(Server {
            listener,
            local_addr,
            shared,
        })
    }

    /// The bound address (resolves `:0` ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Runs accept/worker loops until the shutdown flag flips, then drains
    /// in-flight requests and returns the final counters.
    ///
    /// # Errors
    ///
    /// Propagates unexpected accept-loop I/O failures.
    pub fn run(self) -> std::io::Result<ServeReport> {
        let Server {
            listener, shared, ..
        } = self;

        let mut worker_handles = Vec::new();
        for i in 0..shared.workers {
            let shared = shared.clone();
            worker_handles.push(
                std::thread::Builder::new()
                    .name(format!("statleak-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn worker thread"),
            );
        }

        let mut conn_handles: Vec<std::thread::JoinHandle<()>> = Vec::new();
        while !shared.draining() {
            match listener.accept() {
                Ok((stream, _peer)) => {
                    shared.connections.fetch_add(1, Ordering::Relaxed);
                    let shared = shared.clone();
                    conn_handles.push(
                        std::thread::Builder::new()
                            .name("statleak-conn".to_string())
                            .spawn(move || handle_connection(stream, &shared))
                            .expect("spawn connection thread"),
                    );
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => std::thread::sleep(POLL),
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
            // Reap finished connection threads so the handle list stays
            // bounded on long runs.
            conn_handles = reap(conn_handles);
        }

        // Drain: stop accepting (listener drops below), let connection
        // threads finish their in-flight request, then let workers empty
        // the queue.
        drop(listener);
        for handle in conn_handles {
            let _ = handle.join();
        }
        shared.queue_cv.notify_all();
        for handle in worker_handles {
            let _ = handle.join();
        }
        Ok(shared.report())
    }
}

fn reap(handles: Vec<std::thread::JoinHandle<()>>) -> Vec<std::thread::JoinHandle<()>> {
    handles
        .into_iter()
        .filter_map(|h| {
            if h.is_finished() {
                let _ = h.join();
                None
            } else {
                Some(h)
            }
        })
        .collect()
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut queue = shared.queue.lock().expect("queue lock");
            loop {
                if let Some(job) = queue.pop_front() {
                    break Some(job);
                }
                if shared.draining() {
                    break None;
                }
                let (q, _) = shared
                    .queue_cv
                    .wait_timeout(queue, POLL)
                    .expect("queue lock");
                queue = q;
            }
        };
        let Some(job) = job else { return };
        let line = process(shared, &job);
        // A dropped receiver just means the client hung up mid-request.
        let _ = job.reply.send(line);
    }
}

fn process(shared: &Shared, job: &Job) -> String {
    let _span = obs::span!("serve.process");
    let id = &job.request.id;
    obs::histogram!("serve_queue_wait_ns").record_duration(job.accepted.elapsed());
    if let Some(deadline) = job.deadline {
        if job.accepted.elapsed() > deadline {
            shared.deadline_expired.fetch_add(1, Ordering::Relaxed);
            obs::counter!("serve_deadline_expired_total").inc();
            return proto::err_response(
                id,
                &ProtoError {
                    class: "deadline",
                    message: format!(
                        "request waited {:.0} ms, past its {:.0} ms deadline",
                        job.accepted.elapsed().as_secs_f64() * 1e3,
                        deadline.as_secs_f64() * 1e3
                    ),
                },
            );
        }
    }
    let Some(cfg) = proto::op_config(&job.request.op) else {
        // Control ops never reach the queue (see handle_connection).
        shared.request_errors.fetch_add(1, Ordering::Relaxed);
        return proto::err_response(
            id,
            &ProtoError {
                class: "internal",
                message: "control op routed to worker pool".to_string(),
            },
        );
    };
    let service_start = Instant::now();
    let result = shared
        .engine
        .session(cfg)
        .map_err(|e| ProtoError::from_flow(&e))
        .and_then(|session| proto::execute(&session, &job.request.op));
    obs::histogram!("serve_service_ns").record_duration(service_start.elapsed());
    match result {
        Ok(data) => {
            shared.served.fetch_add(1, Ordering::Relaxed);
            obs::counter!("serve_served_total").inc();
            proto::ok_response(id, job.request.op.name(), data)
        }
        Err(e) => {
            shared.request_errors.fetch_add(1, Ordering::Relaxed);
            obs::counter!("serve_request_errors_total").inc();
            proto::err_response(id, &e)
        }
    }
}

fn handle_connection(stream: TcpStream, shared: &Shared) {
    // Short read timeouts turn the blocking reader into a poll loop that
    // notices the drain flag; writes stay blocking.
    if stream.set_read_timeout(Some(POLL)).is_err() {
        return;
    }
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        if shared.draining() {
            // In-flight work (below) has already been answered; close.
            return;
        }
        line.clear();
        match read_line_polled(&mut reader, &mut line, shared) {
            ReadOutcome::Closed => return,
            ReadOutcome::Drain => return,
            ReadOutcome::Line => {}
        }
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let response = dispatch(trimmed, shared);
        if writer
            .write_all(response.as_bytes())
            .and_then(|()| writer.write_all(b"\n"))
            .and_then(|()| writer.flush())
            .is_err()
        {
            return;
        }
    }
}

enum ReadOutcome {
    /// A full line is in the buffer.
    Line,
    /// The peer closed the connection.
    Closed,
    /// The server is draining; stop reading.
    Drain,
}

fn read_line_polled(
    reader: &mut BufReader<TcpStream>,
    line: &mut String,
    shared: &Shared,
) -> ReadOutcome {
    loop {
        match reader.read_line(line) {
            Ok(0) => return ReadOutcome::Closed,
            Ok(_) => return ReadOutcome::Line,
            Err(e)
                if matches!(
                    e.kind(),
                    ErrorKind::WouldBlock | ErrorKind::TimedOut | ErrorKind::Interrupted
                ) =>
            {
                // Partial data read so far stays appended to `line`;
                // keep polling until the newline arrives or we drain.
                if shared.draining() {
                    return ReadOutcome::Drain;
                }
            }
            Err(_) => return ReadOutcome::Closed,
        }
    }
}

fn dispatch(line: &str, shared: &Shared) -> String {
    let request = match proto::parse_request(line) {
        Ok(r) => r,
        Err((e, id)) => {
            shared.protocol_errors.fetch_add(1, Ordering::Relaxed);
            obs::counter!("serve_protocol_errors_total").inc();
            return proto::err_response(&id, &e);
        }
    };
    *shared
        .op_counts
        .lock()
        .expect("op counts lock")
        .entry(request.op.name())
        .or_insert(0) += 1;
    obs::counter!("serve_requests_total").inc();
    let id = request.id.clone();
    match &request.op {
        // Control ops answer inline: they must stay responsive while the
        // worker pool is saturated with long optimizations.
        Op::Ping => proto::ok_response(&id, "ping", Json::obj(vec![("pong", Json::Bool(true))])),
        Op::Stats => proto::ok_response(&id, "stats", shared.stats_json()),
        Op::Metrics => proto::ok_response(
            &id,
            "metrics",
            proto::obs_metrics_json(&obs::Registry::global().snapshot()),
        ),
        Op::MetricsText => proto::ok_response(
            &id,
            "metrics_text",
            Json::obj(vec![
                ("content_type", Json::str("text/plain; version=0.0.4")),
                ("text", Json::str(obs::Registry::global().prometheus_text())),
            ]),
        ),
        Op::Shutdown => {
            shared.shutdown.store(true, Ordering::SeqCst);
            proto::ok_response(
                &id,
                "shutdown",
                Json::obj(vec![("draining", Json::Bool(true))]),
            )
        }
        _ => {
            if shared.draining() {
                return proto::err_response(
                    &id,
                    &ProtoError {
                        class: "shutdown",
                        message: "server is draining; request rejected".to_string(),
                    },
                );
            }
            let deadline = request
                .deadline_ms
                .map(Duration::from_millis)
                .or(shared.default_deadline);
            let (tx, rx) = mpsc::channel();
            {
                let mut queue = shared.queue.lock().expect("queue lock");
                if queue.len() >= shared.queue_depth {
                    shared.busy_rejected.fetch_add(1, Ordering::Relaxed);
                    obs::counter!("serve_busy_rejected_total").inc();
                    return proto::err_response(
                        &id,
                        &ProtoError {
                            class: "busy",
                            message: format!(
                                "queue at high-water mark ({} requests); retry later",
                                shared.queue_depth
                            ),
                        },
                    );
                }
                queue.push_back(Job {
                    request,
                    accepted: Instant::now(),
                    deadline,
                    reply: tx,
                });
                shared
                    .max_queued
                    .fetch_max(queue.len() as u64, Ordering::Relaxed);
            }
            shared.queue_cv.notify_one();
            // Block until a worker answers; the worker pool always drains
            // the queue (even during shutdown), so this terminates.
            match rx.recv() {
                Ok(response) => response,
                Err(_) => proto::err_response(
                    &id,
                    &ProtoError {
                        class: "internal",
                        message: "worker dropped the request".to_string(),
                    },
                ),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufRead;

    fn request(addr: SocketAddr, line: &str) -> String {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .write_all(format!("{line}\n").as_bytes())
            .expect("write");
        let mut reader = BufReader::new(stream);
        let mut response = String::new();
        reader.read_line(&mut response).expect("read");
        response.trim().to_string()
    }

    #[test]
    fn serves_ping_stats_and_drains_on_shutdown_request() {
        static SHUTDOWN: AtomicBool = AtomicBool::new(false);
        let config = ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            queue_depth: 4,
            ..Default::default()
        };
        let server = Server::bind(&config, &SHUTDOWN).expect("bind");
        let addr = server.local_addr();
        let handle = std::thread::spawn(move || server.run().expect("run"));

        let pong = request(addr, r#"{"id":1,"op":"ping"}"#);
        assert_eq!(
            pong,
            r#"{"id":1,"ok":true,"op":"ping","data":{"pong":true}}"#
        );

        // A real analysis request on the smallest circuit.
        let comparison = request(
            addr,
            r#"{"id":2,"op":"comparison","benchmark":"c17","mc_samples":0}"#,
        );
        assert!(comparison.contains(r#""ok":true"#), "{comparison}");
        assert!(
            comparison.contains(r#""stat_extra_saving""#),
            "{comparison}"
        );

        // Same request again: cache hit, memo hit, byte-identical modulo
        // the runtime_s bookkeeping fields.
        let again = request(
            addr,
            r#"{"id":2,"op":"comparison","benchmark":"c17","mc_samples":0}"#,
        );
        assert_eq!(comparison, again);

        let stats = request(addr, r#"{"id":3,"op":"stats"}"#);
        assert!(stats.contains(r#""hits":1"#), "{stats}");
        assert!(stats.contains(r#""misses":1"#), "{stats}");

        let bad = request(addr, r#"{"id":4,"op":"comparison","benchmark":"c9999"}"#);
        assert!(bad.contains(r#""class":"unknown-benchmark""#), "{bad}");

        let garbage = request(addr, "not json");
        assert!(garbage.contains(r#""class":"usage""#), "{garbage}");

        let ack = request(addr, r#"{"id":5,"op":"shutdown"}"#);
        assert!(ack.contains(r#""draining":true"#), "{ack}");
        let report = handle.join().expect("server thread");
        assert_eq!(report.served, 2);
        assert_eq!(report.request_errors, 1);
        assert_eq!(report.protocol_errors, 1);
        assert!(report.connections >= 6);
        SHUTDOWN.store(false, Ordering::SeqCst);
    }

    #[test]
    fn expired_deadline_is_reported_not_executed() {
        static SHUTDOWN: AtomicBool = AtomicBool::new(false);
        let config = ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 1,
            queue_depth: 8,
            ..Default::default()
        };
        let server = Server::bind(&config, &SHUTDOWN).expect("bind");
        let addr = server.local_addr();
        let handle = std::thread::spawn(move || server.run().expect("run"));

        // Occupy the single worker, then trail a request whose deadline
        // has certainly passed by the time the worker frees up.
        let busy_conn = std::thread::spawn(move || {
            request(
                addr,
                r#"{"id":"slow","op":"mc_validation","benchmark":"c432","mc_samples":20000}"#,
            )
        });
        std::thread::sleep(Duration::from_millis(150));
        let expired = request(
            addr,
            r#"{"id":"late","op":"comparison","benchmark":"c17","mc_samples":0,"deadline_ms":1}"#,
        );
        assert!(expired.contains(r#""class":"deadline""#), "{expired}");
        let slow = busy_conn.join().expect("slow request");
        assert!(slow.contains(r#""ok":true"#), "{slow}");

        request(addr, r#"{"op":"shutdown"}"#);
        let report = handle.join().expect("server thread");
        assert_eq!(report.deadline_expired, 1);
        SHUTDOWN.store(false, Ordering::SeqCst);
    }
}
