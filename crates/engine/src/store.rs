//! A persistent, crash-safe store of serve results keyed by content hash.
//!
//! Each entry is one flow result (the JSON `data` payload of a serve
//! response) keyed by `(session key, op key)` — the same deterministic
//! content hashes the in-memory cache uses — so a restarted daemon (or a
//! fresh fleet member pointed at a shared directory) answers repeated
//! requests warm without re-running `prepare()` or the flow. Soundness
//! rests on the same property as the memo cache: every flow is
//! deterministic end to end, so the stored bytes are exactly what a cold
//! run would produce.
//!
//! Durability discipline:
//!
//! - **Atomic writes.** An entry is written to a unique temp file in the
//!   store directory, flushed, then renamed over the final name. Readers
//!   never observe a half-written entry; concurrent writers of the same
//!   key converge on one complete entry (last rename wins, and both
//!   payloads are identical by determinism).
//! - **Versioned header.** Every entry starts with a format line, the
//!   keys it claims to hold, the payload length, and an FNV-1a checksum
//!   of the payload. All four are verified on load, as is the claimed key
//!   against the file name.
//! - **Quarantine, not crash.** A truncated, corrupt, or mismatched entry
//!   is moved into the `quarantine/` subdirectory (counted, never
//!   re-read) and treated as a miss. A partial write from a `kill -9`
//!   therefore costs one recompute, never an error or a poisoned cache.

use crate::cache::ContentHasher;
use crate::json::Json;
use statleak_obs as obs;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// First line of every entry; bump the number on incompatible changes.
const FORMAT_LINE: &str = "statleak-store 1";

/// Entries larger than this are refused on write and quarantined on read
/// (a corrupt length field must not trigger a huge allocation).
const MAX_PAYLOAD: usize = 64 << 20;

/// Traffic counters for one [`Store`], surfaced by the serve `stats` op.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StoreStats {
    /// Loads answered from a valid on-disk entry.
    pub hits: u64,
    /// Loads that found no entry.
    pub misses: u64,
    /// Entries written.
    pub stores: u64,
    /// Corrupt entries moved to `quarantine/`.
    pub quarantined: u64,
    /// I/O failures on write (best-effort: the request still succeeds).
    pub write_errors: u64,
}

/// An on-disk result store rooted at one directory.
///
/// Thread-safe: all methods take `&self`; writes go through unique temp
/// files and an atomic rename. Multiple processes may share a directory.
#[derive(Debug)]
pub struct Store {
    dir: PathBuf,
    tmp_counter: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    stores: AtomicU64,
    quarantined: AtomicU64,
    write_errors: AtomicU64,
}

impl Store {
    /// Opens (creating if needed) a store rooted at `dir`.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation failures.
    pub fn open(dir: impl Into<PathBuf>) -> std::io::Result<Store> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        std::fs::create_dir_all(dir.join("quarantine"))?;
        Ok(Store {
            dir,
            tmp_counter: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            stores: AtomicU64::new(0),
            quarantined: AtomicU64::new(0),
            write_errors: AtomicU64::new(0),
        })
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn entry_path(&self, session: u64, op: u64) -> PathBuf {
        self.dir.join(format!("{session:016x}-{op:016x}.entry"))
    }

    /// Loads the payload stored under `(session, op)`, verifying the
    /// header, length, checksum, and claimed keys. Corrupt entries are
    /// quarantined and reported as a miss.
    pub fn load(&self, session: u64, op: u64) -> Option<Json> {
        let path = self.entry_path(session, op);
        let bytes = match std::fs::read(&path) {
            Ok(b) => b,
            Err(_) => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                obs::counter!("store_misses_total").inc();
                return None;
            }
        };
        match parse_entry(&bytes, session, op) {
            Some(payload) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                obs::counter!("store_hits_total").inc();
                Some(payload)
            }
            None => {
                self.quarantine(&path);
                self.misses.fetch_add(1, Ordering::Relaxed);
                obs::counter!("store_misses_total").inc();
                None
            }
        }
    }

    /// Persists `data` under `(session, op)`. Best effort: failures are
    /// counted, never propagated — the in-memory result is still served.
    pub fn save(&self, session: u64, op: u64, data: &Json) {
        if self.try_save(session, op, data).is_ok() {
            self.stores.fetch_add(1, Ordering::Relaxed);
            obs::counter!("store_writes_total").inc();
        } else {
            self.write_errors.fetch_add(1, Ordering::Relaxed);
            obs::counter!("store_write_errors_total").inc();
        }
    }

    fn try_save(&self, session: u64, op: u64, data: &Json) -> std::io::Result<()> {
        let payload = data.to_string();
        if payload.len() > MAX_PAYLOAD {
            return Err(std::io::Error::other("payload exceeds store limit"));
        }
        let entry = render_entry(session, op, &payload);
        // Unique temp name per (process, write): concurrent writers never
        // step on each other's partial data; the rename is the only point
        // where an entry becomes visible, and it is atomic.
        let tmp = self.dir.join(format!(
            ".tmp-{}-{}",
            std::process::id(),
            self.tmp_counter.fetch_add(1, Ordering::Relaxed)
        ));
        let result = (|| {
            let mut file = std::fs::File::create(&tmp)?;
            file.write_all(entry.as_bytes())?;
            file.sync_all()?;
            std::fs::rename(&tmp, self.entry_path(session, op))
        })();
        if result.is_err() {
            let _ = std::fs::remove_file(&tmp);
        }
        result
    }

    /// Moves a corrupt entry aside so it is never re-read; falls back to
    /// deletion if the rename fails (e.g. quarantine dir removed).
    fn quarantine(&self, path: &Path) {
        self.quarantined.fetch_add(1, Ordering::Relaxed);
        obs::counter!("store_quarantined_total").inc();
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("entry");
        let dest = self.dir.join("quarantine").join(format!(
            "{name}.{}-{}",
            std::process::id(),
            self.tmp_counter.fetch_add(1, Ordering::Relaxed)
        ));
        if std::fs::rename(path, &dest).is_err() {
            let _ = std::fs::remove_file(path);
        }
    }

    /// Number of complete entries currently on disk (directory scan; for
    /// stats and tests, not the hot path).
    pub fn len(&self) -> usize {
        std::fs::read_dir(&self.dir)
            .map(|entries| {
                entries
                    .filter_map(Result::ok)
                    .filter(|e| e.path().extension().is_some_and(|ext| ext == "entry"))
                    .count()
            })
            .unwrap_or(0)
    }

    /// Whether the store holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Traffic counters since this handle was opened.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            stores: self.stores.load(Ordering::Relaxed),
            quarantined: self.quarantined.load(Ordering::Relaxed),
            write_errors: self.write_errors.load(Ordering::Relaxed),
        }
    }
}

fn payload_checksum(payload: &str) -> u64 {
    let mut h = ContentHasher::new();
    h.bytes(payload.as_bytes());
    h.finish()
}

fn render_entry(session: u64, op: u64, payload: &str) -> String {
    format!(
        "{FORMAT_LINE}\nkey {session:016x} {op:016x}\nlen {}\nsum {:016x}\n\n{payload}\n",
        payload.len(),
        payload_checksum(payload),
    )
}

/// Parses and fully verifies one entry; `None` means corrupt.
fn parse_entry(bytes: &[u8], session: u64, op: u64) -> Option<Json> {
    let text = std::str::from_utf8(bytes).ok()?;
    let mut lines = text.splitn(5, '\n');
    if lines.next()? != FORMAT_LINE {
        return None;
    }
    let key_line = lines.next()?;
    let mut keys = key_line.strip_prefix("key ")?.split(' ');
    let claimed_session = u64::from_str_radix(keys.next()?, 16).ok()?;
    let claimed_op = u64::from_str_radix(keys.next()?, 16).ok()?;
    if keys.next().is_some() || claimed_session != session || claimed_op != op {
        return None;
    }
    let len: usize = lines.next()?.strip_prefix("len ")?.parse().ok()?;
    if len > MAX_PAYLOAD {
        return None;
    }
    let sum = u64::from_str_radix(lines.next()?.strip_prefix("sum ")?, 16).ok()?;
    let body = lines.next()?;
    // A blank separator line, exactly `len` payload bytes, a trailing
    // newline, nothing else.
    let payload = body.strip_prefix('\n')?.strip_suffix('\n')?;
    if payload.len() != len || payload_checksum(payload) != sum {
        return None;
    }
    Json::parse(payload).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "statleak-store-test-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn payload(x: f64) -> Json {
        Json::obj(vec![("value", Json::Num(x)), ("tag", Json::str("t"))])
    }

    #[test]
    fn round_trips_entries_and_counts_traffic() {
        let dir = tmp_dir("roundtrip");
        let store = Store::open(&dir).unwrap();
        assert!(store.is_empty());
        assert_eq!(store.load(1, 2), None);
        store.save(1, 2, &payload(1.5));
        assert_eq!(store.load(1, 2), Some(payload(1.5)));
        // Distinct op under the same session is a distinct entry.
        store.save(1, 3, &payload(2.5));
        assert_eq!(store.len(), 2);
        let s = store.stats();
        assert_eq!((s.hits, s.misses, s.stores, s.quarantined), (1, 1, 2, 0));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_entries_are_quarantined_not_crashed() {
        let dir = tmp_dir("corrupt");
        let store = Store::open(&dir).unwrap();
        store.save(7, 8, &payload(1.0));
        let path = store.entry_path(7, 8);

        // Truncate mid-payload (simulates a torn write surviving a crash
        // on filesystems without atomic rename durability).
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - 3]).unwrap();
        assert_eq!(store.load(7, 8), None, "truncated entry must miss");
        assert!(!path.exists(), "corrupt entry must be moved aside");
        assert_eq!(store.stats().quarantined, 1);

        // Wrong claimed key (an entry renamed onto the wrong name).
        store.save(7, 9, &payload(2.0));
        std::fs::rename(store.entry_path(7, 9), store.entry_path(7, 8)).unwrap();
        assert_eq!(store.load(7, 8), None, "key mismatch must miss");
        assert_eq!(store.stats().quarantined, 2);

        // Flipped payload byte breaks the checksum.
        store.save(7, 10, &payload(3.0));
        let p = store.entry_path(7, 10);
        let mut bytes = std::fs::read(&p).unwrap();
        let last = bytes.len() - 2;
        bytes[last] = bytes[last].wrapping_add(1);
        std::fs::write(&p, &bytes).unwrap();
        assert_eq!(store.load(7, 10), None, "bad checksum must miss");
        assert_eq!(store.stats().quarantined, 3);

        // A fresh save over a quarantined key works again.
        store.save(7, 8, &payload(4.0));
        assert_eq!(store.load(7, 8), Some(payload(4.0)));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reopening_the_directory_restores_entries() {
        let dir = tmp_dir("reopen");
        {
            let store = Store::open(&dir).unwrap();
            store.save(11, 12, &payload(9.0));
        }
        let store = Store::open(&dir).unwrap();
        assert_eq!(store.load(11, 12), Some(payload(9.0)));
        assert_eq!(store.stats().hits, 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
