//! A consistent-hash ring for coordinator-free session sharding.
//!
//! A fleet of `statleak serve` nodes agrees on a ring — an ordered list
//! of node names and a replica count — and every node independently maps
//! a session's content hash onto the same owner. No coordinator, no
//! shared state: the ring is just configuration, and adding or removing
//! one node moves only the sessions that hashed to it (~1/n of the
//! keyspace), which is what keeps a shared on-disk store and the
//! per-node warm caches stable across fleet resizes.
//!
//! The hash is the same deterministic FNV-1a content hash the session
//! cache uses ([`crate::ContentHasher`]), so every build, platform, and
//! process places the same key on the same node.

use crate::cache::ContentHasher;

/// Default virtual points per node; enough to balance within a few
/// percent on small fleets without noticeable lookup cost.
pub const DEFAULT_REPLICAS: usize = 64;

/// An immutable consistent-hash ring over named nodes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ring {
    nodes: Vec<String>,
    /// `(point, node index)` sorted by point; each node contributes
    /// `replicas` points.
    points: Vec<(u64, usize)>,
    replicas: usize,
}

impl Ring {
    /// Builds a ring over `nodes` with `replicas` virtual points each
    /// (minimum 1). Node order does not matter; duplicates are dropped.
    ///
    /// Returns `None` for an empty node list.
    pub fn new(nodes: &[String], replicas: usize) -> Option<Ring> {
        let mut unique: Vec<String> = Vec::new();
        for n in nodes {
            if !n.is_empty() && !unique.contains(n) {
                unique.push(n.clone());
            }
        }
        if unique.is_empty() {
            return None;
        }
        // Sort the node list itself so rings built from differently
        // ordered configs compare (and hash) identically.
        unique.sort();
        let replicas = replicas.max(1);
        let mut points = Vec::with_capacity(unique.len() * replicas);
        for (i, node) in unique.iter().enumerate() {
            for r in 0..replicas {
                let mut h = ContentHasher::new();
                h.str(node).usize(r);
                points.push((h.finish(), i));
            }
        }
        points.sort_unstable();
        Some(Ring {
            nodes: unique,
            points,
            replicas,
        })
    }

    /// The node that owns `key`: the first point at or after the key,
    /// wrapping around the ring.
    pub fn shard_of(&self, key: u64) -> &str {
        let idx = self.points.partition_point(|&(p, _)| p < key);
        let (_, node) = self.points[idx % self.points.len()];
        &self.nodes[node]
    }

    /// The deduplicated, sorted node names.
    pub fn nodes(&self) -> &[String] {
        &self.nodes
    }

    /// Whether `node` is a member of the ring.
    pub fn contains(&self, node: &str) -> bool {
        self.nodes.iter().any(|n| n == node)
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Always false: empty rings cannot be constructed.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Virtual points per node.
    pub fn replicas(&self) -> usize {
        self.replicas
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names(names: &[&str]) -> Vec<String> {
        names.iter().map(|s| s.to_string()).collect()
    }

    fn key(i: u64) -> u64 {
        let mut h = ContentHasher::new();
        h.usize(i as usize);
        h.finish()
    }

    #[test]
    fn rejects_empty_and_dedups_and_ignores_order() {
        assert_eq!(Ring::new(&[], 64), None);
        assert_eq!(Ring::new(&names(&["", ""]), 64), None);
        let a = Ring::new(&names(&["n1", "n2", "n1"]), 64).unwrap();
        let b = Ring::new(&names(&["n2", "n1"]), 64).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.nodes(), &names(&["n1", "n2"]));
    }

    #[test]
    fn assignment_is_deterministic_and_roughly_balanced() {
        let ring = Ring::new(&names(&["a:7878", "b:7878", "c:7878"]), 64).unwrap();
        let again = Ring::new(&names(&["c:7878", "a:7878", "b:7878"]), 64).unwrap();
        let mut counts = [0usize; 3];
        for i in 0..3000 {
            let owner = ring.shard_of(key(i));
            assert_eq!(owner, again.shard_of(key(i)), "ring must be stable");
            let idx = ring.nodes().iter().position(|n| n == owner).unwrap();
            counts[idx] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                (500..=1800).contains(&c),
                "node {i} owns {c}/3000 keys — ring is badly unbalanced: {counts:?}"
            );
        }
    }

    #[test]
    fn removing_a_node_only_moves_its_own_keys() {
        let full = Ring::new(&names(&["a", "b", "c", "d"]), 64).unwrap();
        let smaller = Ring::new(&names(&["a", "b", "c"]), 64).unwrap();
        let mut moved = 0;
        let total = 4000;
        for i in 0..total {
            let k = key(i);
            let before = full.shard_of(k);
            let after = smaller.shard_of(k);
            if before != "d" {
                // Keys not owned by the removed node must not move — this
                // is the consistency property that keeps warm caches warm
                // across fleet resizes.
                assert_eq!(before, after, "key {i} moved despite owner surviving");
            } else {
                moved += 1;
            }
            assert_ne!(after, "d");
        }
        assert!(
            moved > 0 && moved < total / 2,
            "removed node owned {moved}/{total} keys"
        );
    }
}
