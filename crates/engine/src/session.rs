//! The stateful engine: cached, shareable analysis sessions.
//!
//! [`Engine`] owns a bounded LRU cache of prepared sessions keyed by a
//! content hash of the netlist bytes, the technology model, and the
//! [`FlowConfig`] knobs. A [`Session`] wraps the immutable prepared
//! [`Setup`] behind an `Arc` and exposes every experiment flow as a
//! method; results are memoized per session, so a warm request skips both
//! `prepare()` and the optimization itself.
//!
//! All flows are deterministic (seeded Monte Carlo, ordered reductions),
//! which is what makes memoization sound: a cache hit returns exactly the
//! bytes a cold run would have produced (modulo the wall-clock
//! `runtime_s` bookkeeping fields).

use crate::cache::{ContentHasher, Lru};
use statleak_core::flows::{
    self, AblationRow, ComparisonOutcome, DesignMetrics, DistributionData, FlowConfig, FlowError,
    LibrarySpec, McValidation, Setup, SweepPoint, SweepSpec,
};
use statleak_netlist::{bench, benchmarks};
use statleak_obs as obs;
use statleak_tech::{Design, Technology};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Memoized flow results stop growing past this many entries per session
/// (further distinct requests compute without caching). Sweeps and grids
/// are hashed by their parameter bits, so ordinary clients never get near
/// the bound.
const MEMO_CAP: usize = 128;

/// Cache traffic counters, returned by [`Engine::cache_stats`] and
/// surfaced by the `stats` request of the serve protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Session lookups served from the cache.
    pub hits: u64,
    /// Session lookups that had to run `prepare()`.
    pub misses: u64,
    /// Sessions dropped because the cache was full.
    pub evictions: u64,
    /// Sessions currently cached.
    pub entries: usize,
    /// The configured bound.
    pub capacity: usize,
    /// Flow requests answered from a session's memoized results.
    pub memo_hits: u64,
}

struct SessionInner {
    key: u64,
    cfg: FlowConfig,
    setup: Setup,
    memo: Mutex<HashMap<u64, Arc<OnceLock<MemoValue>>>>,
}

/// Memoized result of one flow operation (errors are deterministic too,
/// so they are cached alongside successes).
#[derive(Clone)]
enum MemoValue {
    Comparison(Box<Result<ComparisonOutcome, FlowError>>),
    Sweep(Result<Vec<SweepPoint>, FlowError>),
    YieldCurves(Result<Vec<(f64, f64, f64, f64)>, FlowError>),
    McValidation(Result<McValidation, FlowError>),
    Distribution(Result<DistributionData, FlowError>),
    Ablation(Result<Vec<AblationRow>, FlowError>),
}

/// A prepared, immutable analysis session over one `(netlist, tech,
/// config)` triple.
///
/// Cheap to clone (an `Arc` bump) and safe to share across threads; all
/// methods take `&self`.
#[derive(Clone)]
pub struct Session {
    inner: Arc<SessionInner>,
    memo_hits: Arc<AtomicU64>,
}

impl std::fmt::Debug for Session {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session")
            .field("key", &format_args!("{:016x}", self.inner.key))
            .field("benchmark", &self.inner.cfg.benchmark)
            .finish()
    }
}

impl Session {
    /// The content-hash cache key this session is stored under.
    pub fn key(&self) -> u64 {
        self.inner.key
    }

    /// The configuration the session was prepared for.
    pub fn config(&self) -> &FlowConfig {
        &self.inner.cfg
    }

    /// The prepared experiment state (circuit, factor model, nominal
    /// sizing, clock target).
    pub fn setup(&self) -> &Setup {
        &self.inner.setup
    }

    /// Fetches or creates the memo slot for `key`; `None` when the memo
    /// table is saturated (the caller computes without caching).
    fn memo_slot(&self, key: u64) -> Option<Arc<OnceLock<MemoValue>>> {
        let mut memo = self.inner.memo.lock().expect("memo lock");
        if let Some(slot) = memo.get(&key) {
            return Some(slot.clone());
        }
        if memo.len() >= MEMO_CAP {
            return None;
        }
        let slot = Arc::new(OnceLock::new());
        memo.insert(key, slot.clone());
        Some(slot)
    }

    /// Memoizes `compute` under `key`. Concurrent callers racing on a
    /// cold slot block until the first finishes, then share its result.
    fn memoized(&self, key: u64, compute: impl FnOnce() -> MemoValue) -> MemoValue {
        match self.memo_slot(key) {
            Some(slot) => {
                if slot.get().is_some() {
                    self.memo_hits.fetch_add(1, Ordering::Relaxed);
                    obs::counter!("engine_memo_hits_total").inc();
                }
                slot.get_or_init(compute).clone()
            }
            None => compute(),
        }
    }

    fn op_key(&self, op: &str, params: impl FnOnce(&mut ContentHasher)) -> u64 {
        let mut h = ContentHasher::new();
        h.str(op);
        params(&mut h);
        h.finish()
    }

    /// The headline three-way comparison (table T2).
    ///
    /// # Errors
    ///
    /// Returns [`FlowError`] on infeasible sizing.
    pub fn run_comparison(&self) -> Result<ComparisonOutcome, FlowError> {
        let key = self.op_key("comparison", |_| {});
        match self.memoized(key, || {
            MemoValue::Comparison(Box::new(flows::run_comparison_on(
                &self.inner.setup,
                &self.inner.cfg,
            )))
        }) {
            MemoValue::Comparison(r) => *r,
            _ => flows::run_comparison_on(&self.inner.setup, &self.inner.cfg),
        }
    }

    /// A parameter sweep over either axis (tables T3/F2, figure F4).
    ///
    /// # Errors
    ///
    /// Propagates [`FlowError`]; infeasible points are skipped.
    pub fn sweep(&self, spec: &SweepSpec) -> Result<Vec<SweepPoint>, FlowError> {
        let key = self.op_key("sweep", |h| {
            h.str(spec.axis());
            for &x in spec.values() {
                h.f64(x);
            }
        });
        match self.memoized(key, || {
            MemoValue::Sweep(flows::sweep_on(&self.inner.setup, &self.inner.cfg, spec))
        }) {
            MemoValue::Sweep(r) => r,
            _ => flows::sweep_on(&self.inner.setup, &self.inner.cfg, spec),
        }
    }

    /// Yield-vs-clock curves (figure F3).
    ///
    /// # Errors
    ///
    /// Propagates [`FlowError`].
    pub fn yield_curves(&self, t_grid: &[f64]) -> Result<Vec<(f64, f64, f64, f64)>, FlowError> {
        let key = self.op_key("yield_curves", |h| {
            for &x in t_grid {
                h.f64(x);
            }
        });
        match self.memoized(key, || {
            MemoValue::YieldCurves(flows::yield_curves_on(
                &self.inner.setup,
                &self.inner.cfg,
                t_grid,
            ))
        }) {
            MemoValue::YieldCurves(r) => r,
            _ => flows::yield_curves_on(&self.inner.setup, &self.inner.cfg, t_grid),
        }
    }

    /// Analytical-vs-Monte-Carlo validation (table T4).
    ///
    /// # Errors
    ///
    /// Propagates [`FlowError`].
    pub fn mc_validation(&self) -> Result<McValidation, FlowError> {
        let key = self.op_key("mc_validation", |_| {});
        match self.memoized(key, || {
            MemoValue::McValidation(flows::mc_validation_on(&self.inner.setup, &self.inner.cfg))
        }) {
            MemoValue::McValidation(r) => r,
            _ => flows::mc_validation_on(&self.inner.setup, &self.inner.cfg),
        }
    }

    /// Leakage-distribution data (figure F1).
    ///
    /// # Errors
    ///
    /// Propagates [`FlowError`].
    pub fn distribution(&self) -> Result<DistributionData, FlowError> {
        let key = self.op_key("distribution", |_| {});
        match self.memoized(key, || {
            MemoValue::Distribution(flows::distribution_on(&self.inner.setup, &self.inner.cfg))
        }) {
            MemoValue::Distribution(r) => r,
            _ => flows::distribution_on(&self.inner.setup, &self.inner.cfg),
        }
    }

    /// Modeling ablations (experiment A1).
    ///
    /// # Errors
    ///
    /// Propagates [`FlowError`].
    pub fn ablation(&self) -> Result<Vec<AblationRow>, FlowError> {
        let key = self.op_key("ablation", |_| {});
        match self.memoized(key, || {
            MemoValue::Ablation(flows::ablation_on(&self.inner.setup, &self.inner.cfg))
        }) {
            MemoValue::Ablation(r) => r,
            _ => flows::ablation_on(&self.inner.setup, &self.inner.cfg),
        }
    }

    /// Measures an arbitrary design against this session's clock target
    /// (no memoization — the design is caller-owned state).
    pub fn measure(&self, design: &Design, runtime_s: f64) -> DesignMetrics {
        flows::measure(
            design,
            &self.inner.setup.fm,
            self.inner.setup.t_clk,
            flows::McSpec::from_config(&self.inner.cfg),
            runtime_s,
        )
    }

    /// Number of memoized flow results currently held.
    pub fn memo_len(&self) -> usize {
        self.inner.memo.lock().expect("memo lock").len()
    }
}

/// A process-wide engine: a bounded LRU cache of prepared [`Session`]s.
///
/// Thread-safe; every method takes `&self`. Use [`Engine::global`] for the
/// shared process-local instance the CLI and one-shot helpers route
/// through, or [`Engine::new`] for an isolated cache (servers, tests).
pub struct Engine {
    cache: Mutex<Lru<Arc<SessionInner>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    memo_hits: Arc<AtomicU64>,
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.cache_stats();
        f.debug_struct("Engine").field("stats", &stats).finish()
    }
}

/// Default capacity of [`Engine::global`] and [`Engine::default`].
pub const DEFAULT_CACHE_CAPACITY: usize = 32;

impl Default for Engine {
    fn default() -> Self {
        Self::new(DEFAULT_CACHE_CAPACITY)
    }
}

impl Engine {
    /// Creates an engine whose cache holds at most `capacity` sessions.
    pub fn new(capacity: usize) -> Self {
        Self {
            cache: Mutex::new(Lru::new(capacity)),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            memo_hits: Arc::new(AtomicU64::new(0)),
        }
    }

    /// The shared process-local engine (capacity
    /// [`DEFAULT_CACHE_CAPACITY`]), created on first use.
    pub fn global() -> &'static Engine {
        static GLOBAL: OnceLock<Engine> = OnceLock::new();
        GLOBAL.get_or_init(Engine::default)
    }

    /// Returns the cached session for `cfg`, preparing (and caching) it on
    /// a miss.
    ///
    /// The cache key is a content hash over the benchmark's netlist bytes
    /// (its `.bench` serialization), the technology parameters, and every
    /// [`FlowConfig`] knob — so two configs that differ only in, say,
    /// `mc_samples` are distinct sessions, while repeated identical
    /// requests share one.
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::UnknownBenchmark`] or a correlation-model
    /// error from `prepare()`.
    pub fn session(&self, cfg: &FlowConfig) -> Result<Session, FlowError> {
        self.session_with_origin(cfg).map(|(session, _)| session)
    }

    /// Like [`Engine::session`], additionally reporting whether the
    /// session came from the cache (`true`) or was prepared cold
    /// (`false`) — the serve audit log's `cache` vs `cold` outcome.
    ///
    /// # Errors
    ///
    /// Same as [`Engine::session`].
    pub fn session_with_origin(&self, cfg: &FlowConfig) -> Result<(Session, bool), FlowError> {
        let key = session_key(cfg)?;
        if let Some(inner) = self.cache.lock().expect("cache lock").get(key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            obs::counter!("engine_cache_hits_total").inc();
            return Ok((self.wrap(inner), true));
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        obs::counter!("engine_cache_misses_total").inc();
        // Build outside the lock: a slow prepare() must not stall lookups
        // of already-cached sessions. Two threads racing on the same cold
        // key both build, and `insert` makes them converge on one copy.
        let setup = flows::prepare(cfg)?;
        let inner = Arc::new(SessionInner {
            key,
            cfg: cfg.clone(),
            setup,
            memo: Mutex::new(HashMap::new()),
        });
        let winner = {
            let mut cache = self.cache.lock().expect("cache lock");
            let (winner, evicted) = cache.insert(key, inner);
            if evicted.is_some() {
                self.evictions.fetch_add(1, Ordering::Relaxed);
                obs::counter!("engine_cache_evictions_total").inc();
            }
            obs::gauge!("engine_cache_sessions").set(cache.len() as f64);
            winner
        };
        Ok((self.wrap(winner), false))
    }

    fn wrap(&self, inner: Arc<SessionInner>) -> Session {
        Session {
            inner,
            memo_hits: self.memo_hits.clone(),
        }
    }

    /// Cache traffic counters.
    pub fn cache_stats(&self) -> CacheStats {
        let cache = self.cache.lock().expect("cache lock");
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: cache.len(),
            capacity: cache.capacity(),
            memo_hits: self.memo_hits.load(Ordering::Relaxed),
        }
    }

    /// Drops every cached session (counters are preserved).
    pub fn clear(&self) {
        self.cache.lock().expect("cache lock").clear();
    }
}

/// Computes the content-hash cache key for a configuration.
///
/// The key covers the netlist content, the technology parameters, every
/// [`FlowConfig`] knob, and the *content identity* of the configured cell
/// library ([`statleak_tech::CellLibrary::id`], which embeds a hash of the `.lib` source
/// for Liberty libraries) — so editing a library file on disk, or pointing
/// two requests at different corners of the same library, never aliases
/// into one cached session.
///
/// # Errors
///
/// Returns [`FlowError::UnknownBenchmark`] if the benchmark name resolves
/// to no built-in circuit, or [`FlowError::Library`] if a configured
/// `.lib` file cannot be loaded.
pub fn session_key(cfg: &FlowConfig) -> Result<u64, FlowError> {
    // Resolve exactly like `flows::prepare`: combinational suite first,
    // then the sequential (FF-cut) suite.
    let circuit = benchmarks::by_name(&cfg.benchmark)
        .or_else(|| benchmarks::sequential_by_name(&cfg.benchmark).map(|(c, _)| c))
        .ok_or_else(|| FlowError::UnknownBenchmark(cfg.benchmark.clone()))?;
    let mut h = ContentHasher::new();
    // Netlist content, not just the name.
    h.str(&bench::write(&circuit));
    // Technology model. `Debug` prints every parameter with full f64
    // round-trip precision, which is exactly the content we want keyed.
    h.str(&format!("{:?}", Technology::ptm100()));
    // Library identity: the builtin id is derived from the technology
    // parameters; a Liberty id embeds the file stem, corner, and a
    // content hash of the `.lib` source.
    match &cfg.library {
        LibrarySpec::Builtin => {
            h.str("library:builtin");
        }
        spec => {
            let library = spec.build(&Technology::ptm100())?;
            h.str("library:");
            h.str(library.id());
        }
    }
    // FlowConfig knobs.
    h.str(&cfg.benchmark);
    h.f64(cfg.slack_factor);
    h.f64(cfg.eta);
    h.usize(cfg.mc_samples);
    h.bool(cfg.wire_loads);
    let v = &cfg.variation;
    h.f64(v.sigma_l_rel);
    h.f64(v.frac_d2d);
    h.f64(v.frac_spatial);
    h.f64(v.frac_local);
    h.f64(v.sigma_vth_rand);
    h.f64(v.corr_length);
    h.usize(v.grid);
    Ok(h.finish())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(benchmark: &str) -> FlowConfig {
        FlowConfig::builder(benchmark)
            .mc_samples(0)
            .build()
            .expect("valid test config")
    }

    #[test]
    fn session_key_separates_configs() {
        let base = session_key(&cfg("c17")).unwrap();
        assert_eq!(base, session_key(&cfg("c17")).unwrap());
        assert_ne!(base, session_key(&cfg("c432")).unwrap());
        let loose = FlowConfig::builder("c17")
            .mc_samples(0)
            .slack_factor(1.5)
            .build()
            .unwrap();
        assert_ne!(base, session_key(&loose).unwrap());
        assert!(matches!(
            session_key(&cfg("c9999")),
            Err(FlowError::UnknownBenchmark(_))
        ));
    }

    #[test]
    fn engine_counts_hits_misses_and_evictions() {
        let engine = Engine::new(2);
        engine.session(&cfg("c17")).unwrap();
        engine.session(&cfg("c17")).unwrap();
        engine.session(&cfg("c432")).unwrap();
        // Third distinct config evicts the LRU entry (c17).
        let wide = FlowConfig::builder("c17")
            .mc_samples(0)
            .eta(0.9)
            .build()
            .unwrap();
        engine.session(&wide).unwrap();
        let s = engine.cache_stats();
        assert_eq!((s.hits, s.misses, s.evictions), (1, 3, 1));
        assert_eq!(s.entries, 2);
        assert_eq!(s.capacity, 2);
        // Re-requesting the evicted config is a miss again.
        engine.session(&cfg("c17")).unwrap();
        assert_eq!(engine.cache_stats().misses, 4);
    }

    #[test]
    fn warm_requests_are_memoized() {
        let engine = Engine::new(4);
        let session = engine.session(&cfg("c17")).unwrap();
        let cold = session.run_comparison().unwrap();
        let warm = session.run_comparison().unwrap();
        assert_eq!(cold, warm);
        assert_eq!(engine.cache_stats().memo_hits, 1);
        assert_eq!(session.memo_len(), 1);
        // A fresh session handle from the cache shares the same memo.
        let again = engine
            .session(&cfg("c17"))
            .unwrap()
            .run_comparison()
            .unwrap();
        assert_eq!(again, cold);
        assert_eq!(engine.cache_stats().memo_hits, 2);
    }

    #[test]
    fn session_results_match_one_shot_flows() {
        let engine = Engine::new(4);
        let config = cfg("c17");
        let session = engine.session(&config).unwrap();
        let setup = flows::prepare(&config).unwrap();
        let curves = session.yield_curves(&[1.0, 1.2]).unwrap();
        assert_eq!(
            curves,
            flows::yield_curves_on(&setup, &config, &[1.0, 1.2]).unwrap()
        );
        let spec = SweepSpec::SlackFactor(vec![1.1, 1.3]);
        assert_eq!(
            session.sweep(&spec).unwrap(),
            flows::sweep_on(&setup, &config, &spec).unwrap()
        );
        let rows = session.ablation().unwrap();
        assert_eq!(rows, flows::ablation_on(&setup, &config).unwrap());
    }
}
