//! Opt-in NDJSON request audit log for `statleak serve` (`--access-log`).
//!
//! One record per request — and one per `batch` item — with the trace id,
//! op, session-key hash, queue-wait and service times, and a stable
//! outcome, so a slow or failed request found in metrics (via a histogram
//! exemplar) or a span stream can be joined to exactly what the server
//! did with it. Records are single JSON lines, flushed per write so
//! `tail -f` and the integration tests see them immediately.
//!
//! | outcome             | meaning                                        |
//! |---------------------|------------------------------------------------|
//! | `cache`             | served from a warm session (engine cache hit)  |
//! | `store`             | served from the on-disk result store           |
//! | `cold`              | session prepared from scratch                  |
//! | `busy`              | shed at the queue high-water mark              |
//! | `deadline_exceeded` | expired in queue before a worker picked it up  |
//! | `wrong-shard`       | redirected to the owning fleet node            |
//! | `error`             | request failed (see `class`)                   |
//!
//! The log rotates by size: when a record would push the file past
//! `max_bytes`, the current file is renamed to `<path>.1` (replacing any
//! previous rotation) and a fresh file is started — a bounded two-file
//! footprint, newest data always in `<path>`.

use std::fs::{File, OpenOptions};
use std::io::{self, BufWriter, Write};
use std::path::PathBuf;
use std::sync::Mutex;
use std::time::{SystemTime, UNIX_EPOCH};

use crate::json::Json;
use statleak_obs::TraceId;

/// Default rotation threshold (64 MiB).
pub const DEFAULT_ACCESS_LOG_MAX_BYTES: u64 = 64 * 1024 * 1024;

/// One audit record, serialized as a single NDJSON line.
#[derive(Debug, Clone)]
pub struct AccessRecord {
    /// Trace id of the request (always present; the server originates
    /// one when the client did not send a `trace` field).
    pub trace_id: TraceId,
    /// Client-chosen request id, echoed as-is.
    pub id: Json,
    /// Wire name of the op (for batch items, the item's op).
    pub op: &'static str,
    /// Stable outcome (see the module table).
    pub outcome: &'static str,
    /// Hex session-key hash, when the request resolved one.
    pub session_key: Option<u64>,
    /// Nanoseconds spent queued before a worker picked the job up.
    pub queue_wait_ns: Option<u64>,
    /// Nanoseconds of execution once dequeued.
    pub service_ns: Option<u64>,
    /// Set when the request was served but finished past its deadline.
    pub deadline_exceeded: bool,
    /// Position within a `batch` request (absent for single requests and
    /// for the batch envelope record itself).
    pub batch_index: Option<usize>,
}

impl AccessRecord {
    fn to_ndjson(&self, ts_ms: u64) -> String {
        let mut pairs = vec![
            ("ts_ms", Json::Num(ts_ms as f64)),
            ("trace_id", Json::str(self.trace_id.to_hex())),
            ("id", self.id.clone()),
            ("op", Json::str(self.op)),
            ("outcome", Json::str(self.outcome)),
        ];
        if let Some(key) = self.session_key {
            pairs.push(("session_key", Json::str(format!("{key:016x}"))));
        }
        if let Some(ns) = self.queue_wait_ns {
            pairs.push(("queue_wait_ns", Json::Num(ns as f64)));
        }
        if let Some(ns) = self.service_ns {
            pairs.push(("service_ns", Json::Num(ns as f64)));
        }
        if self.deadline_exceeded {
            pairs.push(("deadline_exceeded", Json::Bool(true)));
        }
        if let Some(i) = self.batch_index {
            pairs.push(("batch_index", Json::Num(i as f64)));
        }
        Json::obj(pairs).to_string()
    }
}

struct Inner {
    writer: BufWriter<File>,
    bytes: u64,
}

/// Size-rotated NDJSON audit-log writer; cheap to share (`write` takes
/// `&self`), safe from any worker thread.
pub struct AccessLog {
    path: PathBuf,
    max_bytes: u64,
    inner: Mutex<Inner>,
}

impl std::fmt::Debug for AccessLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AccessLog")
            .field("path", &self.path)
            .field("max_bytes", &self.max_bytes)
            .finish()
    }
}

fn open_append(path: &PathBuf) -> io::Result<(BufWriter<File>, u64)> {
    let file = OpenOptions::new().create(true).append(true).open(path)?;
    let bytes = file.metadata()?.len();
    Ok((BufWriter::new(file), bytes))
}

impl AccessLog {
    /// Opens (appending) or creates the log at `path`; rotation triggers
    /// once the file would exceed `max_bytes`.
    pub fn open(path: impl Into<PathBuf>, max_bytes: u64) -> io::Result<AccessLog> {
        let path = path.into();
        let (writer, bytes) = open_append(&path)?;
        Ok(AccessLog {
            path,
            max_bytes: max_bytes.max(1),
            inner: Mutex::new(Inner { writer, bytes }),
        })
    }

    /// The rotated-out sibling path (`<path>.1`).
    pub fn rotated_path(&self) -> PathBuf {
        let mut name = self.path.file_name().unwrap_or_default().to_os_string();
        name.push(".1");
        self.path.with_file_name(name)
    }

    /// Appends one record (with the current wall-clock timestamp),
    /// rotating first if it would exceed the size cap. I/O failures are
    /// reported once per rotation window via the returned error; callers
    /// treat them as non-fatal (the request itself already succeeded).
    pub fn write(&self, record: &AccessRecord) -> io::Result<()> {
        let ts_ms = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_millis() as u64)
            .unwrap_or(0);
        let line = record.to_ndjson(ts_ms);
        let mut inner = self.inner.lock().expect("access log poisoned");
        let len = line.len() as u64 + 1;
        if inner.bytes > 0 && inner.bytes.saturating_add(len) > self.max_bytes {
            inner.writer.flush()?;
            std::fs::rename(&self.path, self.rotated_path())?;
            let (writer, bytes) = open_append(&self.path)?;
            inner.writer = writer;
            inner.bytes = bytes;
        }
        inner.writer.write_all(line.as_bytes())?;
        inner.writer.write_all(b"\n")?;
        inner.writer.flush()?;
        inner.bytes += len;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(op: &'static str, outcome: &'static str) -> AccessRecord {
        AccessRecord {
            trace_id: TraceId(0xABC),
            id: Json::Num(1.0),
            op,
            outcome,
            session_key: Some(0x1234),
            queue_wait_ns: Some(500),
            service_ns: Some(9000),
            deadline_exceeded: false,
            batch_index: None,
        }
    }

    #[test]
    fn records_serialize_with_optional_fields_omitted() {
        let mut r = record("comparison", "cold");
        r.session_key = None;
        r.queue_wait_ns = None;
        r.service_ns = None;
        let line = r.to_ndjson(42);
        assert!(line.starts_with("{\"ts_ms\":42,\"trace_id\":\""), "{line}");
        assert!(line.contains("\"outcome\":\"cold\""), "{line}");
        assert!(!line.contains("session_key"), "{line}");
        assert!(!line.contains("deadline_exceeded"), "{line}");
        let mut r = record("sweep", "error");
        r.deadline_exceeded = true;
        r.batch_index = Some(3);
        let line = r.to_ndjson(42);
        assert!(
            line.contains("\"session_key\":\"0000000000001234\""),
            "{line}"
        );
        assert!(line.contains("\"queue_wait_ns\":500"), "{line}");
        assert!(line.contains("\"deadline_exceeded\":true"), "{line}");
        assert!(line.contains("\"batch_index\":3"), "{line}");
        // Every record is valid single-line JSON.
        assert!(Json::parse(&line).is_ok());
        assert!(!line.contains('\n'));
    }

    #[test]
    fn rotation_caps_the_file_and_keeps_one_sibling() {
        let dir = std::env::temp_dir().join(format!(
            "statleak_audit_rotate_{}_{}",
            std::process::id(),
            TraceId::generate().to_hex()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("access.log");
        let log = AccessLog::open(&path, 600).unwrap();
        for _ in 0..24 {
            log.write(&record("comparison", "cache")).unwrap();
        }
        let live = std::fs::metadata(&path).unwrap().len();
        assert!(live <= 600, "live file exceeded cap: {live}");
        let rotated = log.rotated_path();
        assert!(rotated.exists(), "rotation never happened");
        assert!(std::fs::metadata(&rotated).unwrap().len() <= 600);
        // Every surviving line is valid NDJSON.
        for p in [&path, &rotated] {
            let text = std::fs::read_to_string(p).unwrap();
            assert!(text.lines().count() > 0);
            for line in text.lines() {
                assert!(Json::parse(line).is_ok(), "{line}");
            }
        }
        // Re-opening appends instead of truncating.
        drop(log);
        let append_path = dir.join("append.log");
        let log = AccessLog::open(&append_path, u64::MAX).unwrap();
        log.write(&record("comparison", "cache")).unwrap();
        drop(log);
        let before = std::fs::metadata(&append_path).unwrap().len();
        let log = AccessLog::open(&append_path, u64::MAX).unwrap();
        log.write(&record("comparison", "cache")).unwrap();
        assert_eq!(std::fs::metadata(&append_path).unwrap().len(), before * 2);
        std::fs::remove_dir_all(&dir).ok();
    }
}
