//! statleak-engine — the service layer over the statleak flows.
//!
//! The core crates (`statleak-core` and below) are one-shot: every flow
//! call re-reads the netlist, rebuilds the timing graph, refactors the
//! correlation model, and re-runs the optimizer. That is the right shape
//! for a CLI invocation and the wrong shape for anything long-lived — a
//! parameter sweep driver, a notebook, or a daemon answering requests.
//!
//! This crate adds the long-lived shape without touching the numerics:
//!
//! - [`Engine`] — a bounded LRU cache of prepared [`Session`]s keyed by a
//!   deterministic content hash of the netlist bytes, the technology
//!   model, and every [`FlowConfig`](statleak_core::flows::FlowConfig)
//!   knob that affects results.
//! - [`Session`] — an `Arc`-shared handle over one prepared setup, whose
//!   methods mirror the `statleak_core::flows` free functions and
//!   additionally memoize full results (sound because every flow is
//!   deterministic end to end: fixed MC seed, ordered reductions).
//! - [`serve`] — a newline-delimited-JSON TCP daemon over the engine,
//!   with a bounded worker pool, `busy` backpressure past a high-water
//!   mark, per-request deadlines, and graceful drain on shutdown.
//!
//! ```
//! use statleak_core::flows::FlowConfig;
//! use statleak_engine::Engine;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let cfg = FlowConfig::builder("c17").mc_samples(0).build()?;
//! let session = Engine::global().session(&cfg)?;
//! let first = session.run_comparison()?; // computes
//! let again = session.run_comparison()?; // memo hit: same result, no work
//! assert_eq!(first.statistical.leakage_p95, again.statistical.leakage_p95);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod audit;
pub mod cache;
pub mod json;
pub mod proto;
pub mod ring;
pub mod serve;
pub mod session;
pub mod store;

pub use audit::{AccessLog, AccessRecord};
pub use cache::{ContentHasher, Lru};
pub use json::{Json, JsonError};
pub use proto::{Op, ProtoError, Request};
pub use ring::Ring;
pub use serve::{ServeConfig, ServeReport, Server};
pub use session::{session_key, CacheStats, Engine, Session, DEFAULT_CACHE_CAPACITY};
pub use store::{Store, StoreStats};
