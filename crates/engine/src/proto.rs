//! The newline-delimited JSON request/response protocol of
//! `statleak serve`.
//!
//! One request per line, one response line per request, processed in
//! order per connection. See `docs/SERVE_PROTOCOL.md` for the full
//! reference with example pairs. Every response carries `"ok"`; failures
//! carry a typed `"error"` object whose `"class"` is stable:
//!
//! | class               | meaning                                      |
//! |---------------------|----------------------------------------------|
//! | `usage`             | malformed JSON, unknown op, bad field        |
//! | `config`            | a config knob failed builder validation      |
//! | `unknown-benchmark` | the named circuit does not exist             |
//! | `correlation`       | correlation matrix failed to factor          |
//! | `infeasible`        | optimization target cannot be met            |
//! | `busy`              | queue at high-water mark, request rejected   |
//! | `deadline`          | request expired before a worker picked it up |
//! | `wrong-shard`       | another fleet node owns this session         |
//! | `shutdown`          | server is draining, no new work accepted     |
//! | `internal`          | anything else                                |

use crate::cache::ContentHasher;
use crate::json::Json;
use crate::session::{CacheStats, Session};
use crate::store::StoreStats;
use statleak_core::flows::{
    AblationRow, ComparisonOutcome, DesignMetrics, DistKind, DistributionData, FlowConfig,
    FlowError, LibrarySpec, McValidation, SweepPoint, SweepSpec,
};
use statleak_obs as obs;
use statleak_obs::{TraceContext, TraceId};

/// A parsed request.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Client-chosen correlation id, echoed verbatim in the response.
    pub id: Json,
    /// What to do.
    pub op: Op,
    /// Per-request queue deadline in milliseconds (overrides the server
    /// default). The clock starts when the request is accepted.
    pub deadline_ms: Option<u64>,
    /// Inherited trace context from the optional `trace` field
    /// (`{"trace_id": <hex>, "parent_span_id": <int>}`). When absent the
    /// server originates a fresh context per analysis request.
    pub trace: Option<TraceContext>,
}

/// The operation a request names.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Op {
    /// Liveness check; answered inline, never queued.
    Ping,
    /// Cache/server counters; answered inline, never queued.
    Stats,
    /// Begin graceful drain; answered inline.
    Shutdown,
    /// JSON snapshot of the observability registry; answered inline.
    Metrics,
    /// Prometheus text exposition of the registry; answered inline.
    MetricsText,
    /// Table T2 three-way comparison.
    Comparison(FlowConfig),
    /// Parameter sweep over one axis.
    Sweep(FlowConfig, SweepSpec),
    /// Yield-vs-clock curves over a `T/Dmin` grid.
    YieldCurves(FlowConfig, Vec<f64>),
    /// Analytical-vs-MC validation (T4).
    McValidation(FlowConfig),
    /// Leakage distribution data (F1), histogrammed server-side.
    Distribution(FlowConfig, usize),
    /// Modeling ablations (A1).
    Ablation(FlowConfig),
    /// Several analysis ops over one shared session, fanned across the
    /// worker pool and answered as a single aggregated response.
    Batch(FlowConfig, Vec<Op>),
    /// Consistent-hash routing query: which fleet node owns this
    /// session? Answered inline, never queued.
    Route(FlowConfig, RouteSpec),
}

/// Ring parameters carried by a `route` request (both optional when the
/// server was started with its own `--ring`).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RouteSpec {
    /// Explicit ring override: fleet node names.
    pub ring: Option<Vec<String>>,
    /// Virtual points per node (default [`crate::ring::DEFAULT_REPLICAS`]).
    pub replicas: Option<usize>,
}

impl Op {
    /// The stable wire name of the op.
    pub fn name(&self) -> &'static str {
        match self {
            Op::Ping => "ping",
            Op::Stats => "stats",
            Op::Shutdown => "shutdown",
            Op::Metrics => "metrics",
            Op::MetricsText => "metrics_text",
            Op::Comparison(_) => "comparison",
            Op::Sweep(..) => "sweep",
            Op::YieldCurves(..) => "yield_curves",
            Op::McValidation(_) => "mc_validation",
            Op::Distribution(..) => "distribution",
            Op::Ablation(_) => "ablation",
            Op::Batch(..) => "batch",
            Op::Route(..) => "route",
        }
    }

    /// Whether the op is answered inline by the connection handler
    /// (control ops) rather than queued to the worker pool. `route` is
    /// control: it only hashes, so it stays responsive under load.
    pub fn is_control(&self) -> bool {
        matches!(
            self,
            Op::Ping | Op::Stats | Op::Shutdown | Op::Metrics | Op::MetricsText | Op::Route(..)
        )
    }
}

/// Deterministic content hash of an op's name and parameters — the
/// second half of the on-disk store key (the first is
/// [`crate::session_key`]). Stable across processes and platforms, like
/// every [`ContentHasher`] digest.
pub fn op_hash(op: &Op) -> u64 {
    let mut h = ContentHasher::new();
    hash_op(&mut h, op);
    h.finish()
}

fn hash_op(h: &mut ContentHasher, op: &Op) {
    h.str(op.name());
    match op {
        Op::Sweep(_, spec) => {
            h.str(spec.axis());
            for &x in spec.values() {
                h.f64(x);
            }
        }
        Op::YieldCurves(_, grid) => {
            for &x in grid {
                h.f64(x);
            }
        }
        Op::Distribution(_, bins) => {
            h.usize(*bins);
        }
        Op::Batch(_, items) => {
            h.usize(items.len());
            for item in items {
                hash_op(h, item);
            }
        }
        // Name-only ops: the config is hashed by the session key.
        Op::Comparison(_)
        | Op::McValidation(_)
        | Op::Ablation(_)
        | Op::Route(..)
        | Op::Ping
        | Op::Stats
        | Op::Shutdown
        | Op::Metrics
        | Op::MetricsText => {}
    }
}

/// A protocol-level failure: stable class + message (+ echoed id).
#[derive(Debug, Clone, PartialEq)]
pub struct ProtoError {
    /// Stable machine-readable class (see the module table).
    pub class: &'static str,
    /// Human-readable detail.
    pub message: String,
}

impl ProtoError {
    fn usage(message: impl Into<String>) -> Self {
        Self {
            class: "usage",
            message: message.into(),
        }
    }

    /// Maps a flow failure onto its protocol class.
    pub fn from_flow(e: &FlowError) -> Self {
        Self {
            class: e.class(),
            message: e.to_string(),
        }
    }
}

fn field_f64(obj: &Json, key: &str) -> Result<Option<f64>, ProtoError> {
    match obj.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => v
            .as_f64()
            .map(Some)
            .ok_or_else(|| ProtoError::usage(format!("`{key}` must be a number"))),
    }
}

fn field_usize(obj: &Json, key: &str) -> Result<Option<usize>, ProtoError> {
    match obj.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => v
            .as_usize()
            .map(Some)
            .ok_or_else(|| ProtoError::usage(format!("`{key}` must be a non-negative integer"))),
    }
}

fn field_bool(obj: &Json, key: &str) -> Result<Option<bool>, ProtoError> {
    match obj.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => v
            .as_bool()
            .map(Some)
            .ok_or_else(|| ProtoError::usage(format!("`{key}` must be a boolean"))),
    }
}

fn field_values(obj: &Json, key: &str) -> Result<Vec<f64>, ProtoError> {
    let arr = obj
        .get(key)
        .and_then(Json::as_arr)
        .ok_or_else(|| ProtoError::usage(format!("`{key}` must be an array of numbers")))?;
    if arr.is_empty() || arr.len() > 256 {
        return Err(ProtoError::usage(format!(
            "`{key}` must hold 1..=256 numbers, got {}",
            arr.len()
        )));
    }
    arr.iter()
        .map(|v| {
            v.as_f64()
                .ok_or_else(|| ProtoError::usage(format!("`{key}` must be an array of numbers")))
        })
        .collect()
}

/// Builds the [`FlowConfig`] from a request object's analysis fields.
fn parse_config(obj: &Json) -> Result<FlowConfig, ProtoError> {
    let benchmark = obj
        .get("benchmark")
        .and_then(Json::as_str)
        .ok_or_else(|| ProtoError::usage("missing string field `benchmark`"))?;
    let mut builder = FlowConfig::builder(benchmark);
    if let Some(x) = field_f64(obj, "slack_factor")? {
        builder = builder.slack_factor(x);
    }
    if let Some(x) = field_f64(obj, "eta")? {
        builder = builder.eta(x);
    }
    if let Some(x) = field_f64(obj, "sigma_l")? {
        builder = builder.sigma_l(x);
    }
    if let Some(x) = field_usize(obj, "mc_samples")? {
        builder = builder.mc_samples(x);
    }
    match obj.get("mc_sampler") {
        None | Some(Json::Null) => {}
        Some(v) => {
            let spec = v
                .as_str()
                .ok_or_else(|| ProtoError::usage("`mc_sampler` must be a string"))?;
            let scheme = spec
                .parse()
                .map_err(|e| ProtoError::usage(format!("`mc_sampler`: {e}")))?;
            builder = builder.mc_sampler(scheme);
        }
    }
    if let Some(x) = field_usize(obj, "mc_seed")? {
        builder = builder.mc_seed(x as u64);
    }
    if let Some(x) = field_bool(obj, "wire_loads")? {
        builder = builder.wire_loads(x);
    }
    match obj.get("library") {
        None | Some(Json::Null) => {}
        Some(v) => {
            let spec = v
                .as_str()
                .ok_or_else(|| ProtoError::usage("`library` must be a string"))?;
            let spec = if spec.eq_ignore_ascii_case("builtin") {
                LibrarySpec::Builtin
            } else {
                LibrarySpec::parse(spec).map_err(|e| ProtoError::usage(format!("`library` {e}")))?
            };
            builder = builder.library(spec);
        }
    }
    builder.build().map_err(|e| ProtoError {
        class: "config",
        message: e.to_string(),
    })
}

/// Upper bound on sub-requests in one `batch` op.
pub const MAX_BATCH_ITEMS: usize = 64;

/// The op names that run on the worker pool against a session (batch
/// items must be one of these).
const ANALYSIS_OPS: &[&str] = &[
    "comparison",
    "sweep",
    "yield_curves",
    "mc_validation",
    "distribution",
    "ablation",
];

/// Parses the op-specific parameters of one analysis op. `obj` is the
/// request object for a top-level op, or the item object for a batch
/// sub-request (items inherit the batch's config).
fn parse_analysis_op(name: &str, obj: &Json, cfg: FlowConfig) -> Result<Op, ProtoError> {
    match name {
        "comparison" => Ok(Op::Comparison(cfg)),
        "sweep" => {
            let values = field_values(obj, "values")?;
            let axis = obj
                .get("axis")
                .and_then(Json::as_str)
                .unwrap_or("slack_factor");
            let spec = match axis {
                "slack_factor" => SweepSpec::SlackFactor(values),
                "sigma_l" => SweepSpec::SigmaL(values),
                other => {
                    return Err(ProtoError::usage(format!(
                        "unknown sweep axis `{other}` (expected `slack_factor` or `sigma_l`)"
                    )))
                }
            };
            Ok(Op::Sweep(cfg, spec))
        }
        "yield_curves" => Ok(Op::YieldCurves(cfg, field_values(obj, "grid")?)),
        "mc_validation" => Ok(Op::McValidation(cfg)),
        "distribution" => {
            let bins = field_usize(obj, "bins")?.unwrap_or(30);
            if bins == 0 || bins > 1024 {
                return Err(ProtoError::usage(format!(
                    "`bins` must be in 1..=1024, got {bins}"
                )));
            }
            Ok(Op::Distribution(cfg, bins))
        }
        "ablation" => Ok(Op::Ablation(cfg)),
        other => Err(ProtoError::usage(format!(
            "op `{other}` is not a batchable analysis op"
        ))),
    }
}

/// Parses one request line.
///
/// # Errors
///
/// Returns the typed [`ProtoError`] plus the request id if one could be
/// extracted (so the error response can still be correlated).
pub fn parse_request(line: &str) -> Result<Request, (ProtoError, Json)> {
    let obj = Json::parse(line).map_err(|e| (ProtoError::usage(e.to_string()), Json::Null))?;
    let id = obj.get("id").cloned().unwrap_or(Json::Null);
    let fail = |e: ProtoError| (e, id.clone());
    let op_name = obj
        .get("op")
        .and_then(Json::as_str)
        .ok_or_else(|| fail(ProtoError::usage("missing string field `op`")))?;
    let op = match op_name {
        "ping" => Op::Ping,
        "stats" => Op::Stats,
        "shutdown" => Op::Shutdown,
        "metrics" => Op::Metrics,
        "metrics_text" => Op::MetricsText,
        "batch" => {
            let cfg = parse_config(&obj).map_err(fail)?;
            let items = obj
                .get("items")
                .and_then(Json::as_arr)
                .ok_or_else(|| fail(ProtoError::usage("`batch` requires an `items` array")))?;
            if items.is_empty() || items.len() > MAX_BATCH_ITEMS {
                return Err(fail(ProtoError::usage(format!(
                    "`items` must hold 1..={MAX_BATCH_ITEMS} sub-requests, got {}",
                    items.len()
                ))));
            }
            let mut ops = Vec::with_capacity(items.len());
            for (i, item) in items.iter().enumerate() {
                let item_err =
                    |e: ProtoError| ProtoError::usage(format!("items[{i}]: {}", e.message));
                let name = item.get("op").and_then(Json::as_str).ok_or_else(|| {
                    fail(ProtoError::usage(format!(
                        "items[{i}]: missing string field `op`"
                    )))
                })?;
                ops.push(
                    parse_analysis_op(name, item, cfg.clone()).map_err(|e| fail(item_err(e)))?,
                );
            }
            Op::Batch(cfg, ops)
        }
        "route" => {
            let cfg = parse_config(&obj).map_err(fail)?;
            let ring = match obj.get("ring") {
                None | Some(Json::Null) => None,
                Some(v) => {
                    let arr = v.as_arr().ok_or_else(|| {
                        fail(ProtoError::usage("`ring` must be an array of node names"))
                    })?;
                    if arr.is_empty() || arr.len() > 256 {
                        return Err(fail(ProtoError::usage(format!(
                            "`ring` must hold 1..=256 node names, got {}",
                            arr.len()
                        ))));
                    }
                    let mut nodes = Vec::with_capacity(arr.len());
                    for n in arr {
                        let s = n.as_str().ok_or_else(|| {
                            fail(ProtoError::usage("`ring` must be an array of node names"))
                        })?;
                        nodes.push(s.to_string());
                    }
                    Some(nodes)
                }
            };
            let replicas = field_usize(&obj, "replicas").map_err(fail)?;
            if let Some(r) = replicas {
                if r == 0 || r > 1024 {
                    return Err(fail(ProtoError::usage(format!(
                        "`replicas` must be in 1..=1024, got {r}"
                    ))));
                }
            }
            Op::Route(cfg, RouteSpec { ring, replicas })
        }
        name if ANALYSIS_OPS.contains(&name) => {
            let cfg = parse_config(&obj).map_err(fail)?;
            parse_analysis_op(name, &obj, cfg).map_err(fail)?
        }
        other => {
            return Err(fail(ProtoError::usage(format!(
                "unknown op `{other}` (see docs/SERVE_PROTOCOL.md)"
            ))))
        }
    };
    let deadline_ms = match obj.get("deadline_ms") {
        None | Some(Json::Null) => None,
        Some(v) => Some(v.as_usize().map(|x| x as u64).ok_or_else(|| {
            fail(ProtoError::usage(
                "`deadline_ms` must be a non-negative integer",
            ))
        })?),
    };
    let trace = parse_trace(&obj).map_err(fail)?;
    Ok(Request {
        id,
        op,
        deadline_ms,
        trace,
    })
}

/// Parses the optional `trace` field of a request object:
/// `{"trace_id": "<1-32 hex digits, nonzero>", "parent_span_id": <int>}`.
fn parse_trace(obj: &Json) -> Result<Option<TraceContext>, ProtoError> {
    let t = match obj.get("trace") {
        None | Some(Json::Null) => return Ok(None),
        Some(t @ Json::Obj(_)) => t,
        Some(_) => return Err(ProtoError::usage("`trace` must be an object")),
    };
    let hex = t
        .get("trace_id")
        .and_then(Json::as_str)
        .ok_or_else(|| ProtoError::usage("`trace` requires a string field `trace_id`"))?;
    let trace_id = TraceId::parse(hex).ok_or_else(|| {
        ProtoError::usage(format!(
            "`trace_id` must be 1-32 hex digits and nonzero, got {hex:?}"
        ))
    })?;
    let parent_span = match t.get("parent_span_id") {
        None | Some(Json::Null) => 0,
        Some(v) => v
            .as_usize()
            .map(|x| x as u64)
            .ok_or_else(|| ProtoError::usage("`parent_span_id` must be a non-negative integer"))?,
    };
    Ok(Some(TraceContext {
        trace_id,
        parent_span,
    }))
}

/// The response extra announcing the trace id a request ran under; appended
/// to every analysis response (and redirect) so clients can join their logs
/// with the server's access log, spans, and exemplars.
pub fn trace_extra(ctx: &TraceContext) -> (&'static str, Json) {
    ("trace_id", Json::str(ctx.trace_id.to_hex()))
}

/// Encodes a success response line (no trailing newline).
pub fn ok_response(id: &Json, op: &str, data: Json) -> String {
    ok_response_with(id, op, data, Vec::new())
}

/// Encodes a success response line with extra top-level fields (e.g.
/// `deadline_exceeded` on a late-but-served response).
pub fn ok_response_with(id: &Json, op: &str, data: Json, extra: Vec<(&str, Json)>) -> String {
    let mut pairs = vec![
        ("id", id.clone()),
        ("ok", Json::Bool(true)),
        ("op", Json::str(op)),
        ("data", data),
    ];
    pairs.extend(extra);
    Json::obj(pairs).to_string()
}

/// Encodes an error response line (no trailing newline).
pub fn err_response(id: &Json, error: &ProtoError) -> String {
    err_response_with(id, error, Vec::new())
}

/// Encodes an error response line with extra top-level fields (e.g.
/// `shard_of` on a `wrong-shard` rejection).
pub fn err_response_with(id: &Json, error: &ProtoError, extra: Vec<(&str, Json)>) -> String {
    let mut pairs = vec![
        ("id", id.clone()),
        ("ok", Json::Bool(false)),
        (
            "error",
            Json::obj(vec![
                ("class", Json::str(error.class)),
                ("message", Json::str(error.message.clone())),
            ]),
        ),
    ];
    pairs.extend(extra);
    Json::obj(pairs).to_string()
}

fn metrics_json(m: &DesignMetrics) -> Json {
    Json::obj(vec![
        ("leakage_nominal_w", Json::Num(m.leakage_nominal)),
        ("leakage_mean_w", Json::Num(m.leakage_mean)),
        ("leakage_p95_w", Json::Num(m.leakage_p95)),
        ("timing_yield", Json::Num(m.timing_yield)),
        ("mc_yield", m.mc_yield.map_or(Json::Null, Json::Num)),
        (
            "mc_yield_ci",
            m.mc_yield_ci.map_or(Json::Null, |ci| {
                Json::obj(vec![("lo", Json::Num(ci.lo)), ("hi", Json::Num(ci.hi))])
            }),
        ),
        (
            "mc_leakage_p95_w",
            m.mc_leakage_p95.map_or(Json::Null, Json::Num),
        ),
        ("width", Json::Num(m.width)),
        ("high_vth", Json::Num(m.high_vth as f64)),
        ("runtime_s", Json::Num(m.runtime_s)),
    ])
}

/// Encodes a [`ComparisonOutcome`].
pub fn comparison_json(o: &ComparisonOutcome) -> Json {
    Json::obj(vec![
        ("benchmark", Json::str(o.benchmark.clone())),
        ("dmin_ps", Json::Num(o.dmin)),
        ("t_clk_ps", Json::Num(o.t_clk)),
        ("baseline", metrics_json(&o.baseline)),
        ("deterministic", metrics_json(&o.deterministic)),
        ("statistical", metrics_json(&o.statistical)),
        ("det_guard_band", Json::Num(o.det_guard_band)),
        ("stat_extra_saving", Json::Num(o.stat_extra_saving)),
    ])
}

/// Encodes a sweep result.
pub fn sweep_json(axis: &str, points: &[SweepPoint]) -> Json {
    Json::obj(vec![
        ("axis", Json::str(axis)),
        (
            "points",
            Json::Arr(
                points
                    .iter()
                    .map(|p| {
                        Json::obj(vec![
                            ("x", Json::Num(p.x)),
                            ("det_p95_w", Json::Num(p.det_p95)),
                            ("stat_p95_w", Json::Num(p.stat_p95)),
                            ("det_yield", Json::Num(p.det_yield)),
                            ("stat_yield", Json::Num(p.stat_yield)),
                            ("extra_saving", Json::Num(p.extra_saving)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Encodes yield-vs-clock curve rows.
pub fn curves_json(rows: &[(f64, f64, f64, f64)]) -> Json {
    Json::obj(vec![(
        "rows",
        Json::Arr(
            rows.iter()
                .map(|&(t, b, d, s)| {
                    Json::obj(vec![
                        ("t_over_dmin", Json::Num(t)),
                        ("baseline", Json::Num(b)),
                        ("deterministic", Json::Num(d)),
                        ("statistical", Json::Num(s)),
                    ])
                })
                .collect(),
        ),
    )])
}

/// Encodes a [`McValidation`].
pub fn validation_json(v: &McValidation) -> Json {
    Json::obj(vec![
        ("benchmark", Json::str(v.benchmark.clone())),
        ("ssta_mean_ps", Json::Num(v.ssta_mean)),
        ("mc_mean_ps", Json::Num(v.mc_mean)),
        ("ssta_sigma_ps", Json::Num(v.ssta_sigma)),
        ("mc_sigma_ps", Json::Num(v.mc_sigma)),
        ("ssta_yield", Json::Num(v.ssta_yield)),
        ("mc_yield", Json::Num(v.mc_yield)),
        (
            "mc_yield_ci",
            Json::obj(vec![
                ("lo", Json::Num(v.mc_yield_ci.lo)),
                ("hi", Json::Num(v.mc_yield_ci.hi)),
            ]),
        ),
        ("leak_mean_w", Json::Num(v.leak_mean)),
        ("mc_leak_mean_w", Json::Num(v.mc_leak_mean)),
        ("leak_p95_w", Json::Num(v.leak_p95)),
        ("mc_leak_p95_w", Json::Num(v.mc_leak_p95)),
    ])
}

fn histogram_json(d: &DistributionData, which: DistKind, bins: usize) -> Json {
    let h = d.histogram(which, bins);
    Json::obj(vec![
        (
            "centers",
            Json::nums(
                &(0..h.counts().len())
                    .map(|i| h.bin_center(i))
                    .collect::<Vec<_>>(),
            ),
        ),
        (
            "counts",
            Json::Arr(h.counts().iter().map(|&c| Json::Num(c as f64)).collect()),
        ),
        ("total", Json::Num(h.total() as f64)),
        ("dropped", Json::Num(h.dropped() as f64)),
    ])
}

/// Encodes a [`DistributionData`] with server-side histograms.
pub fn distribution_json(d: &DistributionData, bins: usize) -> Json {
    let analytic = |l: &statleak_stats::LogNormal| {
        Json::obj(vec![
            ("mean_w", Json::Num(l.mean())),
            ("p95_w", Json::Num(l.quantile(0.95))),
        ])
    };
    Json::obj(vec![
        ("bins", Json::Num(bins as f64)),
        (
            "baseline",
            Json::obj(vec![
                ("histogram", histogram_json(d, DistKind::Baseline, bins)),
                ("analytic", analytic(&d.baseline_analytic)),
            ]),
        ),
        (
            "optimized",
            Json::obj(vec![
                ("histogram", histogram_json(d, DistKind::Optimized, bins)),
                ("analytic", analytic(&d.optimized_analytic)),
            ]),
        ),
    ])
}

/// Encodes ablation rows.
pub fn ablation_json(rows: &[AblationRow]) -> Json {
    Json::obj(vec![(
        "rows",
        Json::Arr(
            rows.iter()
                .map(|r| {
                    Json::obj(vec![
                        ("variant", Json::str(r.variant.clone())),
                        ("delay_sigma_ps", Json::Num(r.delay_sigma)),
                        ("leak_p95_w", Json::Num(r.leak_p95)),
                        ("leak_cv", Json::Num(r.leak_cv)),
                    ])
                })
                .collect(),
        ),
    )])
}

/// Encodes cache stats (the `stats` op merges these with server counters).
pub fn cache_stats_json(s: &CacheStats) -> Json {
    Json::obj(vec![
        ("hits", Json::Num(s.hits as f64)),
        ("misses", Json::Num(s.misses as f64)),
        ("evictions", Json::Num(s.evictions as f64)),
        ("entries", Json::Num(s.entries as f64)),
        ("capacity", Json::Num(s.capacity as f64)),
        ("memo_hits", Json::Num(s.memo_hits as f64)),
    ])
}

/// Executes an analysis op against a cached session and encodes the data
/// payload. Control ops (`ping`/`stats`/`shutdown`) are not handled here.
///
/// # Errors
///
/// Returns the typed [`ProtoError`] for flow failures.
pub fn execute(session: &Session, op: &Op) -> Result<Json, ProtoError> {
    let flow = |r: Result<Json, FlowError>| r.map_err(|e| ProtoError::from_flow(&e));
    match op {
        Op::Comparison(_) => flow(session.run_comparison().map(|o| comparison_json(&o))),
        Op::Sweep(_, spec) => flow(session.sweep(spec).map(|p| sweep_json(spec.axis(), &p))),
        Op::YieldCurves(_, grid) => flow(session.yield_curves(grid).map(|r| curves_json(&r))),
        Op::McValidation(_) => flow(session.mc_validation().map(|v| validation_json(&v))),
        Op::Distribution(_, bins) => {
            flow(session.distribution().map(|d| distribution_json(&d, *bins)))
        }
        Op::Ablation(_) => flow(session.ablation().map(|r| ablation_json(&r))),
        // Batch is fanned out by the server, not executed as one unit.
        Op::Batch(..)
        | Op::Ping
        | Op::Stats
        | Op::Shutdown
        | Op::Metrics
        | Op::MetricsText
        | Op::Route(..) => Err(ProtoError {
            class: "internal",
            message: format!("op `{}` cannot execute against a single session", op.name()),
        }),
    }
}

/// The config an analysis op targets (`None` for control ops other than
/// `route`, whose config is only hashed, never prepared).
pub fn op_config(op: &Op) -> Option<&FlowConfig> {
    match op {
        Op::Comparison(cfg)
        | Op::Sweep(cfg, _)
        | Op::YieldCurves(cfg, _)
        | Op::McValidation(cfg)
        | Op::Distribution(cfg, _)
        | Op::Ablation(cfg)
        | Op::Batch(cfg, _)
        | Op::Route(cfg, _) => Some(cfg),
        Op::Ping | Op::Stats | Op::Shutdown | Op::Metrics | Op::MetricsText => None,
    }
}

/// Encodes store traffic counters plus the on-disk entry count (the
/// `stats` op's `store` section).
pub fn store_stats_json(s: &StoreStats, entries: usize) -> Json {
    Json::obj(vec![
        ("hits", Json::Num(s.hits as f64)),
        ("misses", Json::Num(s.misses as f64)),
        ("stores", Json::Num(s.stores as f64)),
        ("quarantined", Json::Num(s.quarantined as f64)),
        ("write_errors", Json::Num(s.write_errors as f64)),
        ("entries", Json::Num(entries as f64)),
    ])
}

/// Encodes an observability-registry snapshot for the `metrics` op.
pub fn obs_metrics_json(snapshot: &obs::metrics::MetricsSnapshot) -> Json {
    Json::obj(vec![
        (
            "counters",
            Json::Obj(
                snapshot
                    .counters
                    .iter()
                    .map(|&(name, v)| (name.to_string(), Json::Num(v as f64)))
                    .collect(),
            ),
        ),
        (
            "gauges",
            Json::Obj(
                snapshot
                    .gauges
                    .iter()
                    .map(|&(name, v)| (name.to_string(), Json::Num(v)))
                    .collect(),
            ),
        ),
        (
            "histograms",
            Json::Obj(
                snapshot
                    .histograms
                    .iter()
                    .map(|h| {
                        (
                            h.name.clone(),
                            Json::obj(vec![
                                ("count", Json::Num(h.count as f64)),
                                ("sum", Json::Num(h.sum as f64)),
                                ("mean", Json::Num(h.mean)),
                                ("p50", Json::Num(h.p50)),
                                ("p95", Json::Num(h.p95)),
                                ("p99", Json::Num(h.p99)),
                                // Mergeable representation: sparse
                                // power-of-two (bucket index, count)
                                // pairs, losslessly addable across nodes.
                                (
                                    "buckets",
                                    Json::Arr(
                                        h.buckets
                                            .iter()
                                            .map(|&(i, c)| {
                                                Json::Arr(vec![
                                                    Json::Num(i as f64),
                                                    Json::Num(c as f64),
                                                ])
                                            })
                                            .collect(),
                                    ),
                                ),
                                (
                                    "exemplars",
                                    Json::Arr(
                                        h.exemplars
                                            .iter()
                                            .map(|e| {
                                                Json::obj(vec![
                                                    ("value", Json::Num(e.value as f64)),
                                                    ("trace_id", Json::str(e.trace_id.to_hex())),
                                                ])
                                            })
                                            .collect(),
                                    ),
                                ),
                            ]),
                        )
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Decodes one histogram object produced by [`obs_metrics_json`] back into
/// its mergeable snapshot form — the client half of fleet aggregation
/// (`statleak top` merges these across nodes).
///
/// # Errors
///
/// Returns a message naming the malformed field.
pub fn parse_histogram_json(name: &str, v: &Json) -> Result<obs::HistogramSnapshot, String> {
    let buckets_json = v
        .get("buckets")
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("histogram {name}: missing `buckets` array"))?;
    let mut buckets = Vec::with_capacity(buckets_json.len());
    for pair in buckets_json {
        let pair = pair
            .as_arr()
            .filter(|p| p.len() == 2)
            .ok_or_else(|| format!("histogram {name}: bucket entries must be [index, count]"))?;
        let i = pair[0]
            .as_usize()
            .ok_or_else(|| format!("histogram {name}: bucket index must be an integer"))?;
        let c = pair[1]
            .as_f64()
            .filter(|c| *c >= 0.0)
            .ok_or_else(|| format!("histogram {name}: bucket count must be a number"))?;
        buckets.push((i, c as u64));
    }
    let sum = v
        .get("sum")
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("histogram {name}: missing `sum`"))? as u64;
    let mut exemplars = Vec::new();
    if let Some(arr) = v.get("exemplars").and_then(Json::as_arr) {
        for e in arr {
            let value = e
                .get("value")
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("histogram {name}: exemplar missing `value`"))?;
            let trace_id = e
                .get("trace_id")
                .and_then(Json::as_str)
                .and_then(TraceId::parse)
                .ok_or_else(|| format!("histogram {name}: exemplar missing `trace_id`"))?;
            exemplars.push(obs::Exemplar {
                value: value as u64,
                trace_id,
            });
        }
    }
    Ok(obs::HistogramSnapshot::from_parts(
        name.to_string(),
        buckets,
        sum,
        exemplars,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_comparison_request() {
        let r = parse_request(
            r#"{"id":7,"op":"comparison","benchmark":"c432","slack_factor":1.3,"mc_samples":0}"#,
        )
        .unwrap();
        assert_eq!(r.id, Json::Num(7.0));
        assert_eq!(r.deadline_ms, None);
        let Op::Comparison(cfg) = &r.op else {
            panic!("wrong op: {:?}", r.op)
        };
        assert_eq!(cfg.benchmark, "c432");
        assert_eq!(cfg.slack_factor, 1.3);
        assert_eq!(cfg.mc_samples, 0);
        assert_eq!(cfg.eta, 0.95);
    }

    #[test]
    fn parses_mc_sampler_and_seed() {
        let r = parse_request(
            r#"{"op":"mc_validation","benchmark":"c432","mc_sampler":"sobol+cv","mc_seed":42,"mc_samples":500}"#,
        )
        .unwrap();
        let Op::McValidation(cfg) = &r.op else {
            panic!("wrong op: {:?}", r.op)
        };
        assert_eq!(cfg.mc_sampling.to_string(), "sobol+cv");
        assert_eq!(cfg.mc_seed, 42);
        // Unknown sampler tokens fail with a usage-class error, and the
        // field must be a string.
        let bad = parse_request(r#"{"op":"mc_validation","benchmark":"c432","mc_sampler":"qmc"}"#);
        assert_eq!(bad.unwrap_err().0.class, "usage");
        let bad = parse_request(r#"{"op":"mc_validation","benchmark":"c432","mc_sampler":3}"#);
        assert_eq!(bad.unwrap_err().0.class, "usage");
    }

    #[test]
    fn parses_sweep_axes() {
        let r = parse_request(
            r#"{"op":"sweep","benchmark":"c17","axis":"sigma_l","values":[0.05,0.1],"mc_samples":0}"#,
        )
        .unwrap();
        assert!(matches!(r.op, Op::Sweep(_, SweepSpec::SigmaL(ref v)) if v == &[0.05, 0.1]));
        let bad = parse_request(r#"{"op":"sweep","benchmark":"c17","axis":"nope","values":[1]}"#);
        assert_eq!(bad.unwrap_err().0.class, "usage");
    }

    #[test]
    fn rejects_bad_requests_with_stable_classes() {
        assert_eq!(parse_request("not json").unwrap_err().0.class, "usage");
        assert_eq!(
            parse_request(r#"{"op":"comparison"}"#).unwrap_err().0.class,
            "usage"
        );
        assert_eq!(
            parse_request(r#"{"op":"flyaway","benchmark":"c17"}"#)
                .unwrap_err()
                .0
                .class,
            "usage"
        );
        let (e, id) =
            parse_request(r#"{"id":"x","op":"comparison","benchmark":"c17","slack_factor":0.5}"#)
                .unwrap_err();
        assert_eq!(e.class, "config");
        assert_eq!(id, Json::str("x"));
    }

    #[test]
    fn parses_batch_requests_with_shared_config() {
        let r = parse_request(
            r#"{"id":1,"op":"batch","benchmark":"c17","mc_samples":0,"slack_factor":1.3,
                "items":[{"op":"comparison"},
                         {"op":"sweep","axis":"sigma_l","values":[0.05,0.1]},
                         {"op":"distribution","bins":12}]}"#,
        )
        .unwrap();
        let Op::Batch(cfg, items) = &r.op else {
            panic!("wrong op: {:?}", r.op)
        };
        assert_eq!(cfg.benchmark, "c17");
        assert_eq!(items.len(), 3);
        // Items inherit the batch-level config wholesale.
        let Op::Sweep(item_cfg, SweepSpec::SigmaL(v)) = &items[1] else {
            panic!("wrong item: {:?}", items[1])
        };
        assert_eq!(item_cfg.slack_factor, 1.3);
        assert_eq!(v, &[0.05, 0.1]);
        assert!(matches!(items[2], Op::Distribution(_, 12)));

        // Bad shapes are usage errors naming the offending item.
        for bad in [
            r#"{"op":"batch","benchmark":"c17"}"#,
            r#"{"op":"batch","benchmark":"c17","items":[]}"#,
            r#"{"op":"batch","benchmark":"c17","items":[{"op":"ping"}]}"#,
            r#"{"op":"batch","benchmark":"c17","items":[{"op":"batch","items":[]}]}"#,
            r#"{"op":"batch","benchmark":"c17","items":[{"nop":1}]}"#,
        ] {
            let (e, _) = parse_request(bad).unwrap_err();
            assert_eq!(e.class, "usage", "{bad} -> {e:?}");
        }
        let (e, _) = parse_request(
            r#"{"op":"batch","benchmark":"c17","items":[{"op":"comparison"},{"op":"nope"}]}"#,
        )
        .unwrap_err();
        assert!(e.message.contains("items[1]"), "{e:?}");
    }

    #[test]
    fn parses_route_requests() {
        let r = parse_request(
            r#"{"op":"route","benchmark":"c432","ring":["a:7878","b:7878"],"replicas":32}"#,
        )
        .unwrap();
        let Op::Route(cfg, spec) = &r.op else {
            panic!("wrong op: {:?}", r.op)
        };
        assert_eq!(cfg.benchmark, "c432");
        assert_eq!(spec.ring.as_deref().map(<[String]>::len), Some(2));
        assert_eq!(spec.replicas, Some(32));
        assert!(r.op.is_control(), "route answers inline");

        // Ring omitted entirely is fine (server-side ring applies).
        let r = parse_request(r#"{"op":"route","benchmark":"c432"}"#).unwrap();
        assert!(matches!(
            &r.op,
            Op::Route(_, spec) if spec.ring.is_none() && spec.replicas.is_none()
        ));

        for bad in [
            r#"{"op":"route","benchmark":"c432","ring":[]}"#,
            r#"{"op":"route","benchmark":"c432","ring":[3]}"#,
            r#"{"op":"route","benchmark":"c432","ring":"a"}"#,
            r#"{"op":"route","benchmark":"c432","ring":["a"],"replicas":0}"#,
        ] {
            assert_eq!(parse_request(bad).unwrap_err().0.class, "usage", "{bad}");
        }
    }

    #[test]
    fn op_hash_separates_params_but_not_configs() {
        let op = |line: &str| parse_request(line).unwrap().op;
        let a = op(r#"{"op":"sweep","benchmark":"c17","values":[1.1,1.2]}"#);
        let b = op(r#"{"op":"sweep","benchmark":"c17","values":[1.1,1.3]}"#);
        let c = op(r#"{"op":"sweep","benchmark":"c880","values":[1.1,1.2]}"#);
        assert_ne!(op_hash(&a), op_hash(&b), "values must separate");
        // The config is keyed by the session hash, not the op hash.
        assert_eq!(op_hash(&a), op_hash(&c));
        let d = op(r#"{"op":"comparison","benchmark":"c17"}"#);
        let e = op(r#"{"op":"ablation","benchmark":"c17"}"#);
        assert_ne!(op_hash(&d), op_hash(&e), "op name must separate");
        assert_eq!(op_hash(&d), op_hash(&d));
    }

    #[test]
    fn response_lines_are_single_line_json() {
        let ok = ok_response(
            &Json::Num(1.0),
            "ping",
            Json::obj(vec![("pong", Json::Bool(true))]),
        );
        assert_eq!(ok, r#"{"id":1,"ok":true,"op":"ping","data":{"pong":true}}"#);
        assert!(!ok.contains('\n'));
        let err = err_response(&Json::Null, &ProtoError::usage("nope"));
        assert_eq!(
            err,
            r#"{"id":null,"ok":false,"error":{"class":"usage","message":"nope"}}"#
        );
    }

    #[test]
    fn parses_trace_context() {
        let r = parse_request(
            r#"{"op":"ping","trace":{"trace_id":"00000000000000000000000000c0ffee","parent_span_id":9}}"#,
        )
        .unwrap();
        let ctx = r.trace.unwrap();
        assert_eq!(ctx.trace_id, TraceId(0xC0FFEE));
        assert_eq!(ctx.parent_span, 9);

        // parent_span_id is optional; short hex ids are accepted.
        let r = parse_request(r#"{"op":"ping","trace":{"trace_id":"c0ffee"}}"#).unwrap();
        assert_eq!(
            r.trace,
            Some(TraceContext {
                trace_id: TraceId(0xC0FFEE),
                parent_span: 0
            })
        );

        // Absent trace parses as None (the server then originates one).
        assert_eq!(parse_request(r#"{"op":"ping"}"#).unwrap().trace, None);

        for bad in [
            r#"{"op":"ping","trace":"c0ffee"}"#,
            r#"{"op":"ping","trace":{}}"#,
            r#"{"op":"ping","trace":{"trace_id":""}}"#,
            r#"{"op":"ping","trace":{"trace_id":"0"}}"#,
            r#"{"op":"ping","trace":{"trace_id":"zz"}}"#,
            r#"{"op":"ping","trace":{"trace_id":"ff","parent_span_id":-1}}"#,
        ] {
            assert_eq!(parse_request(bad).unwrap_err().0.class, "usage", "{bad}");
        }
    }

    #[test]
    fn histogram_json_round_trips_through_parse() {
        let registry = obs::Registry::new();
        let h = registry.histogram("rt_ns");
        let ctx = obs::TraceContext::new();
        {
            let _guard = obs::trace::enter(ctx);
            for v in [0u64, 3, 900, 1_000_000] {
                h.record_traced(v);
            }
        }
        let snapshot = registry.snapshot();
        let json = obs_metrics_json(&snapshot);
        let encoded = json.get("histograms").unwrap().get("rt_ns").unwrap();
        let parsed = parse_histogram_json("rt_ns", encoded).unwrap();
        assert_eq!(parsed, snapshot.histograms[0]);
        assert!(parsed.exemplars.iter().all(|e| e.trace_id == ctx.trace_id));
    }
}
