//! A small bounded LRU cache and the content hasher that keys it.
//!
//! The cache is deliberately simple: capacities are tens of entries (one
//! per distinct `(netlist, tech, config)` triple a process works with), so
//! a `VecDeque` scanned linearly beats pointer-chasing list machinery and
//! stays trivially correct.

use std::collections::VecDeque;

/// FNV-1a offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// An incremental FNV-1a content hasher.
///
/// Deterministic across processes and platforms (unlike `DefaultHasher`,
/// whose algorithm is explicitly unspecified), so cache keys are stable
/// enough to log and compare between runs.
#[derive(Debug, Clone)]
pub struct ContentHasher {
    state: u64,
}

impl Default for ContentHasher {
    fn default() -> Self {
        Self::new()
    }
}

impl ContentHasher {
    /// Starts a fresh hash.
    pub fn new() -> Self {
        Self { state: FNV_OFFSET }
    }

    /// Feeds raw bytes.
    pub fn bytes(&mut self, bytes: &[u8]) -> &mut Self {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
        self
    }

    /// Feeds a UTF-8 string (length-prefixed so `"ab","c"` ≠ `"a","bc"`).
    pub fn str(&mut self, s: &str) -> &mut Self {
        self.usize(s.len()).bytes(s.as_bytes())
    }

    /// Feeds an `f64` by its exact bit pattern.
    pub fn f64(&mut self, x: f64) -> &mut Self {
        self.bytes(&x.to_bits().to_le_bytes())
    }

    /// Feeds a `usize`.
    pub fn usize(&mut self, x: usize) -> &mut Self {
        self.bytes(&(x as u64).to_le_bytes())
    }

    /// Feeds a `bool`.
    pub fn bool(&mut self, x: bool) -> &mut Self {
        self.bytes(&[u8::from(x)])
    }

    /// The 64-bit digest.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

/// A bounded least-recently-used map from `u64` keys to values.
///
/// Front of the deque is most-recently-used. Not thread-safe by itself —
/// the engine wraps it in a `Mutex`.
#[derive(Debug)]
pub struct Lru<V> {
    capacity: usize,
    entries: VecDeque<(u64, V)>,
}

impl<V: Clone> Lru<V> {
    /// Creates a cache holding at most `capacity` entries (min 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            entries: VecDeque::new(),
        }
    }

    /// Looks up `key`, promoting it to most-recently-used on a hit.
    pub fn get(&mut self, key: u64) -> Option<V> {
        let pos = self.entries.iter().position(|(k, _)| *k == key)?;
        let entry = self.entries.remove(pos).expect("position is in range");
        let value = entry.1.clone();
        self.entries.push_front(entry);
        Some(value)
    }

    /// Inserts `key → value` as most-recently-used.
    ///
    /// If the key is already present the *existing* value wins (so
    /// concurrent builders racing on the same key converge on one shared
    /// session) and is returned. The second element reports the key an
    /// insertion evicted, if any.
    pub fn insert(&mut self, key: u64, value: V) -> (V, Option<u64>) {
        if let Some(existing) = self.get(key) {
            return (existing, None);
        }
        self.entries.push_front((key, value.clone()));
        let evicted = if self.entries.len() > self.capacity {
            self.entries.pop_back().map(|(k, _)| k)
        } else {
            None
        };
        (value, evicted)
    }

    /// Current number of cached entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The configured bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Keys from most- to least-recently-used (for tests and stats).
    pub fn keys(&self) -> Vec<u64> {
        self.entries.iter().map(|(k, _)| *k).collect()
    }

    /// Drops every entry.
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hasher_is_deterministic_and_separates() {
        let h = |f: &dyn Fn(&mut ContentHasher)| {
            let mut hasher = ContentHasher::new();
            f(&mut hasher);
            hasher.finish()
        };
        assert_eq!(
            h(&|x| {
                x.str("abc");
            }),
            h(&|x| {
                x.str("abc");
            })
        );
        // Length prefixing keeps concatenations apart.
        assert_ne!(
            h(&|x| {
                x.str("ab").str("c");
            }),
            h(&|x| {
                x.str("a").str("bc");
            })
        );
        assert_ne!(
            h(&|x| {
                x.f64(1.0);
            }),
            h(&|x| {
                x.f64(-1.0);
            })
        );
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut lru = Lru::new(2);
        lru.insert(1, "a");
        lru.insert(2, "b");
        // Touch 1 so 2 becomes the LRU entry.
        assert_eq!(lru.get(1), Some("a"));
        let (_, evicted) = lru.insert(3, "c");
        assert_eq!(evicted, Some(2));
        assert_eq!(lru.get(2), None);
        assert_eq!(lru.get(1), Some("a"));
        assert_eq!(lru.get(3), Some("c"));
        assert_eq!(lru.len(), 2);
    }

    #[test]
    fn lru_insert_keeps_existing_value() {
        let mut lru = Lru::new(4);
        lru.insert(7, "first");
        let (winner, evicted) = lru.insert(7, "second");
        assert_eq!(winner, "first");
        assert_eq!(evicted, None);
        assert_eq!(lru.len(), 1);
    }

    #[test]
    fn lru_capacity_is_at_least_one() {
        let mut lru = Lru::new(0);
        assert_eq!(lru.capacity(), 1);
        lru.insert(1, 1);
        let (_, evicted) = lru.insert(2, 2);
        assert_eq!(evicted, Some(1));
        assert!(!lru.is_empty());
        assert_eq!(lru.keys(), vec![2]);
        lru.clear();
        assert!(lru.is_empty());
    }
}
