//! A small bounded LRU cache and the content hasher that keys it.
//!
//! Lookups are O(1): a `HashMap` indexes the entries, and recency is
//! tracked with a lazily-compacted queue of `(stamp, key)` pairs instead
//! of an intrusive linked list — a stale queue entry (one whose stamp no
//! longer matches the map's) is simply skipped at eviction time. That
//! keeps `get` allocation-free on the hot path while staying safe code.

use std::collections::{HashMap, VecDeque};

/// FNV-1a offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// An incremental FNV-1a content hasher.
///
/// Deterministic across processes and platforms (unlike `DefaultHasher`,
/// whose algorithm is explicitly unspecified), so cache keys are stable
/// enough to log and compare between runs.
#[derive(Debug, Clone)]
pub struct ContentHasher {
    state: u64,
}

impl Default for ContentHasher {
    fn default() -> Self {
        Self::new()
    }
}

impl ContentHasher {
    /// Starts a fresh hash.
    pub fn new() -> Self {
        Self { state: FNV_OFFSET }
    }

    /// Feeds raw bytes.
    pub fn bytes(&mut self, bytes: &[u8]) -> &mut Self {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
        self
    }

    /// Feeds a UTF-8 string (length-prefixed so `"ab","c"` ≠ `"a","bc"`).
    pub fn str(&mut self, s: &str) -> &mut Self {
        self.usize(s.len()).bytes(s.as_bytes())
    }

    /// Feeds an `f64` by its exact bit pattern.
    pub fn f64(&mut self, x: f64) -> &mut Self {
        self.bytes(&x.to_bits().to_le_bytes())
    }

    /// Feeds a `usize`.
    pub fn usize(&mut self, x: usize) -> &mut Self {
        self.bytes(&(x as u64).to_le_bytes())
    }

    /// Feeds a `bool`.
    pub fn bool(&mut self, x: bool) -> &mut Self {
        self.bytes(&[u8::from(x)])
    }

    /// The 64-bit digest.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

/// One cached value plus the recency stamp of its latest touch.
#[derive(Debug)]
struct Slot<V> {
    value: V,
    stamp: u64,
}

/// A bounded least-recently-used map from `u64` keys to values.
///
/// `get` and `insert` are O(1) amortized: the map holds the values, and
/// every touch appends a fresh `(stamp, key)` pair to the recency queue.
/// Only the queue entry whose stamp matches the map's current stamp for
/// that key is live; eviction pops stale pairs until it finds a live one,
/// and the queue is compacted once it grows past twice the live count.
/// Not thread-safe by itself — the engine wraps it in a `Mutex`.
#[derive(Debug)]
pub struct Lru<V> {
    capacity: usize,
    map: HashMap<u64, Slot<V>>,
    /// Recency queue: back is most recent. May contain stale pairs.
    order: VecDeque<(u64, u64)>,
    /// Monotone touch counter; stamps are unique per touch.
    clock: u64,
}

impl<V: Clone> Lru<V> {
    /// Creates a cache holding at most `capacity` entries (min 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            map: HashMap::new(),
            order: VecDeque::new(),
            clock: 0,
        }
    }

    /// Marks `key` as touched now and records the touch in the queue.
    fn touch(&mut self, key: u64) -> u64 {
        self.clock += 1;
        self.order.push_back((self.clock, key));
        self.clock
    }

    /// Drops stale queue pairs once they outnumber the live entries.
    fn maybe_compact(&mut self) {
        if self.order.len() > 2 * self.map.len() + 8 {
            let map = &self.map;
            self.order
                .retain(|&(stamp, key)| map.get(&key).is_some_and(|s| s.stamp == stamp));
        }
    }

    /// Looks up `key`, promoting it to most-recently-used on a hit.
    pub fn get(&mut self, key: u64) -> Option<V> {
        if !self.map.contains_key(&key) {
            return None;
        }
        let stamp = self.touch(key);
        let slot = self.map.get_mut(&key).expect("checked above");
        slot.stamp = stamp;
        let value = slot.value.clone();
        self.maybe_compact();
        Some(value)
    }

    /// Inserts `key → value` as most-recently-used.
    ///
    /// If the key is already present the *existing* value wins (so
    /// concurrent builders racing on the same key converge on one shared
    /// session) and is returned. The second element reports the key an
    /// insertion evicted, if any.
    pub fn insert(&mut self, key: u64, value: V) -> (V, Option<u64>) {
        if let Some(existing) = self.get(key) {
            return (existing, None);
        }
        let stamp = self.touch(key);
        self.map.insert(
            key,
            Slot {
                value: value.clone(),
                stamp,
            },
        );
        let evicted = if self.map.len() > self.capacity {
            Some(self.evict_lru())
        } else {
            None
        };
        self.maybe_compact();
        (value, evicted)
    }

    /// Removes and returns the least-recently-used key, skipping stale
    /// queue pairs.
    fn evict_lru(&mut self) -> u64 {
        loop {
            let (stamp, key) = self
                .order
                .pop_front()
                .expect("queue covers every live entry");
            if self.map.get(&key).is_some_and(|s| s.stamp == stamp) {
                self.map.remove(&key);
                return key;
            }
        }
    }

    /// Current number of cached entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The configured bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Keys from most- to least-recently-used (for tests and stats).
    pub fn keys(&self) -> Vec<u64> {
        let mut out = Vec::with_capacity(self.map.len());
        for &(stamp, key) in self.order.iter().rev() {
            if self.map.get(&key).is_some_and(|s| s.stamp == stamp) {
                out.push(key);
            }
        }
        out
    }

    /// Drops every entry.
    pub fn clear(&mut self) {
        self.map.clear();
        self.order.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hasher_is_deterministic_and_separates() {
        let h = |f: &dyn Fn(&mut ContentHasher)| {
            let mut hasher = ContentHasher::new();
            f(&mut hasher);
            hasher.finish()
        };
        assert_eq!(
            h(&|x| {
                x.str("abc");
            }),
            h(&|x| {
                x.str("abc");
            })
        );
        // Length prefixing keeps concatenations apart.
        assert_ne!(
            h(&|x| {
                x.str("ab").str("c");
            }),
            h(&|x| {
                x.str("a").str("bc");
            })
        );
        assert_ne!(
            h(&|x| {
                x.f64(1.0);
            }),
            h(&|x| {
                x.f64(-1.0);
            })
        );
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut lru = Lru::new(2);
        lru.insert(1, "a");
        lru.insert(2, "b");
        // Touch 1 so 2 becomes the LRU entry.
        assert_eq!(lru.get(1), Some("a"));
        let (_, evicted) = lru.insert(3, "c");
        assert_eq!(evicted, Some(2));
        assert_eq!(lru.get(2), None);
        assert_eq!(lru.get(1), Some("a"));
        assert_eq!(lru.get(3), Some("c"));
        assert_eq!(lru.len(), 2);
    }

    #[test]
    fn lru_insert_keeps_existing_value() {
        let mut lru = Lru::new(4);
        lru.insert(7, "first");
        let (winner, evicted) = lru.insert(7, "second");
        assert_eq!(winner, "first");
        assert_eq!(evicted, None);
        assert_eq!(lru.len(), 1);
    }

    #[test]
    fn lru_survives_heavy_re_touching_without_queue_growth() {
        // Many repeated gets on the same keys leave stale pairs behind;
        // compaction must keep the queue bounded and eviction must still
        // pick the true LRU entry.
        let mut lru = Lru::new(3);
        lru.insert(1, "a");
        lru.insert(2, "b");
        lru.insert(3, "c");
        for _ in 0..10_000 {
            assert_eq!(lru.get(2), Some("b"));
            assert_eq!(lru.get(3), Some("c"));
        }
        assert!(
            lru.order.len() <= 2 * lru.map.len() + 8,
            "queue grew unboundedly: {} pairs for {} entries",
            lru.order.len(),
            lru.map.len()
        );
        // Key 1 has not been touched since insert: it is the LRU entry.
        let (_, evicted) = lru.insert(4, "d");
        assert_eq!(evicted, Some(1));
        assert_eq!(lru.keys(), vec![4, 3, 2]);
    }

    #[test]
    fn lru_capacity_is_at_least_one() {
        let mut lru = Lru::new(0);
        assert_eq!(lru.capacity(), 1);
        lru.insert(1, 1);
        let (_, evicted) = lru.insert(2, 2);
        assert_eq!(evicted, Some(1));
        assert!(!lru.is_empty());
        assert_eq!(lru.keys(), vec![2]);
        lru.clear();
        assert!(lru.is_empty());
    }
}
