//! A minimal JSON value, parser, and writer for the serve protocol.
//!
//! The build environment vendors no serde, and the protocol needs only a
//! small, deterministic subset: objects keep insertion order (so responses
//! are byte-stable), numbers are `f64`, and strings support the standard
//! escapes. The parser is a plain recursive-descent over bytes with a
//! depth cap; it rejects trailing garbage.

use std::fmt;

/// Maximum nesting depth accepted by the parser (defense against
/// `[[[[…` stack exhaustion from untrusted clients).
const MAX_DEPTH: usize = 64;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (always an `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion-ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

/// A parse failure: byte offset plus message.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Convenience constructor for an object.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Convenience constructor for a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Convenience constructor for an array of numbers.
    pub fn nums(xs: &[f64]) -> Json {
        Json::Arr(xs.iter().map(|&x| Json::Num(x)).collect())
    }

    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is one.
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Json::Num(x) if *x >= 0.0 && x.fract() == 0.0 && *x <= u32::MAX as f64 => {
                Some(*x as usize)
            }
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Parses one JSON document; trailing non-whitespace is an error.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] with the byte offset of the failure.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after value"));
        }
        Ok(value)
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            at: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_lit(&mut self, lit: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{lit}`")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.eat_lit("true", Json::Bool(true)),
            Some(b'f') => self.eat_lit("false", Json::Bool(false)),
            Some(b'n') => self.eat_lit("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.eat(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are rejected rather than
                            // combined; the protocol never emits them.
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.err("unpaired surrogate in \\u escape"))?;
                            out.push(c);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(c) if c < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    // Copy the full UTF-8 code point.
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xC0) == 0x80 {
                        self.pos += 1;
                    }
                    let s = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(s);
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("ASCII digits are valid UTF-8");
        let x: f64 = text
            .parse()
            .map_err(|_| self.err(&format!("invalid number `{text}`")))?;
        if !x.is_finite() {
            return Err(self.err("number out of range"));
        }
        Ok(Json::Num(x))
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(x) => {
                // NaN/inf have no JSON representation; encode as null so a
                // degenerate metric can't corrupt the stream.
                if x.is_finite() {
                    write!(f, "{x}")
                } else {
                    f.write_str("null")
                }
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(pairs) => {
                f.write_str("{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    write!(f, ":{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_values() {
        let text = r#"{"op":"sweep","values":[1.1,1.3],"nested":{"a":true,"b":null,"s":"x\n\"y\""},"n":-2.5e-3}"#;
        let v = Json::parse(text).unwrap();
        let rendered = v.to_string();
        assert_eq!(Json::parse(&rendered).unwrap(), v);
        assert_eq!(v.get("op").and_then(Json::as_str), Some("sweep"));
        assert_eq!(
            v.get("values").and_then(Json::as_arr).map(<[Json]>::len),
            Some(2)
        );
        assert_eq!(v.get("n").and_then(Json::as_f64), Some(-2.5e-3));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\" 1}",
            "tru",
            "\"unterminated",
            "1 2",
            "{\"a\":1}x",
            "nan",
            "1e999",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
        // Depth bomb.
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(Json::parse(&deep).is_err());
    }

    #[test]
    fn as_usize_is_strict() {
        assert_eq!(Json::Num(5.0).as_usize(), Some(5));
        assert_eq!(Json::Num(5.5).as_usize(), None);
        assert_eq!(Json::Num(-1.0).as_usize(), None);
        assert_eq!(Json::Str("5".into()).as_usize(), None);
    }

    #[test]
    fn unicode_and_escapes_survive() {
        let v = Json::parse(r#""é café ≠""#).unwrap();
        assert_eq!(v.as_str(), Some("é café ≠"));
        let rendered = Json::str("tab\tnewline\n").to_string();
        assert_eq!(rendered, "\"tab\\tnewline\\n\"");
    }
}
