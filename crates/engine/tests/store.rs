//! Persistent-store integration: the serve-layer warm path end to end.
//!
//! These tests exercise the store the way the daemon does — real flow
//! results keyed by the real `session_key`/`op_hash` pair — and verify
//! the three production properties the store exists for: restarts come
//! back warm, torn writes are quarantined not trusted, and concurrent
//! writers (one per fleet member) converge on a single good entry.

use statleak_engine::proto::{self, Op};
use statleak_engine::{session_key, Engine, Json, Store};
use std::path::PathBuf;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "statleak-store-it-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Parses a request line and computes the `(session, op)` store key the
/// daemon would use for it.
fn keys_of(line: &str) -> (u64, u64, Op) {
    let request = proto::parse_request(line).expect("parse");
    let cfg = proto::op_config(&request.op).expect("analysis op");
    let session = session_key(cfg).expect("session key");
    let op = proto::op_hash(&request.op);
    (session, op, request.op)
}

/// Runs `op` through a fresh engine, exactly like a cache-cold worker.
fn compute(op: &Op) -> Json {
    let engine = Engine::new(4);
    let cfg = proto::op_config(op).expect("analysis op");
    let session = engine.session(cfg).expect("session");
    proto::execute(&session, op).expect("execute")
}

#[test]
fn restart_round_trip_is_warm_without_recompute() {
    let dir = tmp_dir("restart");
    let line = r#"{"op":"comparison","benchmark":"c17","mc_samples":0}"#;
    let (skey, ophash, op) = keys_of(line);

    // First process: compute and persist.
    let data = {
        let store = Store::open(&dir).expect("open");
        let data = compute(&op);
        store.save(skey, ophash, &data);
        assert_eq!(store.len(), 1);
        data
    };

    // "Restarted" process: a fresh store handle answers from disk, and
    // the engine is never consulted at all.
    let store = Store::open(&dir).expect("reopen");
    let engine = Engine::new(4);
    let warm = store.load(skey, ophash).expect("warm hit");
    assert_eq!(warm, data, "disk round trip must be byte-faithful");
    let stats = engine.cache_stats();
    assert_eq!(
        (stats.hits, stats.misses, stats.entries),
        (0, 0, 0),
        "a warm store answers without touching the session cache"
    );
    assert_eq!(store.stats().hits, 1);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn truncated_entry_is_quarantined_then_recomputed() {
    let dir = tmp_dir("torn");
    let line = r#"{"op":"distribution","benchmark":"c17","mc_samples":0,"bins":6}"#;
    let (skey, ophash, op) = keys_of(line);
    let data = compute(&op);

    {
        let store = Store::open(&dir).expect("open");
        store.save(skey, ophash, &data);
    }
    // Tear the entry mid-payload, as a `kill -9` against a non-atomic
    // filesystem would.
    let entry = std::fs::read_dir(&dir)
        .expect("read dir")
        .filter_map(Result::ok)
        .map(|e| e.path())
        .find(|p| p.extension().is_some_and(|x| x == "entry"))
        .expect("one entry on disk");
    let full = std::fs::read(&entry).expect("read entry");
    std::fs::write(&entry, &full[..full.len() / 2]).expect("truncate");

    let store = Store::open(&dir).expect("reopen");
    assert_eq!(store.load(skey, ophash), None, "torn entry must miss");
    assert!(!entry.exists(), "torn entry must be moved aside");
    assert_eq!(store.stats().quarantined, 1);
    let quarantined = std::fs::read_dir(dir.join("quarantine"))
        .expect("quarantine dir")
        .count();
    assert_eq!(quarantined, 1, "the torn entry lands in quarantine/");

    // The usual recovery: recompute, re-save, warm again.
    store.save(skey, ophash, &data);
    assert_eq!(store.load(skey, ophash), Some(data));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn concurrent_writers_converge_on_one_good_entry() {
    let dir = tmp_dir("racers");
    let line = r#"{"op":"comparison","benchmark":"c17","mc_samples":0}"#;
    let (skey, ophash, op) = keys_of(line);
    let data = compute(&op);

    // Eight writers, each with its own handle (as fleet members sharing
    // a directory would have), all racing on the same key while readers
    // poll. Determinism makes every payload identical, so whichever
    // rename lands last, the entry is complete and correct.
    std::thread::scope(|scope| {
        for _ in 0..8 {
            let dir = &dir;
            let data = &data;
            scope.spawn(move || {
                let store = Store::open(dir).expect("open");
                for _ in 0..20 {
                    store.save(skey, ophash, data);
                    if let Some(seen) = store.load(skey, ophash) {
                        assert_eq!(&seen, data, "readers must never see a torn entry");
                    }
                }
            });
        }
    });

    let store = Store::open(&dir).expect("reopen");
    assert_eq!(store.len(), 1, "all writers converge on one entry");
    assert_eq!(store.load(skey, ophash), Some(data));
    assert_eq!(store.stats().quarantined, 0, "no racer tore the entry");
    // No stray temp files survive the race.
    let leftovers = std::fs::read_dir(&dir)
        .expect("read dir")
        .filter_map(Result::ok)
        .filter(|e| e.file_name().to_string_lossy().starts_with(".tmp-"))
        .count();
    assert_eq!(leftovers, 0, "temp files are renamed or removed");
    std::fs::remove_dir_all(&dir).unwrap();
}
