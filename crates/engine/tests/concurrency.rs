//! Concurrency: many threads hammering one engine must each get results
//! byte-identical to the one-shot `statleak_core::flows` functions, while
//! sharing cached sessions instead of rebuilding them.

use statleak_core::flows::{self, ComparisonOutcome, FlowConfig};
use statleak_engine::Engine;
use std::sync::Arc;

/// Zeroes the wall-clock bookkeeping fields, the only non-deterministic
/// bits of an outcome; everything else must match exactly.
fn normalized(mut o: ComparisonOutcome) -> ComparisonOutcome {
    o.baseline.runtime_s = 0.0;
    o.deterministic.runtime_s = 0.0;
    o.statistical.runtime_s = 0.0;
    o
}

#[test]
fn eight_threads_share_sessions_and_match_one_shot_results() {
    let configs: Vec<FlowConfig> = ["c17", "c432"]
        .into_iter()
        .map(|n| {
            FlowConfig::builder(n)
                .mc_samples(0)
                .build()
                .expect("valid config")
        })
        .collect();

    // One-shot reference results, computed without the engine.
    let expected: Vec<ComparisonOutcome> = configs
        .iter()
        .map(|cfg| {
            let setup = flows::prepare(cfg).expect("prepare");
            normalized(flows::run_comparison_on(&setup, cfg).expect("one-shot"))
        })
        .collect();

    let engine = Arc::new(Engine::new(4));
    let mut handles = Vec::new();
    for t in 0..8usize {
        let engine = Arc::clone(&engine);
        let configs = configs.clone();
        let expected = expected.clone();
        handles.push(std::thread::spawn(move || {
            // Each thread issues both configs, staggered so cache hits and
            // misses interleave across threads.
            for rep in 0..2 {
                let i = (t + rep) % configs.len();
                let got = engine
                    .session(&configs[i])
                    .expect("session")
                    .run_comparison()
                    .expect("comparison");
                assert_eq!(normalized(got), expected[i], "thread {t} rep {rep}");
            }
        }));
    }
    for h in handles {
        h.join().expect("worker thread");
    }

    let stats = engine.cache_stats();
    assert_eq!(stats.hits + stats.misses, 16, "one lookup per request");
    assert_eq!(
        stats.entries, 2,
        "distinct configs collapse to two sessions"
    );
    assert_eq!(stats.evictions, 0);
    // Each session memoizes its comparison exactly once: `get_or_init`
    // lets at most one racer compute per slot.
    for cfg in &configs {
        assert_eq!(engine.session(cfg).expect("cached").memo_len(), 1);
    }
}

#[test]
fn racing_threads_on_one_key_converge_to_one_session() {
    let cfg = FlowConfig::builder("c17")
        .mc_samples(0)
        .build()
        .expect("valid config");
    let engine = Arc::new(Engine::new(4));
    let keys: Vec<u64> = (0..8)
        .map(|_| {
            let engine = Arc::clone(&engine);
            let cfg = cfg.clone();
            std::thread::spawn(move || engine.session(&cfg).expect("session").key())
        })
        .collect::<Vec<_>>()
        .into_iter()
        .map(|h| h.join().expect("thread"))
        .collect();
    assert!(keys.windows(2).all(|w| w[0] == w[1]));
    assert_eq!(engine.cache_stats().entries, 1);
}
