//! Property-based tests for the Monte-Carlo engine on random circuits.

use proptest::prelude::*;
use statleak_mc::{McConfig, MonteCarlo};
use statleak_netlist::generate::{generate, GenSpec};
use statleak_netlist::placement::Placement;
use statleak_tech::{Design, FactorModel, Technology, VariationConfig};
use std::sync::Arc;

fn random_setup(seed: u64) -> (Design, FactorModel) {
    let mut spec = GenSpec::new(format!("mc_prop{seed}"), 5, 2, 25, 5);
    spec.seed = seed;
    let circuit = Arc::new(generate(&spec));
    let placement = Placement::by_level(&circuit);
    let tech = Technology::ptm100();
    let fm =
        FactorModel::build(&circuit, &placement, &tech, &VariationConfig::ptm100()).expect("fm");
    (Design::new(circuit, tech), fm)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Every sampled chip has positive finite delay and leakage.
    #[test]
    fn samples_are_physical(seed in 0u64..500, mc_seed in 0u64..100) {
        let (d, fm) = random_setup(seed);
        let r = MonteCarlo::new(McConfig {
            samples: 64,
            seed: mc_seed,
            threads: 2,
            ..Default::default()
        })
        .run(&d, &fm);
        for c in r.chips() {
            prop_assert!(c.delay.is_finite() && c.delay > 0.0);
            prop_assert!(c.leakage.is_finite() && c.leakage > 0.0);
        }
    }

    /// Yield is a non-decreasing function of the clock, pinned to {0,1} at
    /// the extremes of the sample.
    #[test]
    fn empirical_yield_monotone(seed in 0u64..500) {
        let (d, fm) = random_setup(seed);
        let r = MonteCarlo::new(McConfig {
            samples: 128,
            seed: 3,
            threads: 0,
            ..Default::default()
        })
        .run(&d, &fm);
        let s = r.delay_summary();
        prop_assert_eq!(r.timing_yield(s.min - 1.0), 0.0);
        prop_assert_eq!(r.timing_yield(s.max + 1.0), 1.0);
        let mut prev = 0.0;
        for k in 0..=10 {
            let t = s.min + (s.max - s.min) * k as f64 / 10.0;
            let y = r.timing_yield(t);
            prop_assert!(y >= prev);
            prev = y;
        }
    }

    /// Joint yield is bounded by both marginals and by the Fréchet lower
    /// bound on the *same* sample set (exact, not approximate).
    #[test]
    fn empirical_joint_yield_bounds(seed in 0u64..500, qt in 0.2..0.95f64, ql in 0.2..0.95f64) {
        let (d, fm) = random_setup(seed);
        let r = MonteCarlo::new(McConfig {
            samples: 200,
            seed: 5,
            threads: 0,
            ..Default::default()
        })
        .run(&d, &fm);
        let t = r.delay_summary().p95.min(r.delay_summary().max * qt.max(0.5));
        let i = r.leakage_percentile(ql);
        let yt = r.timing_yield(t);
        let yl = r.chips().iter().filter(|c| c.leakage <= i).count() as f64
            / r.samples() as f64;
        let joint = r.joint_yield(t, i);
        prop_assert!(joint <= yt.min(yl) + 1e-12);
        prop_assert!(joint >= (yt + yl - 1.0).max(0.0) - 1e-12);
    }

    /// The delay-leakage correlation is negative for any design under this
    /// technology's roll-off coupling.
    #[test]
    fn correlation_negative(seed in 0u64..500) {
        let (d, fm) = random_setup(seed);
        let r = MonteCarlo::new(McConfig {
            samples: 256,
            seed: 7,
            threads: 0,
            ..Default::default()
        })
        .run(&d, &fm);
        prop_assert!(r.delay_leakage_correlation() < 0.0);
    }
}
