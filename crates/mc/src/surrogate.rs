//! Linearized analytical surrogates evaluated alongside the non-linear
//! models — the "SSTA as control variate" layer.
//!
//! Both surrogates are functions of the *shared* factor draws only, with
//! expectations known in closed form:
//!
//! * delay: the SSTA canonical `D̃(z) = μ_D + aᵀz` (exactly Gaussian,
//!   `E[D̃] = μ_D`, `σ(D̃) = ‖a‖`);
//! * leakage: the conditional mean `Ĩ(z) = E[I_total | shared = z] =
//!   Σ_r c_r e^{s_rᵀ z}` from the region-aggregated Wilkinson state
//!   (`E[Ĩ]` = the exact total mean).
//!
//! Restricting to shared factors is deliberate: after Clark max operations
//! the canonical's per-gate local contributions fold into one aggregate
//! term that cannot be re-attributed to individual gate draws, while the
//! shared factors carry the bulk of the chip-level variance — which is all
//! a control variate or a mean shift needs.

use statleak_leakage::LeakageAnalysis;
use statleak_ssta::Ssta;
use statleak_tech::{Design, FactorModel};

#[inline]
fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// The linearized delay surrogate `D̃(z) = mean + sharedᵀz`.
#[derive(Debug, Clone)]
pub(crate) struct DelaySurrogate {
    /// Canonical mean (ps) — the surrogate's exact expectation.
    pub mean: f64,
    /// Dense shared-factor sensitivities (ps per sigma).
    pub shared: Vec<f64>,
    /// `‖shared‖` — the surrogate's exact sigma.
    pub sigma_shared: f64,
    /// Total canonical variance (shared + local), for shift derivation.
    pub variance: f64,
}

impl DelaySurrogate {
    /// Runs SSTA and extracts the circuit-delay canonical.
    pub(crate) fn build(design: &Design, fm: &FactorModel) -> Self {
        let ssta = Ssta::analyze(design, fm);
        let c = ssta.circuit_delay();
        let shared = c.shared_dense();
        let sigma_shared = dot(&shared, &shared).sqrt();
        Self {
            mean: c.mean,
            shared,
            sigma_shared,
            variance: c.variance,
        }
    }

    /// Evaluates the surrogate at the drawn shared factors.
    #[inline]
    pub(crate) fn eval(&self, z: &[f64]) -> f64 {
        self.mean + dot(&self.shared, z)
    }

    /// The importance-sampling mean shift for a clock target `t_clk`: the
    /// most-likely-failure point of the linear surrogate `{D̃ ≥ t_clk}`,
    /// projected on the shared factors — `s = a·(t_clk − μ)/σ²`. Its norm
    /// is `β·(shared-variance fraction)`, where `β` is the sigma-distance
    /// of the clock from the mean.
    pub(crate) fn failure_shift(&self, t_clk: f64) -> Vec<f64> {
        if self.variance <= 0.0 {
            return vec![0.0; self.shared.len()];
        }
        let scale = (t_clk - self.mean) / self.variance;
        self.shared.iter().map(|a| a * scale).collect()
    }
}

/// The conditional-mean leakage surrogate `Ĩ(z) = Σ_r c_r e^{s_rᵀ z}`.
#[derive(Debug, Clone)]
pub(crate) struct LeakageSurrogate {
    /// Per-region `(c_r, s_r)` pairs.
    regions: Vec<(f64, Vec<f64>)>,
    /// Exact expectation (the Wilkinson total mean, A).
    pub mean: f64,
}

impl LeakageSurrogate {
    /// Runs the analytical leakage analysis and keeps its region state.
    pub(crate) fn build(design: &Design, fm: &FactorModel) -> Self {
        let leak = LeakageAnalysis::analyze(design, fm);
        Self {
            regions: leak.conditional_mean_surrogate(),
            mean: leak.mean_total_current(),
        }
    }

    /// Evaluates the surrogate at the drawn shared factors — `O(regions)`
    /// exponentials, negligible next to a full netlist evaluation.
    #[inline]
    pub(crate) fn eval(&self, z: &[f64]) -> f64 {
        self.regions.iter().map(|(c, s)| c * dot(s, z).exp()).sum()
    }
}
