//! Post-silicon adaptive body bias (ABB) Monte-Carlo experiment.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rayon::prelude::*;
use statleak_obs as obs;
use statleak_stats::{StdNormalSampler, Summary};
use statleak_tech::{Design, FactorModel};

use crate::sample::sub_seed;
use crate::MonteCarlo;

/// Configuration of post-silicon adaptive body bias (ABB).
///
/// Body bias is a *die-level* knob applied after fabrication: reverse bias
/// (positive Vth shift) trims leakage on fast/leaky die, forward bias
/// (negative shift) rescues slow die at a leakage cost (Tschanz et al.,
/// JSSC 2002). Each sampled chip measures itself and picks, from a small
/// discrete grid, the bias that meets timing with minimum leakage.
#[derive(Debug, Clone, PartialEq)]
pub struct AbbConfig {
    /// Candidate global Vth shifts (V), e.g. `[-0.06, -0.03, 0.0, 0.03, 0.06]`.
    /// Must contain `0.0` so ABB can never be worse than no bias.
    pub bias_grid: Vec<f64>,
    /// The clock the chip must meet (ps).
    pub t_clk: f64,
}

impl AbbConfig {
    /// A standard ±60 mV grid in 20 mV steps.
    pub fn standard(t_clk: f64) -> Self {
        Self {
            bias_grid: vec![-0.06, -0.04, -0.02, 0.0, 0.02, 0.04, 0.06],
            t_clk,
        }
    }
}

/// One chip after adaptive body biasing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AbbChip {
    /// The bias the chip selected (V).
    pub bias: f64,
    /// Circuit delay at the selected bias (ps).
    pub delay: f64,
    /// Leakage current at the selected bias (A).
    pub leakage: f64,
    /// Delay of the same chip with zero bias (ps).
    pub delay_unbiased: f64,
    /// Leakage of the same chip with zero bias (A).
    pub leakage_unbiased: f64,
}

/// Result of an ABB Monte-Carlo run.
#[derive(Debug, Clone, PartialEq)]
pub struct AbbResult {
    chips: Vec<AbbChip>,
    t_clk: f64,
}

impl AbbResult {
    /// Per-chip data.
    pub fn chips(&self) -> &[AbbChip] {
        &self.chips
    }

    /// Timing yield with adaptive body bias.
    pub fn yield_with_abb(&self) -> f64 {
        let ok = self.chips.iter().filter(|c| c.delay <= self.t_clk).count();
        ok as f64 / self.chips.len().max(1) as f64
    }

    /// Timing yield of the same chip population without biasing.
    pub fn yield_without_abb(&self) -> f64 {
        let ok = self
            .chips
            .iter()
            .filter(|c| c.delay_unbiased <= self.t_clk)
            .count();
        ok as f64 / self.chips.len().max(1) as f64
    }

    /// Summary of leakage current after biasing (A).
    pub fn leakage_summary(&self) -> Summary {
        Summary::from_samples(&self.chips.iter().map(|c| c.leakage).collect::<Vec<_>>())
    }

    /// Summary of the unbiased leakage current (A).
    pub fn leakage_summary_unbiased(&self) -> Summary {
        Summary::from_samples(
            &self
                .chips
                .iter()
                .map(|c| c.leakage_unbiased)
                .collect::<Vec<_>>(),
        )
    }
}

impl MonteCarlo {
    /// Runs the ABB experiment: every sampled chip evaluates the full
    /// non-linear models at each candidate bias and keeps the
    /// minimum-leakage bias that meets timing (or the fastest bias if none
    /// does). Always uses the plain sampler — the experiment models the
    /// fabricated population, not an estimator.
    ///
    /// # Panics
    ///
    /// Panics if the bias grid is empty or does not contain `0.0`.
    pub fn run_abb(&self, design: &Design, fm: &FactorModel, abb: &AbbConfig) -> AbbResult {
        let _span = obs::span!("mc.abb_batch");
        obs::counter!("mc_runs_total").inc();
        obs::counter!("mc_samples_total").add(self.config.samples as u64);
        assert!(!abb.bias_grid.is_empty(), "bias grid must be non-empty");
        assert!(abb.bias_grid.contains(&0.0), "bias grid must contain 0.0");
        let base = self.config.seed;
        let chips: Vec<AbbChip> = self.in_pool(|| {
            (0..self.config.samples)
                .into_par_iter()
                .map(|i| evaluate_abb_sample(design, fm, sub_seed(base, i), abb))
                .collect()
        });
        AbbResult {
            chips,
            t_clk: abb.t_clk,
        }
    }
}

/// Evaluates one chip at every candidate bias and applies the selection
/// policy. The process sample (all factor draws) is shared across biases —
/// the bias is the only difference, exactly as on silicon.
fn evaluate_abb_sample(design: &Design, fm: &FactorModel, seed: u64, abb: &AbbConfig) -> AbbChip {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut normal = StdNormalSampler::new();
    let circuit = design.circuit();

    let shared: Vec<f64> = (0..fm.num_shared())
        .map(|_| normal.sample(&mut rng))
        .collect();
    // Freeze the per-gate draws so every bias sees the same silicon.
    let per_gate: Vec<(f64, f64)> = circuit
        .topo_order()
        .iter()
        .map(|&id| {
            if circuit.node(id).kind.is_gate() {
                let dl = fm.sample_l(id, &shared, normal.sample(&mut rng));
                let dv = fm.vth_local(id) * normal.sample(&mut rng);
                (dl, dv)
            } else {
                (0.0, 0.0)
            }
        })
        .collect();

    let evaluate = |bias: f64| -> (f64, f64) {
        let mut arrival = vec![0.0_f64; circuit.num_nodes()];
        let mut leakage = 0.0;
        for (k, &id) in circuit.topo_order().iter().enumerate() {
            let node = circuit.node(id);
            if !node.kind.is_gate() {
                continue;
            }
            let (dl, dv) = per_gate[k];
            let dvth = dv + bias;
            let d = design.library().delay(
                node.kind,
                node.fanin.len(),
                design.size(id),
                design.vth(id),
                design.load_cap(id),
                dl,
                dvth,
            );
            let worst = node
                .fanin
                .iter()
                .map(|f| arrival[f.index()])
                .fold(0.0, f64::max);
            arrival[id.index()] = worst + d;
            leakage += design.library().leakage(
                node.kind,
                node.fanin.len(),
                design.size(id),
                design.vth(id),
                dl,
                dvth,
            );
        }
        let delay = circuit
            .outputs()
            .iter()
            .map(|o| arrival[o.index()])
            .fold(0.0, f64::max);
        (delay, leakage)
    };

    let (delay_unbiased, leakage_unbiased) = evaluate(0.0);
    let mut best: Option<(f64, f64, f64)> = None; // (bias, delay, leak)
    let mut fastest: Option<(f64, f64, f64)> = None;
    for &bias in &abb.bias_grid {
        let (d, l) = if bias == 0.0 {
            (delay_unbiased, leakage_unbiased)
        } else {
            evaluate(bias)
        };
        if fastest.as_ref().is_none_or(|&(_, fd, _)| d < fd) {
            fastest = Some((bias, d, l));
        }
        if d <= abb.t_clk && best.as_ref().is_none_or(|&(_, _, bl)| l < bl) {
            best = Some((bias, d, l));
        }
    }
    let (bias, delay, leakage) = best.or(fastest).expect("bias grid is non-empty");
    AbbChip {
        bias,
        delay,
        leakage,
        delay_unbiased,
        leakage_unbiased,
    }
}
