//! Monte-Carlo validation engine.
//!
//! Samples concrete process outcomes through the *same* factor model the
//! analytical engines use ([`statleak_tech::FactorModel`]), but evaluates
//! the **full non-linear** device models per sample — alpha-power delay and
//! exponential leakage — rather than their first-order expansions. That is
//! exactly the role Monte Carlo plays in the paper: an independent check of
//! the SSTA and Wilkinson-lognormal approximations, and the ground truth
//! for the timing-yield and 95th-percentile-leakage claims.
//!
//! Sampling is deterministic (seeded) and multi-threaded with
//! per-thread sub-streams, so results are reproducible regardless of the
//! thread count.
//!
//! # Example
//!
//! ```
//! use statleak_netlist::{benchmarks, placement::Placement};
//! use statleak_tech::{Design, FactorModel, Technology, VariationConfig};
//! use statleak_mc::{McConfig, MonteCarlo};
//! use std::sync::Arc;
//!
//! let circuit = Arc::new(benchmarks::c17());
//! let placement = Placement::by_level(&circuit);
//! let tech = Technology::ptm100();
//! let fm = FactorModel::build(&circuit, &placement, &tech, &VariationConfig::ptm100())?;
//! let design = Design::new(circuit, tech);
//! let result = MonteCarlo::new(McConfig { samples: 500, ..McConfig::default() })
//!     .run(&design, &fm);
//! assert_eq!(result.samples(), 500);
//! assert!(result.delay_summary().mean > 0.0);
//! # Ok::<(), statleak_stats::CholeskyError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::SeedableRng;
use rayon::prelude::*;
use statleak_netlist::NodeId;
use statleak_obs as obs;
use statleak_stats::{Histogram, StdNormalSampler, Summary};
use statleak_tech::{cell, Design, FactorModel};

/// Monte-Carlo run configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct McConfig {
    /// Number of chip samples.
    pub samples: usize,
    /// Base RNG seed; sample `i` always uses sub-stream `seed ⊕ i`, so the
    /// result is independent of the thread count.
    pub seed: u64,
    /// Worker threads (0 = use available parallelism).
    pub threads: usize,
}

impl Default for McConfig {
    fn default() -> Self {
        Self {
            samples: 2000,
            seed: 0xCAFE,
            threads: 0,
        }
    }
}

/// One sampled chip: circuit delay and total leakage current.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChipSample {
    /// Circuit delay (ps) under the sampled parameters.
    pub delay: f64,
    /// Total leakage current (A) under the sampled parameters.
    pub leakage: f64,
}

/// The result of a Monte-Carlo run.
#[derive(Debug, Clone, PartialEq)]
pub struct McResult {
    samples: Vec<ChipSample>,
}

impl McResult {
    /// Number of chip samples.
    pub fn samples(&self) -> usize {
        self.samples.len()
    }

    /// Per-sample data.
    pub fn chips(&self) -> &[ChipSample] {
        &self.samples
    }

    /// Summary statistics of the circuit delay (ps).
    pub fn delay_summary(&self) -> Summary {
        Summary::from_samples(&self.delays())
    }

    /// Summary statistics of the total leakage current (A).
    pub fn leakage_summary(&self) -> Summary {
        Summary::from_samples(&self.leakages())
    }

    /// Empirical timing yield `P(delay ≤ t_clk)`.
    pub fn timing_yield(&self, t_clk: f64) -> f64 {
        let ok = self.samples.iter().filter(|s| s.delay <= t_clk).count();
        ok as f64 / self.samples.len().max(1) as f64
    }

    /// Empirical leakage percentile.
    pub fn leakage_percentile(&self, p: f64) -> f64 {
        Summary::percentile(&self.leakages(), p)
    }

    /// Empirical **joint parametric yield**: the fraction of chips that
    /// meet both the timing constraint and the leakage-current budget,
    /// `P(delay ≤ t_clk ∧ leakage ≤ i_max)`. Because fast die leak more,
    /// this is substantially below the product of the marginal yields.
    pub fn joint_yield(&self, t_clk: f64, i_max: f64) -> f64 {
        let ok = self
            .samples
            .iter()
            .filter(|s| s.delay <= t_clk && s.leakage <= i_max)
            .count();
        ok as f64 / self.samples.len().max(1) as f64
    }

    /// Histogram of the total leakage (for the distribution figures).
    pub fn leakage_histogram(&self, bins: usize) -> Histogram {
        Histogram::from_samples(&self.leakages(), bins)
    }

    /// Pearson correlation between delay and leakage across chips.
    /// Strongly negative in this technology: fast (short-channel) die leak
    /// more — the effect the statistical optimizer must respect.
    pub fn delay_leakage_correlation(&self) -> f64 {
        let n = self.samples.len() as f64;
        let md = self.samples.iter().map(|s| s.delay).sum::<f64>() / n;
        let ml = self.samples.iter().map(|s| s.leakage).sum::<f64>() / n;
        let mut cov = 0.0;
        let mut vd = 0.0;
        let mut vl = 0.0;
        for s in &self.samples {
            cov += (s.delay - md) * (s.leakage - ml);
            vd += (s.delay - md) * (s.delay - md);
            vl += (s.leakage - ml) * (s.leakage - ml);
        }
        if vd == 0.0 || vl == 0.0 {
            0.0
        } else {
            cov / (vd.sqrt() * vl.sqrt())
        }
    }

    fn delays(&self) -> Vec<f64> {
        self.samples.iter().map(|s| s.delay).collect()
    }

    fn leakages(&self) -> Vec<f64> {
        self.samples.iter().map(|s| s.leakage).collect()
    }
}

/// The Monte-Carlo engine.
#[derive(Debug, Clone)]
pub struct MonteCarlo {
    config: McConfig,
}

impl MonteCarlo {
    /// Creates an engine with the given configuration.
    pub fn new(config: McConfig) -> Self {
        assert!(config.samples > 0, "need at least one sample");
        Self { config }
    }

    /// Runs the simulation: one full-chip non-linear evaluation per sample,
    /// fanned out on rayon. Sample `i`'s RNG sub-stream depends only on
    /// `seed` and `i`, and the parallel collect preserves index order, so
    /// the result is bit-identical for any thread count.
    pub fn run(&self, design: &Design, fm: &FactorModel) -> McResult {
        let _span = obs::span!("mc.sample_batch");
        obs::counter!("mc_runs_total").inc();
        obs::counter!("mc_samples_total").add(self.config.samples as u64);
        let seed = self.config.seed;
        let eval = |i: usize| {
            evaluate_sample(
                design,
                fm,
                seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            )
        };
        let samples = self.in_pool(|| (0..self.config.samples).into_par_iter().map(eval).collect());
        McResult { samples }
    }

    /// Runs `op` under this config's thread bound (`threads == 0` keeps the
    /// ambient rayon parallelism).
    fn in_pool<R, F: FnOnce() -> R>(&self, op: F) -> R {
        if self.config.threads == 0 {
            op()
        } else {
            rayon::ThreadPoolBuilder::new()
                .num_threads(self.config.threads)
                .build()
                .expect("thread pool")
                .install(op)
        }
    }
}

/// Configuration of post-silicon adaptive body bias (ABB).
///
/// Body bias is a *die-level* knob applied after fabrication: reverse bias
/// (positive Vth shift) trims leakage on fast/leaky die, forward bias
/// (negative shift) rescues slow die at a leakage cost (Tschanz et al.,
/// JSSC 2002). Each sampled chip measures itself and picks, from a small
/// discrete grid, the bias that meets timing with minimum leakage.
#[derive(Debug, Clone, PartialEq)]
pub struct AbbConfig {
    /// Candidate global Vth shifts (V), e.g. `[-0.06, -0.03, 0.0, 0.03, 0.06]`.
    /// Must contain `0.0` so ABB can never be worse than no bias.
    pub bias_grid: Vec<f64>,
    /// The clock the chip must meet (ps).
    pub t_clk: f64,
}

impl AbbConfig {
    /// A standard ±60 mV grid in 20 mV steps.
    pub fn standard(t_clk: f64) -> Self {
        Self {
            bias_grid: vec![-0.06, -0.04, -0.02, 0.0, 0.02, 0.04, 0.06],
            t_clk,
        }
    }
}

/// One chip after adaptive body biasing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AbbChip {
    /// The bias the chip selected (V).
    pub bias: f64,
    /// Circuit delay at the selected bias (ps).
    pub delay: f64,
    /// Leakage current at the selected bias (A).
    pub leakage: f64,
    /// Delay of the same chip with zero bias (ps).
    pub delay_unbiased: f64,
    /// Leakage of the same chip with zero bias (A).
    pub leakage_unbiased: f64,
}

/// Result of an ABB Monte-Carlo run.
#[derive(Debug, Clone, PartialEq)]
pub struct AbbResult {
    chips: Vec<AbbChip>,
    t_clk: f64,
}

impl AbbResult {
    /// Per-chip data.
    pub fn chips(&self) -> &[AbbChip] {
        &self.chips
    }

    /// Timing yield with adaptive body bias.
    pub fn yield_with_abb(&self) -> f64 {
        let ok = self.chips.iter().filter(|c| c.delay <= self.t_clk).count();
        ok as f64 / self.chips.len().max(1) as f64
    }

    /// Timing yield of the same chip population without biasing.
    pub fn yield_without_abb(&self) -> f64 {
        let ok = self
            .chips
            .iter()
            .filter(|c| c.delay_unbiased <= self.t_clk)
            .count();
        ok as f64 / self.chips.len().max(1) as f64
    }

    /// Summary of leakage current after biasing (A).
    pub fn leakage_summary(&self) -> Summary {
        Summary::from_samples(&self.chips.iter().map(|c| c.leakage).collect::<Vec<_>>())
    }

    /// Summary of the unbiased leakage current (A).
    pub fn leakage_summary_unbiased(&self) -> Summary {
        Summary::from_samples(
            &self
                .chips
                .iter()
                .map(|c| c.leakage_unbiased)
                .collect::<Vec<_>>(),
        )
    }
}

impl MonteCarlo {
    /// Runs the ABB experiment: every sampled chip evaluates the full
    /// non-linear models at each candidate bias and keeps the
    /// minimum-leakage bias that meets timing (or the fastest bias if none
    /// does).
    ///
    /// # Panics
    ///
    /// Panics if the bias grid is empty or does not contain `0.0`.
    pub fn run_abb(&self, design: &Design, fm: &FactorModel, abb: &AbbConfig) -> AbbResult {
        let _span = obs::span!("mc.abb_batch");
        obs::counter!("mc_runs_total").inc();
        obs::counter!("mc_samples_total").add(self.config.samples as u64);
        assert!(!abb.bias_grid.is_empty(), "bias grid must be non-empty");
        assert!(abb.bias_grid.contains(&0.0), "bias grid must contain 0.0");
        let base = self.config.seed;
        let chips: Vec<AbbChip> = self.in_pool(|| {
            (0..self.config.samples)
                .into_par_iter()
                .map(|i| {
                    let seed = base ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                    evaluate_abb_sample(design, fm, seed, abb)
                })
                .collect()
        });
        AbbResult {
            chips,
            t_clk: abb.t_clk,
        }
    }
}

/// Evaluates one chip at every candidate bias and applies the selection
/// policy. The process sample (all factor draws) is shared across biases —
/// the bias is the only difference, exactly as on silicon.
fn evaluate_abb_sample(design: &Design, fm: &FactorModel, seed: u64, abb: &AbbConfig) -> AbbChip {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut normal = StdNormalSampler::new();
    let circuit = design.circuit();
    let tech = design.tech();

    let shared: Vec<f64> = (0..fm.num_shared())
        .map(|_| normal.sample(&mut rng))
        .collect();
    // Freeze the per-gate draws so every bias sees the same silicon.
    let per_gate: Vec<(f64, f64)> = circuit
        .topo_order()
        .iter()
        .map(|&id| {
            if circuit.node(id).kind.is_gate() {
                let dl = fm.sample_l(id, &shared, normal.sample(&mut rng));
                let dv = fm.vth_local(id) * normal.sample(&mut rng);
                (dl, dv)
            } else {
                (0.0, 0.0)
            }
        })
        .collect();

    let evaluate = |bias: f64| -> (f64, f64) {
        let mut arrival = vec![0.0_f64; circuit.num_nodes()];
        let mut leakage = 0.0;
        for (k, &id) in circuit.topo_order().iter().enumerate() {
            let node = circuit.node(id);
            if !node.kind.is_gate() {
                continue;
            }
            let (dl, dv) = per_gate[k];
            let dvth = dv + bias;
            let d = cell::gate_delay(
                tech,
                node.kind,
                node.fanin.len(),
                design.size(id),
                design.vth(id),
                design.load_cap(id),
                dl,
                dvth,
            );
            let worst = node
                .fanin
                .iter()
                .map(|f| arrival[f.index()])
                .fold(0.0, f64::max);
            arrival[id.index()] = worst + d;
            leakage += cell::leakage_current(
                tech,
                node.kind,
                node.fanin.len(),
                design.size(id),
                design.vth(id),
                dl,
                dvth,
            );
        }
        let delay = circuit
            .outputs()
            .iter()
            .map(|o| arrival[o.index()])
            .fold(0.0, f64::max);
        (delay, leakage)
    };

    let (delay_unbiased, leakage_unbiased) = evaluate(0.0);
    let mut best: Option<(f64, f64, f64)> = None; // (bias, delay, leak)
    let mut fastest: Option<(f64, f64, f64)> = None;
    for &bias in &abb.bias_grid {
        let (d, l) = if bias == 0.0 {
            (delay_unbiased, leakage_unbiased)
        } else {
            evaluate(bias)
        };
        if fastest.as_ref().is_none_or(|&(_, fd, _)| d < fd) {
            fastest = Some((bias, d, l));
        }
        if d <= abb.t_clk && best.as_ref().is_none_or(|&(_, _, bl)| l < bl) {
            best = Some((bias, d, l));
        }
    }
    let (bias, delay, leakage) = best.or(fastest).expect("bias grid is non-empty");
    AbbChip {
        bias,
        delay,
        leakage,
        delay_unbiased,
        leakage_unbiased,
    }
}

/// Evaluates one chip: samples the factors, runs a full non-linear timing
/// and leakage evaluation.
fn evaluate_sample(design: &Design, fm: &FactorModel, seed: u64) -> ChipSample {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut normal = StdNormalSampler::new();
    let circuit = design.circuit();
    let tech = design.tech();

    let shared: Vec<f64> = (0..fm.num_shared())
        .map(|_| normal.sample(&mut rng))
        .collect();

    let mut arrival = vec![0.0_f64; circuit.num_nodes()];
    let mut leakage = 0.0;
    for &id in circuit.topo_order() {
        let node = circuit.node(id);
        if !node.kind.is_gate() {
            continue;
        }
        let dl = fm.sample_l(id, &shared, normal.sample(&mut rng));
        let dvth = fm.vth_local(id) * normal.sample(&mut rng);
        let d = cell::gate_delay(
            tech,
            node.kind,
            node.fanin.len(),
            design.size(id),
            design.vth(id),
            design.load_cap(id),
            dl,
            dvth,
        );
        let worst = node
            .fanin
            .iter()
            .map(|f| arrival[f.index()])
            .fold(0.0, f64::max);
        arrival[id.index()] = worst + d;
        leakage += cell::leakage_current(
            tech,
            node.kind,
            node.fanin.len(),
            design.size(id),
            design.vth(id),
            dl,
            dvth,
        );
    }
    let delay = circuit
        .outputs()
        .iter()
        .map(|o: &NodeId| arrival[o.index()])
        .fold(0.0, f64::max);
    ChipSample { delay, leakage }
}

#[cfg(test)]
mod tests {
    use super::*;
    use statleak_leakage::LeakageAnalysis;
    use statleak_netlist::{benchmarks, placement::Placement};
    use statleak_ssta::Ssta;
    use statleak_sta::Sta;
    use statleak_tech::{Technology, VariationConfig};
    use std::sync::Arc;

    fn setup(name: &str) -> (Design, FactorModel) {
        let circuit = Arc::new(benchmarks::by_name(name).unwrap());
        let placement = Placement::by_level(&circuit);
        let tech = Technology::ptm100();
        let fm =
            FactorModel::build(&circuit, &placement, &tech, &VariationConfig::ptm100()).unwrap();
        (Design::new(circuit, tech), fm)
    }

    fn run(name: &str, samples: usize) -> (Design, FactorModel, McResult) {
        let (d, fm) = setup(name);
        let r = MonteCarlo::new(McConfig {
            samples,
            ..Default::default()
        })
        .run(&d, &fm);
        (d, fm, r)
    }

    #[test]
    fn deterministic_across_thread_counts() {
        let (d, fm) = setup("c17");
        let mc = |threads| {
            MonteCarlo::new(McConfig {
                samples: 64,
                seed: 5,
                threads,
            })
        };
        let one = mc(1).run(&d, &fm);
        let four = mc(4).run(&d, &fm);
        assert_eq!(one, four);
        // Same contract for the ABB experiment: per-chip seeds depend only
        // on the sample index, so the population is thread-count invariant.
        let abb = AbbConfig::standard(one.delay_summary().mean);
        let abb_one = mc(1).run_abb(&d, &fm, &abb);
        let abb_four = mc(4).run_abb(&d, &fm, &abb);
        assert_eq!(abb_one, abb_four);
        // An odd thread count exercises the uneven-chunk path too.
        let abb_three = mc(3).run_abb(&d, &fm, &abb);
        assert_eq!(abb_one, abb_three);
    }

    #[test]
    fn delay_mean_close_to_ssta() {
        let (d, fm, r) = run("c432", 2000);
        let ssta = Ssta::analyze(&d, &fm);
        let mc = r.delay_summary();
        let an = ssta.circuit_delay();
        let err = (an.mean - mc.mean).abs() / mc.mean;
        assert!(
            err < 0.03,
            "SSTA mean {} vs MC {} ({err})",
            an.mean,
            mc.mean
        );
        let serr = (an.variance.sqrt() - mc.std).abs() / mc.std;
        assert!(
            serr < 0.25,
            "SSTA sigma {} vs MC {} ({serr})",
            an.variance.sqrt(),
            mc.std
        );
    }

    #[test]
    fn delay_mean_above_deterministic_sta() {
        let (d, _, r) = run("c880", 500);
        let det = Sta::analyze(&d).circuit_delay();
        assert!(r.delay_summary().mean > det * 0.98);
    }

    #[test]
    fn leakage_matches_wilkinson_analysis() {
        let (d, fm, r) = run("c499", 3000);
        let analytic = LeakageAnalysis::analyze(&d, &fm).total_current();
        let mc = r.leakage_summary();
        assert!(
            (analytic.mean() - mc.mean).abs() / mc.mean < 0.05,
            "mean {} vs {}",
            analytic.mean(),
            mc.mean
        );
        assert!(
            (analytic.quantile(0.95) - mc.p95).abs() / mc.p95 < 0.08,
            "p95 {} vs {}",
            analytic.quantile(0.95),
            mc.p95
        );
    }

    #[test]
    fn fast_die_leak_more() {
        let (_, _, r) = run("c880", 1000);
        let rho = r.delay_leakage_correlation();
        assert!(
            rho < -0.3,
            "expected strong negative correlation, got {rho}"
        );
    }

    #[test]
    fn empirical_yield_tracks_ssta_yield() {
        let (d, fm, r) = run("c1355", 2000);
        let ssta = Ssta::analyze(&d, &fm);
        let t = ssta.clock_for_yield(0.90);
        let y = r.timing_yield(t);
        assert!((y - 0.90).abs() < 0.05, "MC yield {y} at SSTA 90% clock");
    }

    #[test]
    fn histogram_covers_all_samples() {
        let (_, _, r) = run("c17", 300);
        let h = r.leakage_histogram(20);
        assert_eq!(h.total(), 300);
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn zero_samples_rejected() {
        let _ = MonteCarlo::new(McConfig {
            samples: 0,
            ..Default::default()
        });
    }
}

#[cfg(test)]
mod abb_tests {
    use super::*;
    use statleak_netlist::{benchmarks, placement::Placement};
    use statleak_ssta::Ssta;
    use statleak_tech::{Technology, VariationConfig};
    use std::sync::Arc;

    fn setup(name: &str) -> (Design, FactorModel) {
        let circuit = Arc::new(benchmarks::by_name(name).unwrap());
        let placement = Placement::by_level(&circuit);
        let tech = Technology::ptm100();
        let fm =
            FactorModel::build(&circuit, &placement, &tech, &VariationConfig::ptm100()).unwrap();
        (Design::new(circuit, tech), fm)
    }

    #[test]
    fn abb_never_reduces_yield() {
        let (d, fm) = setup("c432");
        // A clock where the unbiased design yields ~85%.
        let ssta = Ssta::analyze(&d, &fm);
        let t = ssta.clock_for_yield(0.85);
        let r = MonteCarlo::new(McConfig {
            samples: 800,
            ..Default::default()
        })
        .run_abb(&d, &fm, &AbbConfig::standard(t));
        assert!(r.yield_with_abb() >= r.yield_without_abb());
        // Forward bias should rescue a visible fraction of slow die.
        assert!(
            r.yield_with_abb() > r.yield_without_abb() + 0.05,
            "ABB yield {} vs unbiased {}",
            r.yield_with_abb(),
            r.yield_without_abb()
        );
    }

    #[test]
    fn per_chip_selection_dominates_zero_bias() {
        // Any chip that met timing unbiased must end with leakage <= its
        // unbiased leakage (bias 0 was a candidate).
        let (d, fm) = setup("c499");
        let ssta = Ssta::analyze(&d, &fm);
        let t = ssta.clock_for_yield(0.90);
        let r = MonteCarlo::new(McConfig {
            samples: 500,
            ..Default::default()
        })
        .run_abb(&d, &fm, &AbbConfig::standard(t));
        for c in r.chips() {
            if c.delay_unbiased <= t {
                assert!(c.leakage <= c.leakage_unbiased * (1.0 + 1e-12));
                assert!(c.delay <= t + 1e-9);
            }
        }
    }

    #[test]
    fn fast_chips_choose_reverse_bias() {
        let (d, fm) = setup("c880");
        let ssta = Ssta::analyze(&d, &fm);
        // Generous clock: almost every chip meets timing unbiased, so the
        // selection is almost purely leakage-driven -> reverse bias.
        let t = ssta.clock_for_yield(0.999);
        let r = MonteCarlo::new(McConfig {
            samples: 300,
            ..Default::default()
        })
        .run_abb(&d, &fm, &AbbConfig::standard(t));
        let mean_bias: f64 = r.chips().iter().map(|c| c.bias).sum::<f64>() / r.chips().len() as f64;
        assert!(mean_bias > 0.02, "mean bias {mean_bias} should be reverse");
        assert!(r.leakage_summary().mean < r.leakage_summary_unbiased().mean * 0.7);
    }

    #[test]
    #[should_panic(expected = "bias grid must contain 0.0")]
    fn grid_without_zero_rejected() {
        let (d, fm) = setup("c17");
        let _ = MonteCarlo::new(McConfig {
            samples: 2,
            ..Default::default()
        })
        .run_abb(
            &d,
            &fm,
            &AbbConfig {
                bias_grid: vec![0.02],
                t_clk: 100.0,
            },
        );
    }
}

impl MonteCarlo {
    /// Estimates the far-tail timing miss probability `P(D > t_clk)` by
    /// **importance sampling**: the die-to-die channel-length factor is
    /// sampled from `N(shift, 1)` instead of `N(0, 1)` (positive shift →
    /// longer channels → slower die), and each sample carries the
    /// likelihood ratio `exp(−shift·z₀ + shift²/2)`. For 3–4σ clock
    /// targets, plain Monte Carlo needs millions of samples to see a
    /// single miss; a shift of 2–3 concentrates the samples where the
    /// misses are and cuts the variance by orders of magnitude.
    ///
    /// Returns `(estimate, standard_error)`.
    ///
    /// # Panics
    ///
    /// Panics if `shift` is negative (shift toward the slow tail only).
    pub fn tail_miss_probability(
        &self,
        design: &Design,
        fm: &FactorModel,
        t_clk: f64,
        shift: f64,
    ) -> (f64, f64) {
        assert!(shift >= 0.0, "shift must point into the slow tail");
        let n = self.config.samples;
        let mut sum = 0.0;
        let mut sum_sq = 0.0;
        for i in 0..n {
            let seed = self.config.seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let mut rng = StdRng::seed_from_u64(seed);
            let mut normal = StdNormalSampler::new();
            let circuit = design.circuit();
            let tech = design.tech();
            let mut shared: Vec<f64> = (0..fm.num_shared())
                .map(|_| normal.sample(&mut rng))
                .collect();
            // Shift the die-to-die factor; weight by the likelihood ratio.
            shared[0] += shift;
            let weight = (-shift * shared[0] + 0.5 * shift * shift).exp();

            let mut arrival = vec![0.0_f64; circuit.num_nodes()];
            for &id in circuit.topo_order() {
                let node = circuit.node(id);
                if !node.kind.is_gate() {
                    continue;
                }
                let dl = fm.sample_l(id, &shared, normal.sample(&mut rng));
                let dvth = fm.vth_local(id) * normal.sample(&mut rng);
                let d = cell::gate_delay(
                    tech,
                    node.kind,
                    node.fanin.len(),
                    design.size(id),
                    design.vth(id),
                    design.load_cap(id),
                    dl,
                    dvth,
                );
                let worst = node
                    .fanin
                    .iter()
                    .map(|f| arrival[f.index()])
                    .fold(0.0, f64::max);
                arrival[id.index()] = worst + d;
            }
            let delay = circuit
                .outputs()
                .iter()
                .map(|o| arrival[o.index()])
                .fold(0.0, f64::max);
            let x = if delay > t_clk { weight } else { 0.0 };
            sum += x;
            sum_sq += x * x;
        }
        let mean = sum / n as f64;
        let var = (sum_sq / n as f64 - mean * mean).max(0.0);
        (mean, (var / n as f64).sqrt())
    }
}

#[cfg(test)]
mod importance_sampling_tests {
    use super::*;
    use statleak_netlist::{benchmarks, placement::Placement};
    use statleak_ssta::Ssta;
    use statleak_tech::{Technology, VariationConfig};
    use std::sync::Arc;

    fn setup(name: &str) -> (Design, FactorModel) {
        let circuit = Arc::new(benchmarks::by_name(name).unwrap());
        let placement = Placement::by_level(&circuit);
        let tech = Technology::ptm100();
        let fm =
            FactorModel::build(&circuit, &placement, &tech, &VariationConfig::ptm100()).unwrap();
        (Design::new(circuit, tech), fm)
    }

    #[test]
    fn zero_shift_matches_plain_mc() {
        let (d, fm) = setup("c432");
        let mc = MonteCarlo::new(McConfig {
            samples: 2000,
            ..Default::default()
        });
        let ssta = Ssta::analyze(&d, &fm);
        let t = ssta.clock_for_yield(0.9);
        let plain = 1.0 - mc.run(&d, &fm).timing_yield(t);
        let (is_est, _) = mc.tail_miss_probability(&d, &fm, t, 0.0);
        assert!(
            (is_est - plain).abs() < 0.03,
            "IS {is_est} vs plain {plain}"
        );
    }

    #[test]
    fn shifted_estimate_tracks_far_tail() {
        // At the 3.2-sigma clock the true miss rate is ~7e-4: invisible to
        // 3000 plain samples, but the shifted estimator resolves it.
        let (d, fm) = setup("c499");
        let ssta = Ssta::analyze(&d, &fm);
        let t = ssta.clock_for_yield(0.99931); // ~3.2 sigma
        let expected = 1.0 - 0.99931;
        let mc = MonteCarlo::new(McConfig {
            samples: 3000,
            ..Default::default()
        });
        let (est, se) = mc.tail_miss_probability(&d, &fm, t, 2.5);
        assert!(est > 0.0, "shifted estimator must see the tail");
        // Within a factor ~2.5 of the first-order analytic tail (the SSTA
        // tail itself is approximate at this depth, so keep it loose).
        assert!(
            est / expected < 2.5 && expected / est < 2.5,
            "IS {est} (se {se}) vs analytic {expected}"
        );
        // And the relative standard error is controlled.
        assert!(se / est < 0.5, "se {se} vs est {est}");
    }

    #[test]
    #[should_panic(expected = "shift must point into the slow tail")]
    fn negative_shift_rejected() {
        let (d, fm) = setup("c17");
        let _ = MonteCarlo::new(McConfig {
            samples: 2,
            ..Default::default()
        })
        .tail_miss_probability(&d, &fm, 100.0, -1.0);
    }
}
