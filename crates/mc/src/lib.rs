//! Monte-Carlo validation engine with composable variance reduction.
//!
//! Samples concrete process outcomes through the *same* factor model the
//! analytical engines use ([`statleak_tech::FactorModel`]), but evaluates
//! the **full non-linear** device models per sample — alpha-power delay and
//! exponential leakage — rather than their first-order expansions. That is
//! exactly the role Monte Carlo plays in the paper: an independent check of
//! the SSTA and Wilkinson-lognormal approximations, and the ground truth
//! for the timing-yield and 95th-percentile-leakage claims.
//!
//! The engine is built from three composable layers on top of the plain
//! seeded sampler (which remains the default and the reference estimator):
//!
//! * **Importance sampling** ([`MonteCarlo::timing_yield_estimate`]) —
//!   shifts the shared-factor distribution toward the failure region along
//!   the direction the SSTA delay canonical provides analytically, and
//!   unbiases every sample with its likelihood ratio. Turns far-tail yield
//!   estimation from `O(1/p)` samples into a few hundred.
//! * **Scrambled Sobol QMC** ([`SamplerKind::Sobol`]) — replaces the
//!   leading sample dimensions (the shared factors first) with an
//!   Owen-scrambled low-discrepancy sequence, falling back to the plain
//!   sub-streams beyond the direction-number table (hybrid QMC+MC).
//! * **SSTA control variates** ([`VarianceReduction::control_variate`]) —
//!   evaluates the linearized delay and conditional-mean leakage surrogates
//!   alongside the non-linear models and exposes known-mean-corrected
//!   estimators on [`McResult`].
//!
//! Every path is deterministic: draws depend only on `(seed, sample
//! index)`, parallel collects preserve index order, and reductions run
//! sequentially — so results are bit-identical for any thread count.
//!
//! # Example
//!
//! ```
//! use statleak_netlist::{benchmarks, placement::Placement};
//! use statleak_tech::{Design, FactorModel, Technology, VariationConfig};
//! use statleak_mc::{McConfig, MonteCarlo};
//! use std::sync::Arc;
//!
//! let circuit = Arc::new(benchmarks::c17());
//! let placement = Placement::by_level(&circuit);
//! let tech = Technology::ptm100();
//! let fm = FactorModel::build(&circuit, &placement, &tech, &VariationConfig::ptm100())?;
//! let design = Design::new(circuit, tech);
//! let result = MonteCarlo::new(McConfig { samples: 500, ..McConfig::default() })
//!     .run(&design, &fm);
//! assert_eq!(result.samples(), 500);
//! assert!(result.delay_summary().mean > 0.0);
//! // Every empirical yield carries a Wilson confidence interval.
//! let t = result.delay_summary().p95;
//! let ci = result.timing_yield_interval(t, statleak_mc::DEFAULT_CI_Z);
//! assert!(ci.contains(result.timing_yield(t)));
//! # Ok::<(), statleak_stats::CholeskyError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod abb;
mod config;
mod importance;
mod result;
mod sample;
mod surrogate;

pub use abb::{AbbChip, AbbConfig, AbbResult};
pub use config::{McConfig, SamplerKind, SamplingScheme, VarianceReduction};
pub use importance::{importance_weight, YieldEstimate};
pub use result::{ChipSample, ControlVariateEstimate, McResult, DEFAULT_CI_Z};

use rayon::prelude::*;
use statleak_obs as obs;
use statleak_tech::{Design, FactorModel};

use crate::result::SurrogateData;
use crate::sample::{evaluate_chip, qmc_sequence, sub_seed};
use crate::surrogate::{DelaySurrogate, LeakageSurrogate};

/// The Monte-Carlo engine.
#[derive(Debug, Clone)]
pub struct MonteCarlo {
    pub(crate) config: McConfig,
}

impl MonteCarlo {
    /// Creates an engine with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration requests zero samples.
    pub fn new(config: McConfig) -> Self {
        assert!(config.samples > 0, "need at least one sample");
        Self { config }
    }

    /// The configuration this engine runs with.
    pub fn config(&self) -> &McConfig {
        &self.config
    }

    /// Runs the population simulation: one full-chip non-linear evaluation
    /// per sample, fanned out on rayon. Sample `i`'s draws depend only on
    /// `seed` and `i` (PRNG sub-stream, and Sobol point `i` under
    /// [`SamplerKind::Sobol`]), and the parallel collect preserves index
    /// order, so the result is bit-identical for any thread count.
    ///
    /// With the control-variate layer enabled, the linearized surrogates
    /// are evaluated per sample and the known-mean-corrected estimators on
    /// [`McResult`] become available. The importance-sampling layer does
    /// not apply to population runs — see
    /// [`MonteCarlo::timing_yield_estimate`].
    pub fn run(&self, design: &Design, fm: &FactorModel) -> McResult {
        let _span = obs::span!("mc.sample_batch");
        let n = self.config.samples;
        obs::counter!("mc_runs_total").inc();
        obs::counter!("mc_samples_total").add(n as u64);
        obs::counter!("mc_nonlinear_evals_total").add(n as u64);
        let seed = self.config.seed;
        let seq = match self.config.sampler {
            SamplerKind::Plain => None,
            SamplerKind::Sobol => {
                assert!(
                    n as u128 <= u128::from(u32::MAX) + 1,
                    "the Sobol index space holds 2^32 points"
                );
                Some(qmc_sequence(design, fm, seed))
            }
        };
        let cv = self.config.variance_reduction.control_variate.then(|| {
            (
                DelaySurrogate::build(design, fm),
                LeakageSurrogate::build(design, fm),
            )
        });
        let eval = |i: usize| {
            let qmc: Vec<f64> = match &seq {
                Some(s) => {
                    let mut buf = vec![0.0; s.dims()];
                    s.normal_point(i as u32, &mut buf);
                    buf
                }
                None => Vec::new(),
            };
            let (delay, leakage, shared) = evaluate_chip(design, fm, sub_seed(seed, i), &qmc, None);
            let sur = cv.as_ref().map(|(d, l)| (d.eval(&shared), l.eval(&shared)));
            (ChipSample { delay, leakage }, sur)
        };
        let rows: Vec<(ChipSample, Option<(f64, f64)>)> =
            self.in_pool(|| (0..n).into_par_iter().map(eval).collect());

        let mut samples = Vec::with_capacity(n);
        let mut surrogates = cv.as_ref().map(|(d, l)| SurrogateData {
            delay: Vec::with_capacity(n),
            leakage: Vec::with_capacity(n),
            delay_mean: d.mean,
            delay_sigma: d.sigma_shared,
            leakage_mean: l.mean,
        });
        for (chip, sur) in rows {
            samples.push(chip);
            if let (Some(data), Some((sd, sl))) = (surrogates.as_mut(), sur) {
                data.delay.push(sd);
                data.leakage.push(sl);
            }
        }
        McResult {
            samples,
            surrogates,
        }
    }

    /// Runs `op` under this config's thread bound (`threads == 0` keeps the
    /// ambient rayon parallelism).
    pub(crate) fn in_pool<R, F: FnOnce() -> R>(&self, op: F) -> R {
        if self.config.threads == 0 {
            op()
        } else {
            rayon::ThreadPoolBuilder::new()
                .num_threads(self.config.threads)
                .build()
                .expect("thread pool")
                .install(op)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use statleak_leakage::LeakageAnalysis;
    use statleak_netlist::{benchmarks, placement::Placement};
    use statleak_ssta::Ssta;
    use statleak_sta::Sta;
    use statleak_tech::{Technology, VariationConfig};
    use std::sync::Arc;

    fn setup(name: &str) -> (Design, FactorModel) {
        let circuit = Arc::new(benchmarks::by_name(name).unwrap());
        let placement = Placement::by_level(&circuit);
        let tech = Technology::ptm100();
        let fm =
            FactorModel::build(&circuit, &placement, &tech, &VariationConfig::ptm100()).unwrap();
        (Design::new(circuit, tech), fm)
    }

    fn run(name: &str, samples: usize) -> (Design, FactorModel, McResult) {
        let (d, fm) = setup(name);
        let r = MonteCarlo::new(McConfig {
            samples,
            ..Default::default()
        })
        .run(&d, &fm);
        (d, fm, r)
    }

    #[test]
    fn deterministic_across_thread_counts() {
        let (d, fm) = setup("c17");
        let mc = |threads| {
            MonteCarlo::new(McConfig {
                samples: 64,
                seed: 5,
                threads,
                ..Default::default()
            })
        };
        let one = mc(1).run(&d, &fm);
        let four = mc(4).run(&d, &fm);
        assert_eq!(one, four);
        // Same contract for the ABB experiment: per-chip seeds depend only
        // on the sample index, so the population is thread-count invariant.
        let abb = AbbConfig::standard(one.delay_summary().mean);
        let abb_one = mc(1).run_abb(&d, &fm, &abb);
        let abb_four = mc(4).run_abb(&d, &fm, &abb);
        assert_eq!(abb_one, abb_four);
        // An odd thread count exercises the uneven-chunk path too.
        let abb_three = mc(3).run_abb(&d, &fm, &abb);
        assert_eq!(abb_one, abb_three);
    }

    #[test]
    fn delay_mean_close_to_ssta() {
        let (d, fm, r) = run("c432", 2000);
        let ssta = Ssta::analyze(&d, &fm);
        let mc = r.delay_summary();
        let an = ssta.circuit_delay();
        let err = (an.mean - mc.mean).abs() / mc.mean;
        assert!(
            err < 0.03,
            "SSTA mean {} vs MC {} ({err})",
            an.mean,
            mc.mean
        );
        let serr = (an.variance.sqrt() - mc.std).abs() / mc.std;
        assert!(
            serr < 0.25,
            "SSTA sigma {} vs MC {} ({serr})",
            an.variance.sqrt(),
            mc.std
        );
    }

    #[test]
    fn delay_mean_above_deterministic_sta() {
        let (d, _, r) = run("c880", 500);
        let det = Sta::analyze(&d).circuit_delay();
        assert!(r.delay_summary().mean > det * 0.98);
    }

    #[test]
    fn leakage_matches_wilkinson_analysis() {
        let (d, fm, r) = run("c499", 3000);
        let analytic = LeakageAnalysis::analyze(&d, &fm).total_current();
        let mc = r.leakage_summary();
        assert!(
            (analytic.mean() - mc.mean).abs() / mc.mean < 0.05,
            "mean {} vs {}",
            analytic.mean(),
            mc.mean
        );
        assert!(
            (analytic.quantile(0.95) - mc.p95).abs() / mc.p95 < 0.08,
            "p95 {} vs {}",
            analytic.quantile(0.95),
            mc.p95
        );
    }

    #[test]
    fn fast_die_leak_more() {
        let (_, _, r) = run("c880", 1000);
        let rho = r.delay_leakage_correlation();
        assert!(
            rho < -0.3,
            "expected strong negative correlation, got {rho}"
        );
    }

    #[test]
    fn empirical_yield_tracks_ssta_yield() {
        let (d, fm, r) = run("c1355", 2000);
        let ssta = Ssta::analyze(&d, &fm);
        let t = ssta.clock_for_yield(0.90);
        let y = r.timing_yield(t);
        assert!((y - 0.90).abs() < 0.05, "MC yield {y} at SSTA 90% clock");
    }

    #[test]
    fn histogram_covers_all_samples() {
        let (_, _, r) = run("c17", 300);
        let h = r.leakage_histogram(20);
        assert_eq!(h.total(), 300);
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn zero_samples_rejected() {
        let _ = MonteCarlo::new(McConfig {
            samples: 0,
            ..Default::default()
        });
    }
}

#[cfg(test)]
mod variance_reduction_tests {
    use super::*;
    use statleak_netlist::{benchmarks, placement::Placement};
    use statleak_ssta::Ssta;
    use statleak_tech::{Technology, VariationConfig};
    use std::sync::Arc;

    fn setup(name: &str) -> (Design, FactorModel) {
        let circuit = Arc::new(benchmarks::by_name(name).unwrap());
        let placement = Placement::by_level(&circuit);
        let tech = Technology::ptm100();
        let fm =
            FactorModel::build(&circuit, &placement, &tech, &VariationConfig::ptm100()).unwrap();
        (Design::new(circuit, tech), fm)
    }

    fn config(samples: usize, threads: usize, scheme: &str) -> McConfig {
        McConfig {
            samples,
            threads,
            ..Default::default()
        }
        .with_scheme(scheme.parse().expect("valid scheme"))
    }

    #[test]
    fn every_scheme_is_thread_count_invariant() {
        // The acceptance contract: plain, IS, and QMC paths bit-identical
        // across 1/4/8 threads.
        let (d, fm) = setup("c432");
        let t = Ssta::analyze(&d, &fm).clock_for_yield(0.95);
        for scheme in ["plain", "sobol", "plain+is", "sobol+is+cv", "plain+cv"] {
            let run_at = |threads: usize| {
                let mc = MonteCarlo::new(config(256, threads, scheme));
                (mc.run(&d, &fm), mc.timing_yield_estimate(&d, &fm, t))
            };
            let (r1, y1) = run_at(1);
            let (r4, y4) = run_at(4);
            let (r8, y8) = run_at(8);
            assert_eq!(r1, r4, "{scheme}: population 1 vs 4 threads");
            assert_eq!(r1, r8, "{scheme}: population 1 vs 8 threads");
            assert_eq!(y1, y4, "{scheme}: estimate 1 vs 4 threads");
            assert_eq!(y1, y8, "{scheme}: estimate 1 vs 8 threads");
        }
    }

    #[test]
    fn sobol_population_matches_plain_moments() {
        let (d, fm) = setup("c432");
        let plain = MonteCarlo::new(config(2000, 0, "plain")).run(&d, &fm);
        let sobol = MonteCarlo::new(config(2000, 0, "sobol")).run(&d, &fm);
        let (pm, sm) = (plain.delay_summary().mean, sobol.delay_summary().mean);
        assert!((pm - sm).abs() / pm < 0.02, "plain {pm} vs sobol {sm}");
        let (pl, sl) = (plain.leakage_summary().mean, sobol.leakage_summary().mean);
        assert!((pl - sl).abs() / pl < 0.05, "plain {pl} vs sobol {sl}");
    }

    #[test]
    fn cross_validation_is_and_qmc_agree_with_plain_within_wilson() {
        // Tier-1: at a matched confidence level, the IS and QMC yield
        // estimates on c432 must land inside the plain estimator's Wilson
        // interval, and vice versa.
        let (d, fm) = setup("c432");
        let t = Ssta::analyze(&d, &fm).clock_for_yield(0.95);
        let plain = MonteCarlo::new(config(4000, 0, "plain"));
        let plain_ci = plain.run(&d, &fm).timing_yield_interval(t, DEFAULT_CI_Z);

        let is_est = MonteCarlo::new(config(2000, 0, "plain+is")).timing_yield_estimate(&d, &fm, t);
        assert!(
            plain_ci.contains(is_est.yield_value),
            "IS yield {} outside plain Wilson [{}, {}]",
            is_est.yield_value,
            plain_ci.lo,
            plain_ci.hi
        );
        assert!(
            is_est.ci.lo <= plain_ci.hi && plain_ci.lo <= is_est.ci.hi,
            "IS and plain intervals are disjoint"
        );

        let qmc = MonteCarlo::new(config(4000, 0, "sobol")).timing_yield_estimate(&d, &fm, t);
        assert!(
            plain_ci.contains(qmc.yield_value),
            "QMC yield {} outside plain Wilson [{}, {}]",
            qmc.yield_value,
            plain_ci.lo,
            plain_ci.hi
        );
    }

    #[test]
    fn importance_sampling_resolves_the_far_tail() {
        // At the 3.2-sigma clock the true miss rate is ~7e-4: invisible to
        // 2000 plain samples, but the canonical-derived shift resolves it
        // with a controlled relative error and a healthy ESS.
        let (d, fm) = setup("c499");
        let ssta = Ssta::analyze(&d, &fm);
        let t = ssta.clock_for_yield(0.99931);
        let expected = 1.0 - 0.99931;
        let est = MonteCarlo::new(config(2000, 0, "plain+is")).timing_yield_estimate(&d, &fm, t);
        assert!(est.miss_probability > 0.0, "IS must see the tail");
        let ratio = est.miss_probability / expected;
        assert!(
            (0.4..2.5).contains(&ratio),
            "IS miss {} vs analytic {expected} (ratio {ratio})",
            est.miss_probability
        );
        assert!(
            est.std_error / est.miss_probability < 0.3,
            "relative SE {} too large",
            est.std_error / est.miss_probability
        );
        // ESS shrinks like n·e^{-‖s‖²} for a mean shift — small by design
        // at a 3.2-sigma target, but it must not fully degenerate.
        assert!(est.ess > 5.0, "ESS {} degenerated", est.ess);
        assert!(est.shift_magnitude > 0.5, "shift {}", est.shift_magnitude);
        assert!(est.evaluations == 2000);
    }

    #[test]
    fn control_variates_reduce_variance_on_c432() {
        let (d, fm) = setup("c432");
        let r = MonteCarlo::new(config(2000, 0, "plain+cv")).run(&d, &fm);
        let delay = r.delay_mean_cv().expect("cv recorded");
        // The shared factors carry most of the delay variance, so the
        // linear surrogate must buy a real reduction.
        assert!(
            delay.variance_reduction > 2.0,
            "delay VR {}",
            delay.variance_reduction
        );
        // The adjustment is a correction, not a rewrite.
        assert!((delay.adjusted - delay.raw).abs() / delay.raw < 0.01);
        assert!(delay.beta > 0.5 && delay.beta < 2.0, "beta {}", delay.beta);

        let leak = r.leakage_mean_cv().expect("cv recorded");
        assert!(
            leak.variance_reduction > 1.5,
            "leakage VR {}",
            leak.variance_reduction
        );
        assert!((leak.adjusted - leak.raw).abs() / leak.raw < 0.05);

        // Yield CV at a mid-distribution clock.
        let t = Ssta::analyze(&d, &fm).clock_for_yield(0.9);
        let y = r.timing_yield_cv(t).expect("cv recorded");
        assert!(
            y.variance_reduction > 1.5,
            "yield VR {}",
            y.variance_reduction
        );
        assert!((y.adjusted - y.raw).abs() < 0.05);
    }

    #[test]
    fn plain_runs_record_no_surrogates() {
        let (d, fm) = setup("c17");
        let r = MonteCarlo::new(config(32, 0, "plain")).run(&d, &fm);
        assert!(r.delay_mean_cv().is_none());
        assert!(r.leakage_mean_cv().is_none());
        assert!(r.timing_yield_cv(100.0).is_none());
    }

    #[test]
    fn default_scheme_reproduces_the_historical_stream() {
        // The rebuilt sampler must leave the reference estimator untouched:
        // same seed, same draws, same population.
        let (d, fm) = setup("c17");
        let a = MonteCarlo::new(McConfig {
            samples: 128,
            seed: 7,
            ..Default::default()
        })
        .run(&d, &fm);
        let b = MonteCarlo::new(config(128, 0, "plain").with_seed_for_test(7)).run(&d, &fm);
        assert_eq!(a, b);
    }
}

#[cfg(test)]
impl McConfig {
    fn with_seed_for_test(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

#[cfg(test)]
mod abb_tests {
    use super::*;
    use statleak_netlist::{benchmarks, placement::Placement};
    use statleak_ssta::Ssta;
    use statleak_tech::{Technology, VariationConfig};
    use std::sync::Arc;

    fn setup(name: &str) -> (Design, FactorModel) {
        let circuit = Arc::new(benchmarks::by_name(name).unwrap());
        let placement = Placement::by_level(&circuit);
        let tech = Technology::ptm100();
        let fm =
            FactorModel::build(&circuit, &placement, &tech, &VariationConfig::ptm100()).unwrap();
        (Design::new(circuit, tech), fm)
    }

    #[test]
    fn abb_never_reduces_yield() {
        let (d, fm) = setup("c432");
        // A clock where the unbiased design yields ~85%.
        let ssta = Ssta::analyze(&d, &fm);
        let t = ssta.clock_for_yield(0.85);
        let r = MonteCarlo::new(McConfig {
            samples: 800,
            ..Default::default()
        })
        .run_abb(&d, &fm, &AbbConfig::standard(t));
        assert!(r.yield_with_abb() >= r.yield_without_abb());
        // Forward bias should rescue a visible fraction of slow die.
        assert!(
            r.yield_with_abb() > r.yield_without_abb() + 0.05,
            "ABB yield {} vs unbiased {}",
            r.yield_with_abb(),
            r.yield_without_abb()
        );
    }

    #[test]
    fn per_chip_selection_dominates_zero_bias() {
        // Any chip that met timing unbiased must end with leakage <= its
        // unbiased leakage (bias 0 was a candidate).
        let (d, fm) = setup("c499");
        let ssta = Ssta::analyze(&d, &fm);
        let t = ssta.clock_for_yield(0.90);
        let r = MonteCarlo::new(McConfig {
            samples: 500,
            ..Default::default()
        })
        .run_abb(&d, &fm, &AbbConfig::standard(t));
        for c in r.chips() {
            if c.delay_unbiased <= t {
                assert!(c.leakage <= c.leakage_unbiased * (1.0 + 1e-12));
                assert!(c.delay <= t + 1e-9);
            }
        }
    }

    #[test]
    fn fast_chips_choose_reverse_bias() {
        let (d, fm) = setup("c880");
        let ssta = Ssta::analyze(&d, &fm);
        // Generous clock: almost every chip meets timing unbiased, so the
        // selection is almost purely leakage-driven -> reverse bias.
        let t = ssta.clock_for_yield(0.999);
        let r = MonteCarlo::new(McConfig {
            samples: 300,
            ..Default::default()
        })
        .run_abb(&d, &fm, &AbbConfig::standard(t));
        let mean_bias: f64 = r.chips().iter().map(|c| c.bias).sum::<f64>() / r.chips().len() as f64;
        assert!(mean_bias > 0.02, "mean bias {mean_bias} should be reverse");
        assert!(r.leakage_summary().mean < r.leakage_summary_unbiased().mean * 0.7);
    }

    #[test]
    #[should_panic(expected = "bias grid must contain 0.0")]
    fn grid_without_zero_rejected() {
        let (d, fm) = setup("c17");
        let _ = MonteCarlo::new(McConfig {
            samples: 2,
            ..Default::default()
        })
        .run_abb(
            &d,
            &fm,
            &AbbConfig {
                bias_grid: vec![0.02],
                t_clk: 100.0,
            },
        );
    }
}

#[cfg(test)]
mod importance_sampling_tests {
    use super::*;
    use statleak_netlist::{benchmarks, placement::Placement};
    use statleak_ssta::Ssta;
    use statleak_tech::{Technology, VariationConfig};
    use std::sync::Arc;

    fn setup(name: &str) -> (Design, FactorModel) {
        let circuit = Arc::new(benchmarks::by_name(name).unwrap());
        let placement = Placement::by_level(&circuit);
        let tech = Technology::ptm100();
        let fm =
            FactorModel::build(&circuit, &placement, &tech, &VariationConfig::ptm100()).unwrap();
        (Design::new(circuit, tech), fm)
    }

    #[test]
    fn zero_shift_matches_plain_mc() {
        let (d, fm) = setup("c432");
        let mc = MonteCarlo::new(McConfig {
            samples: 2000,
            ..Default::default()
        });
        let ssta = Ssta::analyze(&d, &fm);
        let t = ssta.clock_for_yield(0.9);
        let plain = 1.0 - mc.run(&d, &fm).timing_yield(t);
        let (is_est, _) = mc.tail_miss_probability(&d, &fm, t, 0.0);
        assert!(
            (is_est - plain).abs() < 0.03,
            "IS {is_est} vs plain {plain}"
        );
    }

    #[test]
    fn shifted_estimate_tracks_far_tail() {
        // At the 3.2-sigma clock the true miss rate is ~7e-4: invisible to
        // 3000 plain samples, but the shifted estimator resolves it.
        let (d, fm) = setup("c499");
        let ssta = Ssta::analyze(&d, &fm);
        let t = ssta.clock_for_yield(0.99931); // ~3.2 sigma
        let expected = 1.0 - 0.99931;
        let mc = MonteCarlo::new(McConfig {
            samples: 3000,
            ..Default::default()
        });
        let (est, se) = mc.tail_miss_probability(&d, &fm, t, 2.5);
        assert!(est > 0.0, "shifted estimator must see the tail");
        // Within a factor ~2.5 of the first-order analytic tail (the SSTA
        // tail itself is approximate at this depth, so keep it loose).
        assert!(
            est / expected < 2.5 && expected / est < 2.5,
            "IS {est} (se {se}) vs analytic {expected}"
        );
        // And the relative standard error is controlled.
        assert!(se / est < 0.5, "se {se} vs est {est}");
    }

    #[test]
    #[should_panic(expected = "shift must point into the slow tail")]
    fn negative_shift_rejected() {
        let (d, fm) = setup("c17");
        let _ = MonteCarlo::new(McConfig {
            samples: 2,
            ..Default::default()
        })
        .tail_miss_probability(&d, &fm, 100.0, -1.0);
    }
}

#[cfg(test)]
mod unbiasedness_proptests {
    use super::*;
    use proptest::prelude::*;
    use statleak_stats::{phi, seeded_rng, StdNormalSampler};

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The likelihood-ratio algebra is unbiased on a known analytic
        /// Gaussian tail: estimating `P(Z > b)` from samples drawn at the
        /// shifted mean `b` must converge to `1 − Φ(b)` within CI bounds,
        /// for any tail depth and seed.
        #[test]
        fn importance_estimate_is_unbiased_on_gaussian_tail(
            b in 1.0f64..3.0,
            seed in any::<u64>(),
        ) {
            let n = 4000usize;
            let shift = [b];
            let mut rng = seeded_rng(seed);
            let mut normal = StdNormalSampler::new();
            let mut sum = 0.0;
            let mut sum_sq = 0.0;
            for _ in 0..n {
                let x = normal.sample(&mut rng) + b;
                let contrib = if x > b {
                    importance_weight(&shift, &[x])
                } else {
                    0.0
                };
                sum += contrib;
                sum_sq += contrib * contrib;
            }
            let est = sum / n as f64;
            let var = (sum_sq / n as f64 - est * est).max(0.0);
            let se = (var / n as f64).sqrt();
            let truth = 1.0 - phi(b);
            prop_assert!(
                (est - truth).abs() <= 5.0 * se + 1e-9,
                "estimate {est} vs truth {truth} (se {se}, b {b})"
            );
        }

        /// The mean of the likelihood ratio itself is 1 for any shift —
        /// the normalization every unbiased IS estimator rests on.
        #[test]
        fn likelihood_ratio_integrates_to_one(
            s1 in -2.0f64..2.0,
            s2 in -2.0f64..2.0,
            seed in any::<u64>(),
        ) {
            let n = 4000usize;
            let shift = [s1, s2];
            let mut rng = seeded_rng(seed);
            let mut normal = StdNormalSampler::new();
            let mut sum = 0.0;
            let mut sum_sq = 0.0;
            for _ in 0..n {
                let x = [normal.sample(&mut rng) + s1, normal.sample(&mut rng) + s2];
                let w = importance_weight(&shift, &x);
                sum += w;
                sum_sq += w * w;
            }
            let est = sum / n as f64;
            let var = (sum_sq / n as f64 - est * est).max(0.0);
            let se = (var / n as f64).sqrt();
            prop_assert!(
                (est - 1.0).abs() <= 6.0 * se + 1e-9,
                "E[w] = {est} (se {se}, shift [{s1}, {s2}])"
            );
        }
    }
}
