//! Run configuration: sample budget, seeding, and the sampler /
//! variance-reduction scheme.

use std::fmt;
use std::str::FromStr;

/// Source of the underlying standard-normal draws.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SamplerKind {
    /// Seeded pseudo-random sub-streams — the reference estimator, kept
    /// bit-identical to the historical sampler.
    #[default]
    Plain,
    /// Owen-scrambled Sobol' quasi-Monte-Carlo for the leading sample
    /// dimensions (the shared process factors first), falling back to the
    /// plain sub-stream beyond the direction-number table. See
    /// [`statleak_stats::SobolSequence`] for the dimension budget.
    Sobol,
}

impl SamplerKind {
    /// Stable lowercase name (CLI/serve token).
    pub fn name(self) -> &'static str {
        match self {
            SamplerKind::Plain => "plain",
            SamplerKind::Sobol => "sobol",
        }
    }
}

/// Variance-reduction layers stacked on top of the base sampler. Both
/// compose freely with either [`SamplerKind`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct VarianceReduction {
    /// Mean-shift importance sampling toward the SSTA-derived failure
    /// direction. Only affects tail-yield estimation
    /// ([`crate::MonteCarlo::timing_yield_estimate`]); population runs
    /// ([`crate::MonteCarlo::run`]) ignore it.
    pub importance_sampling: bool,
    /// SSTA-linearization control variates: evaluate the linear delay /
    /// conditional-mean leakage surrogates per sample and expose
    /// known-mean-corrected estimators on [`crate::McResult`].
    pub control_variate: bool,
}

/// A parsed sampler specification: base sampler plus variance-reduction
/// layers, joined by `+` — the wire format of the `--mc-sampler` CLI flag
/// and the serve-protocol `mc_sampler` field.
///
/// Accepted components: `plain`, `sobol` (at most one base), `is`
/// (importance sampling), `cv` (control variates). Examples: `plain`,
/// `sobol`, `plain+is`, `sobol+is+cv`.
///
/// ```
/// use statleak_mc::{SamplerKind, SamplingScheme};
/// let s: SamplingScheme = "sobol+is".parse().unwrap();
/// assert_eq!(s.sampler, SamplerKind::Sobol);
/// assert!(s.variance_reduction.importance_sampling);
/// assert!(!s.variance_reduction.control_variate);
/// assert_eq!(s.to_string(), "sobol+is");
/// assert!("qmc".parse::<SamplingScheme>().is_err());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SamplingScheme {
    /// The base draw source.
    pub sampler: SamplerKind,
    /// The layers stacked on top of it.
    pub variance_reduction: VarianceReduction,
}

impl FromStr for SamplingScheme {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut scheme = SamplingScheme::default();
        let mut base_seen = false;
        let mut is_seen = false;
        let mut cv_seen = false;
        for part in s.split('+') {
            match part {
                "plain" | "sobol" => {
                    if base_seen {
                        return Err(format!("duplicate base sampler in '{s}'"));
                    }
                    base_seen = true;
                    scheme.sampler = if part == "sobol" {
                        SamplerKind::Sobol
                    } else {
                        SamplerKind::Plain
                    };
                }
                "is" => {
                    if is_seen {
                        return Err(format!("duplicate 'is' layer in '{s}'"));
                    }
                    is_seen = true;
                    scheme.variance_reduction.importance_sampling = true;
                }
                "cv" => {
                    if cv_seen {
                        return Err(format!("duplicate 'cv' layer in '{s}'"));
                    }
                    cv_seen = true;
                    scheme.variance_reduction.control_variate = true;
                }
                other => {
                    return Err(format!(
                        "unknown sampler component '{other}' \
                         (expected plain, sobol, is, or cv)"
                    ));
                }
            }
        }
        Ok(scheme)
    }
}

impl fmt::Display for SamplingScheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.sampler.name())?;
        if self.variance_reduction.importance_sampling {
            f.write_str("+is")?;
        }
        if self.variance_reduction.control_variate {
            f.write_str("+cv")?;
        }
        Ok(())
    }
}

/// Monte-Carlo run configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct McConfig {
    /// Number of chip samples.
    pub samples: usize,
    /// Base RNG seed; sample `i` always uses sub-stream `seed ⊕ i`, so the
    /// result is independent of the thread count.
    pub seed: u64,
    /// Worker threads (0 = use available parallelism).
    pub threads: usize,
    /// Base draw source (plain PRNG by default).
    pub sampler: SamplerKind,
    /// Variance-reduction layers (all off by default — the reference
    /// estimator stays the plain path).
    pub variance_reduction: VarianceReduction,
}

impl Default for McConfig {
    fn default() -> Self {
        Self {
            samples: 2000,
            seed: 0xCAFE,
            threads: 0,
            sampler: SamplerKind::default(),
            variance_reduction: VarianceReduction::default(),
        }
    }
}

impl McConfig {
    /// Applies a parsed [`SamplingScheme`] to this configuration.
    pub fn with_scheme(mut self, scheme: SamplingScheme) -> Self {
        self.sampler = scheme.sampler;
        self.variance_reduction = scheme.variance_reduction;
        self
    }

    /// The sampler/variance-reduction part of this configuration.
    pub fn scheme(&self) -> SamplingScheme {
        SamplingScheme {
            sampler: self.sampler,
            variance_reduction: self.variance_reduction,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scheme_round_trips_through_display() {
        for spec in [
            "plain",
            "sobol",
            "plain+is",
            "plain+cv",
            "plain+is+cv",
            "sobol+is",
            "sobol+cv",
            "sobol+is+cv",
        ] {
            let parsed: SamplingScheme = spec.parse().unwrap();
            assert_eq!(parsed.to_string(), spec);
        }
    }

    #[test]
    fn layers_parse_in_any_order_and_without_a_base() {
        let a: SamplingScheme = "is+sobol+cv".parse().unwrap();
        let b: SamplingScheme = "sobol+is+cv".parse().unwrap();
        assert_eq!(a, b);
        let bare: SamplingScheme = "is".parse().unwrap();
        assert_eq!(bare.sampler, SamplerKind::Plain);
        assert!(bare.variance_reduction.importance_sampling);
    }

    #[test]
    fn unknown_and_duplicate_components_rejected() {
        assert!("qmc".parse::<SamplingScheme>().is_err());
        assert!("".parse::<SamplingScheme>().is_err());
        assert!("plain+plain".parse::<SamplingScheme>().is_err());
        assert!("plain+sobol".parse::<SamplingScheme>().is_err());
        assert!("is+is".parse::<SamplingScheme>().is_err());
        assert!("cv+cv".parse::<SamplingScheme>().is_err());
        assert!(
            "sobol+IS".parse::<SamplingScheme>().is_err(),
            "case-sensitive"
        );
    }

    #[test]
    fn default_config_is_the_plain_reference() {
        let cfg = McConfig::default();
        assert_eq!(cfg.sampler, SamplerKind::Plain);
        assert_eq!(cfg.variance_reduction, VarianceReduction::default());
        assert_eq!(cfg.scheme().to_string(), "plain");
    }
}
